// Command tracecat renders the span JSONL stream written by placed
// -trace (or any obs.JSONL sink carrying kind=span events) into
// human-readable per-trace waterfalls plus aggregate span statistics.
//
//	placed -trace spans.jsonl &
//	curl -s -X POST localhost:8080/v1/place -d @req.json
//	kill %1 && tracecat spans.jsonl
//
// With no file arguments tracecat reads stdin, so it also works as the
// tail end of a pipe. Output:
//
//	trace 6f0a… request 8.42ms, 6 spans
//	  request       ▕██████████████████████████████▏   0.00ms +8.42ms
//	  canonicalize  ▕█▏                                0.02ms +0.31ms
//	  ...
//
// followed by a per-span-name table of count, total, mean, self time
// (duration minus child spans — the span's own contribution to the
// critical path) and the share of all root time that self time
// explains. Traces are printed slowest first; -n bounds how many.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	n := flag.Int("n", 5, "render at most this many traces (slowest first, 0 for none)")
	flag.Parse()

	var readers []io.Reader
	var files []*os.File
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecat:", err)
			os.Exit(1)
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	err := run(os.Stdout, *n, readers...)
	for _, f := range files {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

// spanLine is the wire form of one kind=span JSONL event (a subset of
// internal/obs's jsonEvent).
type spanLine struct {
	Kind    string  `json:"kind"`
	TraceID string  `json:"trace"`
	Name    string  `json:"span"`
	SpanID  int     `json:"span_id"`
	Parent  int     `json:"parent"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
	Attrs   string  `json:"attrs"`
}

// trace is one reassembled request trace.
type trace struct {
	id    string
	spans []spanLine
}

// dur is the trace's extent: the root span when present (the root is
// emitted at Finish), otherwise the furthest span end seen.
func (t *trace) dur() float64 {
	var d float64
	for _, s := range t.spans {
		if s.Parent == 0 && s.DurMs > d {
			d = s.DurMs
		}
		if end := s.StartMs + s.DurMs; end > d {
			d = end
		}
	}
	return d
}

// run parses every reader and renders the report: up to n waterfalls,
// then the aggregate table. Malformed and non-span lines are skipped —
// the stream interleaves solver events with spans by design.
func run(w io.Writer, n int, readers ...io.Reader) error {
	byID := make(map[string]*trace)
	var order []string // first-seen order, the JSONL's own chronology
	for _, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var s spanLine
			if err := json.Unmarshal(line, &s); err != nil || s.Kind != "span" || s.TraceID == "" {
				continue
			}
			tr, ok := byID[s.TraceID]
			if !ok {
				tr = &trace{id: s.TraceID}
				byID[s.TraceID] = tr
				order = append(order, s.TraceID)
			}
			tr.spans = append(tr.spans, s)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if len(order) == 0 {
		fmt.Fprintln(w, "tracecat: no span events found")
		return nil
	}

	// Slowest first; ties keep stream order so output is deterministic.
	sorted := make([]string, len(order))
	copy(sorted, order)
	sort.SliceStable(sorted, func(i, j int) bool {
		return byID[sorted[i]].dur() > byID[sorted[j]].dur()
	})
	shown := len(sorted)
	if n >= 0 && n < shown {
		shown = n
	}
	for _, id := range sorted[:shown] {
		renderWaterfall(w, byID[id])
		fmt.Fprintln(w)
	}
	if shown < len(sorted) {
		fmt.Fprintf(w, "(%d more traces not rendered; raise -n)\n\n", len(sorted)-shown)
	}
	renderAggregate(w, byID, order)
	return nil
}

const barWidth = 30

// renderWaterfall prints one trace as a depth-indented span tree with
// proportional time bars.
func renderWaterfall(w io.Writer, tr *trace) {
	total := tr.dur()
	fmt.Fprintf(w, "trace %s  %.2fms, %d spans\n", tr.id, total, len(tr.spans))

	children := make(map[int][]spanLine)
	ids := make(map[int]bool)
	for _, s := range tr.spans {
		ids[s.SpanID] = true
	}
	var roots []spanLine
	for _, s := range tr.spans {
		if s.Parent == 0 || !ids[s.Parent] { // orphans render as roots
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	byStart := func(list []spanLine) {
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].StartMs != list[j].StartMs {
				return list[i].StartMs < list[j].StartMs
			}
			return list[i].SpanID < list[j].SpanID
		})
	}
	byStart(roots)

	width := 0
	for _, s := range tr.spans {
		if l := len(s.Name); l > width {
			width = l
		}
	}
	var walk func(s spanLine, depth int)
	walk = func(s spanLine, depth int) {
		indent := strings.Repeat("  ", depth)
		label := fmt.Sprintf("%s%-*s", indent, width, s.Name)
		attrs := ""
		if s.Attrs != "" {
			attrs = "  " + s.Attrs
		}
		fmt.Fprintf(w, "  %s  %s  %7.2fms +%.2fms%s\n", label, bar(s.StartMs, s.DurMs, total), s.StartMs, s.DurMs, attrs)
		kids := children[s.SpanID]
		byStart(kids)
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// bar renders the span's [start, start+dur) window scaled into
// barWidth cells of the trace's extent.
func bar(start, dur, total float64) string {
	cells := make([]rune, barWidth)
	for i := range cells {
		cells[i] = ' '
	}
	if total > 0 {
		lo := int(start / total * barWidth)
		hi := int((start + dur) / total * barWidth)
		if lo >= barWidth {
			lo = barWidth - 1
		}
		if hi <= lo {
			hi = lo + 1 // every span is at least one cell wide
		}
		if hi > barWidth {
			hi = barWidth
		}
		for i := lo; i < hi; i++ {
			cells[i] = '█'
		}
	}
	return "▕" + string(cells) + "▏"
}

// aggRow accumulates per-span-name statistics across all traces.
type aggRow struct {
	name         string
	count        int
	totalMs      float64
	maxMs        float64
	selfMs       float64
	unendedNote  bool
	childDeficit bool
}

// renderAggregate prints the per-name table. Self time is a span's
// duration minus the summed durations of its direct children (clamped
// at zero for overlapping concurrent children): the time the span
// itself contributed to its trace's critical path. The final column is
// that self time as a share of all root-span time — where the fleet of
// requests actually spent its latency.
func renderAggregate(w io.Writer, byID map[string]*trace, order []string) {
	rows := make(map[string]*aggRow)
	var rootMs float64
	for _, id := range order {
		tr := byID[id]
		childSum := make(map[int]float64)
		for _, s := range tr.spans {
			if s.Parent != 0 {
				childSum[s.Parent] += s.DurMs
			}
		}
		for _, s := range tr.spans {
			row := rows[s.Name]
			if row == nil {
				row = &aggRow{name: s.Name}
				rows[s.Name] = row
			}
			row.count++
			row.totalMs += s.DurMs
			if s.DurMs > row.maxMs {
				row.maxMs = s.DurMs
			}
			self := s.DurMs - childSum[s.SpanID]
			if self < 0 {
				self = 0
				row.childDeficit = true
			}
			row.selfMs += self
			if s.Parent == 0 {
				rootMs += s.DurMs
			}
		}
	}

	list := make([]*aggRow, 0, len(rows))
	for _, r := range rows {
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].selfMs != list[j].selfMs {
			return list[i].selfMs > list[j].selfMs
		}
		return list[i].name < list[j].name
	})

	width := len("span")
	for _, r := range list {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	fmt.Fprintf(w, "%-*s  %6s  %10s  %9s  %9s  %10s  %6s\n",
		width, "span", "count", "total", "mean", "max", "self", "%crit")
	for _, r := range list {
		crit := "-"
		if rootMs > 0 {
			crit = fmt.Sprintf("%5.1f%%", r.selfMs/rootMs*100)
		}
		note := ""
		if r.childDeficit {
			note = "  (concurrent children)"
		}
		fmt.Fprintf(w, "%-*s  %6d  %8.2fms  %7.2fms  %7.2fms  %8.2fms  %6s%s\n",
			width, r.name, r.count, r.totalMs, r.totalMs/float64(r.count), r.maxMs, r.selfMs, crit, note)
	}
}
