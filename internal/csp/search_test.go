package csp

import (
	"testing"
	"time"
)

// postQueens builds the n-queens model: column position per row,
// all-different on columns and both diagonals.
func postQueens(st *Store, n int) []*Var {
	q := make([]*Var, n)
	for i := range q {
		q[i] = st.NewVarRange("q", 0, n-1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			NotEqual(st, q[i], q[j])
			NotEqualOffset(st, q[i], q[j], j-i) // q[i] != q[j] + (j-i)
			NotEqualOffset(st, q[i], q[j], i-j) // q[i] != q[j] - (j-i)
		}
	}
	return q
}

func TestSolveQueensCounts(t *testing.T) {
	// Known solution counts for n-queens.
	want := map[int]int{4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, count := range want {
		st := NewStore()
		q := postQueens(st, n)
		res, err := Solve(st, q, Options{}, func(*Store) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if res.Solutions != count || !res.Complete {
			t.Errorf("%d-queens: %d solutions (complete=%v), want %d",
				n, res.Solutions, res.Complete, count)
		}
	}
}

func TestSolveValidatesSolutions(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 6)
	_, err := Solve(st, q, Options{}, func(s *Store) bool {
		// Verify the callback sees a fully assigned, conflict-free board.
		vals := make([]int, len(q))
		for i, v := range q {
			if !v.Assigned() {
				t.Fatal("unassigned var at solution")
			}
			vals[i] = v.Value()
		}
		for i := range vals {
			for j := i + 1; j < len(vals); j++ {
				if vals[i] == vals[j] || vals[i]-vals[j] == j-i || vals[j]-vals[i] == j-i {
					t.Fatalf("invalid solution %v", vals)
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolveMaxSolutions(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 8)
	res, err := Solve(st, q, Options{MaxSolutions: 3}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 3 || res.Complete {
		t.Fatalf("MaxSolutions: got %d complete=%v", res.Solutions, res.Complete)
	}
}

func TestSolveCallbackStop(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 8)
	res, err := Solve(st, q, Options{}, func(*Store) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 1 || res.Complete {
		t.Fatalf("callback stop: %d solutions complete=%v", res.Solutions, res.Complete)
	}
}

func TestSolveInfeasibleAtRoot(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 5)
	y := st.NewVarRange("y", 0, 5)
	LessEqOffset(st, x, y, 10)
	res, err := Solve(st, []*Var{x, y}, Options{}, func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 0 || !res.Complete {
		t.Fatalf("infeasible: %+v", res)
	}
}

func TestSolveDeadline(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 10)
	res, err := Solve(st, q, Options{Deadline: time.Now().Add(-time.Second)},
		func(*Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("expired deadline still reported complete")
	}
}

func TestSolveRestoresStore(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 5)
	sizeBefore := q[0].Size()
	if _, err := Solve(st, q, Options{}, func(*Store) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if q[0].Size() != sizeBefore {
		t.Fatal("Solve left domains modified")
	}
}

func TestSolveVariableChoosers(t *testing.T) {
	for name, chooser := range map[string]VarChooser{
		"first-unassigned": FirstUnassigned,
		"smallest-domain":  SmallestDomain,
	} {
		st := NewStore()
		q := postQueens(st, 6)
		res, err := Solve(st, q, Options{ChooseVar: chooser}, func(*Store) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if res.Solutions != 4 {
			t.Errorf("%s: %d solutions, want 4", name, res.Solutions)
		}
	}
}

func TestDescendingValues(t *testing.T) {
	st := NewStore()
	x := st.NewVar("x", NewDomainValues(1, 5, 3))
	vals := DescendingValues(x)
	if len(vals) != 3 || vals[0] != 5 || vals[2] != 1 {
		t.Fatalf("DescendingValues = %v", vals)
	}
}

func TestMinimizeSimple(t *testing.T) {
	// Minimise x + y with x + 2 <= y: optimum x=0, y=2, obj=2.
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	y := st.NewVarRange("y", 0, 9)
	obj := st.NewVarRange("obj", 0, 18)
	Sum(st, obj, x, y)
	LessEqOffset(st, x, y, 2)
	var seen []int
	res, err := Minimize(st, []*Var{x, y}, obj, Options{}, func(s *Store, v int) {
		seen = append(seen, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Best != 2 || !res.Optimal {
		t.Fatalf("Minimize: %+v", res)
	}
	// Improvements are strictly decreasing.
	for i := 1; i < len(seen); i++ {
		if seen[i] >= seen[i-1] {
			t.Fatalf("non-improving callback sequence %v", seen)
		}
	}
	if seen[len(seen)-1] != 2 {
		t.Fatalf("last improvement %v != best", seen)
	}
}

func TestMinimizeInfeasible(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 3)
	obj := st.NewVarRange("obj", 0, 3)
	Equal(st, x, obj)
	NotEqual(st, x, obj) // contradiction
	res, err := Minimize(st, []*Var{x}, obj, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || !res.Optimal {
		t.Fatalf("infeasible Minimize: %+v", res)
	}
}

func TestMinimizeDeadlineAnytime(t *testing.T) {
	st := NewStore()
	q := postQueens(st, 9)
	obj := st.NewVarRange("obj", 0, 8)
	Equal(st, obj, q[0])
	res, err := Minimize(st, q, obj, Options{Deadline: time.Now().Add(50 * time.Millisecond)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With 50ms we must at least find something for 9-queens.
	if !res.Found {
		t.Fatal("no solution within deadline")
	}
}

func TestMinimizeProvesOptimality(t *testing.T) {
	// Minimise the first queen's column on a 6 board: optimum is 1
	// (column 0 is infeasible for 6-queens).
	st := NewStore()
	q := postQueens(st, 6)
	res, err := Minimize(st, q, q[0], Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Best != 1 || !res.Optimal {
		t.Fatalf("queens minimize: %+v", res)
	}
}

func TestMinimizeRestoresStore(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 9)
	obj := st.NewVarRange("obj", 0, 9)
	Equal(st, x, obj)
	if _, err := Minimize(st, []*Var{x}, obj, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	// Domains restored except root-level propagation effects.
	if x.Size() == 0 {
		t.Fatal("store corrupted")
	}
	if len(st.marks) != 0 {
		t.Fatal("unbalanced Push/Pop")
	}
}

func TestMustAssignedString(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 3, 3)
	y := st.NewVarRange("y", 7, 7)
	if got := mustAssignedString([]*Var{x, y}); got != "x=3 y=7" {
		t.Fatalf("mustAssignedString = %q", got)
	}
}
