// This file holds the deliberately detached maintenance jobs; the
// file-level pragma opts the whole file out of ctxflow, and only
// ctxflow — it does not leak into the sibling files.
//
//solverlint:allow-file ctxflow maintenance jobs run detached from any request by design
package ctxflow

import "context"

// Janitor runs off the request path entirely: every root context in
// this file is covered by the file pragma.
func Janitor() context.Context {
	return context.Background()
}

// Sweep is equally covered, anywhere in the file.
func Sweep() error {
	return work(context.TODO())
}
