package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/workload"
)

func rectModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

func barModule(name string, n int) *module.Module {
	// Two alternatives: horizontal n x 1 and vertical 1 x n.
	var hTiles, vTiles []module.Tile
	for i := 0; i < n; i++ {
		hTiles = append(hTiles, module.Tile{At: grid.Pt(i, 0), Kind: fabric.CLB})
		vTiles = append(vTiles, module.Tile{At: grid.Pt(0, i), Kind: fabric.CLB})
	}
	return module.MustModule(name, module.MustShape(hTiles), module.MustShape(vTiles))
}

func TestPlaceSingleModule(t *testing.T) {
	r := fabric.Homogeneous(4, 4).FullRegion()
	p := New(r, Options{})
	res, err := p.Place([]*module.Module{rectModule("a", 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Optimal || res.Height != 2 {
		t.Fatalf("result: %+v", res)
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
	if res.Utilization != 0.5 { // 4 tiles over 2 rows × 4 cols
		t.Fatalf("utilization = %v, want 0.5", res.Utilization)
	}
}

func TestPlaceOptimalHeightKnown(t *testing.T) {
	// Three 2x2 in a 4-wide region: optimal height 4.
	r := fabric.Homogeneous(4, 8).FullRegion()
	p := New(r, Options{})
	mods := []*module.Module{
		rectModule("a", 2, 2), rectModule("b", 2, 2), rectModule("c", 2, 2),
	}
	res, err := p.Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Height != 4 || !res.Optimal {
		t.Fatalf("result: %v", res)
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAlternativesReduceHeight(t *testing.T) {
	// 4-wide region, two 4-tile bars. Vertical-only: height 4.
	// With a horizontal alternative: height 2.
	r := fabric.Homogeneous(4, 8).FullRegion()
	p := New(r, Options{})

	with := []*module.Module{barModule("a", 4), barModule("b", 4)}
	resWith, err := p.Place(with)
	if err != nil {
		t.Fatal(err)
	}
	without := []*module.Module{
		barModule("a", 4).MustWithShapes(1), // vertical only
		barModule("b", 4).MustWithShapes(1),
	}
	resWithout, err := p.Place(without)
	if err != nil {
		t.Fatal(err)
	}
	if resWith.Height != 2 || resWithout.Height != 4 {
		t.Fatalf("heights with/without = %d/%d, want 2/4", resWith.Height, resWithout.Height)
	}
	if resWith.Utilization <= resWithout.Utilization {
		t.Fatalf("utilization with=%v without=%v", resWith.Utilization, resWithout.Utilization)
	}
}

func TestPlaceHeterogeneousBRAMAlignment(t *testing.T) {
	// Region with one BRAM column; module demands a BRAM tile: the
	// placement must put it on the BRAM column.
	dev := fabric.NewDevice("one-bram", 5, 4, func(x, y int) fabric.Kind {
		if x == 3 {
			return fabric.BRAM
		}
		return fabric.CLB
	})
	r := dev.FullRegion()
	m := module.MustModule("mem", module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.CLB},
		{At: grid.Pt(1, 0), Kind: fabric.BRAM},
	}))
	res, err := New(r, Options{}).Place([]*module.Module{m})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement found")
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
	if res.Placements[0].At.X != 2 {
		t.Fatalf("anchor x = %d, want 2 (BRAM alignment)", res.Placements[0].At.X)
	}
}

func TestPlaceInfeasibleModuleErrors(t *testing.T) {
	r := fabric.Homogeneous(3, 3).FullRegion()
	_, err := New(r, Options{}).Place([]*module.Module{rectModule("big", 4, 4)})
	if err == nil || !strings.Contains(err.Error(), "big") {
		t.Fatalf("err = %v, want mention of module", err)
	}
}

func TestPlaceJointlyInfeasible(t *testing.T) {
	// Two 2x2 modules in a 2x3 region: individually placeable, jointly
	// impossible.
	r := fabric.Homogeneous(2, 3).FullRegion()
	res, err := New(r, Options{}).Place([]*module.Module{
		rectModule("a", 2, 2), rectModule("b", 2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("found impossible placement: %v", res)
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err) // Validate on not-found results is a no-op
	}
}

func TestPlaceNoModulesErrors(t *testing.T) {
	r := fabric.Homogeneous(3, 3).FullRegion()
	if _, err := New(r, Options{}).Place(nil); err == nil {
		t.Fatal("no error for empty module list")
	}
}

func TestPlaceFirstSolutionOnly(t *testing.T) {
	r := fabric.Homogeneous(6, 12).FullRegion()
	mods := []*module.Module{
		rectModule("a", 3, 2), rectModule("b", 2, 3), rectModule("c", 2, 2),
	}
	res, err := New(r, Options{FirstSolutionOnly: true}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Optimal {
		t.Fatalf("first-solution result: %v", res)
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceTimeoutAnytime(t *testing.T) {
	// A big instance with a tiny budget: we still get a valid placement
	// (bottom-left dives to a first solution quickly), not optimal proof.
	r := fabric.Homogeneous(12, 40).FullRegion()
	rng := rand.New(rand.NewSource(42))
	var mods []*module.Module
	for i := 0; i < 10; i++ {
		m, err := module.GenerateAlternatives(
			string(rune('a'+i)),
			module.Demand{CLB: 8 + rng.Intn(12)},
			module.AlternativeOptions{},
		)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	res, err := New(r, Options{Timeout: 300 * time.Millisecond}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement within budget")
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceStrategiesAgreeOnOptimum(t *testing.T) {
	r := fabric.Homogeneous(5, 10).FullRegion()
	mods := []*module.Module{
		rectModule("a", 2, 2), rectModule("b", 3, 2), rectModule("c", 2, 1),
	}
	heights := map[string]int{}
	for _, s := range []Strategy{StrategyFirstFail, StrategyLargestFirst, StrategyInputOrder} {
		for _, v := range []ValueOrder{OrderBottomLeft, OrderLexicographic} {
			res, err := New(r, Options{Strategy: s, ValueOrder: v}).Place(mods)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found || !res.Optimal {
				t.Fatalf("%v/%v: %v", s, v, res)
			}
			heights[s.String()+"/"+v.String()] = res.Height
			if err := res.Validate(r); err != nil {
				t.Fatalf("%v/%v: %v", s, v, err)
			}
		}
	}
	first := -1
	for k, h := range heights {
		if first == -1 {
			first = h
		}
		if h != first {
			t.Fatalf("strategies disagree on optimum: %v (%s)", heights, k)
		}
	}
}

// TestPlaceMatchesBruteForce cross-checks the CP optimum against
// exhaustive enumeration on tiny random instances.
func TestPlaceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		W := 3 + rng.Intn(2)
		H := 4 + rng.Intn(2)
		r := fabric.Homogeneous(W, H).FullRegion()
		n := 2 + rng.Intn(2)
		var mods []*module.Module
		for i := 0; i < n; i++ {
			w := 1 + rng.Intn(2)
			h := 1 + rng.Intn(2)
			mods = append(mods, rectModule(string(rune('a'+i)), w, h))
		}
		res, err := New(r, Options{}).Place(mods)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForceMinHeight(W, H, mods)
		if res.Found != feasible {
			t.Fatalf("trial %d: found=%v brute=%v", trial, res.Found, feasible)
		}
		if res.Found {
			if err := res.Validate(r); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if res.Height != want {
				t.Fatalf("trial %d: CP height %d, brute force %d", trial, res.Height, want)
			}
		}
	}
}

// bruteForceMinHeight enumerates all placements of rectangular CLB
// modules (first shape only) and returns the minimal occupied height.
func bruteForceMinHeight(W, H int, mods []*module.Module) (int, bool) {
	type box struct{ w, h int }
	boxes := make([]box, len(mods))
	for i, m := range mods {
		s := m.Shape(0)
		boxes[i] = box{s.W(), s.H()}
	}
	best := H + 1
	var rects []grid.Rect
	var rec func(i int)
	rec = func(i int) {
		if i == len(boxes) {
			top := 0
			for _, r := range rects {
				if r.MaxY > top {
					top = r.MaxY
				}
			}
			if top < best {
				best = top
			}
			return
		}
		b := boxes[i]
		for y := 0; y+b.h <= H; y++ {
			for x := 0; x+b.w <= W; x++ {
				cand := grid.RectXYWH(x, y, b.w, b.h)
				ok := true
				for _, r := range rects {
					if r.Overlaps(cand) {
						ok = false
						break
					}
				}
				if ok {
					rects = append(rects, cand)
					rec(i + 1)
					rects = rects[:len(rects)-1]
				}
			}
		}
	}
	rec(0)
	return best, best <= H
}

func TestResultString(t *testing.T) {
	r := fabric.Homogeneous(4, 4).FullRegion()
	res, err := New(r, Options{}).Place([]*module.Module{rectModule("a", 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "optimal") {
		t.Fatalf("String = %q", res.String())
	}
	empty := &Result{}
	if !strings.Contains(empty.String(), "no placement") {
		t.Fatalf("empty String = %q", empty.String())
	}
	p := res.Placements[0]
	if !strings.Contains(p.String(), "a@") {
		t.Fatalf("placement String = %q", p.String())
	}
}

func TestPlaceStrongPropagationSameOptimum(t *testing.T) {
	r := fabric.Homogeneous(5, 10).FullRegion()
	mods := []*module.Module{
		rectModule("a", 2, 2), rectModule("b", 3, 2), rectModule("c", 2, 3),
	}
	plain, err := New(r, Options{}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := New(r, Options{StrongPropagation: true}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Optimal || !strong.Optimal || plain.Height != strong.Height {
		t.Fatalf("optima differ: plain=%v strong=%v", plain, strong)
	}
	if err := strong.Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceBusRowsConstraint(t *testing.T) {
	r := fabric.Homogeneous(8, 12).FullRegion()
	mods := []*module.Module{
		rectModule("a", 3, 2), rectModule("b", 3, 2), rectModule("c", 2, 2),
	}
	res, err := New(r, Options{BusRows: []int{6}}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement with bus constraint")
	}
	for _, p := range res.Placements {
		b := p.Bounds()
		if !(b.MinY <= 6 && 6 < b.MaxY) {
			t.Fatalf("%v does not cross bus row 6", p)
		}
	}
	// An unreachable bus row makes everything infeasible at AddObject.
	if _, err := New(r, Options{BusRows: []int{100}}).Place(mods); err == nil {
		t.Fatal("unreachable bus row accepted")
	}
}

// TestPlaceHeterogeneousMatchesBruteForce cross-checks the CP optimum on
// small heterogeneous instances (BRAM column, polymorphic modules)
// against exhaustive enumeration over shapes × anchors.
func TestPlaceHeterogeneousMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		W := 5 + rng.Intn(2)
		H := 5 + rng.Intn(2)
		bramCol := 1 + rng.Intn(W-2)
		dev := fabric.NewDevice("bf", W, H, func(x, y int) fabric.Kind {
			if x == bramCol {
				return fabric.BRAM
			}
			return fabric.CLB
		})
		r := dev.FullRegion()

		n := 2 + rng.Intn(2)
		mods := make([]*module.Module, n)
		for i := 0; i < n; i++ {
			var shapes []*module.Shape
			if rng.Intn(2) == 0 {
				// CLB-only module with two bar alternatives.
				L := 2 + rng.Intn(2)
				var h, v []module.Tile
				for k := 0; k < L; k++ {
					h = append(h, module.Tile{At: grid.Pt(k, 0), Kind: fabric.CLB})
					v = append(v, module.Tile{At: grid.Pt(0, k), Kind: fabric.CLB})
				}
				shapes = []*module.Shape{module.MustShape(h), module.MustShape(v)}
			} else {
				// BRAM+CLB pair, left and right variants.
				l := []module.Tile{
					{At: grid.Pt(0, 0), Kind: fabric.BRAM},
					{At: grid.Pt(1, 0), Kind: fabric.CLB},
				}
				rt := []module.Tile{
					{At: grid.Pt(0, 0), Kind: fabric.CLB},
					{At: grid.Pt(1, 0), Kind: fabric.BRAM},
				}
				shapes = []*module.Shape{module.MustShape(l), module.MustShape(rt)}
			}
			mods[i] = module.MustModule(string(rune('a'+i)), shapes...)
		}

		res, err := New(r, Options{}).Place(mods)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForceShapes(r, mods)
		if res.Found != feasible {
			t.Fatalf("trial %d: found=%v brute=%v", trial, res.Found, feasible)
		}
		if res.Found {
			if err := res.Validate(r); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if res.Height != want {
				t.Fatalf("trial %d: CP height %d, brute force %d", trial, res.Height, want)
			}
		}
	}
}

// bruteForceShapes enumerates all (shape, anchor) combinations of all
// modules on a heterogeneous region.
func bruteForceShapes(r *fabric.Region, mods []*module.Module) (int, bool) {
	best := r.H() + 1
	occ := grid.NewBitmap(r.W(), r.H())
	var rec func(i, top int)
	rec = func(i, top int) {
		if top >= best {
			return
		}
		if i == len(mods) {
			best = top
			return
		}
		for si := 0; si < mods[i].NumShapes(); si++ {
			s := mods[i].Shape(si)
			va := ValidAnchors(r, s)
			for y := 0; y+s.H() <= r.H(); y++ {
				for x := 0; x+s.W() <= r.W(); x++ {
					if !va.Get(x, y) || occ.AnyAt(s.Points(), grid.Pt(x, y)) {
						continue
					}
					for _, p := range s.Points() {
						occ.Set(p.X+x, p.Y+y, true)
					}
					t2 := top
					if y+s.H() > t2 {
						t2 = y + s.H()
					}
					rec(i+1, t2)
					for _, p := range s.Points() {
						occ.Set(p.X+x, p.Y+y, false)
					}
				}
			}
		}
	}
	rec(0, 0)
	return best, best <= r.H()
}

// Property: on instances solved to proven optimality, adding design
// alternatives never increases the optimal height (the alternative set
// includes the original shape).
func TestPlaceAlternativesNeverWorseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		W := 6 + rng.Intn(3)
		H := 10 + rng.Intn(4)
		bramCol := 2 + rng.Intn(W-4)
		dev := fabric.NewDevice("prop", W, H, func(x, y int) fabric.Kind {
			if x == bramCol {
				return fabric.BRAM
			}
			return fabric.CLB
		})
		r := dev.FullRegion()
		n := 2 + rng.Intn(2)
		var mods []*module.Module
		ok := true
		for i := 0; i < n; i++ {
			d := module.Demand{CLB: 3 + rng.Intn(6)}
			if rng.Intn(3) == 0 {
				d.BRAM = 1
			}
			m, err := module.GenerateAlternatives(string(rune('a'+i)), d,
				module.AlternativeOptions{Count: 4})
			if err != nil {
				ok = false
				break
			}
			mods = append(mods, m)
		}
		if !ok {
			continue
		}
		p := New(r, Options{})
		with, err := p.Place(mods)
		if err != nil {
			continue // some alternative has no anchors on this tiny fabric
		}
		without, err := p.Place(workload.FirstShapesOnly(mods))
		if err != nil {
			continue
		}
		if !with.Optimal || !without.Optimal {
			t.Fatalf("trial %d: not proven optimal", trial)
		}
		if with.Found && without.Found && with.Height > without.Height {
			t.Fatalf("trial %d: alternatives worsened optimum %d > %d",
				trial, with.Height, without.Height)
		}
		if without.Found && !with.Found {
			t.Fatalf("trial %d: alternatives lost feasibility", trial)
		}
	}
}
