package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/workload"
)

// Row is one line of an ablation table.
type Row struct {
	Label string
	Arm   Arm
}

// FormatRows renders ablation rows as a table.
func FormatRows(title string, rows []Row) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-34s %-16s %-16s %-12s %s\n",
		"Configuration", "Mean Area Util.", "Mean Time", "Mean Height", "Failures")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-34s %5.1f%% ± %4.1f     %6.2fs ± %5.2f %8.1f     %d\n",
			r.Label, r.Arm.Util.Mean*100, r.Arm.Util.CI95()*100,
			r.Arm.Seconds.Mean, r.Arm.Seconds.CI95(), r.Arm.Height.Mean, r.Arm.Failures)
	}
	return sb.String()
}

// runArm executes the protocol for one configuration: per seeded run,
// generate modules via gen, place them with placerOpts on region, and
// aggregate. gen receives the run's rng.
func runArm(cfg RunConfig, label string, region *fabric.Region,
	placerOpts core.Options, gen func(*rand.Rand) ([]*module.Module, error)) (Arm, error) {

	arm := Arm{Name: label}
	var utils, secs, heights []float64
	shapes := 0
	placer := core.New(region, placerOpts)
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
		mods, err := gen(rng)
		if err != nil {
			return arm, fmt.Errorf("experiments: %s run %d: %w", label, run, err)
		}
		res, err := measure(placer, region, mods)
		if err != nil {
			return arm, fmt.Errorf("experiments: %s run %d: %w", label, run, err)
		}
		shapes += countShapes(mods)
		if !res.Found {
			arm.Failures++
			continue
		}
		utils = append(utils, res.Utilization)
		secs = append(secs, res.Elapsed.Seconds())
		heights = append(heights, float64(res.Height))
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s run %d/%d: %v\n", label, run+1, cfg.Runs, res)
		}
	}
	arm.Util = metrics.Summarize(utils)
	arm.Seconds = metrics.Summarize(secs)
	arm.Height = metrics.Summarize(heights)
	arm.Shapes = float64(shapes) / float64(cfg.Runs)
	return arm, nil
}

func (c RunConfig) placerOptions() core.Options {
	return core.Options{Timeout: c.Timeout, StallNodes: c.StallNodes, Workers: c.Workers, Presolve: c.Presolve}
}

// AlternativeCountSweep measures utilization and solve time as the
// number of design alternatives per module grows — the knob behind the
// paper's 53%→65% / 2.55s→10.82s trade-off.
func AlternativeCountSweep(cfg RunConfig, counts []int) ([]Row, error) {
	cfg = cfg.defaults()
	rows := make([]Row, 0, len(counts))
	for _, k := range counts {
		wl := cfg.Workload
		wl.Alternatives = k
		arm, err := runArm(cfg, fmt.Sprintf("%d alternatives", k), cfg.Region,
			cfg.placerOptions(), func(rng *rand.Rand) ([]*module.Module, error) {
				return workload.Generate(wl, rng)
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Label: arm.Name, Arm: arm})
	}
	return rows, nil
}

// HeterogeneitySweep places the same CLB-only workload on a homogeneous
// fabric and on the heterogeneous Table-I fabric of identical size: the
// dedicated-resource columns restrict placement and cost utilization,
// motivating the paper's heterogeneity-aware model.
func HeterogeneitySweep(cfg RunConfig) ([]Row, error) {
	cfg = cfg.defaults()
	wl := cfg.Workload
	wl.NoBRAM = true
	gen := func(rng *rand.Rand) ([]*module.Module, error) { return workload.Generate(wl, rng) }

	homo := fabric.Homogeneous(cfg.Region.W(), cfg.Region.H()).FullRegion()
	rows := make([]Row, 0, 2)
	armH, err := runArm(cfg, "homogeneous fabric", homo, cfg.placerOptions(), gen)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: armH.Name, Arm: armH})
	armX, err := runArm(cfg, "heterogeneous fabric", cfg.Region, cfg.placerOptions(), gen)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: armX.Name, Arm: armX})
	return rows, nil
}

// MaskedCLBPerBRAM is the logic-area cost of implementing one embedded
// memory block out of CLBs when dedicated resources are masked out
// ([9]-style relocatability), following the FPGA-vs-dedicated-block area
// gap reported by Kuon & Rose [2].
const MaskedCLBPerBRAM = 8

// MaskedResourcesComparison contrasts modules that use dedicated BRAM
// columns with [9]-style masked modules that avoid them (paying
// MaskedCLBPerBRAM extra CLBs per masked block): masking increases
// demand and leaves dedicated columns idle, which is the paper's case
// against it.
func MaskedResourcesComparison(cfg RunConfig) ([]Row, error) {
	cfg = cfg.defaults()
	wl := cfg.Workload.Defaults()

	drawDemands := func(rng *rand.Rand) []module.Demand {
		ds := make([]module.Demand, wl.NumModules)
		for i := range ds {
			ds[i] = module.Demand{
				CLB:  wl.CLBMin + rng.Intn(wl.CLBMax-wl.CLBMin+1),
				BRAM: wl.BRAMMin + rng.Intn(wl.BRAMMax-wl.BRAMMin+1),
			}
		}
		return ds
	}
	build := func(ds []module.Demand, mask bool) ([]*module.Module, error) {
		mods := make([]*module.Module, len(ds))
		for i, d := range ds {
			opts := module.AlternativeOptions{Count: wl.Alternatives}
			if mask {
				d = module.Demand{CLB: d.CLB + MaskedCLBPerBRAM*d.BRAM}
				// Masked modules can outgrow the fabric's CLB gaps; cap
				// the bounding-box width at the widest placeable body.
				if module.BalancedWidth(d) > 10 {
					opts.BaseWidth = 10
				}
			}
			m, err := module.GenerateAlternatives(fmt.Sprintf("m%02d", i), d, opts)
			if err != nil {
				return nil, err
			}
			mods[i] = m
		}
		return mods, nil
	}

	rows := make([]Row, 0, 2)
	native, err := runArm(cfg, "native (uses BRAM columns)", cfg.Region, cfg.placerOptions(),
		func(rng *rand.Rand) ([]*module.Module, error) { return build(drawDemands(rng), false) })
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: native.Name, Arm: native})
	masked, err := runArm(cfg, "masked [9] (CLB-only modules)", cfg.Region, cfg.placerOptions(),
		func(rng *rand.Rand) ([]*module.Module, error) { return build(drawDemands(rng), true) })
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: masked.Name, Arm: masked})
	return rows, nil
}

// StrategySweep compares the placer's branching strategies and value
// orderings on the Table-I workload.
func StrategySweep(cfg RunConfig) ([]Row, error) {
	cfg = cfg.defaults()
	gen := func(rng *rand.Rand) ([]*module.Module, error) {
		return workload.Generate(cfg.Workload, rng)
	}
	var rows []Row
	for _, s := range []core.Strategy{core.StrategyFirstFail, core.StrategyLargestFirst, core.StrategyInputOrder} {
		for _, v := range []core.ValueOrder{core.OrderBottomLeft, core.OrderLexicographic} {
			opts := cfg.placerOptions()
			opts.Strategy = s
			opts.ValueOrder = v
			label := s.String() + " / " + v.String()
			arm, err := runArm(cfg, label, cfg.Region, opts, gen)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Label: label, Arm: arm})
		}
	}
	return rows, nil
}

// BaselineComparison measures the heuristic placers against the CP
// placer on the Table-I workload, with design alternatives available to
// every contender.
func BaselineComparison(cfg RunConfig) ([]Row, error) {
	cfg = cfg.defaults()
	var rows []Row

	cpArm, err := runArm(cfg, "constraint programming", cfg.Region, cfg.placerOptions(),
		func(rng *rand.Rand) ([]*module.Module, error) {
			return workload.Generate(cfg.Workload, rng)
		})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Label: cpArm.Name, Arm: cpArm})

	for _, alg := range baseline.Algorithms() {
		arm := Arm{Name: alg.String()}
		var utils, secs, heights []float64
		for run := 0; run < cfg.Runs; run++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
			mods, err := workload.Generate(cfg.Workload, rng)
			if err != nil {
				return nil, err
			}
			res, err := baseline.Place(cfg.Region, mods, alg, baseline.Options{
				UseAlternatives: true,
				Seed:            cfg.Seed + int64(run),
			})
			if err != nil {
				return nil, err
			}
			if err := res.Validate(cfg.Region); err != nil {
				return nil, err
			}
			if !res.Found {
				arm.Failures++
				continue
			}
			utils = append(utils, res.Utilization)
			secs = append(secs, res.Elapsed.Seconds())
			heights = append(heights, float64(res.Height))
		}
		arm.Util = metrics.Summarize(utils)
		arm.Seconds = metrics.Summarize(secs)
		arm.Height = metrics.Summarize(heights)
		rows = append(rows, Row{Label: arm.Name, Arm: arm})
	}
	return rows, nil
}
