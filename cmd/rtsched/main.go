// Command rtsched plans a deterministic runtime-reconfiguration
// schedule: a partial region, a module library and a phase schedule go
// in; per-phase placements, switch costs over the configuration port,
// and the total reconfiguration overhead come out.
//
// Example:
//
//	rtsched -region region.spec -modules modules.spec -schedule sched.spec -persistent
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/recobus"
	"repro/internal/render"
	"repro/internal/rtsim"
)

func main() {
	var (
		regionPath   = flag.String("region", "", "partial-region description file (required)")
		modulesPath  = flag.String("modules", "", "module specification file (required)")
		schedulePath = flag.String("schedule", "", "phase schedule file (required)")
		persistent   = flag.Bool("persistent", false, "pin surviving modules across phase switches")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-phase optimisation budget")
		stall        = flag.Int64("stall", 2000, "per-phase convergence: nodes without improvement")
		floorplans   = flag.Bool("floorplans", false, "print per-phase floorplans")
	)
	flag.Parse()
	if *regionPath == "" || *modulesPath == "" || *schedulePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*regionPath, *modulesPath, *schedulePath, *persistent, *timeout, *stall, *floorplans); err != nil {
		fmt.Fprintln(os.Stderr, "rtsched:", err)
		os.Exit(1)
	}
}

func run(regionPath, modulesPath, schedulePath string, persistent bool, timeout time.Duration, stall int64, floorplans bool) error {
	regionFile, err := os.Open(regionPath)
	if err != nil {
		return err
	}
	defer regionFile.Close()
	modulesFile, err := os.Open(modulesPath)
	if err != nil {
		return err
	}
	defer modulesFile.Close()
	flow, err := recobus.LoadFlow(regionFile, modulesFile)
	if err != nil {
		return err
	}

	scheduleFile, err := os.Open(schedulePath)
	if err != nil {
		return err
	}
	defer scheduleFile.Close()
	phases, err := rtsim.ParseSchedule(scheduleFile, rtsim.Library(flow.Modules))
	if err != nil {
		return err
	}

	tl, err := rtsim.Plan(flow.Region, phases, rtsim.Options{
		Placer: core.Options{
			Timeout:    timeout,
			StallNodes: stall,
			BusRows:    flow.Spec.BusRows,
		},
		FrameModel: flow.FrameModel,
		Persistent: persistent,
	})
	if err != nil {
		return err
	}
	fmt.Print(tl)
	if floorplans {
		for _, p := range tl.Plans {
			fmt.Printf("\n-- %s --\n%s\n", p.Phase.Name,
				render.Placements(flow.Region, p.Result.Placements))
		}
	}
	return nil
}
