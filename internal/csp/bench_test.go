package csp

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// BenchmarkQueensFirstSolution measures raw search machinery throughput:
// time to the first solution of 12-queens.
func BenchmarkQueensFirstSolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := NewStore()
		q := postQueens(st, 12)
		res, err := Solve(st, q, Options{MaxSolutions: 1}, func(*Store) bool { return true })
		if err != nil || res.Solutions != 1 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkQueensCountAll measures full-tree exploration: all 92
// solutions of 8-queens.
func BenchmarkQueensCountAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := NewStore()
		q := postQueens(st, 8)
		res, err := Solve(st, q, Options{}, func(*Store) bool { return true })
		if err != nil || res.Solutions != 92 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkSearch is the observability acceptance benchmark: a full
// 8-queens enumeration with recording disabled. Its allocation count
// must not move when instrumentation is added — all event emission is
// gated on a nil recorder check.
func BenchmarkSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := NewStore()
		q := postQueens(st, 8)
		res, err := Solve(st, q, Options{}, func(*Store) bool { return true })
		if err != nil || res.Solutions != 92 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkSearchTraced is the same workload with a Stats recorder
// attached, quantifying the cost of turning recording on.
func BenchmarkSearchTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := NewStore()
		q := postQueens(st, 8)
		rec := obs.NewStats(obs.NewRegistry())
		res, err := Solve(st, q, Options{Recorder: rec}, func(*Store) bool { return true })
		if err != nil || res.Solutions != 92 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkSearchParallel measures branch-and-bound scaling over the
// worker count on a fixed constrained-minimization instance. The
// workers=1 case still goes through MinimizeParallel (split + one
// worker goroutine), so comparing it against the higher counts
// isolates parallel speedup from the parallel machinery's overhead.
// Results feed the worker-scaling table in EXPERIMENTS.md.
func BenchmarkSearchParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, vars, obj := randomInstance(7, 12)
				res, err := MinimizeParallel(st, vars, obj,
					Options{Workers: workers, SplitDepth: 2}, nil)
				if err != nil || !res.Found || !res.Optimal {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
}

func BenchmarkDomainClone(b *testing.B) {
	d := NewDomainRange(0, 17279) // a Table-I-scale placement domain
	d.Filter(func(v int) bool { return v%3 != 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Clone()
	}
}

func BenchmarkDomainFilter(b *testing.B) {
	base := NewDomainRange(0, 17279)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		d.Filter(func(v int) bool { return v&7 != 3 })
	}
}

func BenchmarkDomainForEach(b *testing.B) {
	d := NewDomainRange(0, 17279)
	d.Filter(func(v int) bool { return v%5 == 0 })
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		d.ForEach(func(int) bool { n++; return true })
	}
	_ = n
}

func BenchmarkPushPop(b *testing.B) {
	st := NewStore()
	vars := make([]*Var, 30)
	for i := range vars {
		vars[i] = st.NewVarRange("v", 0, 4000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Push()
		for _, v := range vars {
			if err := st.SetMax(v, 2000); err != nil {
				b.Fatal(err)
			}
		}
		st.Pop()
	}
}
