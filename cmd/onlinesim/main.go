// Command onlinesim runs the online placement simulator: a seeded task
// stream is served on a device by each space-management policy, and the
// resulting service levels, utilization and fragmentation are compared.
//
// Examples:
//
//	onlinesim -device virtex4-like-72x60 -tasks 200
//	onlinesim -region region.spec -manager first-fit+alternatives
//	onlinesim -manager first-fit+cp-replan -metrics -
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/recobus"
)

// cliOpts carries the parsed command line into run.
type cliOpts struct {
	device     string
	regionPath string
	tasks      int
	seed       int64
	interarr   int
	duration   int
	clbMin     int
	clbMax     int
	bramMax    int
	manager    string
	workers    int
	obs        obs.Config
}

func main() {
	var o cliOpts
	flag.StringVar(&o.device, "device", "virtex4-like-72x60", "predefined device name")
	flag.StringVar(&o.regionPath, "region", "", "partial-region description file (overrides -device)")
	flag.IntVar(&o.tasks, "tasks", 200, "number of task arrivals")
	flag.Int64Var(&o.seed, "seed", 1, "stream seed")
	flag.IntVar(&o.interarr, "interarrival", 2, "mean inter-arrival time")
	flag.IntVar(&o.duration, "duration", 120, "mean task residency")
	flag.IntVar(&o.clbMin, "clbmin", 10, "minimum CLB demand per task")
	flag.IntVar(&o.clbMax, "clbmax", 60, "maximum CLB demand per task")
	flag.IntVar(&o.bramMax, "brammax", 3, "maximum BRAM demand per task")
	flag.StringVar(&o.manager, "manager", "", "run only this manager (default: all)")
	flag.IntVar(&o.workers, "workers", 1, "parallel search goroutines for CP replanning (>1 enables parallel branch-and-bound)")
	flag.StringVar(&o.obs.TracePath, "trace", "", "write the solver JSONL event trace to this file (- for stdout)")
	flag.StringVar(&o.obs.MetricsPath, "metrics", "", "dump metrics at exit: - for a summary table, a path for Prometheus text format")
	flag.StringVar(&o.obs.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.obs.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&o.obs.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "onlinesim:", err)
		os.Exit(1)
	}
}

func run(o cliOpts) (err error) {
	var region *fabric.Region
	if o.regionPath != "" {
		f, err := os.Open(o.regionPath)
		if err != nil {
			return err
		}
		defer f.Close()
		spec, err := recobus.ParseRegion(f)
		if err != nil {
			return err
		}
		region, err = spec.Build()
		if err != nil {
			return err
		}
	} else {
		dev, err := fabric.ByName(o.device)
		if err != nil {
			return err
		}
		region = dev.FullRegion()
	}

	stream := online.StreamConfig{
		Tasks:            o.tasks,
		MeanInterarrival: o.interarr,
		MeanDuration:     o.duration,
	}
	stream.Library.CLBMin, stream.Library.CLBMax = o.clbMin, o.clbMax
	stream.Library.BRAMMax = o.bramMax
	stream.Library.NoBRAM = o.bramMax == 0
	stream.Library.Alternatives = 4
	stream.Library.NumModules = 1

	ts, err := online.GenerateStream(stream, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return err
	}
	session, err := obs.Start(o.obs)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); err == nil {
			err = cerr
		}
	}()

	fmt.Printf("region %s (%dx%d), %d arrivals\n\n",
		region.Device().Name(), region.W(), region.H(), len(ts))

	managers := online.Managers()
	// The CP-replan manager is expensive (one constraint solve per
	// rejection), so it only runs when explicitly requested.
	if o.manager == "first-fit+cp-replan" {
		managers = append(managers, &online.ReplanFirstFit{
			FirstFit: online.FirstFit{UseAlternatives: true},
			Budget:   core.Options{Workers: o.workers, Recorder: session.Recorder, Metrics: session.Registry},
			Metrics:  session.Registry,
		})
	}
	ran := false
	for _, mgr := range managers {
		if o.manager != "" && mgr.Name() != o.manager {
			continue
		}
		st, err := online.SimulateObserved(region, mgr, ts, fabric.DefaultFrameModel(), session.Registry)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %v\n", mgr.Name(), st)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown manager %q", o.manager)
	}
	return nil
}
