package regionplan

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

func clbModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

func TestPlanFindsMinimalRegion(t *testing.T) {
	dev := fabric.Homogeneous(32, 32)
	mods := []*module.Module{
		clbModule("a", 4, 4), clbModule("b", 4, 4),
	}
	best, tried, err := Plan(dev, mods, Options{Step: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Two 4x4 modules fit in 8x4 = 32 tiles: the smallest step-4 area.
	if best.Rect.Area() != 32 {
		t.Fatalf("best area = %d (%v), want 32", best.Rect.Area(), best.Rect)
	}
	if !best.Result.Found {
		t.Fatal("winner without placement")
	}
	if err := best.Result.Validate(dev.Region(best.Rect)); err != nil {
		t.Fatal(err)
	}
	if len(tried) == 0 {
		t.Fatal("no candidates recorded")
	}
}

func TestPlanHeterogeneousCoversBRAM(t *testing.T) {
	// Only column 20 has BRAM: the chosen region must include it.
	dev := fabric.NewDevice("one-bram", 32, 16, func(x, y int) fabric.Kind {
		if x == 20 {
			return fabric.BRAM
		}
		return fabric.CLB
	})
	m := module.MustModule("mem", module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.BRAM},
		{At: grid.Pt(1, 0), Kind: fabric.CLB},
	}))
	best, _, err := Plan(dev, []*module.Module{m}, Options{Step: 4})
	if err != nil {
		t.Fatal(err)
	}
	if best.Rect.MinX > 20 || best.Rect.MaxX <= 20 {
		t.Fatalf("region %v misses the BRAM column at x=20", best.Rect)
	}
}

func TestPlanCapacityPruning(t *testing.T) {
	// A module set demanding more BRAM than the device has must fail
	// without burning the attempt budget on placements.
	dev := fabric.Homogeneous(16, 16)
	m := module.MustModule("mem", module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.BRAM},
	}))
	_, tried, err := Plan(dev, []*module.Module{m}, Options{Step: 4, MaxAttempts: 5})
	if err == nil {
		t.Fatal("BRAM demand on BRAM-free device accepted")
	}
	if len(tried) != 0 {
		t.Fatalf("capacity filter leaked %d placement attempts", len(tried))
	}
}

func TestPlanAttemptBudget(t *testing.T) {
	// Jointly infeasible set: every candidate fails; the budget stops it.
	dev := fabric.Homogeneous(8, 8)
	mods := []*module.Module{
		clbModule("a", 8, 5), clbModule("b", 8, 5),
	}
	_, tried, err := Plan(dev, mods, Options{Step: 4, MaxAttempts: 3,
		Placer: core.Options{Timeout: 2 * time.Second}})
	if err == nil {
		t.Fatal("infeasible set accepted")
	}
	if len(tried) > 3 {
		t.Fatalf("attempt budget exceeded: %d", len(tried))
	}
}

func TestPlanEmptyModules(t *testing.T) {
	if _, _, err := Plan(fabric.Homogeneous(4, 4), nil, Options{}); err == nil {
		t.Fatal("empty module set accepted")
	}
}

func TestPlanSmallestAreaFirst(t *testing.T) {
	dev := fabric.Homogeneous(24, 24)
	mods := []*module.Module{clbModule("a", 3, 3)}
	best, _, err := Plan(dev, mods, Options{Step: 4})
	if err != nil {
		t.Fatal(err)
	}
	if best.Rect.W() != 4 || best.Rect.H() != 4 {
		t.Fatalf("best rect %v, want 4x4", best.Rect)
	}
}
