package atomicsafe

// refresh lives in a different file from Miss: the atomic set is
// package-wide, so a plain write here is still caught.
func (s *stats) refresh() {
	s.miss = 0 // want `plain access to s\.miss`
}

// HitTotal is fine from any file: hits stays fully atomic.
func (s *stats) HitTotal() int64 {
	return s.Hits()
}
