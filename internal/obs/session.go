package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Config is the command-line observability surface shared by the cmd/
// tools: where to write the JSONL trace and the metrics dump, and the
// standard Go profiling hooks.
type Config struct {
	// TracePath receives the JSONL event stream ("" disables, "-" means
	// stdout).
	TracePath string
	// MetricsPath receives the metrics at Close: the human-readable
	// summary table when "-" (stdout), the Prometheus text exposition
	// when a file path ("" disables).
	MetricsPath string
	// CPUProfile / MemProfile are pprof profile output paths.
	CPUProfile string
	MemProfile string
	// PprofAddr, when non-empty, serves net/http/pprof on this address
	// for the lifetime of the process.
	PprofAddr string
}

// Enabled reports whether any observability output was requested.
func (c Config) Enabled() bool {
	return c.TracePath != "" || c.MetricsPath != "" || c.CPUProfile != "" ||
		c.MemProfile != "" || c.PprofAddr != ""
}

// Session is the live observability state of one command run. Recorder
// and Registry are nil when the corresponding output is disabled, so
// they can be passed straight into solver options (whose emission sites
// are nil-guarded).
type Session struct {
	// Recorder receives solver events (nil when tracing and metrics are
	// both off).
	Recorder Recorder
	// Registry aggregates metrics (nil when -metrics is off).
	Registry *Registry

	jsonl     *JSONL
	traceFile *os.File
	metrics   string
	cpuFile   *os.File
	memPath   string
}

// Start opens the sinks and profiling hooks described by cfg. Always
// Close the session (even on error paths of the surrounding command) to
// flush traces and write profiles.
func Start(cfg Config) (*Session, error) {
	s := &Session{metrics: cfg.MetricsPath, memPath: cfg.MemProfile}
	if cfg.MetricsPath != "" {
		s.Registry = NewRegistry()
	}
	if cfg.TracePath != "" {
		w := os.Stdout
		if cfg.TracePath != "-" {
			f, err := os.Create(cfg.TracePath)
			if err != nil {
				return nil, fmt.Errorf("obs: trace: %w", err)
			}
			s.traceFile = f
			w = f
		}
		s.jsonl = NewJSONL(w)
	}
	var stats *Stats
	if s.Registry != nil {
		stats = NewStats(s.Registry)
	}
	if s.jsonl != nil && stats != nil {
		s.Recorder = Multi{s.jsonl, stats}
	} else if s.jsonl != nil {
		s.Recorder = s.jsonl
	} else if stats != nil {
		s.Recorder = stats
	}

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		s.cpuFile = f
	}
	if cfg.PprofAddr != "" {
		//solverlint:allow goroleak process-lifetime pprof listener: debug-only server with no shutdown path by design
		go func() {
			// The server lives for the process; an unusable address is
			// reported but not fatal.
			if err := http.ListenAndServe(cfg.PprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obs: pprof server:", err)
			}
		}()
	}
	return s, nil
}

// Close flushes the trace, dumps metrics, and finalises profiles.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.jsonl != nil {
		keep(s.jsonl.Flush())
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
	}
	if s.Registry != nil && s.metrics != "" {
		if s.metrics == "-" {
			keep(s.Registry.WriteSummary(os.Stdout))
		} else {
			f, err := os.Create(s.metrics)
			if err != nil {
				keep(err)
			} else {
				keep(s.Registry.WritePrometheus(f))
				keep(f.Close())
			}
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // get up-to-date heap statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return firstErr
}
