package module

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func lShape() *Shape {
	// cc
	// c.
	return MustShape([]Tile{
		{grid.Pt(0, 0), fabric.CLB},
		{grid.Pt(0, 1), fabric.CLB},
		{grid.Pt(1, 1), fabric.CLB},
	})
}

func TestNewShapeValidation(t *testing.T) {
	if _, err := NewShape(nil); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := NewShape([]Tile{{grid.Pt(0, 0), fabric.Static}}); err == nil {
		t.Error("Static tile accepted")
	}
	if _, err := NewShape([]Tile{{grid.Pt(0, 0), fabric.IOB}}); err == nil {
		t.Error("IOB tile accepted")
	}
	if _, err := NewShape([]Tile{
		{grid.Pt(1, 1), fabric.CLB},
		{grid.Pt(1, 1), fabric.BRAM},
	}); err == nil {
		t.Error("duplicate coordinate accepted")
	}
}

func TestShapeNormalisation(t *testing.T) {
	s := MustShape([]Tile{
		{grid.Pt(5, 7), fabric.CLB},
		{grid.Pt(6, 7), fabric.BRAM},
		{grid.Pt(5, 8), fabric.CLB},
	})
	if s.Bounds().MinX != 0 || s.Bounds().MinY != 0 {
		t.Fatalf("not normalised: %v", s.Bounds())
	}
	if s.W() != 2 || s.H() != 2 || s.Size() != 3 {
		t.Fatalf("geometry wrong: %dx%d size %d", s.W(), s.H(), s.Size())
	}
	// Same tiles expressed at a different offset give an equal shape.
	s2 := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.CLB},
		{grid.Pt(1, 0), fabric.BRAM},
		{grid.Pt(0, 1), fabric.CLB},
	})
	if !s.Equal(s2) {
		t.Fatal("translation changed shape identity")
	}
	if s.Key() != s2.Key() {
		t.Fatal("keys differ for equal shapes")
	}
}

func TestShapeAccessors(t *testing.T) {
	s := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.BRAM},
		{grid.Pt(1, 0), fabric.CLB},
		{grid.Pt(2, 0), fabric.CLB},
	})
	h := s.Histogram()
	if h[fabric.BRAM] != 1 || h[fabric.CLB] != 2 {
		t.Fatalf("histogram %v", h)
	}
	brams := s.TilesOfKind(fabric.BRAM)
	if len(brams) != 1 || brams[0] != grid.Pt(0, 0) {
		t.Fatalf("TilesOfKind(BRAM) = %v", brams)
	}
	if got := len(s.TilesOfKind(fabric.DSP)); got != 0 {
		t.Fatalf("TilesOfKind(DSP) = %d entries", got)
	}
	pts := s.Points()
	if len(pts) != 3 || pts[0] != grid.Pt(0, 0) || pts[2] != grid.Pt(2, 0) {
		t.Fatalf("Points = %v", pts)
	}
}

func TestShapeTransformPreservesKinds(t *testing.T) {
	s := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.BRAM},
		{grid.Pt(1, 0), fabric.CLB},
		{grid.Pt(1, 1), fabric.CLB},
	})
	r := s.Transform(grid.Rot180)
	if r.Size() != s.Size() {
		t.Fatal("transform changed size")
	}
	if r.Histogram() != s.Histogram() {
		t.Fatal("transform changed histogram")
	}
	// BRAM at (0,0) maps under rot180 within the 2x2 normalised box to
	// (1,1).
	brams := r.TilesOfKind(fabric.BRAM)
	if len(brams) != 1 || brams[0] != grid.Pt(1, 1) {
		t.Fatalf("rot180 BRAM position = %v, want (1,1)", brams)
	}
}

func TestShapeTransformRoundTrip(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a deterministic pseudo-random small shape from seed.
		tiles := []Tile{{grid.Pt(0, 0), fabric.CLB}}
		x, y := 0, 0
		v := int(seed)
		for i := 0; i < 6; i++ {
			if v&1 == 0 {
				x++
			} else {
				y++
			}
			v >>= 1
			k := fabric.CLB
			if i == 3 {
				k = fabric.BRAM
			}
			tiles = append(tiles, Tile{grid.Pt(x, y), k})
		}
		s, err := NewShape(tiles)
		if err != nil {
			return true // duplicate walk positions: skip
		}
		return s.Transform(grid.Rot180).Transform(grid.Rot180).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShapeString(t *testing.T) {
	want := "cc\nc."
	if got := lShape().String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestShapeStringNonRect(t *testing.T) {
	s := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.BRAM},
		{grid.Pt(1, 0), fabric.CLB},
	})
	if got := s.String(); got != "bc" {
		t.Fatalf("String = %q, want \"bc\"", got)
	}
}
