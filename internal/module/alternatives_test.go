package module

import (
	"testing"

	"repro/internal/fabric"
)

func TestGenerateAlternativesDefault(t *testing.T) {
	d := Demand{CLB: 30, BRAM: 2}
	m, err := GenerateAlternatives("m0", d, AlternativeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShapes() != 4 {
		t.Fatalf("NumShapes = %d, want 4 (paper default)", m.NumShapes())
	}
	// Every alternative consumes exactly the demanded resources.
	for i, s := range m.Shapes() {
		if s.Histogram() != d.Histogram() {
			t.Errorf("shape %d histogram %v != demand %v", i, s.Histogram(), d.Histogram())
		}
	}
	// All alternatives are distinct layouts.
	seen := map[string]bool{}
	for _, s := range m.Shapes() {
		if seen[s.Key()] {
			t.Error("duplicate shape survived dedup")
		}
		seen[s.Key()] = true
	}
}

func TestGenerateAlternativesCanonicalOrder(t *testing.T) {
	d := Demand{CLB: 30, BRAM: 2}
	m, err := GenerateAlternatives("m0", d, AlternativeOptions{Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := m.Shape(0)
	// Shape 1 is the 180° rotation of the base layout.
	if !m.Shape(1).Equal(base.Transform180()) {
		t.Error("shape 1 is not rot180 of base")
	}
	// Shape 2 keeps the bounding box but moves the BRAM column: an
	// internal-layout variant.
	if m.Shape(2).Bounds() != base.Bounds() {
		t.Errorf("internal variant changed bounds: %v vs %v", m.Shape(2).Bounds(), base.Bounds())
	}
	// Shape 3 has a different bounding box: an external-layout variant.
	if m.Shape(3).Bounds() == base.Bounds() {
		t.Error("external variant kept the bounding box")
	}
}

func TestGenerateAlternativesCounts(t *testing.T) {
	d := Demand{CLB: 25, BRAM: 1}
	for _, count := range []int{1, 2, 4, 8} {
		m, err := GenerateAlternatives("m", d, AlternativeOptions{Count: count})
		if err != nil {
			t.Fatal(err)
		}
		if m.NumShapes() > count {
			t.Errorf("Count=%d yielded %d shapes", count, m.NumShapes())
		}
		if m.NumShapes() == 0 {
			t.Errorf("Count=%d yielded no shapes", count)
		}
	}
	if _, err := GenerateAlternatives("m", d, AlternativeOptions{Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestGenerateAlternativesNoRotation(t *testing.T) {
	d := Demand{CLB: 9, BRAM: 1}
	m, err := GenerateAlternatives("m", d, AlternativeOptions{Count: 8, NoRotation: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range m.Shapes() {
		for j, o := range m.Shapes() {
			if i < j && s.Transform180().Equal(o) {
				// Rotated pairs can still coincide by symmetry, but for
				// this demand the synthesised layouts are asymmetric; a
				// rotated duplicate means rotation slipped in.
				t.Errorf("shapes %d and %d are rotations of each other", i, j)
			}
		}
	}
}

func TestGenerateAlternativesCLBOnly(t *testing.T) {
	// CLB-only demands still produce distinct alternatives via uneven
	// column fill and width changes.
	m, err := GenerateAlternatives("m", Demand{CLB: 23}, AlternativeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShapes() < 2 {
		t.Fatalf("CLB-only module has %d shapes, want >= 2", m.NumShapes())
	}
}

func TestGenerateAlternativesErrors(t *testing.T) {
	if _, err := GenerateAlternatives("m", Demand{}, AlternativeOptions{}); err == nil {
		t.Error("empty demand accepted")
	}
	if _, err := GenerateAlternatives("m", Demand{CLB: -2}, AlternativeOptions{}); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestGenerateAlternativesBaseWidthOverride(t *testing.T) {
	m, err := GenerateAlternatives("m", Demand{CLB: 24, BRAM: 1},
		AlternativeOptions{Count: 1, BaseWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shape(0).W(); got != 3 {
		t.Fatalf("base width = %d, want 3", got)
	}
	_ = fabric.CLB
}
