package module

import (
	"fmt"

	"repro/internal/grid"
)

// AlternativeOptions controls design-alternative generation for a
// module. The defaults reproduce the paper's Section V configuration:
// four shapes per module — a base layout, its 180° rotation, an
// internal-layout variant (dedicated resources on the other side of the
// same bounding box), and an external-layout variant (different bounding
// box).
type AlternativeOptions struct {
	// Count is the number of alternatives to emit (≥ 1). Duplicates
	// arising from symmetric layouts are dropped, so the result may be
	// shorter than Count.
	Count int
	// BaseWidth overrides the balanced bounding-box width (0 = auto).
	BaseWidth int
	// WidthDeltas are bounding-box width changes used to derive
	// external-layout variants, tried in order. Defaults to +1, -1, +2.
	WidthDeltas []int
	// NoRotation suppresses 180° rotation variants; modules whose state
	// layout forbids rotation set this.
	NoRotation bool
}

func (o AlternativeOptions) withDefaults() AlternativeOptions {
	if o.Count == 0 {
		o.Count = 4
	}
	if len(o.WidthDeltas) == 0 {
		o.WidthDeltas = []int{1, -1, 2}
	}
	return o
}

// GenerateAlternatives builds a module named name realising demand d
// with up to opts.Count design alternatives. The generation order is the
// paper's recipe:
//
//  1. base layout (dedicated columns left, balanced width);
//  2. base rotated 180°;
//  3. internal variant (dedicated columns right — same bounding box,
//     different internal resource positions);
//  4. external variants (wider/narrower bounding box), then their
//     rotations, until Count shapes are collected.
//
// All returned shapes consume exactly the same resources; the paper
// permits unequal demands across alternatives, and callers wanting that
// can assemble a Module from individually synthesised shapes instead.
func GenerateAlternatives(name string, d Demand, opts AlternativeOptions) (*Module, error) {
	opts = opts.withDefaults()
	if opts.Count < 1 {
		return nil, fmt.Errorf("module %s: alternative count %d < 1", name, opts.Count)
	}
	w := opts.BaseWidth
	if w == 0 {
		w = BalancedWidth(d)
	}
	base, err := Synthesize(d, w, DedicatedLeft)
	if err != nil {
		return nil, fmt.Errorf("module %s: %w", name, err)
	}

	// Assemble candidates so the paper's four canonical variants come
	// first: base, rot180(base), internal (other side, same bounding
	// box), external (different bounding box). Further externals and the
	// rotations of the non-base layouts follow for callers requesting
	// more than four alternatives.
	rot := func(s *Shape) *Shape { return s.Transform(grid.Rot180) }
	candidates := []*Shape{base}
	if !opts.NoRotation {
		candidates = append(candidates, rot(base))
	}
	internal, internalErr := Synthesize(d, w, DedicatedRight)
	if internalErr == nil {
		candidates = append(candidates, internal)
	}
	var externals []*Shape
	for _, delta := range opts.WidthDeltas {
		ew := w + delta
		if ew < 1 || ew == w {
			continue
		}
		for _, side := range []Side{DedicatedLeft, DedicatedRight} {
			if ext, err := Synthesize(d, ew, side); err == nil {
				externals = append(externals, ext)
			}
		}
	}
	if len(externals) > 0 {
		candidates = append(candidates, externals[0])
	}
	if !opts.NoRotation && internalErr == nil {
		candidates = append(candidates, rot(internal))
	}
	for i, ext := range externals {
		if i > 0 {
			candidates = append(candidates, ext)
		}
		if !opts.NoRotation {
			candidates = append(candidates, rot(ext))
		}
	}

	m := &Module{name: name}
	for _, s := range candidates {
		if len(m.shapes) == opts.Count {
			break
		}
		m.addShape(s)
	}
	if len(m.shapes) == 0 {
		return nil, fmt.Errorf("module %s: no shapes generated", name)
	}
	return m, nil
}
