// Package presolve implements optimality-preserving root-node
// reductions for the placement model built by internal/core on the
// geost kernel. Exact branch-and-bound over design alternatives is the
// paper's headline cost (Table I: enabling alternatives grows the
// solve time roughly fourfold), yet the raw model still explores
// subtrees that exact FPGA floorplanners routinely prune. Four
// techniques run before search, each provably unable to change the
// optimal occupied height:
//
//   - Dominance elimination: a design alternative whose tiles are
//     pointwise covered by a sibling alternative that is placeable at
//     every anchor the dominated one is can be dropped — any solution
//     using the dominated shape maps, anchor for anchor, to one using
//     the dominator with the same or lower top row.
//
//   - Symmetry breaking: interchangeable objects (identical
//     sid-aligned shape lists and identical placement domains) are
//     chained with lex-ordering constraints on their placement values,
//     so the search visits one representative per permutation class
//     instead of all k! relabelings.
//
//   - Lower-bound strengthening: rows of a shape occupying more than
//     half the region width cannot share a fabric row with another
//     object's wide row (pigeonhole), so the height objective's lower
//     bound is raised to the total over objects of their cheapest
//     alternative's wide-row count. This composes with the geost
//     capacity bound, which presolve re-propagates after dominance
//     tightens the per-object minimum demand.
//
//   - Warm start: a small portfolio of best-fit-decreasing passes over
//     the pruned placement domains (plus a local top-row descent)
//     produces a feasible placement. The caller clips the height
//     domain at its objective (non-strict, so equal-height optima
//     survive) and guides the first dive to it with
//     csp.PreferValues, making the heuristic placement the search's
//     first incumbent after a backtrack-free dive.
//
// The pipeline preserves the optimal objective and feasibility; it may
// change which of several optimal placements the solver reports (and
// with it the reported utilization, which is a property of the chosen
// placement, not of the objective).
package presolve

import (
	"sort"

	"repro/internal/csp"
	"repro/internal/geost"
)

// Stats reports what each presolve technique achieved on one model.
type Stats struct {
	// AlternativesDropped counts design alternatives removed from
	// placement domains by dominance elimination.
	AlternativesDropped int
	// Groups counts the interchangeable-object groups of size >= 2
	// found by symmetry detection.
	Groups int
	// ModulesOrdered counts the lex-ordering constraints posted (one
	// per object constrained relative to its group predecessor).
	ModulesOrdered int
	// BoundDelta is how many rows the height lower bound rose over the
	// whole pipeline (dominance-tightened capacity reasoning plus the
	// wide-row disjunctive bound).
	BoundDelta int
	// WarmFound reports whether the warm-start heuristic completed a
	// placement.
	WarmFound bool
	// WarmObjective is the occupied height of the warm placement
	// (meaningful only when WarmFound).
	WarmObjective int
	// WarmValues holds the warm placement: one encoded placement value
	// per kernel object, in object order (nil unless WarmFound).
	WarmValues []int
}

// Apply runs the presolve pipeline on the model rooted at st: the
// kernel's objects with their placement domains, and the height
// objective posted by PostHeightObjective. It must run before search,
// on a store with no search decisions applied; the domain prunings and
// lex constraints it installs are permanent (they are root-node
// deductions, not search state). On csp.ErrInconsistent the instance
// is provably infeasible and the caller can skip the search outright.
func Apply(st *csp.Store, k *geost.Kernel, height *csp.Var) (*Stats, error) {
	stats := &Stats{}
	if err := st.Propagate(); err != nil {
		return stats, err
	}
	base := height.Min()
	if err := dominance(st, k, stats); err != nil {
		return stats, err
	}
	if stats.AlternativesDropped > 0 {
		// Re-run the capacity bound (and anything else watching the
		// pruned domains) now that the per-object minimum demand may
		// have grown.
		if err := st.Propagate(); err != nil {
			return stats, err
		}
	}
	if err := strengthenBound(st, k, height); err != nil {
		return stats, err
	}
	stats.BoundDelta = height.Min() - base
	// Warm start runs before symmetry posts its lex constraints so the
	// heuristic sees the full (dominance-pruned) domains; the warm
	// values are then canonicalized against the posted orderings —
	// interchangeable objects can swap placements freely, so sorting
	// each group's values into chain order keeps the placement
	// geometrically identical while making it a solution of the
	// constrained model, which is what lets the search's first guided
	// dive reach it without backtracking.
	warmStart(k, stats)
	groups := symmetry(st, k, stats)
	if stats.WarmFound {
		for _, g := range groups {
			vals := make([]int, len(g))
			for gi, idx := range g {
				vals[gi] = stats.WarmValues[idx]
			}
			sort.Ints(vals)
			for gi, idx := range g {
				stats.WarmValues[idx] = vals[gi]
			}
		}
	}
	return stats, nil
}
