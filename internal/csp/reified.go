package csp

import "fmt"

// channelEq implements b ⇔ (x = v): the 0/1 variable b is 1 exactly when
// x takes value v. It gives models a building block for counting and
// conditional constraints (see the magic-series test for the canonical
// use together with Sum).
type channelEq struct {
	b, x *Var
	v    int
}

// ChannelEq posts b ⇔ (x = v), with b a 0/1 variable. It panics if b's
// initial domain extends beyond {0, 1}: a wider domain is a modelling
// bug, not a runtime condition.
func ChannelEq(st *Store, b, x *Var, v int) {
	if b.Min() < 0 || b.Max() > 1 {
		panic(fmt.Sprintf("csp: ChannelEq boolean %s has domain %v", b.Name(), b.Domain()))
	}
	st.Post(&channelEq{b: b, x: x, v: v}, b, x)
}

// Name implements Named.
func (p *channelEq) Name() string { return "csp.channel-eq" }

// CloneFor implements Clonable.
func (p *channelEq) CloneFor(ctx *CloneCtx) Propagator {
	return &channelEq{b: ctx.Var(p.b), x: ctx.Var(p.x), v: p.v}
}

func (p *channelEq) Propagate(st *Store) error {
	// x decided relative to v ⇒ b decided.
	if !p.x.Domain().Contains(p.v) {
		if err := st.Assign(p.b, 0); err != nil {
			return err
		}
	} else if xv, ok := p.x.Domain().Singleton(); ok && xv == p.v {
		if err := st.Assign(p.b, 1); err != nil {
			return err
		}
	}
	// b decided ⇒ x constrained.
	if bv, ok := p.b.Domain().Singleton(); ok {
		if bv == 1 {
			return st.Assign(p.x, p.v)
		}
		return st.Remove(p.x, p.v)
	}
	return nil
}

// Count posts total = |{i : vars[i] = v}| via one boolean channel per
// variable plus a sum — the occurrence-counting constraint used by
// magic-series-style models. It panics when vars is empty: counting
// occurrences over nothing is a modelling bug.
func Count(st *Store, total *Var, v int, vars ...*Var) {
	if len(vars) == 0 {
		panic("csp: Count over no variables")
	}
	bs := make([]*Var, len(vars))
	for i, x := range vars {
		b := st.NewVarRange(fmt.Sprintf("cnt(%s=%d)", x.Name(), v), 0, 1)
		ChannelEq(st, b, x, v)
		bs[i] = b
	}
	Sum(st, total, bs...)
}
