// Package client is the placement service's HTTP client: a thin,
// dependency-free wrapper around net/http that knows which failures
// are worth retrying and which are not.
//
// The retry policy is deliberately narrow. A request is retried only
// when the service never accepted responsibility for it:
//
//   - 429 Too Many Requests — shed by admission control; the body was
//     never dequeued, so resubmitting is safe and expected.
//   - 503 Service Unavailable — draining or not yet serving.
//   - transport errors where no response arrived (connection refused,
//     reset before status line).
//
// Everything else is returned to the caller on the first attempt. In
// particular 504 (the solve ran and missed its deadline) and 500 (the
// solve ran and failed) are NOT retried: the server may have spent
// seconds of solver time on the attempt, and hammering it with the
// same instance amplifies the overload that caused the failure. 4xx
// request errors are the caller's bug; retrying cannot fix them.
//
// Backoff between attempts is capped jittered exponential. When the
// server supplies a Retry-After header (it does on 429), that value is
// honoured as the floor for the next delay.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Options configures a Client. The zero value of each field selects
// the documented default.
type Options struct {
	// MaxAttempts is the total number of tries per Do call, first
	// attempt included. Default 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k (0-based
	// among retries) waits about BaseDelay<<k. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Default 2s.
	MaxDelay time.Duration
	// Jitter scales the random spread applied to each delay, in
	// [0,1]: the sleep is delay * (1 - Jitter/2 + Jitter*u) for
	// uniform u. Default 0.5; set -1 for none (deterministic tests).
	Jitter float64
	// Seed fixes the jitter PRNG for reproducible schedules; 0 keeps
	// a fixed default seed (this client favours replayability over
	// cross-process spread — chaos runs must be reproducible).
	Seed int64
	// HTTPClient is the underlying transport. Default: a client with
	// a 30s overall timeout.
	HTTPClient *http.Client
	// Sleep replaces the inter-attempt wait, for tests. Default
	// honours the context during the sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Client issues requests with bounded retries. Safe for concurrent
// use; the jitter PRNG is the only shared mutable state.
type Client struct {
	base  string
	opts  Options
	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns a client for the service at base (e.g.
// "http://127.0.0.1:7433").
func New(base string, opts Options) *Client {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 100 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.5
	}
	if opts.Jitter < 0 {
		opts.Jitter = 0
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	return &Client{
		base: base,
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Result is the terminal outcome of a Do call.
type Result struct {
	// Status is the HTTP status of the final attempt.
	Status int
	// Body is the final attempt's full response body.
	Body []byte
	// Header is the final attempt's response header.
	Header http.Header
	// Attempts is how many requests were actually sent.
	Attempts int
	// Retries counts the attempts that were retried (Attempts-1 when
	// the last attempt was served, more never).
	Retries int
}

// Do POSTs body to path, retrying per the package policy, and returns
// the final attempt's response whatever its status. It errors only
// when every attempt failed at the transport layer or the context
// ended first.
func (c *Client) Do(ctx context.Context, path string, body []byte) (*Result, error) {
	return c.DoMethod(ctx, http.MethodPost, path, body)
}

// Get issues a GET with the same retry policy as Do.
func (c *Client) Get(ctx context.Context, path string) (*Result, error) {
	return c.DoMethod(ctx, http.MethodGet, path, nil)
}

// Delete issues a DELETE with the same retry policy as Do. The session
// release endpoints are idempotent, so retrying a shed DELETE is safe.
func (c *Client) Delete(ctx context.Context, path string) (*Result, error) {
	return c.DoMethod(ctx, http.MethodDelete, path, nil)
}

// DoMethod is Do with an explicit HTTP method; the retry policy (429,
// 503, response-less transport errors only) is method-independent
// because those failures all mean the service never took ownership of
// the request.
func (c *Client) DoMethod(ctx context.Context, method, path string, body []byte) (*Result, error) {
	res := &Result{}
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.opts.Sleep(ctx, c.backoff(attempt-1, lastRetryAfter(res))); err != nil {
				return nil, err
			}
			res.Retries++
		}
		res.Attempts++
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// No response arrived: the server never accepted the
			// request, so a retry cannot duplicate work.
			lastErr = err
			res.Status = 0
			res.Body = nil
			res.Header = nil
			continue
		}
		res.Status = resp.StatusCode
		res.Header = resp.Header
		res.Body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if !retryable(resp.StatusCode) {
			return res, nil
		}
		lastErr = fmt.Errorf("client: status %d", resp.StatusCode)
	}
	if res.Status != 0 {
		// Retries exhausted on a retryable status: surface the last
		// response rather than an error, so callers see the 429/503.
		return res, nil
	}
	return nil, fmt.Errorf("client: %d attempts failed: %w", res.Attempts, lastErr)
}

// retryable reports whether a status means the service never took
// ownership of the request. 504 and 5xx solve failures are final: the
// work ran.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// lastRetryAfter extracts the server's Retry-After hint from the last
// response, or 0. RFC 9110 §10.2.3 allows both a delay in seconds and
// an HTTP-date; both forms are honoured (the date form converts to the
// delay until that instant, clamped to zero when the date has already
// passed — a past date means "retry now", not "ignore the header").
func lastRetryAfter(res *Result) time.Duration {
	if res.Header == nil {
		return 0
	}
	return parseRetryAfter(res.Header.Get("Retry-After"), time.Now())
}

// parseRetryAfter interprets a Retry-After header value relative to
// now. Malformed values yield 0 (fall back to plain backoff).
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	d := when.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}

// backoff computes the sleep before retry k (0-based): capped
// exponential with multiplicative jitter, floored at the server's
// Retry-After when one was given.
func (c *Client) backoff(k int, retryAfter time.Duration) time.Duration {
	d := c.opts.BaseDelay << uint(k)
	if d > c.opts.MaxDelay || d <= 0 {
		d = c.opts.MaxDelay
	}
	if c.opts.Jitter > 0 {
		c.rngMu.Lock()
		u := c.rng.Float64() //solverlint:allow nondeterminism jittered backoff is randomized by design, seeded for replay
		c.rngMu.Unlock()
		d = time.Duration(float64(d) * (1 - c.opts.Jitter/2 + c.opts.Jitter*u))
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.opts.MaxDelay {
		d = c.opts.MaxDelay
	}
	return d
}
