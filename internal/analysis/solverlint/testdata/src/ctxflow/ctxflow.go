// Package ctxflow is a fixture: context threading discipline on the
// request path.
package ctxflow

import "context"

// Threaded is the good path: the context flows into the callee.
func Threaded(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	return ctx.Err()
}

// Detached manufactures a fresh root context.
func Detached() error {
	ctx := context.Background() // want `context\.Background\(\) on the request path`
	return work(ctx)
}

// Todo hides behind the other fresh-root constructor.
func Todo() error {
	return work(context.TODO()) // want `context\.TODO\(\) on the request path`
}

// Ignored takes a context and never consults it.
func Ignored(ctx context.Context, n int) int { // want `context parameter ctx is never used`
	return n * 2
}

// SpinLoop spawns a goroutine that sees the context but loops without
// ever consulting it.
func SpinLoop(ctx context.Context, ch chan int) {
	go func() {
		_ = ctx.Value("k")
		for { // want `goroutine loop never checks ctx\.Done\(\)`
			ch <- 1
		}
	}()
}

// Pumper is the good goroutine: every loop iteration can observe
// cancellation.
func Pumper(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// Detach builds the one sanctioned detached context; the pragma names
// the design decision.
func Detach() context.Context {
	//solverlint:allow ctxflow fixture: deliberately detached maintenance context
	return context.Background()
}
