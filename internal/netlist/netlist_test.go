package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/module"
)

func sample() *Netlist {
	return &Netlist{
		Name: "adder",
		Cells: []Cell{
			{"l0", LUT}, {"l1", LUT}, {"l2", LUT},
			{"f0", FF}, {"f1", FF},
			{"m0", BRAMCell},
		},
		Nets: []Net{
			{"n0", []string{"l0", "f0"}},
			{"n1", []string{"l1", "l2", "f1"}},
			{"n2", []string{"m0", "l0"}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mut func(*Netlist)) *Netlist {
		n := sample()
		mut(n)
		return n
	}
	cases := map[string]*Netlist{
		"empty name":   mk(func(n *Netlist) { n.Name = "" }),
		"no cells":     mk(func(n *Netlist) { n.Cells = nil }),
		"unnamed cell": mk(func(n *Netlist) { n.Cells[0].Name = "" }),
		"dup cell":     mk(func(n *Netlist) { n.Cells[1].Name = "l0" }),
		"bad kind":     mk(func(n *Netlist) { n.Cells[0].Kind = CellKind(99) }),
		"unnamed net":  mk(func(n *Netlist) { n.Nets[0].Name = "" }),
		"dup net":      mk(func(n *Netlist) { n.Nets[1].Name = "n0" }),
		"one-pin net":  mk(func(n *Netlist) { n.Nets[0].Pins = n.Nets[0].Pins[:1] }),
		"dangling pin": mk(func(n *Netlist) { n.Nets[0].Pins = []string{"l0", "ghost"} }),
	}
	for name, n := range cases {
		if n.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCountsAndFanout(t *testing.T) {
	n := sample()
	if n.Count(LUT) != 3 || n.Count(FF) != 2 || n.Count(BRAMCell) != 1 || n.Count(DSPCell) != 0 {
		t.Fatal("counts wrong")
	}
	if got := n.AvgFanout(); got < 2.3 || got > 2.4 { // (2+3+2)/3
		t.Fatalf("AvgFanout = %v", got)
	}
	empty := &Netlist{Name: "e", Cells: []Cell{{"c", LUT}}}
	if empty.AvgFanout() != 0 {
		t.Fatal("netless fanout not 0")
	}
}

func TestPack(t *testing.T) {
	n := sample()
	d, err := Pack(n, PackingTarget{LUTsPerCLB: 2, FFsPerCLB: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 3 LUT / 2 per CLB = 2; 2 FF / 4 per CLB = 1; max = 2. 1 BRAM.
	want := module.Demand{CLB: 2, BRAM: 1}
	if d != want {
		t.Fatalf("Pack = %+v, want %+v", d, want)
	}
	if _, err := Pack(n, PackingTarget{}); err == nil {
		t.Fatal("invalid target accepted")
	}
	bad := sample()
	bad.Cells = nil
	if _, err := Pack(bad, DefaultPackingTarget()); err == nil {
		t.Fatal("invalid netlist accepted")
	}
}

func TestPackFFBound(t *testing.T) {
	n := &Netlist{Name: "ffheavy", Cells: []Cell{
		{"f0", FF}, {"f1", FF}, {"f2", FF}, {"f3", FF}, {"f4", FF}, {"l0", LUT},
	}}
	d, err := Pack(n, PackingTarget{LUTsPerCLB: 8, FFsPerCLB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.CLB != 3 { // 5 FF / 2 per CLB = 3 > 1 LUT-CLB
		t.Fatalf("CLB = %d, want 3", d.CLB)
	}
}

func TestToModule(t *testing.T) {
	m, err := ToModule(sample(), DefaultPackingTarget(), module.AlternativeOptions{Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "adder" || m.NumShapes() < 1 {
		t.Fatalf("module: %v", m)
	}
	h := m.Shape(0).Histogram()
	if h.Placeable() != 2 { // 1 CLB + 1 BRAM
		t.Fatalf("packed tiles = %d (%v)", h.Placeable(), h)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []*Netlist{sample()}); err != nil {
		t.Fatal(err)
	}
	nls, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(nls) != 1 {
		t.Fatalf("netlists = %d", len(nls))
	}
	got := nls[0]
	want := sample()
	if got.Name != want.Name || len(got.Cells) != len(want.Cells) || len(got.Nets) != len(want.Nets) {
		t.Fatalf("round trip changed structure: %+v", got)
	}
	for i := range want.Cells {
		if got.Cells[i] != want.Cells[i] {
			t.Fatalf("cell %d changed", i)
		}
	}
	for i := range want.Nets {
		if got.Nets[i].Name != want.Nets[i].Name || len(got.Nets[i].Pins) != len(want.Nets[i].Pins) {
			t.Fatalf("net %d changed", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"cell outside":     "cell a LUT\n",
		"net outside":      "net n a b\n",
		"bad kind":         "netlist x\ncell a FOO\n",
		"short net":        "netlist x\ncell a LUT\ncell b LUT\nnet n a\n",
		"unknown":          "netlist x\nwibble\n",
		"invalid on flush": "netlist x\n", // no cells
		"bad header":       "netlist\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseMultipleWithComments(t *testing.T) {
	text := `
# two trivial netlists
netlist a
cell l0 LUT
cell l1 LUT
net n0 l0 l1   # connects both

netlist b
cell d0 DSP
cell f0 FF
net n0 d0 f0
`
	nls, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(nls) != 2 || nls[0].Name != "a" || nls[1].Name != "b" {
		t.Fatalf("parsed: %+v", nls)
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := GenConfig{LUTs: 50, FFs: 40, BRAMs: 2, DSPs: 1}
	a, err := Generate("g", cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Count(LUT) != 50 || a.Count(BRAMCell) != 2 {
		t.Fatal("cell mix wrong")
	}
	if len(a.Nets) == 0 {
		t.Fatal("no nets generated")
	}
	b, err := Generate("g", cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb bytes.Buffer
	if err := Write(&wa, []*Netlist{a}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&wb, []*Netlist{b}); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateDefaultsAndErrors(t *testing.T) {
	n, err := Generate("d", GenConfig{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if n.Count(LUT) != 160 || n.Count(FF) != 120 {
		t.Fatal("defaults wrong")
	}
	if _, err := Generate("tiny", GenConfig{LUTs: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("1-cell netlist accepted")
	}
}

func TestCellKindStrings(t *testing.T) {
	for k := CellKind(0); k < numCellKinds; k++ {
		got, err := ParseCellKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v", k)
		}
	}
	if _, err := ParseCellKind("nope"); err == nil {
		t.Fatal("bad kind accepted")
	}
	if !strings.Contains(CellKind(9).String(), "CellKind") {
		t.Fatal("invalid kind String")
	}
}
