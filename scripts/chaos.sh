#!/bin/sh
# chaos.sh — fault-injected soak of the placement daemon, as run by the
# CI "chaos" job (and `make chaos` locally): build cmd/placed and
# cmd/loadgen under -race, start the daemon with a mixed fault spec
# (forced cache misses, broken request dedup, queue shedding, solver
# deadline misses and latency) and graceful degradation on, then replay
# a seeded workload stream through the retrying client. loadgen exits
# non-zero if any 200 response carries an invalid placement or an
# undocumented status, and prints a JSON summary. The run is
# reproducible: same FAULTS/SEED, same decisions.
set -eu

PORT="${PORT:-18731}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
FAULTS="${FAULTS:-cache:error:0.3;singleflight:error:0.2;queue:error:0.2;solver:timeout:0.3;solver:latency:0.5:5ms}"
SEED="${SEED:-1}"
REQUESTS="${REQUESTS:-150}"
CONCURRENCY="${CONCURRENCY:-8}"
WORKDIR="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -race -o "$WORKDIR/placed" ./cmd/placed
go build -race -o "$WORKDIR/loadgen" ./cmd/loadgen

"$WORKDIR/placed" -addr "$ADDR" -workers 4 -max-inflight 8 \
    -faults "$FAULTS" -faults-seed "$SEED" -degrade \
    -access-log "$WORKDIR/access.log" &
DAEMON_PID=$!

i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "chaos: daemon never became healthy on $BASE" >&2
        exit 1
    fi
    sleep 0.1
done
echo "chaos: daemon healthy on $BASE, faults: $FAULTS"

"$WORKDIR/loadgen" -addr "$BASE" -requests "$REQUESTS" \
    -concurrency "$CONCURRENCY" -seed "$SEED" -v
echo "chaos: $REQUESTS workloads survived the fault mix"

STATS="$(curl -sf "$BASE/v1/stats")"
echo "$STATS"
case "$STATS" in
*'"faults"'*) ;;
*)
    echo "chaos: /v1/stats reports no fault counters despite -faults" >&2
    exit 1
    ;;
esac

kill "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "chaos: daemon exited non-zero on SIGTERM" >&2
    exit 1
}
DAEMON_PID=""
echo "chaos: clean shutdown"
