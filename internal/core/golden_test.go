package core_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current solver output")

// goldenPlacement is the pinned form of one solve: the objective and
// the full placement, but not wall-clock or node-count fields, which
// may drift with harmless search-engine changes.
type goldenPlacement struct {
	Found       bool           `json:"found"`
	Height      int            `json:"height"`
	Utilization float64        `json:"utilization"`
	Optimal     bool           `json:"optimal"`
	Stalled     bool           `json:"stalled"`
	Reason      string         `json:"reason"`
	Placements  []goldenModule `json:"placements"`
}

type goldenModule struct {
	Module string `json:"module"`
	Shape  int    `json:"shape"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	W      int    `json:"w"`
	H      int    `json:"h"`
}

// TestGoldenTableIPlacement pins the end-to-end result of the paper's
// flagship instance: the seed-1 batch of 30 generated modules with
// design alternatives on the Table-I region, solved sequentially with
// the node-based stall criterion and no wall-clock cutoff — a fully
// deterministic configuration. Any solver change that moves this
// placement shows up as a golden diff; regenerate deliberately with
//
//	go test ./internal/core -run TestGoldenTableIPlacement -update
func TestGoldenTableIPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exhaustive solve; skipped with -short")
	}
	region := experiments.TableIRegion()
	mods := workload.MustGenerate(workload.Config{}, rand.New(rand.NewSource(1)))
	// Timeout must stay zero: a wall-clock stop makes the search
	// nondeterministic, a node-based stall stop does not.
	res, err := core.New(region, core.Options{StallNodes: 800}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(region); err != nil {
		t.Fatal(err)
	}

	got := goldenPlacement{
		Found:       res.Found,
		Height:      res.Height,
		Utilization: res.Utilization,
		Optimal:     res.Optimal,
		Stalled:     res.Stalled,
		Reason:      res.Reason.String(),
	}
	for _, p := range res.Placements {
		s := p.Shape()
		got.Placements = append(got.Placements, goldenModule{
			Module: p.Module.Name(),
			Shape:  p.ShapeIndex,
			X:      p.At.X,
			Y:      p.At.Y,
			W:      s.W(),
			H:      s.H(),
		})
	}
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	goldenPath := filepath.Join("testdata", "table1-seed1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (height %d, util %.4f)", goldenPath, got.Height, got.Utilization)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("Table-I seed-1 placement diverged from golden file %s.\n"+
			"If the solver change is intentional, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, data, want)
	}
}
