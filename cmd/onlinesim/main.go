// Command onlinesim runs the online placement simulator: a seeded task
// stream is served on a device by each space-management policy, and the
// resulting service levels, utilization and fragmentation are compared.
//
// Examples:
//
//	onlinesim -device virtex4-like-72x60 -tasks 200
//	onlinesim -region region.spec -manager first-fit+alternatives
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/fabric"
	"repro/internal/online"
	"repro/internal/recobus"
)

func main() {
	var (
		device     = flag.String("device", "virtex4-like-72x60", "predefined device name")
		regionPath = flag.String("region", "", "partial-region description file (overrides -device)")
		tasks      = flag.Int("tasks", 200, "number of task arrivals")
		seed       = flag.Int64("seed", 1, "stream seed")
		interarr   = flag.Int("interarrival", 2, "mean inter-arrival time")
		duration   = flag.Int("duration", 120, "mean task residency")
		clbMin     = flag.Int("clbmin", 10, "minimum CLB demand per task")
		clbMax     = flag.Int("clbmax", 60, "maximum CLB demand per task")
		bramMax    = flag.Int("brammax", 3, "maximum BRAM demand per task")
		manager    = flag.String("manager", "", "run only this manager (default: all)")
	)
	flag.Parse()
	if err := run(*device, *regionPath, *tasks, *seed, *interarr, *duration, *clbMin, *clbMax, *bramMax, *manager); err != nil {
		fmt.Fprintln(os.Stderr, "onlinesim:", err)
		os.Exit(1)
	}
}

func run(device, regionPath string, tasks int, seed int64, interarr, duration, clbMin, clbMax, bramMax int, manager string) error {
	var region *fabric.Region
	if regionPath != "" {
		f, err := os.Open(regionPath)
		if err != nil {
			return err
		}
		defer f.Close()
		spec, err := recobus.ParseRegion(f)
		if err != nil {
			return err
		}
		region, err = spec.Build()
		if err != nil {
			return err
		}
	} else {
		dev, err := fabric.ByName(device)
		if err != nil {
			return err
		}
		region = dev.FullRegion()
	}

	stream := online.StreamConfig{
		Tasks:            tasks,
		MeanInterarrival: interarr,
		MeanDuration:     duration,
	}
	stream.Library.CLBMin, stream.Library.CLBMax = clbMin, clbMax
	stream.Library.BRAMMax = bramMax
	stream.Library.NoBRAM = bramMax == 0
	stream.Library.Alternatives = 4
	stream.Library.NumModules = 1

	ts, err := online.GenerateStream(stream, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	fmt.Printf("region %s (%dx%d), %d arrivals\n\n",
		region.Device().Name(), region.W(), region.H(), len(ts))

	managers := online.Managers()
	// The CP-replan manager is expensive (one constraint solve per
	// rejection), so it only runs when explicitly requested.
	if manager == "first-fit+cp-replan" {
		managers = append(managers, &online.ReplanFirstFit{
			FirstFit: online.FirstFit{UseAlternatives: true},
		})
	}
	ran := false
	for _, mgr := range managers {
		if manager != "" && mgr.Name() != manager {
			continue
		}
		st, err := online.Simulate(region, mgr, ts, fabric.DefaultFrameModel())
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %v\n", mgr.Name(), st)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown manager %q", manager)
	}
	return nil
}
