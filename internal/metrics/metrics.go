// Package metrics computes the quality measures of the paper's
// evaluation: average resource utilization of a placement, external
// fragmentation of the free space, and summary statistics over
// experiment runs.
package metrics

import (
	"math"

	"repro/internal/fabric"
	"repro/internal/grid"
)

// Utilization is the paper's average resource utilization: the fraction
// of usable (placeable) tiles that carry module logic, measured within
// the occupied extent — rows [0, maxOccupiedRow]. Minimising occupied
// height maximises this quantity; unused tiles inside the extent are
// fragmentation losses.
//
// occupancy marks tiles carrying module logic; it must have the region's
// dimensions. The function returns 0 for an empty occupancy.
func Utilization(region *fabric.Region, occupancy *grid.Bitmap) float64 {
	top := occupancy.MaxSetY()
	if top < 0 {
		return 0
	}
	usable := region.PlaceableInRows(top + 1)
	if usable == 0 {
		return 0
	}
	return float64(occupancy.Count()) / float64(usable)
}

// OverallUtilization measures against the whole region rather than the
// occupied extent: occupied / all placeable tiles.
func OverallUtilization(region *fabric.Region, occupancy *grid.Bitmap) float64 {
	usable := region.PlaceableCount()
	if usable == 0 {
		return 0
	}
	return float64(occupancy.Count()) / float64(usable)
}

// FreeInSpan returns the number of usable tiles inside the occupied
// extent that carry no module logic — the external fragmentation loss in
// tiles.
func FreeInSpan(region *fabric.Region, occupancy *grid.Bitmap) int {
	top := occupancy.MaxSetY()
	if top < 0 {
		return 0
	}
	return region.PlaceableInRows(top+1) - occupancy.Count()
}

// LargestFreeRect returns the area of the largest axis-aligned rectangle
// of usable, unoccupied tiles within the occupied extent. It is the
// classic maximal-rectangle-in-histogram computation, O(W·H).
func LargestFreeRect(region *fabric.Region, occupancy *grid.Bitmap) int {
	top := occupancy.MaxSetY()
	if top < 0 {
		return 0
	}
	w := region.W()
	heights := make([]int, w)
	best := 0
	for y := 0; y <= top; y++ {
		for x := 0; x < w; x++ {
			if region.PlaceableAt(x, y) && !occupancy.Get(x, y) {
				heights[x]++
			} else {
				heights[x] = 0
			}
		}
		if a := largestInHistogram(heights); a > best {
			best = a
		}
	}
	return best
}

// largestInHistogram returns the maximal rectangle area under the
// histogram using the monotonic stack method.
func largestInHistogram(h []int) int {
	type entry struct{ start, height int }
	stack := make([]entry, 0, len(h))
	best := 0
	for i := 0; i <= len(h); i++ {
		cur := 0
		if i < len(h) {
			cur = h[i]
		}
		start := i
		for len(stack) > 0 && stack[len(stack)-1].height > cur {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if a := e.height * (i - e.start); a > best {
				best = a
			}
			start = e.start
		}
		if cur > 0 && (len(stack) == 0 || stack[len(stack)-1].height < cur) {
			stack = append(stack, entry{start, cur})
		}
	}
	return best
}

// Fragmentation quantifies how shattered the free space inside the
// occupied extent is: 1 − largestFreeRect/freeTiles. 0 means all free
// space forms one rectangle (perfectly usable by a future module); values
// near 1 mean the free space is unusably scattered. Returns 0 when there
// is no free space.
func Fragmentation(region *fabric.Region, occupancy *grid.Bitmap) float64 {
	free := FreeInSpan(region, occupancy)
	if free <= 0 {
		return 0
	}
	return 1 - float64(LargestFreeRect(region, occupancy))/float64(free)
}

// Summary holds order statistics over a sample of float64 measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics (sample standard deviation).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}
