// Package clonecomplete is a fixture: stand-ins for the csp Store and
// Clonable protocol, with propagators that do and do not satisfy the
// clonecomplete invariant.
package clonecomplete

// Store stands in for csp.Store.
type Store struct{}

// Propagator stands in for csp.Propagator.
type Propagator interface {
	Propagate(st *Store) error
}

// CloneCtx stands in for csp.CloneCtx.
type CloneCtx struct{}

// good implements both Propagate and a correct CloneFor.
type good struct {
	xs []int
	c  int
}

func (g *good) Propagate(st *Store) error { return nil }

func (g *good) CloneFor(ctx *CloneCtx) Propagator {
	return &good{xs: append([]int(nil), g.xs...), c: g.c}
}

// missing has Propagate but no CloneFor.
type missing struct{} // want `type missing has a Propagate method but no CloneFor`

func (m *missing) Propagate(st *Store) error { return nil }

// aliasing clones itself but shares its mutable slice and map.
type aliasing struct {
	xs []int
	m  map[int]int
}

func (a *aliasing) Propagate(st *Store) error { return nil }

func (a *aliasing) CloneFor(ctx *CloneCtx) Propagator {
	return &aliasing{xs: a.xs, m: a.m} // want `aliases field a\.xs` `aliases field a\.m`
}

// positional aliases through a positional composite literal.
type positional struct {
	xs []int
}

func (p *positional) Propagate(st *Store) error { return nil }

func (p *positional) CloneFor(ctx *CloneCtx) Propagator {
	return &positional{p.xs} // want `aliases field p\.xs`
}

// assigned aliases through a field assignment after construction.
type assigned struct {
	xs []int
}

func (p *assigned) Propagate(st *Store) error { return nil }

func (p *assigned) CloneFor(ctx *CloneCtx) Propagator {
	n := &assigned{}
	n.xs = p.xs // want `aliases field p\.xs`
	return n
}

// shared shares an immutable lookup table, documented via the allow
// comment: no diagnostic.
type shared struct {
	table []int
}

func (s *shared) Propagate(st *Store) error { return nil }

func (s *shared) CloneFor(ctx *CloneCtx) Propagator {
	//solverlint:allow clonecomplete table is immutable after construction and only read by Propagate
	return &shared{table: s.table}
}

// FuncLike is documented as not clonable (the csp.FuncProp pattern).
//
//solverlint:allow clonecomplete closures cannot be re-targeted mechanically; stores holding one reject Clone by design
type FuncLike func(st *Store) error

// Propagate implements Propagator.
func (f FuncLike) Propagate(st *Store) error { return f(st) }

// notAPropagator has a Propagate-named method with the wrong shape
// (no error result): out of scope.
type notAPropagator struct{}

func (n *notAPropagator) Propagate(st *Store) {}
