// Package fabric models heterogeneous FPGA devices at tile granularity:
// resource kinds, column-structured synthetic device families patterned
// after Xilinx Virtex-style fabrics, static-region masking, reconfigurable
// partial regions, and a configuration-frame model for reconfiguration
// cost accounting.
//
// The placement paper this repository reproduces (Wold/Koch/Torresen,
// IPPS 2011) evaluates on a tile model of a real-world heterogeneous
// FPGA. The package substitutes a synthetic but column-accurate fabric:
// the placer only observes the (x, y) -> resource-kind map, so a grid
// with realistic column structure exercises exactly the same constraint
// behaviour as a vendor device description.
package fabric

import "fmt"

// Kind identifies the physical resource implemented by one tile.
type Kind uint8

// Resource kinds. Static marks tiles claimed by the static (non
// reconfigurable) design; such tiles can never host module tiles. Clock
// marks clock-management columns, which interrupt otherwise regular
// resource columns on modern devices and likewise accept no module
// logic.
const (
	// CLB is general configurable logic (lookup tables + flip-flops).
	CLB Kind = iota
	// BRAM is embedded block memory.
	BRAM
	// DSP is a dedicated multiplier / DSP slice.
	DSP
	// IOB is an input/output block at the device periphery.
	IOB
	// Clock is clock distribution/management resource.
	Clock
	// Static marks area allocated to the static design ("not
	// available" in the paper's formulation).
	Static
	numKinds
)

var kindNames = [numKinds]string{"CLB", "BRAM", "DSP", "IOB", "CLK", "STATIC"}

var kindRunes = [numKinds]byte{'c', 'b', 'd', 'i', 'k', '#'}

// String returns the conventional short name of k.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Rune returns a one-byte glyph for floorplan rendering.
func (k Kind) Rune() byte {
	if k < numKinds {
		return kindRunes[k]
	}
	return '?'
}

// Valid reports whether k names a defined resource kind.
func (k Kind) Valid() bool { return k < numKinds }

// Placeable reports whether module tiles may occupy a tile of kind k.
// IOB, Clock and Static tiles never host module logic: I/O and clocking
// are fixed-function, and static tiles belong to the host design.
func (k Kind) Placeable() bool {
	switch k {
	case CLB, BRAM, DSP:
		return true
	}
	return false
}

// ParseKind converts a short name (as produced by String, case
// sensitive) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fabric: unknown resource kind %q", s)
}

// Kinds returns all defined kinds in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Histogram counts tiles by kind. It is indexable by Kind.
type Histogram [numKinds]int

// Add increments the count for k (ignoring invalid kinds).
func (h *Histogram) Add(k Kind) {
	if k < numKinds {
		h[k]++
	}
}

// Total returns the sum over all kinds.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h {
		n += c
	}
	return n
}

// Placeable returns the number of counted tiles with a placeable kind.
func (h Histogram) Placeable() int {
	return h[CLB] + h[BRAM] + h[DSP]
}

// String renders non-zero counts as "CLB:120 BRAM:8 ...".
func (h Histogram) String() string {
	s := ""
	for k := Kind(0); k < numKinds; k++ {
		if h[k] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", k, h[k])
	}
	if s == "" {
		return "empty"
	}
	return s
}
