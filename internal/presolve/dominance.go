package presolve

import (
	"repro/internal/csp"
	"repro/internal/geost"
	"repro/internal/grid"
)

// dominance drops dominated design alternatives from every object's
// placement domain. Shape a dominates sibling shape b when a's tiles
// (in the shapes' shared anchor-relative frame) are a subset of b's
// AND a is placeable at every anchor b still is: then any placement of
// b at anchor p rewrites to a at p — a covers a subset of b's tiles
// (no new overlap, no new resource demand) and its top row is no
// higher (the objective cannot worsen). Dropping b therefore preserves
// the optimal height and feasibility.
//
// Proper dominance is a strict partial order (a covers strictly fewer
// tiles, or strictly more anchors), so no cycle can drop two shapes
// that justify each other; for fully identical shapes (equal tiles and
// equal anchors) the lower shape id is kept as the canonical
// representative.
func dominance(st *csp.Store, k *geost.Kernel, stats *Stats) error {
	for _, o := range k.Objects() {
		if len(o.Shapes) < 2 {
			continue
		}
		anchors := domainAnchors(k, o)
		drop := make([]bool, len(o.Shapes))
		for b := range o.Shapes {
			if anchors[b] == nil {
				continue // already absent from the domain
			}
			for a := range o.Shapes {
				if a == b || anchors[a] == nil {
					continue
				}
				if dominates(o, a, b, anchors) {
					drop[b] = true
					stats.AlternativesDropped++
					break
				}
			}
		}
		any := false
		for _, d := range drop {
			any = any || d
		}
		if !any {
			continue
		}
		err := st.FilterDomain(o.Place, func(val int) bool {
			sid, _, _ := o.Decode(val)
			return !drop[sid]
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// domainAnchors splits an object's current placement domain into
// per-shape anchor bitmaps; absent shapes get nil. The current domain,
// not the static valid-anchor map, is what dominance must compare:
// root propagation (bus-row restriction, bound cuts) may already have
// pruned anchors, and the rewrite target a@p must be a live value.
func domainAnchors(k *geost.Kernel, o *geost.Object) []*grid.Bitmap {
	out := make([]*grid.Bitmap, len(o.Shapes))
	o.Place.Domain().ForEach(func(val int) bool {
		sid, x, y := o.Decode(val)
		if out[sid] == nil {
			out[sid] = grid.NewBitmap(k.W(), k.H())
		}
		out[sid].Set(x, y, true)
		return true
	})
	return out
}

// dominates reports whether shape a dominates shape b of object o
// given their live anchor bitmaps.
func dominates(o *geost.Object, a, b int, anchors []*grid.Bitmap) bool {
	ga, gb := &o.Shapes[a], &o.Shapes[b]
	if len(ga.Points) > len(gb.Points) {
		return false
	}
	if !pointsSubset(ga.Points, gb.Points) {
		return false
	}
	// Every anchor live for b must be live for a.
	missing := anchors[b].Clone()
	missing.AndNot(anchors[a])
	if missing.Count() != 0 {
		return false
	}
	// Strictness: fewer tiles or more anchors makes the order
	// antisymmetric; full equality keeps the lower shape id.
	if len(ga.Points) < len(gb.Points) || anchors[a].Count() > anchors[b].Count() {
		return true
	}
	return a < b
}

// pointsSubset reports whether every point of sub appears in super.
// Both slices are anchor-relative tile sets of sibling shapes, so the
// shared frame makes coordinate-wise comparison meaningful.
func pointsSubset(sub, super []grid.Point) bool {
	set := make(map[grid.Point]bool, len(super))
	for _, p := range super {
		set[p] = true
	}
	for _, p := range sub {
		if !set[p] {
			return false
		}
	}
	return true
}
