package online

import (
	"repro/internal/fabric"
	"repro/internal/grid"
)

// MaximalEmptyRects enumerates all maximal empty rectangles of the
// region: axis-aligned rectangles of placeable, unoccupied tiles that
// cannot be extended in any direction. This is the free-space
// decomposition of Bazargan-style online placement.
//
// The algorithm sweeps rows with a free-run histogram and emits, at each
// row, the rectangles that are maximal in width for their height (the
// monotonic-stack method); a containment pass then removes rectangles
// covered by larger ones. Complexity is O(W·H) candidates with an
// O(n²) filter, ample for region-scale inputs.
func MaximalEmptyRects(region *fabric.Region, occ *grid.Bitmap) []grid.Rect {
	w, h := region.W(), region.H()
	free := func(x, y int) bool {
		return region.PlaceableAt(x, y) && !occ.Get(x, y)
	}

	heights := make([]int, w)
	var cands []grid.Rect
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if free(x, y) {
				heights[x]++
			} else {
				heights[x] = 0
			}
		}
		// A rectangle candidate is maximal downward and sideways when it
		// pops from the stack; it is maximal upward if the row above
		// does not extend it — checked by the containment filter.
		type entry struct{ start, height int }
		var stack []entry
		for x := 0; x <= w; x++ {
			cur := 0
			if x < w {
				cur = heights[x]
			}
			start := x
			for len(stack) > 0 && stack[len(stack)-1].height > cur {
				e := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				cands = append(cands, grid.Rect{
					MinX: e.start, MinY: y - e.height + 1,
					MaxX: x, MaxY: y + 1,
				})
				start = e.start
			}
			if cur > 0 && (len(stack) == 0 || stack[len(stack)-1].height < cur) {
				stack = append(stack, entry{start, cur})
			}
		}
	}

	return dropContained(cands)
}

// dropContained removes candidates contained in another candidate (and
// later copies of duplicates). It never writes into cands: the inner
// loop reads cands[j] for every j while results accumulate, so an
// aliased output (the old `out := cands[:0]`) clobbers entries that
// later candidates are still compared against. The clobbered values
// happen to be kept candidates, which keeps the *set* correct today,
// but only by a fragile argument that any tweak to the filter breaks —
// and it silently corrupts the caller's slice. The no-mutation contract
// is pinned by TestDropContainedDoesNotClobberInput.
func dropContained(cands []grid.Rect) []grid.Rect {
	out := make([]grid.Rect, 0, len(cands))
	for i, r := range cands {
		maximal := true
		for j, s := range cands {
			if i != j && s.Contains(r) && s != r {
				maximal = false
				break
			}
			if i > j && s == r {
				maximal = false // duplicate
				break
			}
		}
		if maximal {
			out = append(out, r)
		}
	}
	return out
}
