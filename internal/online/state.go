package online

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
)

// StateConfig configures a session State.
type StateConfig struct {
	// Manager selects the greedy policy: "first-fit", "mer-best-fit" or
	// "occupied-space" (alias "adjacency"). Empty means first-fit.
	Manager string
	// UseAlternatives lets the greedy policy pick among a module's
	// design alternatives.
	UseAlternatives bool
	// Replan budgets the CP solves behind replanning and
	// defragmentation. Admission replans force FirstSolutionOnly (a
	// blocked arrival needs any feasible layout, fast); defragmentation
	// uses the options as given, so a Timeout or StallNodes here bounds
	// how long a defrag may optimise.
	Replan core.Options
	// Frames prices reconfigurations; the zero value is replaced by
	// fabric.DefaultFrameModel().
	Frames fabric.FrameModel
}

// SessionManagers lists the manager names NewState accepts, canonical
// form first.
func SessionManagers() []string {
	return []string{"first-fit", "mer-best-fit", "occupied-space", "adjacency"}
}

// State is a long-lived online placement session: the stateful
// counterpart of Simulate. Modules arrive (Place), depart (Release) and
// get compacted (Defrag) over the session's lifetime, against a shadow
// occupancy the engine keeps authoritative — every manager decision is
// audited through ValidatePlacement before it is committed, so a buggy
// policy surfaces as an error, never as silent overlap.
//
// State is not safe for concurrent use; callers (the placement
// service's session store) serialise access per session.
type State struct {
	region    *fabric.Region
	mgr       Manager
	pre       Preplacer
	fm        fabric.FrameModel
	occ       *grid.Bitmap
	residents map[TaskID]Resident

	replan core.Options

	placed   int
	rejected int
	replans  int
	defrags  int
	moves    int
	reconfig time.Duration
}

// NewState opens a session on region with the configured manager.
func NewState(region *fabric.Region, cfg StateConfig) (*State, error) {
	if region == nil {
		return nil, fmt.Errorf("online: session needs a region")
	}
	var mgr Manager
	switch cfg.Manager {
	case "", "first-fit":
		mgr = &FirstFit{UseAlternatives: cfg.UseAlternatives}
	case "mer-best-fit":
		mgr = &BestFitMER{UseAlternatives: cfg.UseAlternatives}
	case "occupied-space", "adjacency":
		mgr = &OccupiedSpace{UseAlternatives: cfg.UseAlternatives}
	default:
		return nil, fmt.Errorf("online: unknown session manager %q (have %v)", cfg.Manager, SessionManagers())
	}
	fm := cfg.Frames
	if fm.FramesPerColumn == nil {
		fm = fabric.DefaultFrameModel()
	}
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	mgr.Reset(region)
	return &State{
		region:    region,
		mgr:       mgr,
		pre:       mgr.(Preplacer),
		fm:        fm,
		occ:       grid.NewBitmap(region.W(), region.H()),
		residents: map[TaskID]Resident{},
		replan:    cfg.Replan,
	}, nil
}

// ManagerName returns the session's greedy policy name.
func (s *State) ManagerName() string { return s.mgr.Name() }

// PlaceOutcome reports one admission attempt.
type PlaceOutcome struct {
	// Placed reports whether the module is now resident. False with a
	// nil error is a capacity rejection, not a fault.
	Placed bool
	// Placement is the chosen alternative and anchor when Placed.
	Placement Placement
	// Replanned reports that greedy placement failed and a CP replan
	// admitted the module by relocating residents.
	Replanned bool
	// Moves lists the relocations the replan performed, in apply order.
	Moves []MoveCost
	// Reconfig is the configuration-port time charged for this
	// admission: the newcomer's bitstream plus every relocation.
	Reconfig time.Duration
}

// Place admits one module under id. Greedy placement is tried first;
// when the manager finds no site, the CP placer replans the whole
// residency (design alternatives included) and the arrival is admitted
// into the relocated layout — the session-scoped equivalent of
// ReplanFirstFit. An error means bad input or an internal invariant
// violation; a full region is (Placed=false, nil).
func (s *State) Place(id TaskID, mod *module.Module) (PlaceOutcome, error) {
	out, done, err := s.placeGreedy(id, mod)
	if err != nil || done {
		return out, err
	}
	return s.replanPlace(id, mod)
}

// PlaceGreedy is Place without the CP replan fallback: the degraded
// path the placement service uses when its solver capacity is
// saturated — a greedy decision costs microseconds, never a solve.
func (s *State) PlaceGreedy(id TaskID, mod *module.Module) (PlaceOutcome, error) {
	out, done, err := s.placeGreedy(id, mod)
	if err != nil || done {
		return out, err
	}
	s.rejected++
	return PlaceOutcome{}, nil
}

func (s *State) placeGreedy(id TaskID, mod *module.Module) (PlaceOutcome, bool, error) {
	if mod == nil {
		return PlaceOutcome{}, false, fmt.Errorf("online: task %d has no module", id)
	}
	if _, ok := s.residents[id]; ok {
		return PlaceOutcome{}, false, fmt.Errorf("online: task %d already resident", id)
	}
	p, ok := s.mgr.TryPlace(Task{ID: id, Module: mod})
	if !ok {
		return PlaceOutcome{}, false, nil
	}
	pts, err := ValidatePlacement(s.region, s.occ, mod, p)
	if err != nil {
		s.mgr.Release(id)
		return PlaceOutcome{}, false, fmt.Errorf("online: manager %s task %d: %w", s.mgr.Name(), id, err)
	}
	s.occ.SetPoints(pts, true)
	s.residents[id] = Resident{ID: id, Module: mod, Shape: p.Shape, At: p.At}
	s.placed++
	cost := s.cost(mod.Shape(p.Shape), p.At)
	s.reconfig += cost
	return PlaceOutcome{Placed: true, Placement: p, Reconfig: cost}, true, nil
}

// replanPlace is the fallback: a joint CP layout of residents plus the
// newcomer, with the relocations ordered so every intermediate state is
// valid, then the manager re-seeded onto the new layout.
func (s *State) replanPlace(id TaskID, mod *module.Module) (PlaceOutcome, error) {
	s.replans++
	res := s.residentsSorted()
	mods := make([]*module.Module, 0, len(res)+1)
	for _, r := range res {
		mods = append(mods, r.Module)
	}
	mods = append(mods, mod)

	budget := s.replan
	budget.FirstSolutionOnly = true
	target, err := core.New(s.region, budget).Place(mods)
	if err != nil || !target.Found {
		s.rejected++
		return PlaceOutcome{}, nil
	}

	occ := s.occ.Clone()
	cur := make(map[TaskID][]grid.Point, len(res))
	var todo []pendingMove
	for i, r := range res {
		p := target.Placements[i]
		cur[r.ID] = r.tiles()
		if p.At == r.At && p.ShapeIndex == r.Shape {
			continue
		}
		todo = append(todo, pendingMove{id: r.ID, shape: p.ShapeIndex, at: p.At, target: p.Tiles()})
	}
	moves, stuck := orderMoves(occ, cur, todo)
	if stuck > 0 {
		// A feasible layout exists but no safe move order does; treat as
		// a rejection rather than risk an invalid intermediate state.
		s.rejected++
		return PlaceOutcome{}, nil
	}

	newcomer := target.Placements[len(target.Placements)-1]
	p := Placement{Shape: newcomer.ShapeIndex, At: newcomer.At}
	pts, err := ValidatePlacement(s.region, occ, mod, p)
	if err != nil {
		return PlaceOutcome{}, fmt.Errorf("online: replan produced invalid newcomer placement: %w", err)
	}
	occ.SetPoints(pts, true)

	out := PlaceOutcome{Placed: true, Placement: p, Replanned: true, Moves: s.priceMoves(moves)}
	for _, mv := range out.Moves {
		out.Reconfig += mv.Reconfig
	}
	out.Reconfig += s.cost(mod.Shape(p.Shape), p.At)

	s.occ = occ
	for _, mv := range moves {
		r := s.residents[mv.ID]
		s.residents[mv.ID] = Resident{ID: r.ID, Module: r.Module, Shape: mv.Shape, At: mv.At}
	}
	s.residents[id] = Resident{ID: id, Module: mod, Shape: p.Shape, At: p.At}
	if err := s.reseedManager(); err != nil {
		return PlaceOutcome{}, err
	}
	s.placed++
	s.moves += len(moves)
	s.reconfig += out.Reconfig
	return out, nil
}

// Release frees a resident module; releasing an unknown id is a no-op
// (the operation is idempotent so clients may retry it blindly).
func (s *State) Release(id TaskID) bool {
	r, ok := s.residents[id]
	if !ok {
		return false
	}
	delete(s.residents, id)
	s.occ.SetPoints(r.tiles(), false)
	s.mgr.Release(id)
	return true
}

// MoveCost is one relocation of a defragmentation or replan schedule,
// priced by the frame model.
type MoveCost struct {
	Move
	// Frames is the number of configuration frames the move rewrites.
	Frames int
	// Reconfig is the configuration-port time for those frames.
	Reconfig time.Duration
}

// DefragOutcome reports one compaction pass.
type DefragOutcome struct {
	// Moves is the ordered relocation schedule; empty when the layout
	// was already as tight as the placer could make it.
	Moves []MoveCost
	// Reconfig is the total configuration-port time of the schedule.
	Reconfig time.Duration
	// FragBefore and FragAfter are the free-space fragmentation metric
	// around the pass.
	FragBefore float64
	FragAfter  float64
}

// Defrag compacts the residency: the CP placer derives a tighter target
// layout, PlanCompaction orders the relocations, and the session adopts
// the result. With no residents (or no improvement) the outcome is
// empty and nil error. The replan budget's Timeout/StallNodes bound the
// solve; FirstSolutionOnly is NOT forced here because compaction exists
// to improve the layout, not merely to find one.
func (s *State) Defrag() (DefragOutcome, error) {
	out := DefragOutcome{
		FragBefore: metrics.Fragmentation(s.region, s.occ),
		FragAfter:  metrics.Fragmentation(s.region, s.occ),
	}
	if len(s.residents) == 0 {
		return out, nil
	}
	s.defrags++
	res := s.residentsSorted()
	moves, _, err := PlanCompaction(s.region, res, s.replan)
	if err != nil {
		return DefragOutcome{}, err
	}
	if len(moves) == 0 {
		return out, nil
	}
	after, err := ApplyMoves(s.region, res, moves)
	if err != nil {
		return DefragOutcome{}, fmt.Errorf("online: defrag plan failed validation: %w", err)
	}
	occ := grid.NewBitmap(s.region.W(), s.region.H())
	for _, r := range after {
		occ.SetPoints(r.tiles(), true)
		s.residents[r.ID] = r
	}
	s.occ = occ
	if err := s.reseedManager(); err != nil {
		return DefragOutcome{}, err
	}
	out.Moves = s.priceMoves(moves)
	for _, mv := range out.Moves {
		out.Reconfig += mv.Reconfig
	}
	out.FragAfter = metrics.Fragmentation(s.region, s.occ)
	s.moves += len(moves)
	s.reconfig += out.Reconfig
	return out, nil
}

// StateStats is a point-in-time summary of the session.
type StateStats struct {
	Residents     int
	OccupiedTiles int
	// Utilization is occupied placeable tiles over all placeable tiles.
	Utilization float64
	// Fragmentation is the free-space fragmentation metric in the
	// occupied span (0 = one solid free block, →1 = badly scattered).
	Fragmentation float64
	Placed        int
	Rejected      int
	Replans       int
	Defrags       int
	Moves         int
	TotalReconfig time.Duration
}

// Stats summarises the session.
func (s *State) Stats() StateStats {
	occupied := 0
	//solverlint:allow nondeterminism order-independent sum over the residency
	for _, r := range s.residents {
		occupied += r.Module.Shape(r.Shape).Size()
	}
	return StateStats{
		Residents:     len(s.residents),
		OccupiedTiles: occupied,
		Utilization:   metrics.OverallUtilization(s.region, s.occ),
		Fragmentation: metrics.Fragmentation(s.region, s.occ),
		Placed:        s.placed,
		Rejected:      s.rejected,
		Replans:       s.replans,
		Defrags:       s.defrags,
		Moves:         s.moves,
		TotalReconfig: s.reconfig,
	}
}

// Residents returns the current residency in ascending id order.
func (s *State) Residents() []Resident { return s.residentsSorted() }

// Resident looks up one resident by id.
func (s *State) Resident(id TaskID) (Resident, bool) {
	r, ok := s.residents[id]
	return r, ok
}

func (s *State) residentsSorted() []Resident {
	out := make([]Resident, 0, len(s.residents))
	//solverlint:allow nondeterminism the slice is sorted by id immediately below
	for _, r := range s.residents {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// reseedManager rebuilds the greedy manager's internal state from the
// shadow residency after a replan or defrag rewrote the layout. Every
// placement was just validated against the shadow occupancy, so a
// refusal here is an invariant violation, not a capacity problem.
func (s *State) reseedManager() error {
	s.mgr.Reset(s.region)
	for _, r := range s.residentsSorted() {
		if !s.pre.Preplace(r.ID, r.Module, Placement{Shape: r.Shape, At: r.At}) {
			return fmt.Errorf("online: manager %s rejected re-seeded resident %d at %v", s.mgr.Name(), r.ID, r.At)
		}
	}
	return nil
}

// cost prices one configuration of shape at anchor.
func (s *State) cost(shape *module.Shape, at grid.Point) time.Duration {
	frames := s.fm.FrameCount(s.region, grid.RectXYWH(at.X, at.Y, shape.W(), shape.H()))
	return s.fm.ReconfigTime(frames)
}

// priceMoves attaches frame counts and port time to a move schedule.
func (s *State) priceMoves(moves []Move) []MoveCost {
	out := make([]MoveCost, 0, len(moves))
	for _, mv := range moves {
		r, ok := s.residents[mv.ID]
		if !ok {
			continue
		}
		shape := r.Module.Shape(mv.Shape)
		frames := s.fm.FrameCount(s.region, grid.RectXYWH(mv.At.X, mv.At.Y, shape.W(), shape.H()))
		out = append(out, MoveCost{Move: mv, Frames: frames, Reconfig: s.fm.ReconfigTime(frames)})
	}
	return out
}
