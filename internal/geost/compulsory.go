package geost

import (
	"repro/internal/csp"
	"repro/internal/grid"
)

// Compulsory-part pruning is the signature reasoning of Beldiceanu's
// geost kernel: even before an object is fixed, the intersection of all
// its remaining candidate footprints may be non-empty — cells the object
// will occupy *no matter what*. Other objects can be pruned against that
// compulsory region immediately, long before the object is assigned.
//
// With polymorphic shapes and non-rectangular footprints the compulsory
// region is computed exactly, as the cell-wise AND over the candidate
// footprints. That costs O(|domain| × tiles), so the propagator only
// engages once an object's domain has shrunk below a threshold — early
// in search the intersection is empty anyway.

// compulsoryThreshold is the candidate-count ceiling above which the
// exact compulsory region is not computed.
const compulsoryThreshold = 48

// compulsoryRegion returns the set of cells occupied under every
// remaining placement of o, or nil when the object's domain is too large
// or the intersection is empty. The returned bitmap is freshly
// allocated.
func compulsoryRegion(o *Object) *grid.Bitmap {
	n := o.Place.Size()
	if n == 0 || n > compulsoryThreshold {
		return nil
	}
	var acc *grid.Bitmap
	cur := grid.NewBitmap(o.k.w, o.k.h)
	empty := false
	o.Place.Domain().ForEach(func(val int) bool {
		sid, x, y := o.Decode(val)
		cur.Clear()
		cur.SetPoints(translate(o.Shapes[sid].Points, grid.Pt(x, y)), true)
		if acc == nil {
			acc = cur.Clone()
		} else {
			acc.AndNot(invert(cur))
		}
		if acc.Count() == 0 {
			empty = true
			return false
		}
		return true
	})
	if empty || acc == nil || acc.Count() == 0 {
		return nil
	}
	return acc
}

// invert returns the complement of b (freshly allocated).
func invert(b *grid.Bitmap) *grid.Bitmap {
	out := grid.NewBitmap(b.W(), b.H())
	out.SetRect(grid.RectXYWH(0, 0, b.W(), b.H()), true)
	out.AndNot(b)
	return out
}

// compulsoryPair prunes object b against a's compulsory region and vice
// versa. It watches both placement variables and complements the
// assigned-object forward checking of nonOverlapPair.
type compulsoryPair struct {
	k    *Kernel
	a, b *Object
}

// Name implements csp.Named.
func (p *compulsoryPair) Name() string { return "geost.compulsory" }

func (p *compulsoryPair) Propagate(st *csp.Store) error {
	if err := p.dir(st, p.a, p.b); err != nil {
		return err
	}
	return p.dir(st, p.b, p.a)
}

func (p *compulsoryPair) dir(st *csp.Store, narrow, other *Object) error {
	if narrow.Assigned() {
		return nil // the nonOverlapPair already handles fixed objects
	}
	comp := compulsoryRegion(narrow)
	if comp == nil {
		return nil
	}
	box := boundsOfBitmap(comp)
	return st.FilterDomain(other.Place, func(val int) bool {
		osid, ox, oy := other.Decode(val)
		og := &other.Shapes[osid]
		if !box.Overlaps(grid.RectXYWH(ox, oy, og.W, og.H)) {
			return true
		}
		return !comp.AnyAt(og.Points, grid.Pt(ox, oy))
	})
}

// boundsOfBitmap returns the tight bounding rect of the set bits.
func boundsOfBitmap(b *grid.Bitmap) grid.Rect {
	r := grid.Rect{}
	for y := 0; y < b.H(); y++ {
		for x := 0; x < b.W(); x++ {
			if b.Get(x, y) {
				r = r.Union(grid.RectXYWH(x, y, 1, 1))
			}
		}
	}
	return r
}

// PostCompulsoryNonOverlap adds compulsory-part pruning to all object
// pairs. Call it after PostNonOverlap; it strengthens, not replaces, the
// forward checking.
func (k *Kernel) PostCompulsoryNonOverlap() {
	for i := 0; i < len(k.objects); i++ {
		for j := i + 1; j < len(k.objects); j++ {
			a, b := k.objects[i], k.objects[j]
			k.st.Post(&compulsoryPair{k: k, a: a, b: b}, a.Place, b.Place)
		}
	}
}
