package main

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExampleRuns is the smoke test for this example program: it must
// build, run to completion quickly, and print its headline output.
// The example is executed as a real process (go run .) so the test
// covers exactly what the README tells a reader to type.
func TestExampleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go tool")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, "go", "run", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("example failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "allocated region") {
		t.Fatalf("example output lost its headline line %s:\n%s", "allocated region", out)
	}
}
