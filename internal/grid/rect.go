package grid

import "fmt"

// Rect is a half-open axis-aligned rectangle of tiles:
// {(x, y) | MinX <= x < MaxX, MinY <= y < MaxY}.
// A Rect with MaxX <= MinX or MaxY <= MinY is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// RectXYWH builds a rectangle from an origin and a size. Negative sizes
// yield an empty rectangle.
func RectXYWH(x, y, w, h int) Rect {
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// W returns the width of r (0 if empty).
func (r Rect) W() int {
	if r.MaxX <= r.MinX {
		return 0
	}
	return r.MaxX - r.MinX
}

// H returns the height of r (0 if empty).
func (r Rect) H() int {
	if r.MaxY <= r.MinY {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the number of tiles covered by r.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether r contains no tiles.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.MinX + d.X, r.MinY + d.Y, r.MaxX + d.X, r.MaxY + d.Y}
}

// Intersect returns the common tiles of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: max(r.MinX, s.MinX),
		MinY: max(r.MinY, s.MinY),
		MaxX: min(r.MaxX, s.MaxX),
		MaxY: min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. Empty
// inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: min(r.MinX, s.MinX),
		MinY: min(r.MinY, s.MinY),
		MaxX: max(r.MaxX, s.MaxX),
		MaxY: max(r.MaxY, s.MaxY),
	}
}

// Overlaps reports whether r and s share at least one tile.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.MinX < s.MaxX && s.MinX < r.MaxX &&
		r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Contains reports whether every tile of s is a tile of r. An empty s is
// contained in every rectangle.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// Points returns all tiles of r in canonical (Y, X) order.
func (r Rect) Points() []Point {
	if r.Empty() {
		return nil
	}
	out := make([]Point, 0, r.Area())
	for y := r.MinY; y < r.MaxY; y++ {
		for x := r.MinX; x < r.MaxX; x++ {
			out = append(out, Point{x, y})
		}
	}
	return out
}

// String returns "[minX,minY)x[maxX,maxY)" style text.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
