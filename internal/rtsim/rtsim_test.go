package rtsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

func clbModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

func region() *fabric.Region { return fabric.Homogeneous(12, 10).FullRegion() }

func twoPhases() []Phase {
	shared := clbModule("shared", 4, 3)
	return []Phase{
		{
			Name:    "A",
			Modules: []*module.Module{shared, clbModule("a1", 3, 3), clbModule("a2", 2, 2)},
			Dwell:   100 * time.Millisecond,
		},
		{
			Name:    "B",
			Modules: []*module.Module{shared, clbModule("b1", 5, 2)},
			Dwell:   50 * time.Millisecond,
		},
	}
}

func TestPlanFreshBasics(t *testing.T) {
	tl, err := Plan(region(), twoPhases(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Plans) != 2 {
		t.Fatalf("plans = %d", len(tl.Plans))
	}
	// First phase: everything enters.
	if len(tl.Plans[0].Entering) != 3 || len(tl.Plans[0].Kept) != 0 {
		t.Fatalf("phase A enter/keep = %d/%d", len(tl.Plans[0].Entering), len(tl.Plans[0].Kept))
	}
	for _, p := range tl.Plans {
		if err := p.Result.Validate(region()); err != nil {
			t.Fatalf("phase %s: %v", p.Phase.Name, err)
		}
		if p.SwitchTime <= 0 {
			t.Fatalf("phase %s: zero switch time with entering modules", p.Phase.Name)
		}
	}
	if tl.TotalDwell != 150*time.Millisecond {
		t.Fatalf("dwell = %v", tl.TotalDwell)
	}
	if tl.Overhead() <= 0 || tl.Overhead() >= 1 {
		t.Fatalf("overhead = %v", tl.Overhead())
	}
	if !strings.Contains(tl.String(), "2 phases") {
		t.Fatalf("String = %q", tl.String())
	}
}

func TestPlanPersistentKeepsSurvivors(t *testing.T) {
	tl, err := Plan(region(), twoPhases(), Options{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	b := tl.Plans[1]
	if len(b.Kept) != 1 || b.Kept[0] != "shared" {
		t.Fatalf("phase B kept = %v", b.Kept)
	}
	if len(b.Entering) != 1 || b.Entering[0] != "b1" {
		t.Fatalf("phase B entering = %v", b.Entering)
	}
	// The survivor keeps its exact placement.
	find := func(ps *PhasePlan, name string) (int, bool) {
		for i, p := range ps.Result.Placements {
			if p.Module.Name() == name {
				return i, true
			}
		}
		return 0, false
	}
	ia, oka := find(&tl.Plans[0], "shared")
	ib, okb := find(&tl.Plans[1], "shared")
	if !oka || !okb {
		t.Fatal("shared module missing from a phase")
	}
	pa := tl.Plans[0].Result.Placements[ia]
	pb := tl.Plans[1].Result.Placements[ib]
	if pa.At != pb.At || pa.ShapeIndex != pb.ShapeIndex {
		t.Fatalf("survivor moved: %v -> %v", pa, pb)
	}
	// The combined phase-B placement is valid on the original region.
	if err := b.Result.Validate(region()); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentCheaperSwitchThanFresh(t *testing.T) {
	// Fresh planning may move the shared module (it re-optimises); the
	// persistent plan never pays for survivors, so its phase-B switch
	// cost is at most fresh's.
	fresh, err := Plan(region(), twoPhases(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := Plan(region(), twoPhases(), Options{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if persistent.Plans[1].SwitchTime > fresh.Plans[1].SwitchTime {
		t.Fatalf("persistent switch %v > fresh %v",
			persistent.Plans[1].SwitchTime, fresh.Plans[1].SwitchTime)
	}
}

func TestPlanRepeatedPhaseNoSwitch(t *testing.T) {
	shared := clbModule("m", 3, 3)
	phases := []Phase{
		{Name: "p1", Modules: []*module.Module{shared}, Dwell: time.Millisecond},
		{Name: "p2", Modules: []*module.Module{shared}, Dwell: time.Millisecond},
	}
	tl, err := Plan(region(), phases, Options{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Plans[1].SwitchTime != 0 || len(tl.Plans[1].Entering) != 0 {
		t.Fatalf("identical phase still reconfigures: %+v", tl.Plans[1])
	}
}

func TestPlanErrors(t *testing.T) {
	r := region()
	if _, err := Plan(r, nil, Options{}); err == nil {
		t.Error("empty schedule accepted")
	}
	bad := []Phase{{Name: "", Modules: []*module.Module{clbModule("m", 1, 1)}}}
	if _, err := Plan(r, bad, Options{}); err == nil {
		t.Error("unnamed phase accepted")
	}
	dup := []Phase{{Name: "p", Modules: []*module.Module{clbModule("m", 1, 1), clbModule("m", 2, 2)}}}
	if _, err := Plan(r, dup, Options{}); err == nil {
		t.Error("duplicate module accepted")
	}
	noMods := []Phase{{Name: "p"}}
	if _, err := Plan(r, noMods, Options{}); err == nil {
		t.Error("empty phase accepted")
	}
	negDwell := []Phase{{Name: "p", Modules: []*module.Module{clbModule("m", 1, 1)}, Dwell: -1}}
	if _, err := Plan(r, negDwell, Options{}); err == nil {
		t.Error("negative dwell accepted")
	}
	big := []Phase{{Name: "p", Modules: []*module.Module{clbModule("m", 20, 20)}}}
	if _, err := Plan(r, big, Options{}); err == nil {
		t.Error("oversized module accepted")
	}
}

func TestPlanPersistentInfeasibleEntering(t *testing.T) {
	// Phase A fills the region; phase B keeps it and adds more than fits.
	phases := []Phase{
		{Name: "A", Modules: []*module.Module{clbModule("big", 12, 9)}, Dwell: time.Millisecond},
		{Name: "B", Modules: []*module.Module{clbModule("big", 12, 9), clbModule("more", 6, 6)}, Dwell: time.Millisecond},
	}
	if _, err := Plan(region(), phases, Options{Persistent: true}); err == nil {
		t.Fatal("overfull persistent phase accepted")
	}
}

func TestOverheadZeroCases(t *testing.T) {
	var tl Timeline
	if tl.Overhead() != 0 {
		t.Fatal("empty timeline overhead not 0")
	}
}

func TestParseSchedule(t *testing.T) {
	lib := Library([]*module.Module{
		clbModule("a", 2, 2), clbModule("b", 3, 2), clbModule("c", 2, 3),
	})
	text := `
# two phases
phase boot 10ms
use a b
phase run 40ms
use a c
`
	phases, err := ParseSchedule(strings.NewReader(text), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	if phases[0].Name != "boot" || phases[0].Dwell != 10*time.Millisecond || len(phases[0].Modules) != 2 {
		t.Fatalf("phase 0: %+v", phases[0])
	}
	if phases[1].Modules[1].Name() != "c" {
		t.Fatal("module resolution wrong")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	lib := Library([]*module.Module{clbModule("a", 1, 1)})
	cases := map[string]string{
		"empty":          "",
		"use outside":    "use a\n",
		"bad dwell":      "phase p xx\nuse a\n",
		"unknown module": "phase p 1ms\nuse ghost\n",
		"empty use":      "phase p 1ms\nuse\n",
		"unknown":        "phase p 1ms\nwibble\n",
		"no modules":     "phase p 1ms\n",
		"bad header":     "phase p\n",
	}
	for name, text := range cases {
		if _, err := ParseSchedule(strings.NewReader(text), lib); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLibrary(t *testing.T) {
	mods := []*module.Module{clbModule("x", 1, 1), clbModule("y", 2, 1)}
	lib := Library(mods)
	if len(lib) != 2 || lib["x"] != mods[0] || lib["y"] != mods[1] {
		t.Fatalf("library: %v", lib)
	}
}
