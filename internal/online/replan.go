package online

import (
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/obs"
)

// MoveReporter is an optional Manager extension: a manager that
// relocates already-resident modules (defragmentation) exposes the
// relocation moves of its last TryPlace here. The simulator drains the
// moves after every TryPlace, validates each step, and charges the
// configuration port for them — relocation is not free.
type MoveReporter interface {
	PendingMoves() []Move
}

// ReplanFirstFit is first-fit with CP-driven defragmentation: when
// greedy first-fit cannot place an arrival, the constraint-programming
// placer computes a fresh layout for all residents plus the newcomer,
// the relocations are ordered so every intermediate state is valid, and
// the arrival is admitted into the compacted layout. This brings the
// offline placer's strength — including design alternatives — to the
// online setting, at the price of relocation reconfigurations.
type ReplanFirstFit struct {
	FirstFit
	// Budget configures each replan solve (FirstSolutionOnly is forced).
	Budget core.Options
	// Metrics, when non-nil, counts replan attempts and successes
	// (online_replans_total, online_replans_success_total) and times each
	// replan solve (online_replan_seconds). Nil-safe.
	Metrics *obs.Registry

	pending []Move
}

// Name implements Manager.
func (m *ReplanFirstFit) Name() string { return "first-fit+cp-replan" }

// PendingMoves implements MoveReporter.
func (m *ReplanFirstFit) PendingMoves() []Move {
	out := m.pending
	m.pending = nil
	return out
}

// TryPlace implements Manager.
func (m *ReplanFirstFit) TryPlace(t Task) (Placement, bool) {
	if p, ok := m.FirstFit.TryPlace(t); ok {
		return p, ok
	}
	return m.replan(t)
}

// replan computes a joint layout of residents + newcomer and derives an
// ordered relocation plan.
func (m *ReplanFirstFit) replan(t Task) (Placement, bool) {
	m.Metrics.Counter("online_replans_total").Inc()
	defer m.Metrics.Timer("online_replan").Stop()
	// Deterministic resident order.
	ids := make([]TaskID, 0, len(m.resident))
	//solverlint:allow nondeterminism keys are sorted immediately below before any decision depends on them
	for id := range m.resident {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	mods := make([]*module.Module, 0, len(ids)+1)
	for _, id := range ids {
		mods = append(mods, m.resident[id].module)
	}
	mods = append(mods, t.Module)

	budget := m.Budget
	budget.FirstSolutionOnly = true
	target, err := core.New(m.region, budget).Place(mods)
	if err != nil || !target.Found {
		return Placement{}, false
	}

	// Order the resident relocations (the newcomer configures last, onto
	// cells that are free once all moves are applied).
	occ := m.occ.Clone()
	cur := map[TaskID][]grid.Point{}
	var todo []pendingMove
	for i, id := range ids {
		p := target.Placements[i]
		rec := m.resident[id]
		cur[id] = rec.pts
		if p.At == rec.at && p.ShapeIndex == rec.shape {
			continue
		}
		todo = append(todo, pendingMove{id: id, shape: p.ShapeIndex, at: p.At, target: p.Tiles()})
	}
	moves, stuck := orderMoves(occ, cur, todo)
	if stuck > 0 {
		return Placement{}, false // relocation cycle: give up
	}

	// Commit the plan to the manager's own state.
	for _, mv := range moves {
		rec := m.resident[mv.ID]
		m.occ.SetPoints(rec.pts, false)
		m.commit(mv.ID, rec.module, mv.Shape, mv.At.X, mv.At.Y)
	}
	m.pending = moves
	newcomer := target.Placements[len(target.Placements)-1]
	m.commit(t.ID, t.Module, newcomer.ShapeIndex, newcomer.At.X, newcomer.At.Y)
	m.Metrics.Counter("online_replans_success_total").Inc()
	return Placement{Shape: newcomer.ShapeIndex, At: newcomer.At}, true
}
