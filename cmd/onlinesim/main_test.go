package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllManagers(t *testing.T) {
	if err := run("spartan-like-24x16", "", 30, 1, 3, 60, 4, 10, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleManager(t *testing.T) {
	if err := run("spartan-like-24x16", "", 20, 1, 3, 60, 4, 10, 0, "first-fit"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegionFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.spec")
	if err := os.WriteFile(path, []byte("region t 20 10\nbramcols 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 15, 2, 3, 60, 4, 10, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", 10, 1, 3, 60, 4, 10, 0, ""); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("spartan-like-24x16", "", 10, 1, 3, 60, 4, 10, 0, "bogus-manager"); err == nil {
		t.Error("unknown manager accepted")
	}
	if err := run("", "/nonexistent", 10, 1, 3, 60, 4, 10, 0, ""); err == nil {
		t.Error("missing region file accepted")
	}
}
