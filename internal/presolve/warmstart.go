package presolve

import (
	"sort"

	"repro/internal/geost"
	"repro/internal/grid"
)

// warmStart runs bottom-left-decreasing first-fit over the pruned
// placement domains: objects in decreasing order of their cheapest
// surviving alternative's tile count (stable on input order), each
// taking the first candidate value in (y, x, shape) order that does
// not collide with the occupancy painted so far. Operating on the
// domains — rather than re-deriving anchors as internal/baseline does —
// means region bounds, resource compatibility, bus-row attachment and
// any root-level pruning are all honoured for free, so a completed
// pass is a feasible placement by construction. Its height seeds the
// branch-and-bound incumbent; failure to complete simply leaves the
// search cold (WarmFound=false), never an error.
// warmKeys orders objects for one first-fit pass: decreasing primary
// key with the object index as the deterministic tie-break.
func warmOrder(objs []*geost.Object, key func(o *geost.Object) int) []int {
	order := make([]int, len(objs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return key(objs[order[a]]) > key(objs[order[b]])
	})
	return order
}

func warmStart(k *geost.Kernel, stats *Stats) {
	objs := k.Objects()
	keys := []func(o *geost.Object) int{
		minTiles,
		func(o *geost.Object) int { return maxDim(o, false) },
		func(o *geost.Object) int { return maxDim(o, true) },
	}
	for _, key := range keys {
		vals, top, ok := warmPass(k, warmOrder(objs, key))
		if !ok {
			continue
		}
		top = descend(k, vals, top)
		if !stats.WarmFound || top < stats.WarmObjective {
			stats.WarmFound = true
			stats.WarmObjective = top
			stats.WarmValues = vals
		}
	}
}

// descend lowers a feasible placement's occupied height by local moves:
// as long as every object touching the top row can be re-placed (any
// alternative, any anchor) strictly below it without colliding with the
// rest, the top row peels off and the descent repeats one row further
// down. It mutates vals in place and returns the final height.
func descend(k *geost.Kernel, vals []int, top int) int {
	objs := k.Objects()
	occ := grid.NewBitmap(k.W(), k.H())
	for i, o := range objs {
		sid, x, y := o.Decode(vals[i])
		occ.SetPoints(translate(o.Shapes[sid].Points, grid.Pt(x, y)), true)
	}
	for {
		moved := true
		for i, o := range objs {
			if o.TopOf(vals[i]) < top {
				continue
			}
			sid, x, y := o.Decode(vals[i])
			own := translate(o.Shapes[sid].Points, grid.Pt(x, y))
			occ.SetPoints(own, false)
			placed := false
			o.Place.Domain().ForEach(func(v int) bool {
				if o.TopOf(v) >= top {
					return true
				}
				nsid, nx, ny := o.Decode(v)
				g := &o.Shapes[nsid]
				at := grid.Pt(nx, ny)
				if occ.AnyAt(g.Points, at) {
					return true
				}
				occ.SetPoints(translate(g.Points, at), true)
				vals[i] = v
				placed = true
				return false
			})
			if !placed {
				occ.SetPoints(own, true)
				moved = false
				break
			}
		}
		if !moved {
			return top
		}
		newTop := 0
		for i, o := range objs {
			if t := o.TopOf(vals[i]); t > newTop {
				newTop = t
			}
		}
		top = newTop
	}
}

func warmPass(k *geost.Kernel, order []int) (vals []int, maxTop int, ok bool) {
	objs := k.Objects()
	occ := grid.NewBitmap(k.W(), k.H())
	vals = make([]int, len(objs))
	for _, idx := range order {
		o := objs[idx]
		cands := o.Place.Domain().Values()
		sort.SliceStable(cands, func(a, b int) bool {
			ta, tb := o.TopOf(cands[a]), o.TopOf(cands[b])
			if ta != tb {
				return ta < tb
			}
			sa, xa, ya := o.Decode(cands[a])
			sb, xb, yb := o.Decode(cands[b])
			if ya != yb {
				return ya < yb
			}
			if xa != xb {
				return xa < xb
			}
			return sa < sb
		})
		placed := false
		for _, v := range cands {
			sid, x, y := o.Decode(v)
			g := &o.Shapes[sid]
			at := grid.Pt(x, y)
			if occ.AnyAt(g.Points, at) {
				continue
			}
			occ.SetPoints(translate(g.Points, at), true)
			vals[idx] = v
			if t := o.TopOf(v); t > maxTop {
				maxTop = t
			}
			placed = true
			break
		}
		if !placed {
			return nil, 0, false
		}
	}
	return vals, maxTop, true
}

// maxDim returns the largest height (or width) over the object's
// shapes still present in its domain.
func maxDim(o *geost.Object, width bool) int {
	best := 0
	for sid := range o.Shapes {
		if !o.ShapePresent(sid) {
			continue
		}
		d := o.Shapes[sid].H
		if width {
			d = o.Shapes[sid].W
		}
		if d > best {
			best = d
		}
	}
	return best
}

// minTiles returns the smallest tile count over the object's shapes
// still present in its domain.
func minTiles(o *geost.Object) int {
	best := -1
	for sid := range o.Shapes {
		if !o.ShapePresent(sid) {
			continue
		}
		if n := len(o.Shapes[sid].Points); best < 0 || n < best {
			best = n
		}
	}
	return best
}

// translate returns ps shifted by d.
func translate(ps []grid.Point, d grid.Point) []grid.Point {
	out := make([]grid.Point, len(ps))
	for i, p := range ps {
		out[i] = p.Add(d)
	}
	return out
}
