// Package csp is a small finite-domain constraint-programming kernel:
// integer variables with bitset domains, propagators run to fixpoint over
// a watch-based queue, chronological backtracking with trailing, and
// depth-first search with branch-and-bound minimisation.
//
// It is the solving substrate under the geost geometric kernel and the
// module placer, playing the role the SICStus/choco-hosted solver of
// Beldiceanu et al. plays in the paper. The kernel is deliberately
// general — classic finite-domain constraints, pluggable search — so it
// is usable (and tested) independently of placement.
package csp

import (
	"fmt"
	"math/bits"
	"strings"
)

// Domain is a finite set of integers in a fixed universe established at
// construction. It is a dense bitset with cached size and bounds; all
// mutating operations report whether they changed the set, which drives
// propagation scheduling.
//
// Domains are value types owned by the Store once attached to a
// variable; constraint code must mutate them only through Store methods
// so trailing and watcher wake-ups happen.
type Domain struct {
	base  int // value of bit 0; multiple of 64 offsets are not required
	words []uint64
	size  int
	min   int
	max   int
}

// NewDomainRange returns the domain {lo..hi} (inclusive). It panics if
// hi < lo: an empty universe is a caller bug, while an empty *domain*
// arises only from pruning.
func NewDomainRange(lo, hi int) *Domain {
	if hi < lo {
		panic(fmt.Sprintf("csp: empty domain range [%d,%d]", lo, hi))
	}
	n := hi - lo + 1
	d := &Domain{base: lo, words: make([]uint64, (n+63)/64), size: n, min: lo, max: hi}
	for i := 0; i < n; i++ {
		d.words[i>>6] |= 1 << uint(i&63)
	}
	return d
}

// NewDomainValues returns the domain holding exactly the given values
// (duplicates ignored). It panics on an empty list.
func NewDomainValues(vals ...int) *Domain {
	if len(vals) == 0 {
		panic("csp: empty domain value list")
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	d := &Domain{base: lo, words: make([]uint64, (hi-lo+64)/64)}
	for _, v := range vals {
		i := v - lo
		w, b := i>>6, uint(i&63)
		if d.words[w]&(1<<b) == 0 {
			d.words[w] |= 1 << b
			d.size++
		}
	}
	d.min, d.max = lo, hi
	return d
}

// Clone returns an independent copy.
func (d *Domain) Clone() *Domain {
	w := make([]uint64, len(d.words))
	copy(w, d.words)
	return &Domain{base: d.base, words: w, size: d.size, min: d.min, max: d.max}
}

// Size returns the number of values.
func (d *Domain) Size() int { return d.size }

// Empty reports whether the domain has no values.
func (d *Domain) Empty() bool { return d.size == 0 }

// Singleton returns the sole value and true when exactly one value
// remains.
func (d *Domain) Singleton() (int, bool) {
	if d.size == 1 {
		return d.min, true
	}
	return 0, false
}

// Min returns the smallest value. It panics on an empty domain.
func (d *Domain) Min() int {
	if d.size == 0 {
		panic("csp: Min of empty domain")
	}
	return d.min
}

// Max returns the largest value. It panics on an empty domain.
func (d *Domain) Max() int {
	if d.size == 0 {
		panic("csp: Max of empty domain")
	}
	return d.max
}

// Contains reports whether v is in the domain.
func (d *Domain) Contains(v int) bool {
	i := v - d.base
	if i < 0 || i >= len(d.words)*64 {
		return false
	}
	return d.words[i>>6]&(1<<uint(i&63)) != 0
}

func (d *Domain) recomputeBounds() {
	if d.size == 0 {
		return
	}
	for w, word := range d.words {
		if word != 0 {
			d.min = d.base + w*64 + bits.TrailingZeros64(word)
			break
		}
	}
	for w := len(d.words) - 1; w >= 0; w-- {
		if d.words[w] != 0 {
			d.max = d.base + w*64 + 63 - bits.LeadingZeros64(d.words[w])
			break
		}
	}
}

// Union adds every value of o to d, reporting whether d changed. Both
// domains must share a universe: a value of o that lies outside d's
// allocated range is a caller bug and panics (growing the bitset would
// silently break the copy-on-write trail, which snapshots fixed-width
// word slices).
func (d *Domain) Union(o *Domain) bool {
	changed := false
	o.ForEach(func(v int) bool {
		i := v - d.base
		if i < 0 || i >= len(d.words)*64 {
			panic(fmt.Sprintf("csp: Union value %d outside domain universe [%d,%d]",
				v, d.base, d.base+len(d.words)*64-1))
		}
		w, b := i>>6, uint(i&63)
		if d.words[w]&(1<<b) == 0 {
			d.words[w] |= 1 << b
			d.size++
			changed = true
		}
		return true
	})
	if changed {
		d.recomputeBounds()
	}
	return changed
}

// Bisect splits the domain at the midpoint of its bounds, returning
// independent lower and upper halves: lo holds the values ≤
// (min+max)/2, hi the rest. The receiver is left untouched. lo is never
// empty; hi is empty exactly when the domain is a singleton. Bisect
// panics on an empty domain.
func (d *Domain) Bisect() (lo, hi *Domain) {
	if d.size == 0 {
		panic("csp: Bisect of empty domain")
	}
	mid := d.min + (d.max-d.min)/2
	lo = d.Clone()
	lo.RemoveAbove(mid)
	hi = d.Clone()
	hi.RemoveBelow(mid + 1)
	return lo, hi
}

// Remove deletes v, reporting whether the domain changed.
func (d *Domain) Remove(v int) bool {
	i := v - d.base
	if i < 0 || i >= len(d.words)*64 {
		return false
	}
	w, b := i>>6, uint(i&63)
	if d.words[w]&(1<<b) == 0 {
		return false
	}
	d.words[w] &^= 1 << b
	d.size--
	if d.size > 0 && (v == d.min || v == d.max) {
		d.recomputeBounds()
	}
	return true
}

// RemoveBelow deletes every value < v, reporting change.
func (d *Domain) RemoveBelow(v int) bool {
	if d.size == 0 || v <= d.min {
		return false
	}
	changed := false
	i := v - d.base
	if i >= len(d.words)*64 {
		i = len(d.words) * 64
	}
	fullWords := i >> 6
	for w := 0; w < fullWords; w++ {
		if d.words[w] != 0 {
			d.size -= bits.OnesCount64(d.words[w])
			d.words[w] = 0
			changed = true
		}
	}
	if fullWords < len(d.words) && i&63 != 0 {
		mask := uint64(1)<<uint(i&63) - 1
		if kill := d.words[fullWords] & mask; kill != 0 {
			d.size -= bits.OnesCount64(kill)
			d.words[fullWords] &^= mask
			changed = true
		}
	}
	if changed && d.size > 0 {
		d.recomputeBounds()
	}
	return changed
}

// RemoveAbove deletes every value > v, reporting change.
func (d *Domain) RemoveAbove(v int) bool {
	if d.size == 0 || v >= d.max {
		return false
	}
	changed := false
	i := v - d.base + 1 // first bit index to kill
	if i < 0 {
		i = 0 // v below the universe: kill everything
	}
	startWord := i >> 6
	if startWord < len(d.words) && i&63 != 0 {
		mask := ^(uint64(1)<<uint(i&63) - 1)
		if kill := d.words[startWord] & mask; kill != 0 {
			d.size -= bits.OnesCount64(kill)
			d.words[startWord] &^= mask
			changed = true
		}
		startWord++
	}
	for w := startWord; w < len(d.words); w++ {
		if d.words[w] != 0 {
			d.size -= bits.OnesCount64(d.words[w])
			d.words[w] = 0
			changed = true
		}
	}
	if changed && d.size > 0 {
		d.recomputeBounds()
	}
	return changed
}

// KeepOnly reduces the domain to {v} if present; otherwise it empties
// the domain. Reports change.
func (d *Domain) KeepOnly(v int) bool {
	if !d.Contains(v) {
		if d.size == 0 {
			return false
		}
		for i := range d.words {
			d.words[i] = 0
		}
		d.size = 0
		return true
	}
	if d.size == 1 {
		return false
	}
	for i := range d.words {
		d.words[i] = 0
	}
	i := v - d.base
	d.words[i>>6] = 1 << uint(i&63)
	d.size = 1
	d.min, d.max = v, v
	return true
}

// Filter retains only values for which keep returns true, reporting
// change.
func (d *Domain) Filter(keep func(int) bool) bool {
	changed := false
	for w := range d.words {
		word := d.words[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			v := d.base + w*64 + b
			if !keep(v) {
				d.words[w] &^= 1 << uint(b)
				d.size--
				changed = true
			}
		}
	}
	if changed && d.size > 0 {
		d.recomputeBounds()
	}
	return changed
}

// AnyInRange reports whether the domain holds any value in [lo, hi]
// (inclusive). It scans whole words, so testing a block of encoded
// values is far cheaper than iterating them.
func (d *Domain) AnyInRange(lo, hi int) bool {
	if d.size == 0 || hi < lo {
		return false
	}
	i := lo - d.base
	j := hi - d.base
	if j < 0 || i >= len(d.words)*64 {
		return false
	}
	if i < 0 {
		i = 0
	}
	if j >= len(d.words)*64 {
		j = len(d.words)*64 - 1
	}
	wi, wj := i>>6, j>>6
	if wi == wj {
		mask := (^uint64(0) << uint(i&63)) & (^uint64(0) >> uint(63-j&63))
		return d.words[wi]&mask != 0
	}
	if d.words[wi]&(^uint64(0)<<uint(i&63)) != 0 {
		return true
	}
	for w := wi + 1; w < wj; w++ {
		if d.words[w] != 0 {
			return true
		}
	}
	return d.words[wj]&(^uint64(0)>>uint(63-j&63)) != 0
}

// ForEach calls fn on every value in ascending order until fn returns
// false.
func (d *Domain) ForEach(fn func(int) bool) {
	for w := range d.words {
		word := d.words[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			if !fn(d.base + w*64 + b) {
				return
			}
		}
	}
}

// Values returns all values in ascending order.
func (d *Domain) Values() []int {
	out := make([]int, 0, d.size)
	d.ForEach(func(v int) bool { out = append(out, v); return true })
	return out
}

// Equal reports whether d and o contain the same values.
func (d *Domain) Equal(o *Domain) bool {
	if d.size != o.size {
		return false
	}
	eq := true
	d.ForEach(func(v int) bool {
		if !o.Contains(v) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// String renders small domains as "{1,3,5}" and large ones as
// "{lo..hi|n}".
func (d *Domain) String() string {
	if d.size == 0 {
		return "{}"
	}
	if d.size > 12 {
		return fmt.Sprintf("{%d..%d|%d}", d.min, d.max, d.size)
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	d.ForEach(func(v int) bool {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%d", v)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
