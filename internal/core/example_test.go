package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/module"
)

// Example places two polymorphic modules optimally on a small region.
func Example() {
	region := fabric.Homogeneous(4, 8).FullRegion()

	bar := func(name string) *module.Module {
		m, err := module.GenerateAlternatives(name, module.Demand{CLB: 4},
			module.AlternativeOptions{Count: 2, BaseWidth: 4, WidthDeltas: []int{-3}})
		if err != nil {
			panic(err)
		}
		return m
	}

	res, err := core.New(region, core.Options{}).Place([]*module.Module{bar("a"), bar("b")})
	if err != nil {
		panic(err)
	}
	fmt.Printf("found=%v optimal=%v height=%d util=%.0f%%\n",
		res.Found, res.Optimal, res.Height, res.Utilization*100)
	// Output:
	// found=true optimal=true height=2 util=100%
}
