package service

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/baseline"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Placement quality tags: every 200 placement response carries one in
// the X-Placement-Quality header, and approximate responses repeat it
// in the body's quality field (omitted on exact responses, keeping
// exact bodies byte-identical to the pre-degradation wire format).
const (
	// QualityExact marks a placement produced by the constraint solver.
	QualityExact = "exact"
	// QualityApproximate marks a placement produced by a baseline
	// heuristic after the exact solve missed its deadline or was shed.
	QualityApproximate = "approximate"
)

// regionFor materialises the request's fabric region (the full device,
// or the requested window).
func regionFor(creq *canon.Request) (*fabric.Region, error) {
	dev, err := fabric.ByName(creq.Fabric)
	if err != nil {
		return nil, err
	}
	region := dev.FullRegion()
	if creq.Region != (grid.Rect{}) {
		region = dev.Region(creq.Region)
		if region.W() <= 0 || region.H() <= 0 {
			return nil, fmt.Errorf("region %v lies outside fabric %s", creq.Region, creq.Fabric)
		}
	}
	return region, nil
}

// serveDegraded is the graceful-degradation path: the exact solve
// missed its deadline or was shed by admission, so place the instance
// with the fast approximate heuristics instead of failing the request.
// It returns false — leaving the original error response to the caller
// — when the fallback cannot produce a valid placement either.
// Degraded bodies are never cached: the instance deserves an exact
// answer once capacity returns.
func (s *Server) serveDegraded(w http.ResponseWriter, tr *obs.Trace, out *placeOutcome, creq *canon.Request, digest canon.Digest) bool {
	sp := tr.StartSpan("degrade")
	start := time.Now()
	res, err := s.fallback(creq)
	elapsed := time.Since(start)
	if sp != nil {
		found := err == nil && res != nil && res.Found
		sp.SetAttrs(obs.Bool("found", found))
		if err != nil {
			sp.SetAttrs(obs.String("error", err.Error()))
		}
		sp.End()
	}
	if err != nil || res == nil || !res.Found {
		return false
	}
	body, err := buildResponse(digest, creq, res, QualityApproximate)
	if err != nil {
		return false
	}
	s.degraded.Inc()
	s.cfg.Registry.ObserveDuration("service_degrade", elapsed)
	out.status = http.StatusOK
	out.errText = ""
	out.quality = QualityApproximate
	writePlacement(w, body, digest, false, QualityApproximate)
	return true
}

// solveApproximate is the production fallback: the baseline heuristic
// placers over the same region and module set as the exact solve —
// bottom-left-decreasing first (the stronger packer), plain first-fit
// as the second chance (its input-order traversal can succeed where
// the sorted order wedges). A placement that fails the core validity
// checks is never served; milliseconds of heuristic work replace the
// multi-second exact search.
func (s *Server) solveApproximate(creq *canon.Request) (*core.Result, error) {
	region, err := regionFor(creq)
	if err != nil {
		return nil, err
	}
	var firstErr error
	for _, alg := range []baseline.Algorithm{baseline.BottomLeftDecreasing, baseline.FirstFit} {
		res, err := baseline.Place(region, creq.Modules, alg, baseline.Options{UseAlternatives: true})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !res.Found {
			continue
		}
		if err := res.Validate(region); err != nil {
			// A heuristic bug must surface as a failed degradation, not
			// an invalid 200.
			return nil, err
		}
		return res, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &core.Result{}, nil
}
