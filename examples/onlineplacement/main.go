// Onlineplacement contrasts the online space-management policies of the
// related-work landscape on one heterogeneous region: free-space
// first-fit and maximal-empty-rectangle best-fit (Bazargan-style),
// occupied-space management (Ahmadinia-style), and 1D slot placement —
// each with and without design alternatives where applicable. It prints
// the service level (fulfilled module requests) every policy achieves on
// the same seeded task stream.
//
// Run with: go run ./examples/onlineplacement
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/fabric"
	"repro/internal/online"
)

func main() {
	spec := fabric.Spec{
		Name: "online-48x24",
		W:    48, H: 24,
		BRAMColumns:    []int{6, 18, 30, 42},
		ClockRowPeriod: 12,
	}
	region := spec.MustBuild().FullRegion()

	stream := online.StreamConfig{
		Tasks:            150,
		MeanInterarrival: 3,
		MeanDuration:     90,
	}
	stream.Library.CLBMin, stream.Library.CLBMax = 8, 40
	stream.Library.BRAMMax = 2
	stream.Library.Alternatives = 4
	stream.Library.NumModules = 1

	tasks, err := online.GenerateStream(stream, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region %dx%d (%s), %d task arrivals\n\n",
		region.W(), region.H(), region.Histogram(), len(tasks))

	for _, mgr := range online.Managers() {
		st, err := online.Simulate(region, mgr, tasks, fabric.DefaultFrameModel())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %v\n", mgr.Name(), st)
	}

	fmt.Println("\nDesign alternatives raise the online service level the same")
	fmt.Println("way they raise offline utilization: more feasible positions per")
	fmt.Println("request mean fewer rejections on a fragmented fabric.")
}
