package solverlint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline on the request path (the driver
// scopes it to the request-path packages: service, client,
// faultinject):
//
//   - context.Background() and context.TODO() are banned: every
//     operation on the request path belongs to some request, and a
//     fresh root context silently detaches it from cancellation and
//     deadline propagation. Deliberately detached work (the
//     singleflight leader's solve) carries an allow pragma naming the
//     design decision.
//   - a function that receives a context.Context must actually use it
//     — an ignored ctx parameter means some callee is running without
//     the request's cancellation signal (or the parameter is dead
//     weight and should be dropped).
//   - a goroutine spawned where a context is in scope must not loop
//     without consulting it: each for/range loop inside the goroutine
//     body (or a select it contains) has to reference ctx.Done() or
//     ctx.Err(), otherwise request cancellation can never stop it.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-path packages must thread the request context: no context.Background()/TODO(), no ignored ctx parameters, and goroutine loops must watch ctx.Done()",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnusedCtxParam(pass, fd)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkFreshContext(pass, n)
			case *ast.GoStmt:
				checkGoroutineCtxLoops(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkFreshContext flags context.Background() and context.TODO().
func checkFreshContext(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s() on the request path detaches this work from request cancellation and deadlines: thread the caller's ctx instead (or allowlist a documented detachment)",
			name)
	}
}

// checkUnusedCtxParam flags named context.Context parameters that the
// function body never reads.
func checkUnusedCtxParam(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			if !identUsed(pass, fd.Body, obj) {
				pass.Reportf(name.Pos(),
					"context parameter %s is never used: callees run without the request's cancellation signal (thread it through, or drop the parameter)",
					name.Name)
			}
		}
	}
}

// identUsed reports whether obj is referenced anywhere inside body.
func identUsed(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return !used
	})
	return used
}

// checkGoroutineCtxLoops requires loops inside a spawned goroutine to
// consult a context when one is in scope at the go statement.
func checkGoroutineCtxLoops(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// The goroutine is held to the rule only when a context flows into
	// it: a ctx-typed parameter of the literal itself, or any
	// context-typed identifier captured from the enclosing scope.
	if !referencesContextValue(pass, lit) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			// Ranging over a channel has its own exit signal (close);
			// ranging over data is bounded.
			return true
		default:
			return true
		}
		if !mentionsCtxDone(pass, body) {
			pass.Reportf(n.Pos(),
				"goroutine loop never checks ctx.Done()/ctx.Err(): request cancellation cannot stop it (add a ctx.Done() select case or an Err() check)")
		}
		// Nested loops are covered by the outer report.
		return false
	})
}

// referencesContextValue reports whether any identifier of type
// context.Context appears in the literal (parameter or captured).
func referencesContextValue(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		var obj types.Object
		if o := pass.TypesInfo.Uses[id]; o != nil {
			obj = o
		} else if o := pass.TypesInfo.Defs[id]; o != nil {
			obj = o
		}
		if obj != nil {
			if _, isVar := obj.(*types.Var); isVar && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsCtxDone reports whether node contains <ctx>.Done() or
// <ctx>.Err() on a context-typed receiver.
func mentionsCtxDone(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return !found
		}
		if t := pass.TypeOf(sel.X); t != nil && isContextType(t) {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
