// Package nondeterminism is a fixture: wall-clock reads, randomness,
// and map iteration in "solver" code, with and without allowlisting.
package nondeterminism

import (
	"math/rand"
	"sort"
	"time"
)

// deadline mirrors the documented Options.Deadline polling site.
func deadline(d time.Time) bool {
	//solverlint:allow nondeterminism deadline polling is an explicitly anytime (non-deterministic) stop
	return !d.IsZero() && time.Now().After(d)
}

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func sleepOK() {
	time.Sleep(time.Millisecond) // sleeping does not branch the search: clean
}

func randomValue() int {
	return rand.Intn(10) // want `math/rand\.Intn introduces pseudo-randomness`
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m iterates in randomized order`
		total += v
	}
	return total
}

func sortedMapOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//solverlint:allow nondeterminism keys are sorted below before any order-dependent use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // slices iterate deterministically: clean
		total += v
	}
	return total
}
