// Package optvalidate is a fixture: an Options struct whose numeric
// fields are variously validated, half-validated, and forgotten.
package optvalidate

import (
	"fmt"
	"time"
)

// Options mirrors csp.Options.
type Options struct {
	MaxNodes   int64
	Workers    int
	SplitDepth int       // want `Options\.SplitDepth is read in withDefaults but no OptionError names it`
	StallNodes int64     // want `Options\.StallNodes is never referenced in withDefaults`
	Deadline   time.Time // non-numeric: exempt
	Choose     func() int
}

// OptionError mirrors csp.OptionError.
type OptionError struct {
	Field string
	Value int64
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("invalid Options.%s: %d", e.Field, e.Value)
}

func (o Options) withDefaults() (Options, error) {
	switch {
	case o.MaxNodes < 0:
		return o, &OptionError{Field: "MaxNodes", Value: o.MaxNodes}
	case o.Workers < 0:
		return o, &OptionError{Field: "Workers", Value: int64(o.Workers)}
	}
	if o.SplitDepth == 0 { // read, but never rejected with an OptionError
		o.SplitDepth = 1
	}
	return o, nil
}
