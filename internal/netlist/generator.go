package netlist

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterises random netlist generation.
type GenConfig struct {
	// LUTs, FFs, BRAMs, DSPs are primitive counts (defaults 160 LUTs,
	// 120 FFs).
	LUTs, FFs, BRAMs, DSPs int
	// AvgFanout is the mean pins per net (default 3; minimum 2).
	AvgFanout int
	// Nets is the net count (default cells/2).
	Nets int
}

func (c GenConfig) defaults() GenConfig {
	if c.LUTs == 0 && c.FFs == 0 && c.BRAMs == 0 && c.DSPs == 0 {
		c.LUTs, c.FFs = 160, 120
	}
	if c.AvgFanout < 2 {
		c.AvgFanout = 3
	}
	if c.Nets == 0 {
		c.Nets = (c.LUTs + c.FFs + c.BRAMs + c.DSPs) / 2
	}
	return c
}

// Generate draws a seeded random netlist: the requested primitive mix
// with locality-biased random nets (each net connects cells from a
// contiguous window of the cell list, approximating the clustered
// connectivity of real designs).
func Generate(name string, cfg GenConfig, rng *rand.Rand) (*Netlist, error) {
	cfg = cfg.defaults()
	n := &Netlist{Name: name}
	add := func(kind CellKind, count int, prefix string) {
		for i := 0; i < count; i++ {
			n.Cells = append(n.Cells, Cell{Name: fmt.Sprintf("%s%d", prefix, i), Kind: kind})
		}
	}
	add(LUT, cfg.LUTs, "lut")
	add(FF, cfg.FFs, "ff")
	add(BRAMCell, cfg.BRAMs, "bram")
	add(DSPCell, cfg.DSPs, "dsp")
	if len(n.Cells) < 2 {
		return nil, fmt.Errorf("netlist: config yields %d cells, need >= 2", len(n.Cells))
	}

	window := len(n.Cells) / 8
	if window < cfg.AvgFanout*2 {
		window = cfg.AvgFanout * 2
	}
	for i := 0; i < cfg.Nets; i++ {
		pins := 2 + rng.Intn(2*cfg.AvgFanout-3)
		start := rng.Intn(len(n.Cells))
		seen := map[string]bool{}
		var names []string
		for len(names) < pins {
			idx := (start + rng.Intn(window)) % len(n.Cells)
			name := n.Cells[idx].Name
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
			if len(seen) >= window { // window exhausted
				break
			}
		}
		if len(names) < 2 {
			continue
		}
		n.Nets = append(n.Nets, Net{Name: fmt.Sprintf("n%d", i), Pins: names})
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
