package csp

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file implements parallel depth-first search and branch-and-bound
// over cloned stores. The search tree is split at Options.SplitDepth
// leading branching levels into an ordered list of independent
// subproblems; Options.Workers goroutines, each owning one Store.Clone,
// pull subproblems from a shared index dispenser and solve them with
// the ordinary sequential recursion. The only mutable state shared
// between workers is the incumbent (published through an atomic
// pointer, read into every worker's bound cut) and the global
// node/stop counters.
//
// Determinism: for runs that exhaust the search space, MinimizeParallel
// returns exactly the objective AND solution that sequential Minimize
// would return, for any worker count. The incumbent is accepted under a
// mutex with the rule
//
//	accept ⇔ obj < best  ∨  (obj = best ∧ subtree < bestSubtree)
//
// i.e. ties are broken by the subproblem's position in the sequential
// visit order, never by arrival time. The lock-free cut each worker
// prunes with is derived from an atomically published (best, subtree)
// pair: obj ≤ best−1 for subtrees at or after the incumbent's, obj ≤
// best for earlier subtrees (which may still tie and win). A stale pair
// is always an older, weaker incumbent, so a torn read can only make
// the cut looser — never prune the sequential winner. Runs cut short
// by Deadline/StallNodes/MaxNodes depend on worker interleaving and are
// not deterministic (same as any anytime stop).
//
// Heuristics passed via Options (ChooseVar/OrderValues) are called
// concurrently from all workers on different stores: they must be pure
// functions of the variables handed to them. Heuristics that capture
// *Var pointers from one particular store are not safe here.

// SharedBound is an atomic best-known-objective bound shared by
// concurrent minimisation runs (e.g. portfolio arms, or the workers of
// one parallel run coupled to an outer portfolio). The zero value is
// not usable; call NewSharedBound. A nil *SharedBound is valid
// everywhere and behaves as "no bound".
type SharedBound struct {
	v atomic.Int64
}

// NewSharedBound returns an empty bound (no objective published yet).
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.v.Store(math.MaxInt64)
	return b
}

// Get returns the best objective published so far, or math.MaxInt64
// when none (or when b is nil).
func (b *SharedBound) Get() int {
	if b == nil {
		return math.MaxInt64
	}
	return int(b.v.Load())
}

// Publish lowers the bound to val if val improves on it (atomic
// compare-and-swap minimum). No-op on a nil receiver.
func (b *SharedBound) Publish(val int) {
	if b == nil {
		return
	}
	for {
		cur := b.v.Load()
		if int64(val) >= cur {
			return
		}
		if b.v.CompareAndSwap(cur, int64(val)) {
			return
		}
	}
}

// workerRecorder stamps every event with the worker's 1-based id before
// forwarding, so merged traces from parallel runs stay attributable.
type workerRecorder struct {
	inner  obs.Recorder
	worker int
}

// Record implements obs.Recorder.
func (w workerRecorder) Record(e obs.Event) {
	e.Worker = w.worker
	w.inner.Record(e)
}

// decision is one committed branching step, store-independent: the
// variable is addressed by id so the step replays on any clone.
type decision struct {
	varID int
	val   int
}

// subproblem is one leaf of the split: the decisions leading to it, in
// sequential visit order (index 0 is the subtree sequential DFS would
// explore first).
type subproblem struct {
	index int
	path  []decision
}

// splitJobs expands the first opts.SplitDepth branching levels of the
// search rooted at st into subproblems, in sequential DFS order.
// Intermediate levels are committed (assign + propagate) on st so
// infeasible prefixes are pruned during the split; the final level
// enumerates values without propagation (the worker propagates on
// replay). Branching nodes and dead ends encountered during the split
// are added to nodes/backtracks. st is restored on return.
func splitJobs(st *Store, vars []*Var, opts *Options, nodes, backtracks *int64) []subproblem {
	var jobs []subproblem
	var path []decision
	var rec func(depth int)
	rec = func(depth int) {
		v := opts.ChooseVar(vars)
		if v == nil {
			// All variables assigned above the split depth: the prefix
			// itself is the (single) leaf.
			jobs = append(jobs, subproblem{index: len(jobs), path: append([]decision(nil), path...)})
			return
		}
		if depth == opts.SplitDepth-1 {
			for _, val := range opts.OrderValues(v) {
				p := make([]decision, len(path)+1)
				copy(p, path)
				p[len(path)] = decision{varID: v.id, val: val}
				jobs = append(jobs, subproblem{index: len(jobs), path: p})
			}
			return
		}
		*nodes++
		for _, val := range opts.OrderValues(v) {
			st.Push()
			err := st.Assign(v, val)
			if err == nil {
				err = st.Propagate()
			}
			if err == nil {
				path = append(path, decision{varID: v.id, val: val})
				rec(depth + 1)
				path = path[:len(path)-1]
			} else {
				*backtracks++
			}
			st.Pop()
		}
	}
	rec(0)
	return jobs
}

// incumbent is the atomically published (objective, subtree) pair the
// workers prune against.
type incumbent struct {
	best int
	sub  int64
}

// parState is the state shared by the workers of one parallel run.
type parState struct {
	opts  *Options
	start time.Time

	next    atomic.Int64 // subproblem dispenser
	stopped atomic.Bool
	reason  atomic.Int32 // first StopReason to fire; -1 = none
	nodes   atomic.Int64 // global branching-node counter

	inc          atomic.Pointer[incumbent]
	lastImproved atomic.Int64 // ps.nodes at the last strict improvement

	mu         sync.Mutex // guards the fields below + onImproved/onSolution calls
	found      bool
	best       int
	bestSub    int64
	trace      []ObjectivePoint
	onImproved func(*Store, int)

	solutions  int // SolveParallel: solutions delivered
	onSolution func(*Store) bool
}

// stop requests a global stop, recording r if it is the first cause.
func (ps *parState) stop(r StopReason) {
	ps.reason.CompareAndSwap(-1, int32(r))
	ps.stopped.Store(true)
}

// cutFor returns the largest objective value worth exploring in
// subtree sub: best−1 at or after the incumbent's subtree, best before
// it (a tie there still beats the incumbent), further clamped by the
// cross-run SharedBound (non-strict).
func (ps *parState) cutFor(sub int64) int {
	hi := int64(math.MaxInt64)
	if p := ps.inc.Load(); p != nil {
		if sub >= p.sub {
			hi = int64(p.best) - 1
		} else {
			hi = int64(p.best)
		}
	}
	if b := int64(ps.opts.SharedBound.Get()); b < hi {
		hi = b
	}
	return int(hi)
}

// offer submits a solution with objective obj found in subtree sub.
// Acceptance is exact (under the mutex); the atomic incumbent pair is
// republished for the lock-free cuts.
func (ps *parState) offer(st *Store, obj int, sub int64, depth int, rec obs.Recorder) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	improved := !ps.found || obj < ps.best
	if !improved && !(obj == ps.best && sub < ps.bestSub) {
		return
	}
	ps.found = true
	ps.best = obj
	ps.bestSub = sub
	ps.inc.Store(&incumbent{best: obj, sub: sub})
	if improved {
		n := ps.nodes.Load()
		ps.lastImproved.Store(n)
		ps.opts.SharedBound.Publish(obj)
		ps.trace = append(ps.trace, ObjectivePoint{
			Objective: obj,
			Nodes:     n,
			//solverlint:allow nondeterminism Elapsed annotates the anytime trace for reporting; no search decision reads it
			Elapsed: time.Since(ps.start),
		})
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindIncumbent, Objective: obj, Nodes: n, Depth: depth})
		}
	}
	// Ties re-snapshot too: the earlier-subtree solution becomes the
	// reported one.
	if ps.onImproved != nil {
		ps.onImproved(st, obj)
	}
}

// parWorker is one search goroutine: a full clone of the root store
// plus local result counters.
type parWorker struct {
	ps          *parState
	st          *Store
	vars        []*Var // cloned search vars, same order as the caller's
	obj         *Var   // cloned objective (nil for SolveParallel)
	opts        Options
	boundHandle int
	curSub      int64
	nodes       int64
	backtracks  int64
}

// checkStops polls the global stop conditions, firing the first one
// that holds. It reports whether the worker must unwind.
func (w *parWorker) checkStops() bool {
	ps := w.ps
	if ps.stopped.Load() {
		return true
	}
	if deadlineHit(&w.opts) {
		ps.stop(StopTimeout)
		return true
	}
	n := ps.nodes.Load()
	if w.opts.MaxNodes > 0 && n >= w.opts.MaxNodes {
		ps.stop(StopNodeLimit)
		return true
	}
	if w.opts.StallNodes > 0 && ps.inc.Load() != nil && n-ps.lastImproved.Load() > w.opts.StallNodes {
		ps.stop(StopStalled)
		return true
	}
	return false
}

// runJob replays one subproblem on the worker's store and explores it.
func (w *parWorker) runJob(job subproblem) {
	w.curSub = int64(job.index)
	st := w.st
	st.Push()
	if w.boundHandle >= 0 {
		st.Schedule(w.boundHandle)
	}
	var err error
	for _, d := range job.path {
		if err = st.Assign(st.vars[d.varID], d.val); err != nil {
			break
		}
	}
	if err == nil {
		err = st.Propagate()
	}
	if err == nil {
		if w.obj != nil {
			w.minimizeRec(len(job.path))
		} else {
			w.solveRec(len(job.path))
		}
	} else {
		w.backtracks++
		if w.opts.Recorder != nil {
			w.opts.Recorder.Record(obs.Event{Kind: obs.KindBacktrack, Depth: len(job.path)})
		}
	}
	st.Pop()
}

// minimizeRec is the per-worker branch-and-bound recursion. It returns
// true when the worker must unwind (global stop).
func (w *parWorker) minimizeRec(depth int) bool {
	if w.checkStops() {
		return true
	}
	st, ps := w.st, w.ps
	v := w.opts.ChooseVar(w.vars)
	if v == nil {
		ps.offer(st, w.obj.Value(), w.curSub, depth, w.opts.Recorder)
		return false
	}
	w.nodes++
	ps.nodes.Add(1)
	for _, val := range w.opts.OrderValues(v) {
		if w.checkStops() {
			return true
		}
		if w.opts.Recorder != nil {
			w.opts.Recorder.Record(obs.Event{Kind: obs.KindBranch, Var: v.name, Value: val, Depth: depth})
		}
		st.Push()
		st.Schedule(w.boundHandle) // the cut may have tightened since Push
		err := st.Assign(v, val)
		if err == nil {
			err = st.Propagate()
		}
		if err == nil {
			if stop := w.minimizeRec(depth + 1); stop {
				st.Pop()
				return true
			}
		} else {
			w.backtracks++
			if w.opts.Recorder != nil {
				w.opts.Recorder.Record(obs.Event{Kind: obs.KindBacktrack, Depth: depth})
			}
		}
		st.Pop()
	}
	return false
}

// solveRec is the per-worker enumeration recursion for SolveParallel.
func (w *parWorker) solveRec(depth int) bool {
	if w.checkStops() {
		return true
	}
	st, ps := w.st, w.ps
	v := w.opts.ChooseVar(w.vars)
	if v == nil {
		if w.opts.Recorder != nil {
			w.opts.Recorder.Record(obs.Event{Kind: obs.KindSolution, Depth: depth})
		}
		ps.mu.Lock()
		if ps.stopped.Load() {
			ps.mu.Unlock()
			return true
		}
		ps.solutions++
		keepGoing := true
		if ps.onSolution != nil {
			keepGoing = ps.onSolution(st)
		}
		if !keepGoing || (w.opts.MaxSolutions > 0 && ps.solutions >= w.opts.MaxSolutions) {
			ps.stop(StopCut)
			ps.mu.Unlock()
			return true
		}
		ps.mu.Unlock()
		return false
	}
	w.nodes++
	ps.nodes.Add(1)
	for _, val := range w.opts.OrderValues(v) {
		if w.checkStops() {
			return true
		}
		if w.opts.Recorder != nil {
			w.opts.Recorder.Record(obs.Event{Kind: obs.KindBranch, Var: v.name, Value: val, Depth: depth})
		}
		st.Push()
		err := st.Assign(v, val)
		if err == nil {
			err = st.Propagate()
		}
		if err == nil {
			if stop := w.solveRec(depth + 1); stop {
				st.Pop()
				return true
			}
		} else {
			w.backtracks++
			if w.opts.Recorder != nil {
				w.opts.Recorder.Record(obs.Event{Kind: obs.KindBacktrack, Depth: depth})
			}
		}
		st.Pop()
	}
	return false
}

// loop pulls subproblems in order until the dispenser runs dry or a
// stop fires.
func (w *parWorker) loop(jobs []subproblem) {
	for {
		if w.ps.stopped.Load() {
			return
		}
		i := w.ps.next.Add(1) - 1
		if i >= int64(len(jobs)) {
			return
		}
		w.runJob(jobs[i])
	}
}

// newWorkers clones the root store once per worker and maps the search
// variables (and objective, when minimising) onto each clone.
func newWorkers(st *Store, searchVars []*Var, obj *Var, opts Options, ps *parState, n int) ([]*parWorker, error) {
	workers := make([]*parWorker, n)
	for i := range workers {
		cl, err := st.Clone()
		if err != nil {
			return nil, err
		}
		w := &parWorker{ps: ps, st: cl, opts: opts, boundHandle: -1}
		w.vars = make([]*Var, len(searchVars))
		for j, v := range searchVars {
			w.vars[j] = cl.vars[v.id]
		}
		if opts.Recorder != nil {
			w.opts.Recorder = workerRecorder{inner: opts.Recorder, worker: i + 1}
			cl.SetRecorder(w.opts.Recorder)
		}
		if obj != nil {
			w.obj = cl.vars[obj.id]
			wo := w // capture for the bound closure
			boundProp := FuncProp(func(s *Store) error {
				return s.SetMax(wo.obj, ps.cutFor(wo.curSub))
			})
			w.boundHandle = cl.Post(WithName(boundProp, "bnb.bound"), w.obj)
			// Drain the initial scheduling of the bound prop so every
			// job starts from a clean fixpoint.
			if err := cl.Propagate(); err != nil {
				return nil, err
			}
		}
		workers[i] = w
	}
	return workers, nil
}

// MinimizeParallel is the parallel counterpart of Minimize: the first
// Options.SplitDepth branching levels are expanded into subproblems,
// explored by Options.Workers goroutines on cloned stores against a
// shared incumbent. Requirements beyond Minimize's: every propagator on
// st must implement Clonable (otherwise a *CloneError is returned), and
// the ChooseVar/OrderValues heuristics must be safe for concurrent use
// (pure functions of their arguments). onImproved is serialised but
// called from worker goroutines, with the improving worker's store.
//
// Runs that exhaust the space return the identical objective and visit
// the identical final solution as sequential Minimize (see the package
// comments on determinism); counters (Nodes, Backtracks, Propagations)
// are aggregated across workers.
func MinimizeParallel(st *Store, vars []*Var, obj *Var, opts Options, onImproved func(*Store, int)) (MinimizeResult, error) {
	opts, err := opts.withDefaults()
	var res MinimizeResult
	if err != nil {
		return res, err
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	propBase := st.nPropag
	if opts.Recorder != nil {
		prev := st.Recorder()
		st.SetRecorder(opts.Recorder)
		defer st.SetRecorder(prev)
	}
	searchVars := vars
	if !containsVar(vars, obj) {
		searchVars = append(append([]*Var{}, vars...), obj)
	}
	if err := st.Propagate(); err != nil {
		res.Propagations = st.nPropag - propBase
		if err == ErrInconsistent {
			res.Optimal = true // infeasible: vacuously closed
			return res, nil
		}
		return res, err
	}
	jobs := splitJobs(st, searchVars, &opts, &res.Nodes, &res.Backtracks)
	//solverlint:allow nondeterminism run-start timestamp only feeds ObjectivePoint.Elapsed (anytime trace), never a search decision
	ps := &parState{opts: &opts, start: time.Now(), onImproved: onImproved}
	ps.reason.Store(-1)
	ps.nodes.Store(res.Nodes)
	if len(jobs) > 0 {
		n := opts.Workers
		if n > len(jobs) {
			n = len(jobs)
		}
		workers, err := newWorkers(st, searchVars, obj, opts, ps, n)
		if err != nil {
			res.Propagations = st.nPropag - propBase
			return res, err
		}
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *parWorker) {
				defer wg.Done()
				w.loop(jobs)
			}(w)
		}
		wg.Wait()
		for _, w := range workers {
			res.Nodes += w.nodes
			res.Backtracks += w.backtracks
			res.Propagations += w.st.nPropag
		}
	}
	res.Propagations += st.nPropag - propBase
	res.Found = ps.found
	res.Best = ps.best
	res.BestObjectiveTrace = ps.trace
	if r := ps.reason.Load(); r >= 0 {
		res.Reason = StopReason(r)
		res.Stalled = res.Reason == StopStalled
	} else {
		res.Reason = StopExhausted
		res.Optimal = true
	}
	return res, nil
}

// SolveParallel is the parallel counterpart of Solve. Solutions are
// delivered serialised (onSolution never runs concurrently with
// itself) but in a nondeterministic order that depends on worker
// scheduling; with MaxSolutions set, which solutions are delivered is
// likewise nondeterministic. Completeness (Reason == StopExhausted
// when no stop fired) and the solution count for exhaustive runs are
// deterministic. The same Clonable and pure-heuristic requirements as
// MinimizeParallel apply.
func SolveParallel(st *Store, vars []*Var, opts Options, onSolution func(*Store) bool) (SearchResult, error) {
	opts, err := opts.withDefaults()
	var res SearchResult
	if err != nil {
		return res, err
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	propBase := st.nPropag
	if opts.Recorder != nil {
		prev := st.Recorder()
		st.SetRecorder(opts.Recorder)
		defer st.SetRecorder(prev)
	}
	if err := st.Propagate(); err != nil {
		res.Propagations = st.nPropag - propBase
		if err == ErrInconsistent {
			res.Complete = true
			return res, nil
		}
		return res, err
	}
	jobs := splitJobs(st, vars, &opts, &res.Nodes, &res.Backtracks)
	//solverlint:allow nondeterminism run-start timestamp only feeds ObjectivePoint.Elapsed (anytime trace), never a search decision
	ps := &parState{opts: &opts, start: time.Now(), onSolution: onSolution}
	ps.reason.Store(-1)
	ps.nodes.Store(res.Nodes)
	if len(jobs) > 0 {
		n := opts.Workers
		if n > len(jobs) {
			n = len(jobs)
		}
		workers, err := newWorkers(st, vars, nil, opts, ps, n)
		if err != nil {
			res.Propagations = st.nPropag - propBase
			return res, err
		}
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *parWorker) {
				defer wg.Done()
				w.loop(jobs)
			}(w)
		}
		wg.Wait()
		for _, w := range workers {
			res.Nodes += w.nodes
			res.Backtracks += w.backtracks
			res.Propagations += w.st.nPropag
		}
	}
	res.Propagations += st.nPropag - propBase
	res.Solutions = ps.solutions
	if r := ps.reason.Load(); r >= 0 {
		res.Reason = StopReason(r)
	} else {
		res.Reason = StopExhausted
		res.Complete = true
	}
	return res, nil
}
