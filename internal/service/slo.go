package service

import (
	"sync"
	"time"
)

// sloWindows are the rolling windows reported by /v1/stats.
var sloWindows = []struct {
	label string
	d     time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// sloBucketSeconds is the tracker's horizon: one bucket per second,
// one hour deep (the largest reported window).
const sloBucketSeconds = 3600

// sloTracker is the daemon's SLO accountant: per-second buckets of
// request outcomes over the last hour, folded into rolling
// availability (non-5xx share) and latency-objective attainment
// (share of available responses served within the objective). Buckets
// are lazily reset as the ring wraps, so an idle daemon pays nothing.
type sloTracker struct {
	objective time.Duration
	now       func() time.Time // test hook

	mu      sync.Mutex
	buckets [sloBucketSeconds]sloBucket
}

// sloBucket accumulates one second of outcomes. sec tags the bucket's
// absolute second so stale ring slots are detected on read and write.
type sloBucket struct {
	sec   int64
	total int64
	ok    int64 // non-5xx
	fast  int64 // non-5xx and within the latency objective
}

func newSLOTracker(objective time.Duration) *sloTracker {
	return &sloTracker{objective: objective, now: time.Now}
}

// Observe files one finished request.
func (t *sloTracker) Observe(d time.Duration, status int) {
	if t == nil {
		return
	}
	sec := t.now().Unix()
	t.mu.Lock()
	b := &t.buckets[sec%sloBucketSeconds]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if status < 500 {
		b.ok++
		if d <= t.objective {
			b.fast++
		}
	}
	t.mu.Unlock()
}

// SLOWindowStats is the attainment over one rolling window. An empty
// window attains both objectives vacuously (ratios 1).
type SLOWindowStats struct {
	Requests          int64   `json:"requests"`
	Available         int64   `json:"available"`
	WithinLatency     int64   `json:"withinLatency"`
	Availability      float64 `json:"availability"`
	LatencyAttainment float64 `json:"latencyAttainment"`
}

// Window folds the buckets of the trailing window w (clamped to
// [1s, 1h]) into attainment ratios.
func (t *sloTracker) Window(w time.Duration) SLOWindowStats {
	st := SLOWindowStats{Availability: 1, LatencyAttainment: 1}
	if t == nil {
		return st
	}
	n := int(w / time.Second)
	if n < 1 {
		n = 1
	}
	if n > sloBucketSeconds {
		n = sloBucketSeconds
	}
	sec := t.now().Unix()
	t.mu.Lock()
	for i := 0; i < n; i++ {
		s := sec - int64(i)
		b := &t.buckets[s%sloBucketSeconds]
		if b.sec != s {
			continue
		}
		st.Requests += b.total
		st.Available += b.ok
		st.WithinLatency += b.fast
	}
	t.mu.Unlock()
	if st.Requests > 0 {
		st.Availability = float64(st.Available) / float64(st.Requests)
		st.LatencyAttainment = float64(st.WithinLatency) / float64(st.Requests)
	}
	return st
}

// SLOStats is the SLO section of /v1/stats: the configured objectives,
// the attainment over the configured headline window, and the three
// standard rolling windows.
type SLOStats struct {
	LatencyObjectiveMs float64                   `json:"latencyObjectiveMs"`
	Window             string                    `json:"window"`
	Attainment         SLOWindowStats            `json:"attainment"`
	Windows            map[string]SLOWindowStats `json:"windows"`
}

// Stats snapshots the SLO accounting for the configured headline
// window.
func (t *sloTracker) Stats(headline time.Duration) SLOStats {
	st := SLOStats{
		Window:  headline.String(),
		Windows: make(map[string]SLOWindowStats, len(sloWindows)),
	}
	if t != nil {
		st.LatencyObjectiveMs = float64(t.objective.Microseconds()) / 1000
	}
	st.Attainment = t.Window(headline)
	for _, w := range sloWindows {
		st.Windows[w.label] = t.Window(w.d)
	}
	return st
}
