// Package workload generates the module sets of the paper's evaluation:
// batches of random modules with resource demands drawn from the ranges
// of Section V (20–100 CLBs, 0–4 embedded memory blocks), each
// represented by a configurable number of design alternatives. All
// generation is seeded and reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/module"
)

// Config parameterises module-batch generation. The zero value is
// completed by Defaults to the paper's Table-I workload.
type Config struct {
	// NumModules is the batch size (paper: 30).
	NumModules int
	// CLBMin/CLBMax bound the CLB demand (paper: 20..100).
	CLBMin, CLBMax int
	// BRAMMin/BRAMMax bound the embedded-memory demand (paper: 0..4).
	BRAMMin, BRAMMax int
	// NoBRAM suppresses embedded-memory demand entirely (a zero
	// BRAMMax alone is indistinguishable from "use the paper default").
	NoBRAM bool
	// DSPMax bounds the optional multiplier demand (paper workload: 0).
	DSPMax int
	// Alternatives is the number of design alternatives per module
	// (paper: 4; 1 disables design alternatives).
	Alternatives int
	// NoRotation suppresses 180° rotations among the alternatives.
	NoRotation bool
}

// Defaults fills unset fields with the paper's Table-I parameters.
func (c Config) Defaults() Config {
	if c.NumModules == 0 {
		c.NumModules = 30
	}
	if c.CLBMax == 0 {
		c.CLBMin, c.CLBMax = 20, 100
	}
	if c.NoBRAM {
		c.BRAMMin, c.BRAMMax = 0, 0
	} else if c.BRAMMax == 0 && c.BRAMMin == 0 {
		c.BRAMMax = 4
	}
	if c.Alternatives == 0 {
		c.Alternatives = 4
	}
	return c
}

// Validate reports the first inconsistency in the config.
func (c Config) Validate() error {
	if c.NumModules < 1 {
		return fmt.Errorf("workload: NumModules %d < 1", c.NumModules)
	}
	if c.CLBMin < 0 || c.CLBMax < c.CLBMin {
		return fmt.Errorf("workload: bad CLB range [%d,%d]", c.CLBMin, c.CLBMax)
	}
	if c.BRAMMin < 0 || c.BRAMMax < c.BRAMMin {
		return fmt.Errorf("workload: bad BRAM range [%d,%d]", c.BRAMMin, c.BRAMMax)
	}
	if c.DSPMax < 0 {
		return fmt.Errorf("workload: negative DSPMax")
	}
	if c.Alternatives < 1 {
		return fmt.Errorf("workload: Alternatives %d < 1", c.Alternatives)
	}
	if c.CLBMax == 0 && c.BRAMMax == 0 && c.DSPMax == 0 {
		return fmt.Errorf("workload: all demands zero")
	}
	return nil
}

// Generate draws a module batch using rng. Module names are m00, m01, …
// so batches are easy to cross-reference in rendered floorplans.
func Generate(cfg Config, rng *rand.Rand) ([]*module.Module, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mods := make([]*module.Module, 0, cfg.NumModules)
	for i := 0; i < cfg.NumModules; i++ {
		d := module.Demand{
			CLB:  randIn(rng, cfg.CLBMin, cfg.CLBMax),
			BRAM: randIn(rng, cfg.BRAMMin, cfg.BRAMMax),
		}
		if cfg.DSPMax > 0 {
			d.DSP = randIn(rng, 0, cfg.DSPMax)
		}
		m, err := module.GenerateAlternatives(
			fmt.Sprintf("m%02d", i),
			d,
			module.AlternativeOptions{Count: cfg.Alternatives, NoRotation: cfg.NoRotation},
		)
		if err != nil {
			return nil, fmt.Errorf("workload: module %d: %w", i, err)
		}
		mods = append(mods, m)
	}
	return mods, nil
}

// MustGenerate is Generate panicking on error, for fixed configs.
func MustGenerate(cfg Config, rng *rand.Rand) []*module.Module {
	mods, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return mods
}

// FirstShapesOnly maps a batch to its no-design-alternatives variant:
// every module restricted to its primary layout. The originals are not
// modified.
func FirstShapesOnly(mods []*module.Module) []*module.Module {
	out := make([]*module.Module, len(mods))
	for i, m := range mods {
		out[i] = m.FirstShapeOnly()
	}
	return out
}

// TotalDemand sums tile demands (by the first shape of each module,
// which all generated alternatives share).
func TotalDemand(mods []*module.Module) (tiles int) {
	for _, m := range mods {
		tiles += m.Shape(0).Size()
	}
	return tiles
}

func randIn(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}
