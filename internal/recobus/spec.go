// Package recobus is the design-flow substrate the paper's placer plugs
// into: it stands in for the ReCoBus-Builder tool chain. It provides the
// textual partial-region description and module specification formats
// consumed by the placer front end (Figure 2 of the paper), the
// bus-attachment constraint of ReCoBus-style on-FPGA communication, and
// a bitstream-assembly simulation that turns placements into per-module
// configuration bitstreams with reconfiguration-time estimates.
package recobus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// RegionSpec is the parsed partial-region description: a column
// structured fabric, static-area carve-outs and bus rows.
type RegionSpec struct {
	Fabric  fabric.Spec
	Statics []grid.Rect
	BusRows []int
}

// ParseRegion reads a partial-region description. Format (one directive
// per line, '#' comments):
//
//	region <name> <width> <height>
//	bramcols <x> [<x>...]
//	dspcols <x> [<x>...]
//	clockcols <x> [<x>...]
//	clockrows <period>
//	iobring
//	static <x> <y> <w> <h>
//	bus <row> [<row>...]
func ParseRegion(r io.Reader) (*RegionSpec, error) {
	spec := &RegionSpec{}
	sawRegion := false
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, err := specFields(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("recobus: region line %d: %w", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		args := fields[1:]
		switch fields[0] {
		case "region":
			if len(args) != 3 {
				return nil, fmt.Errorf("recobus: region line %d: want 'region <name> <w> <h>'", lineNo)
			}
			w, err1 := strconv.Atoi(args[1])
			h, err2 := strconv.Atoi(args[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("recobus: region line %d: bad dimensions", lineNo)
			}
			spec.Fabric.Name, spec.Fabric.W, spec.Fabric.H = args[0], w, h
			sawRegion = true
		case "bramcols":
			if spec.Fabric.BRAMColumns, err = appendInts(spec.Fabric.BRAMColumns, args); err != nil {
				return nil, fmt.Errorf("recobus: region line %d: %w", lineNo, err)
			}
		case "dspcols":
			if spec.Fabric.DSPColumns, err = appendInts(spec.Fabric.DSPColumns, args); err != nil {
				return nil, fmt.Errorf("recobus: region line %d: %w", lineNo, err)
			}
		case "clockcols":
			if spec.Fabric.ClockColumns, err = appendInts(spec.Fabric.ClockColumns, args); err != nil {
				return nil, fmt.Errorf("recobus: region line %d: %w", lineNo, err)
			}
		case "clockrows":
			if len(args) != 1 {
				return nil, fmt.Errorf("recobus: region line %d: want 'clockrows <period>'", lineNo)
			}
			p, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("recobus: region line %d: bad period", lineNo)
			}
			spec.Fabric.ClockRowPeriod = p
		case "iobring":
			spec.Fabric.IOBRing = true
		case "static":
			if len(args) != 4 {
				return nil, fmt.Errorf("recobus: region line %d: want 'static <x> <y> <w> <h>'", lineNo)
			}
			vals, err := appendInts(nil, args)
			if err != nil {
				return nil, fmt.Errorf("recobus: region line %d: %w", lineNo, err)
			}
			spec.Statics = append(spec.Statics, grid.RectXYWH(vals[0], vals[1], vals[2], vals[3]))
		case "bus":
			if spec.BusRows, err = appendInts(spec.BusRows, args); err != nil {
				return nil, fmt.Errorf("recobus: region line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("recobus: region line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("recobus: reading region spec: %w", err)
	}
	if !sawRegion {
		return nil, fmt.Errorf("recobus: region spec missing 'region' directive")
	}
	sort.Ints(spec.BusRows)
	return spec, nil
}

// Build materialises the spec: the device (with static areas masked) and
// its full region.
func (s *RegionSpec) Build() (*fabric.Region, error) {
	dev, err := s.Fabric.Build()
	if err != nil {
		return nil, err
	}
	for _, r := range s.Statics {
		dev.MaskStatic(r)
	}
	for _, row := range s.BusRows {
		if row < 0 || row >= s.Fabric.H {
			return nil, fmt.Errorf("recobus: bus row %d outside region height %d", row, s.Fabric.H)
		}
	}
	return dev.FullRegion(), nil
}

// WriteRegion emits the spec in the format ParseRegion reads.
func WriteRegion(w io.Writer, s *RegionSpec) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "region %s %d %d\n", s.Fabric.Name, s.Fabric.W, s.Fabric.H)
	writeCols := func(name string, xs []int) {
		if len(xs) == 0 {
			return
		}
		sb.WriteString(name)
		for _, x := range xs {
			fmt.Fprintf(&sb, " %d", x)
		}
		sb.WriteByte('\n')
	}
	writeCols("bramcols", s.Fabric.BRAMColumns)
	writeCols("dspcols", s.Fabric.DSPColumns)
	writeCols("clockcols", s.Fabric.ClockColumns)
	if s.Fabric.ClockRowPeriod > 0 {
		fmt.Fprintf(&sb, "clockrows %d\n", s.Fabric.ClockRowPeriod)
	}
	if s.Fabric.IOBRing {
		sb.WriteString("iobring\n")
	}
	for _, r := range s.Statics {
		fmt.Fprintf(&sb, "static %d %d %d %d\n", r.MinX, r.MinY, r.W(), r.H())
	}
	writeCols("bus", s.BusRows)
	_, err := io.WriteString(w, sb.String())
	return err
}

// ParseModules reads a module specification. Format:
//
//	module <name>
//	  demand <clb> <bram> <dsp>        # synthesise alternatives, OR
//	  alternatives <k>                 # (with demand; default 4)
//	  shape                            # explicit layout (repeatable)
//	    tile <x> <y> <KIND>
//	    rect <x> <y> <w> <h> <KIND>
//	  end
//
// A module uses either demand-based synthesis or explicit shapes, not
// both.
func ParseModules(r io.Reader) ([]*module.Module, error) {
	var mods []*module.Module

	var name string
	var demand *module.Demand
	alternatives := 0
	var shapes []*module.Shape
	var tiles []module.Tile
	inShape := false

	flush := func(lineNo int) error {
		if name == "" {
			return nil
		}
		if inShape {
			return fmt.Errorf("recobus: modules line %d: unterminated shape in %s", lineNo, name)
		}
		if demand != nil && len(shapes) > 0 {
			return fmt.Errorf("recobus: module %s mixes demand and explicit shapes", name)
		}
		var m *module.Module
		var err error
		switch {
		case demand != nil:
			m, err = module.GenerateAlternatives(name, *demand,
				module.AlternativeOptions{Count: alternatives})
		case len(shapes) > 0:
			m, err = module.NewModule(name, shapes...)
		default:
			err = fmt.Errorf("recobus: module %s has neither demand nor shapes", name)
		}
		if err != nil {
			return err
		}
		mods = append(mods, m)
		name, demand, alternatives, shapes = "", nil, 0, nil
		return nil
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, err := specFields(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("recobus: modules line %d: %w", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		args := fields[1:]
		switch fields[0] {
		case "module":
			if len(args) != 1 {
				return nil, fmt.Errorf("recobus: modules line %d: want 'module <name>'", lineNo)
			}
			if err := flush(lineNo); err != nil {
				return nil, err
			}
			name = args[0]
		case "demand":
			if name == "" {
				return nil, fmt.Errorf("recobus: modules line %d: demand outside module", lineNo)
			}
			vals, err := appendInts(nil, args)
			if err != nil || len(vals) != 3 {
				return nil, fmt.Errorf("recobus: modules line %d: want 'demand <clb> <bram> <dsp>'", lineNo)
			}
			demand = &module.Demand{CLB: vals[0], BRAM: vals[1], DSP: vals[2]}
		case "alternatives":
			if len(args) != 1 {
				return nil, fmt.Errorf("recobus: modules line %d: want 'alternatives <k>'", lineNo)
			}
			k, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fmt.Errorf("recobus: modules line %d: bad count", lineNo)
			}
			alternatives = k
		case "shape":
			if name == "" {
				return nil, fmt.Errorf("recobus: modules line %d: shape outside module", lineNo)
			}
			if inShape {
				return nil, fmt.Errorf("recobus: modules line %d: nested shape", lineNo)
			}
			inShape = true
			tiles = nil
		case "tile":
			if !inShape {
				return nil, fmt.Errorf("recobus: modules line %d: tile outside shape", lineNo)
			}
			if len(args) != 3 {
				return nil, fmt.Errorf("recobus: modules line %d: want 'tile <x> <y> <KIND>'", lineNo)
			}
			x, err1 := strconv.Atoi(args[0])
			y, err2 := strconv.Atoi(args[1])
			k, err3 := fabric.ParseKind(args[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("recobus: modules line %d: bad tile", lineNo)
			}
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: k})
		case "rect":
			if !inShape {
				return nil, fmt.Errorf("recobus: modules line %d: rect outside shape", lineNo)
			}
			if len(args) != 5 {
				return nil, fmt.Errorf("recobus: modules line %d: want 'rect <x> <y> <w> <h> <KIND>'", lineNo)
			}
			vals, err := appendInts(nil, args[:4])
			if err != nil {
				return nil, fmt.Errorf("recobus: modules line %d: bad rect", lineNo)
			}
			k, err := fabric.ParseKind(args[4])
			if err != nil {
				return nil, fmt.Errorf("recobus: modules line %d: %w", lineNo, err)
			}
			for _, p := range grid.RectXYWH(vals[0], vals[1], vals[2], vals[3]).Points() {
				tiles = append(tiles, module.Tile{At: p, Kind: k})
			}
		case "end":
			if !inShape {
				return nil, fmt.Errorf("recobus: modules line %d: end outside shape", lineNo)
			}
			inShape = false
			s, err := module.NewShape(tiles)
			if err != nil {
				return nil, fmt.Errorf("recobus: modules line %d: %w", lineNo, err)
			}
			shapes = append(shapes, s)
		default:
			return nil, fmt.Errorf("recobus: modules line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("recobus: reading module spec: %w", err)
	}
	if err := flush(lineNo + 1); err != nil {
		return nil, err
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("recobus: module spec defines no modules")
	}
	return mods, nil
}

// WriteModules emits modules with explicit shapes in the format
// ParseModules reads (demand-synthesised modules are written shape by
// shape, so the round trip is layout-exact).
func WriteModules(w io.Writer, mods []*module.Module) error {
	var sb strings.Builder
	for _, m := range mods {
		fmt.Fprintf(&sb, "module %s\n", m.Name())
		for _, s := range m.Shapes() {
			sb.WriteString("shape\n")
			for _, t := range s.Tiles() {
				fmt.Fprintf(&sb, "tile %d %d %s\n", t.At.X, t.At.Y, t.Kind)
			}
			sb.WriteString("end\n")
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// specFields tokenises a spec line, stripping comments.
func specFields(line string) ([]string, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return strings.Fields(line), nil
}

func appendInts(dst []int, args []string) ([]int, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("missing integer arguments")
	}
	for _, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", a)
		}
		dst = append(dst, v)
	}
	return dst, nil
}
