package geost

import (
	"strings"
	"testing"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/grid"
)

// allValid returns a bitmap accepting every anchor.
func allValid(w, h int) *grid.Bitmap {
	b := grid.NewBitmap(w, h)
	b.SetRect(grid.RectXYWH(0, 0, w, h), true)
	return b
}

// rectGeom builds a full w×h rectangle of CLB tiles valid everywhere in
// a spaceW×spaceH space.
func rectGeom(w, h, spaceW, spaceH int) ShapeGeom {
	var pts []grid.Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, grid.Pt(x, y))
		}
	}
	var hist fabric.Histogram
	hist[fabric.CLB] = len(pts)
	return ShapeGeom{Points: pts, W: w, H: h, Valid: allValid(spaceW, spaceH), Hist: hist}
}

// uniformCapPrefix returns capPrefix for a homogeneous CLB space.
func uniformCapPrefix(w, h int) []fabric.Histogram {
	out := make([]fabric.Histogram, h+1)
	for i := 1; i <= h; i++ {
		out[i][fabric.CLB] = w * i
	}
	return out
}

func TestAddObjectDomainSize(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 4, 3)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(2, 2, 4, 3)})
	if err != nil {
		t.Fatal(err)
	}
	// Anchors: x in 0..2, y in 0..1 -> 6 placements.
	if o.CandidateCount() != 6 {
		t.Fatalf("candidates = %d, want 6", o.CandidateCount())
	}
	if o.Top.Min() != 2 || o.Top.Max() != 3 {
		t.Fatalf("top = [%d,%d], want [2,3]", o.Top.Min(), o.Top.Max())
	}
}

func TestAddObjectPolymorphic(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 3, 3)
	o, err := k.AddObject("a", []ShapeGeom{
		rectGeom(1, 2, 3, 3), // 3 x-positions × 2 y-positions = 6
		rectGeom(2, 1, 3, 3), // 2 x-positions × 3 y-positions = 6
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.CandidateCount() != 12 {
		t.Fatalf("candidates = %d, want 12", o.CandidateCount())
	}
	if !o.ShapePresent(0) || !o.ShapePresent(1) {
		t.Fatal("shapes not present")
	}
}

func TestAddObjectValidMaskRestricts(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 4, 4)
	g := rectGeom(2, 2, 4, 4)
	g.Valid = grid.NewBitmap(4, 4)
	g.Valid.Set(1, 2, true)
	g.Valid.Set(2, 2, true)
	o, err := k.AddObject("a", []ShapeGeom{g})
	if err != nil {
		t.Fatal(err)
	}
	if o.CandidateCount() != 2 {
		t.Fatalf("candidates = %d, want 2", o.CandidateCount())
	}
}

func TestAddObjectErrors(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 4, 4)
	if _, err := k.AddObject("none", nil); err == nil {
		t.Error("no shapes accepted")
	}
	// Shape larger than the space: no feasible placement.
	if _, err := k.AddObject("big", []ShapeGeom{rectGeom(5, 5, 4, 4)}); err == nil {
		t.Error("oversized shape accepted")
	}
	// Empty valid mask.
	g := rectGeom(2, 2, 4, 4)
	g.Valid = grid.NewBitmap(4, 4)
	if _, err := k.AddObject("masked", []ShapeGeom{g}); err == nil {
		t.Error("fully masked shape accepted")
	}
	// Mismatched mask dimensions.
	g2 := rectGeom(2, 2, 4, 4)
	g2.Valid = grid.NewBitmap(3, 3)
	if _, err := k.AddObject("bad", []ShapeGeom{g2}); err == nil {
		t.Error("mismatched mask accepted")
	}
	// Nil mask.
	g3 := rectGeom(2, 2, 4, 4)
	g3.Valid = nil
	if _, err := k.AddObject("nil", []ShapeGeom{g3}); err == nil {
		t.Error("nil mask accepted")
	}
	// No points.
	g4 := rectGeom(2, 2, 4, 4)
	g4.Points = nil
	if _, err := k.AddObject("empty", []ShapeGeom{g4}); err == nil {
		t.Error("pointless shape accepted")
	}
}

func TestNewKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(csp.NewStore(), 0, 5)
}

func TestDecodeRoundTrip(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 7, 5)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(1, 1, 7, 5), rectGeom(2, 1, 7, 5)})
	if err != nil {
		t.Fatal(err)
	}
	for sid := 0; sid < 2; sid++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 7; x++ {
				gs, gx, gy := o.Decode(k.encode(sid, x, y))
				if gs != sid || gx != x || gy != y {
					t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", sid, x, y, gs, gx, gy)
				}
			}
		}
	}
}

func TestPlacementAccessors(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 4, 4)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(2, 2, 4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if o.Assigned() {
		t.Fatal("fresh object assigned")
	}
	if err := st.Assign(o.Place, k.encode(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	sid, x, y := o.Placement()
	if sid != 0 || x != 1 || y != 2 {
		t.Fatalf("Placement = (%d,%d,%d)", sid, x, y)
	}
	if o.Name != "a" || !strings.Contains(o.Place.Name(), "a") {
		t.Fatal("naming wrong")
	}
}

func TestMinDemand(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 6, 6)
	small := rectGeom(1, 1, 6, 6)
	big := rectGeom(2, 2, 6, 6)
	o, err := k.AddObject("a", []ShapeGeom{small, big})
	if err != nil {
		t.Fatal(err)
	}
	d := o.MinDemand()
	if d[fabric.CLB] != 1 {
		t.Fatalf("MinDemand CLB = %d, want 1 (smallest shape)", d[fabric.CLB])
	}
	// Remove all shape-0 placements: min demand becomes the big shape's.
	if err := st.FilterDomain(o.Place, func(v int) bool {
		sid, _, _ := o.Decode(v)
		return sid == 1
	}); err != nil {
		t.Fatal(err)
	}
	d = o.MinDemand()
	if d[fabric.CLB] != 4 {
		t.Fatalf("MinDemand CLB = %d, want 4", d[fabric.CLB])
	}
}
