package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func testCfg() experiments.RunConfig {
	return experiments.RunConfig{
		Runs: 1,
		Seed: 1,
		Workload: workload.Config{
			NumModules: 5, CLBMin: 8, CLBMax: 20, BRAMMax: 2, Alternatives: 2,
		},
		StallNodes: 200,
		Timeout:    10 * time.Second,
	}
}

func TestRunFigures(t *testing.T) {
	for _, exp := range []string{"fig1", "fig4"} {
		var sb strings.Builder
		if err := run(&sb, exp, testCfg()); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunTable1Reduced(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table1", testCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Design alternatives") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunTable1BenchJSON(t *testing.T) {
	cfg := testCfg()
	cfg.BenchPath = filepath.Join(t.TempDir(), "BENCH_table1.json")
	var sb strings.Builder
	if err := run(&sb, "table1", cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.BenchPath)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Experiment string `json:"experiment"`
		Runs       int    `json:"runs"`
		Records    []struct {
			Arm         string  `json:"arm"`
			Seconds     float64 `json:"seconds"`
			Nodes       int64   `json:"nodes"`
			Backtracks  int64   `json:"backtracks"`
			Utilization float64 `json:"utilization"`
			Reason      string  `json:"reason"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("bench JSON: %v", err)
	}
	if got.Experiment != "table1" || got.Runs != 1 || len(got.Records) != 2 {
		t.Fatalf("bench file: %+v", got)
	}
	arms := map[string]bool{}
	for _, r := range got.Records {
		arms[r.Arm] = true
		if r.Seconds <= 0 || r.Nodes <= 0 || r.Utilization <= 0 || r.Reason == "" {
			t.Errorf("incomplete record: %+v", r)
		}
	}
	if !arms["with"] || !arms["without"] {
		t.Fatalf("arms: %v", arms)
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "bogus", testCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
