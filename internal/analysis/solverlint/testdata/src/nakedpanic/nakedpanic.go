// Package nakedpanic is a fixture: documented and undocumented panics.
package nakedpanic

import "fmt"

// Value returns the sole element. It panics if xs does not hold
// exactly one value, which always indicates a caller bug.
func Value(xs []int) int {
	if len(xs) != 1 {
		panic(fmt.Sprintf("nakedpanic: Value on %d elements", len(xs)))
	}
	return xs[0]
}

// Head returns the first element.
func Head(xs []int) int {
	if len(xs) == 0 {
		panic("nakedpanic: empty slice") // want `undocumented panic in Head`
	}
	return xs[0]
}

func undocumentedHelper() {
	panic("always") // want `undocumented panic in undocumentedHelper`
}

// Tail returns all but the first element, nil on empty input.
func Tail(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	return xs[1:]
}

// legacyAssert keeps its suppression inline instead of a doc sentence.
func legacyAssert(ok bool) {
	if !ok {
		panic("assertion failed") //solverlint:allow nakedpanic transitional: documented suppression pending doc rewrite
	}
}
