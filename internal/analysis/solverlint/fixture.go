package solverlint

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the fixture harness — the analysistest equivalent for
// the self-contained framework. Fixture packages live under
// testdata/src/<name>/ (testdata is invisible to the go tool, so
// fixtures do not build as part of the repo). RunFixture copies one
// fixture into a throwaway module, loads it with the real loader, runs
// one analyzer, and compares the diagnostics against `// want`
// comments in the fixture source:
//
//	x := bad() // want `regexp matching the message`
//
// Each backquoted or double-quoted regexp must match exactly one
// diagnostic reported on that line, and every diagnostic must be
// wanted. Fixtures may only import the standard library (the temp
// module resolves nothing else).

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// RunFixture runs a over the fixture package at testdata/src/<fixture>
// and checks its diagnostics against the fixture's want comments.
func RunFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	mod := t.TempDir()
	if err := copyTree(src, filepath.Join(mod, fixture)); err != nil {
		t.Fatalf("copying fixture: %v", err)
	}
	gomod := "module fixture\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(mod, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("running %s: %v", a.Name, err)
		}
		checkWants(t, pkg, diags)
	}
}

// lineKey addresses one fixture source line.
type lineKey struct {
	file string // base name; fixtures never repeat base names
	line int
}

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[lineKey][]string{}
	for _, f := range pkg.Files {
		collectWants(t, pkg, f, wants)
	}
	got := map[lineKey][]string{}
	for _, d := range diags {
		k := lineKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}
	for k, patterns := range wants {
		msgs := got[k]
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
				continue
			}
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", k.file, k.line, pat, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected diagnostics beyond wants: %q", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics: %q", k.file, k.line, msgs)
	}
}

// collectWants records the want patterns of one parsed file.
func collectWants(t *testing.T, pkg *Package, f *ast.File, wants map[lineKey][]string) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			k := lineKey{file: filepath.Base(pos.Filename), line: pos.Line}
			for _, q := range wantRE.FindAllString(c.Text[idx+len("// want "):], -1) {
				pat, err := unquoteWant(q)
				if err != nil {
					t.Errorf("%s:%d: bad want literal %s: %v", k.file, k.line, q, err)
					continue
				}
				wants[k] = append(wants[k], pat)
			}
		}
	}
}

func unquoteWant(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// copyTree copies the regular files of the directory tree rooted at
// src into dst.
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}
