package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero id")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("id renders as %d chars, want 32: %q", len(s), s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32), strings.Repeat("a", 31)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestAttrRendering(t *testing.T) {
	attrs := []Attr{
		String("role", "leader"),
		Int("nodes", 42),
		Bool("hit", true),
		Bool("miss", false),
		Float("ratio", 0.5),
		Duration("wait", 1500*time.Millisecond),
	}
	got := encodeAttrs(attrs)
	want := "role=leader nodes=42 hit=true miss=false ratio=0.5 wait=1.5s"
	if got != want {
		t.Fatalf("encodeAttrs = %q, want %q", got, want)
	}
	if encodeAttrs(nil) != "" {
		t.Fatal("encodeAttrs(nil) not empty")
	}
}

// TestSpanLifecycle checks parent links, attribute capture, ring
// filing, and the KindSpan events reaching the recorder sink.
func TestSpanLifecycle(t *testing.T) {
	var rec eventCollector
	tr := NewTracer(TracerConfig{Recorder: &rec})
	trace := tr.New("request")
	if trace == nil || trace.ID().IsZero() {
		t.Fatal("tracer minted no trace")
	}

	child := trace.StartSpan("cache_lookup")
	child.SetAttrs(Bool("hit", false))
	child.End()
	grand := child.StartChild("solve")
	grand.SetAttrs(Int("nodes", 7))
	grand.End()
	trace.Finish()

	snap := tr.Snapshot()
	if len(snap.Recent) != 1 || len(snap.Slowest) != 1 {
		t.Fatalf("rings: recent %d slowest %d, want 1 and 1", len(snap.Recent), len(snap.Slowest))
	}
	ts := snap.Recent[0]
	if ts.TraceID != trace.ID().String() || ts.Name != "request" {
		t.Fatalf("summary header: %+v", ts)
	}
	if len(ts.Spans) != 3 {
		t.Fatalf("summary has %d spans, want 3", len(ts.Spans))
	}
	byName := map[string]SpanSummary{}
	for _, s := range ts.Spans {
		byName[s.Name] = s
	}
	if byName["request"].Parent != 0 || byName["cache_lookup"].Parent != byName["request"].ID ||
		byName["solve"].Parent != byName["cache_lookup"].ID {
		t.Fatalf("parent links wrong: %+v", ts.Spans)
	}
	if !byName["solve"].Ended || byName["solve"].Attrs["nodes"] != "7" {
		t.Fatalf("solve span summary: %+v", byName["solve"])
	}

	if len(rec.events) != 3 {
		t.Fatalf("recorder saw %d events, want 3 spans", len(rec.events))
	}
	for _, e := range rec.events {
		if e.Kind != KindSpan || e.Trace != trace.ID().String() {
			t.Fatalf("unexpected event: %+v", e)
		}
	}
	if rec.events[0].Span != "cache_lookup" || rec.events[0].Attrs != "hit=false" {
		t.Fatalf("first span event: %+v", rec.events[0])
	}
}

type eventCollector struct{ events []Event }

func (c *eventCollector) Record(e Event) { c.events = append(c.events, e) }

func TestSpanEndIdempotent(t *testing.T) {
	var rec eventCollector
	tr := NewTracer(TracerConfig{Recorder: &rec})
	trace := tr.New("r")
	sp := trace.StartSpan("s")
	d1 := sp.End()
	d2 := sp.End()
	if d1 != d2 {
		t.Fatalf("second End returned %v, want recorded %v", d2, d1)
	}
	trace.Finish()
	trace.Finish()
	spans := 0
	for _, e := range rec.events {
		if e.Kind == KindSpan {
			spans++
		}
	}
	if spans != 2 { // "s" once, root once
		t.Fatalf("recorder saw %d span events, want 2 (End and Finish are idempotent)", spans)
	}
	if got := tr.Snapshot(); len(got.Recent) != 1 {
		t.Fatalf("double Finish filed %d traces, want 1", len(got.Recent))
	}
}

// TestLateSpanAfterFinish models a singleflight leader's detached
// solve ending after the owning request finished: the filed summary
// marks it unended, the KindSpan event still reaches the sink.
func TestLateSpanAfterFinish(t *testing.T) {
	var rec eventCollector
	tr := NewTracer(TracerConfig{Recorder: &rec})
	trace := tr.New("request")
	solve := trace.StartSpan("solve")
	trace.Finish()

	ts := tr.Snapshot().Recent[0]
	for _, s := range ts.Spans {
		if s.Name == "solve" && s.Ended {
			t.Fatal("unended span filed as ended")
		}
	}
	solve.End()
	last := rec.events[len(rec.events)-1]
	if last.Kind != KindSpan || last.Span != "solve" {
		t.Fatalf("late End emitted no span event: %+v", last)
	}
}

func TestTracerRings(t *testing.T) {
	tr := NewTracer(TracerConfig{Recent: 3, Slowest: 2})
	var want []string
	for i := 0; i < 5; i++ {
		trace := tr.New("r")
		want = append(want, trace.ID().String())
		trace.Finish()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 3 {
		t.Fatalf("recent ring holds %d, want 3", len(snap.Recent))
	}
	// Newest first: traces 4, 3, 2.
	for i, ts := range snap.Recent {
		if ts.TraceID != want[4-i] {
			t.Fatalf("recent[%d] = %s, want %s", i, ts.TraceID, want[4-i])
		}
	}
	if len(snap.Slowest) != 2 {
		t.Fatalf("slowest ring holds %d, want 2", len(snap.Slowest))
	}
	if snap.Slowest[0].DurMs < snap.Slowest[1].DurMs {
		t.Fatal("slowest ring not sorted descending")
	}
}

func TestContextCarriage(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	trace := tr.New("r")
	sp := trace.StartSpan("s")
	ctx := ContextWithSpan(ContextWithTrace(context.Background(), trace), sp)
	if TraceFromContext(ctx) != trace || SpanFromContext(ctx) != sp {
		t.Fatal("context round trip lost the trace or span")
	}
	if TraceFromContext(context.Background()) != nil || SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace or span")
	}
	// Nil values leave the context untouched.
	base := context.Background()
	if ContextWithTrace(base, nil) != base || ContextWithSpan(base, nil) != base {
		t.Fatal("nil trace/span changed the context")
	}
}

func TestSpanStatsAttribution(t *testing.T) {
	var st SpanStats
	st.Record(Event{Kind: KindBranch})
	st.Record(Event{Kind: KindBranch})
	st.Record(Event{Kind: KindBacktrack})
	st.Record(Event{Kind: KindPropagate})
	st.Record(Event{Kind: KindPrune, Removed: 5})
	st.Record(Event{Kind: KindIncumbent, Objective: 3})
	st.Record(Event{Kind: KindSolution})

	tr := NewTracer(TracerConfig{})
	trace := tr.New("r")
	sp := trace.StartSpan("solve")
	st.AttachTo(sp)
	sp.End()
	trace.Finish()

	attrs := tr.Snapshot().Recent[0].Spans[1].Attrs
	for key, want := range map[string]string{
		"nodes": "2", "backtracks": "1", "propagations": "1",
		"prunes": "1", "pruned_values": "5", "incumbents": "1", "solutions": "1",
	} {
		if attrs[key] != want {
			t.Fatalf("attr %s = %q, want %q (attrs %v)", key, attrs[key], want, attrs)
		}
	}
	// Nil-safety both ways.
	(*SpanStats)(nil).AttachTo(sp)
	st.AttachTo(nil)
}

// TestDisabledTracerIsNilSafe drives the whole span API through a nil
// tracer: every call must be a no-op.
func TestDisabledTracerIsNilSafe(t *testing.T) {
	var tr *Tracer
	trace := tr.New("r")
	if trace != nil {
		t.Fatal("nil tracer minted a trace")
	}
	sp := trace.StartSpan("s")
	sp.SetAttrs(Int("n", 1))
	child := sp.StartChild("c")
	child.End()
	if sp.End() != 0 || trace.Finish() != 0 {
		t.Fatal("nil span/trace reported a duration")
	}
	if trace.ID() != (TraceID{}) || trace.Root() != nil {
		t.Fatal("nil trace has identity")
	}
	snap := tr.Snapshot()
	if snap.Recent == nil || snap.Slowest == nil || len(snap.Recent)+len(snap.Slowest) != 0 {
		t.Fatalf("nil tracer snapshot: %+v", snap)
	}
}

// TestDisabledTracingAllocs pins the zero-cost-when-disabled contract:
// the full instrumentation sequence of a request must not allocate
// when the tracer is nil.
func TestDisabledTracingAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		trace := tr.New("request")
		sp := trace.StartSpan("solve")
		sp.SetAttrs(Int("nodes", 1), String("role", "leader"))
		sp.StartChild("child").End()
		sp.End()
		trace.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f times per request, want 0", allocs)
	}
}

func TestSpanEventJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer(TracerConfig{Recorder: sink})
	trace := tr.New("request")
	sp := trace.StartSpan("solve")
	sp.SetAttrs(Int("nodes", 3))
	sp.End()
	trace.Finish()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2: %q", len(lines), buf.String())
	}
	var got struct {
		Kind   string  `json:"kind"`
		Trace  string  `json:"trace"`
		Span   string  `json:"span"`
		SpanID int     `json:"span_id"`
		Parent int     `json:"parent"`
		DurMs  float64 `json:"dur_ms"`
		Attrs  string  `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != "span" || got.Trace != trace.ID().String() || got.Span != "solve" ||
		got.Parent != 1 || got.SpanID != 2 || got.Attrs != "nodes=3" {
		t.Fatalf("span JSONL line: %+v", got)
	}
}

// BenchmarkSpanDisabled / BenchmarkSpanEnabled are the acceptance
// benchmark pair for the tracing layer: the disabled path must report
// 0 allocs/op (compare with `make bench`).
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace := tr.New("request")
		sp := trace.StartSpan("solve")
		sp.SetAttrs(Int("nodes", int64(i)))
		sp.End()
		trace.Finish()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace := tr.New("request")
		sp := trace.StartSpan("solve")
		sp.SetAttrs(Int("nodes", int64(i)))
		sp.End()
		trace.Finish()
	}
}
