package csp

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

// randomInstance builds a seeded random minimisation instance: n
// variables with random-width domains, a web of random binary
// constraints, minimising the maximum. Returned fresh per call so
// sequential and parallel runs never share a store.
func randomInstance(seed int64, n int) (*Store, []*Var, *Var) {
	rng := rand.New(rand.NewSource(seed))
	st := NewStore()
	vars := make([]*Var, n)
	for i := range vars {
		lo := rng.Intn(4)
		vars[i] = st.NewVarRange("x", lo, lo+3+rng.Intn(2*n))
	}
	if rng.Intn(2) == 0 {
		AllDifferent(st, vars...)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch rng.Intn(4) {
			case 0:
				NotEqualOffset(st, vars[i], vars[j], rng.Intn(3)-1)
			case 1:
				LessEqOffset(st, vars[i], vars[j], rng.Intn(2))
			}
		}
	}
	obj := st.NewVarRange("obj", 0, 4+2*n+4)
	MaxOf(st, obj, vars...)
	return st, vars, obj
}

// TestParallelMatchesSequential is the determinism property test: over
// a seeded matrix of random instances and worker counts {1, 2, 4, 8},
// an exhaustive MinimizeParallel run returns the identical objective
// and — thanks to subtree-index tie-breaking — the identical final
// assignment as sequential Minimize. Run it under -race.
func TestParallelMatchesSequential(t *testing.T) {
	snapshot := func(s *Store, nVars int) []int {
		vals := make([]int, nVars)
		for i := 0; i < nVars; i++ {
			vals[i] = s.Vars()[i].Value()
		}
		return vals
	}
	for seed := int64(1); seed <= 10; seed++ {
		n := 4 + int(seed)%4
		st, vars, obj := randomInstance(seed, n)
		var seqSol []int
		seq, err := Minimize(st, vars, obj, Options{}, func(s *Store, _ int) {
			seqSol = snapshot(s, len(vars))
		})
		if err != nil {
			t.Fatalf("seed %d: Minimize: %v", seed, err)
		}
		if !seq.Optimal {
			t.Fatalf("seed %d: sequential run not exhaustive", seed)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			pst, pvars, pobj := randomInstance(seed, n)
			var parSol []int
			par, err := MinimizeParallel(pst, pvars, pobj, Options{Workers: workers}, func(s *Store, _ int) {
				parSol = snapshot(s, len(pvars))
			})
			if err != nil {
				t.Fatalf("seed %d workers %d: MinimizeParallel: %v", seed, workers, err)
			}
			if par.Found != seq.Found {
				t.Fatalf("seed %d workers %d: Found %v, sequential %v", seed, workers, par.Found, seq.Found)
			}
			if !par.Optimal {
				t.Fatalf("seed %d workers %d: parallel run not exhaustive (reason %v)", seed, workers, par.Reason)
			}
			if seq.Found && par.Best != seq.Best {
				t.Fatalf("seed %d workers %d: objective %d, sequential %d", seed, workers, par.Best, seq.Best)
			}
			if len(parSol) != len(seqSol) {
				t.Fatalf("seed %d workers %d: solution snapshots differ in length", seed, workers)
			}
			for i := range seqSol {
				if parSol[i] != seqSol[i] {
					t.Fatalf("seed %d workers %d: assignment differs at var %d: %v vs %v",
						seed, workers, i, parSol, seqSol)
				}
			}
		}
	}
}

// TestParallelMatchesSequentialDeepSplit repeats the property at
// SplitDepth 2 and 3, where intermediate split levels are committed on
// the root store.
func TestParallelMatchesSequentialDeepSplit(t *testing.T) {
	for seed := int64(20); seed <= 25; seed++ {
		st, vars, obj := randomInstance(seed, 5)
		seq, err := Minimize(st, vars, obj, Options{}, nil)
		if err != nil {
			t.Fatalf("seed %d: Minimize: %v", seed, err)
		}
		for _, depth := range []int{2, 3} {
			pst, pvars, pobj := randomInstance(seed, 5)
			par, err := MinimizeParallel(pst, pvars, pobj, Options{Workers: 4, SplitDepth: depth}, nil)
			if err != nil {
				t.Fatalf("seed %d depth %d: MinimizeParallel: %v", seed, depth, err)
			}
			if par.Found != seq.Found || (seq.Found && par.Best != seq.Best) || !par.Optimal {
				t.Fatalf("seed %d depth %d: (found %v best %d optimal %v), sequential (found %v best %d)",
					seed, depth, par.Found, par.Best, par.Optimal, seq.Found, seq.Best)
			}
		}
	}
}

// TestSolveParallelCountsSolutions checks exhaustive parallel
// enumeration delivers exactly the sequential solution count.
func TestSolveParallelCountsSolutions(t *testing.T) {
	build := func() (*Store, []*Var) {
		st := NewStore()
		n := 6
		vars := make([]*Var, n)
		for i := range vars {
			vars[i] = st.NewVarRange("q", 0, n-1)
		}
		AllDifferent(st, vars...)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				NotEqualOffset(st, vars[i], vars[j], j-i)
				NotEqualOffset(st, vars[j], vars[i], j-i)
			}
		}
		return st, vars
	}
	st, vars := build()
	seq, err := Solve(st, vars, Options{}, func(*Store) bool { return true })
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pst, pvars := build()
		par, err := SolveParallel(pst, pvars, Options{Workers: workers}, func(*Store) bool { return true })
		if err != nil {
			t.Fatalf("workers %d: SolveParallel: %v", workers, err)
		}
		if !par.Complete || par.Reason != StopExhausted {
			t.Fatalf("workers %d: not exhausted: %+v", workers, par)
		}
		if par.Solutions != seq.Solutions {
			t.Fatalf("workers %d: %d solutions, sequential %d", workers, par.Solutions, seq.Solutions)
		}
	}
}

// TestSolveParallelMaxSolutions checks the cut fires and at most
// MaxSolutions callbacks run.
func TestSolveParallelMaxSolutions(t *testing.T) {
	st := NewStore()
	vars := make([]*Var, 5)
	for i := range vars {
		vars[i] = st.NewVarRange("v", 0, 4)
	}
	AllDifferent(st, vars...)
	delivered := 0
	res, err := SolveParallel(st, vars, Options{Workers: 4, MaxSolutions: 3}, func(*Store) bool {
		delivered++ // serialised by the parState mutex
		return true
	})
	if err != nil {
		t.Fatalf("SolveParallel: %v", err)
	}
	if res.Solutions != 3 || delivered != 3 {
		t.Fatalf("got %d solutions (%d callbacks), want 3", res.Solutions, delivered)
	}
	if res.Reason != StopCut {
		t.Fatalf("reason %v, want cut", res.Reason)
	}
}

// eventCollector is a mutex-protected recorder for assertions on the
// merged event stream of a parallel run.
type eventCollector struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *eventCollector) Record(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// TestParallelWorkerEvents checks every branch/backtrack/incumbent
// event from worker goroutines carries a worker attribution.
func TestParallelWorkerEvents(t *testing.T) {
	st, vars, obj := randomInstance(3, 5)
	var col eventCollector
	res, err := MinimizeParallel(st, vars, obj, Options{Workers: 4, Recorder: &col}, nil)
	if err != nil {
		t.Fatalf("MinimizeParallel: %v", err)
	}
	if !res.Optimal {
		t.Fatalf("run not exhaustive: %v", res.Reason)
	}
	branches, tagged := 0, 0
	for _, e := range col.events {
		switch e.Kind {
		case obs.KindBranch, obs.KindBacktrack, obs.KindIncumbent:
			branches++
			if e.Worker >= 1 {
				tagged++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no search events recorded")
	}
	if tagged == 0 {
		t.Fatal("no event carries a worker attribution")
	}
}

// TestParallelStallNodes checks StallNodes measures progress of the
// global incumbent: with a generous stall budget and a tiny space the
// run completes; with a tiny budget on a large space it stops stalled.
func TestParallelStallNodes(t *testing.T) {
	st := NewStore()
	vars := make([]*Var, 9)
	for i := range vars {
		vars[i] = st.NewVarRange("v", 0, 11)
	}
	AllDifferent(st, vars...)
	obj := st.NewVarRange("obj", 0, 11)
	MaxOf(st, obj, vars...)
	res, err := MinimizeParallel(st, vars, obj, Options{Workers: 4, StallNodes: 40}, nil)
	if err != nil {
		t.Fatalf("MinimizeParallel: %v", err)
	}
	if !res.Found {
		t.Fatal("no solution found before stalling")
	}
	if res.Reason == StopExhausted {
		t.Skip("instance too easy to exercise stalling")
	}
	if !res.Stalled || res.Reason != StopStalled {
		t.Fatalf("want stalled stop, got %+v", res)
	}
}

// TestParallelMaxNodes checks the global node budget stops the run
// with StopNodeLimit.
func TestParallelMaxNodes(t *testing.T) {
	st := NewStore()
	vars := make([]*Var, 10)
	for i := range vars {
		vars[i] = st.NewVarRange("v", 0, 14)
	}
	AllDifferent(st, vars...)
	obj := st.NewVarRange("obj", 0, 14)
	MaxOf(st, obj, vars...)
	res, err := MinimizeParallel(st, vars, obj, Options{Workers: 4, MaxNodes: 200}, nil)
	if err != nil {
		t.Fatalf("MinimizeParallel: %v", err)
	}
	if res.Reason != StopNodeLimit {
		t.Fatalf("reason %v, want node-limit", res.Reason)
	}
	if res.Optimal {
		t.Fatal("node-limited run must not claim optimality")
	}
}

// TestParallelRejectsFuncProp checks the unclonable-store error path
// from the parallel entry point.
func TestParallelRejectsFuncProp(t *testing.T) {
	st := NewStore()
	x := st.NewVarRange("x", 0, 5)
	y := st.NewVarRange("y", 0, 5)
	st.Post(FuncProp(func(s *Store) error { return s.Remove(x, 3) }), x)
	_, err := MinimizeParallel(st, []*Var{x, y}, y, Options{Workers: 2}, nil)
	var ce *CloneError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CloneError, got %v", err)
	}
}

// TestOptionsValidation checks negative option values surface as typed
// *OptionError from every entry point instead of being silently
// accepted.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		field string
		opts  Options
	}{
		{"StallNodes", Options{StallNodes: -1}},
		{"MaxNodes", Options{MaxNodes: -7}},
		{"MaxSolutions", Options{MaxSolutions: -2}},
		{"Workers", Options{Workers: -1}},
		{"SplitDepth", Options{SplitDepth: -3}},
	}
	for _, tc := range cases {
		st := NewStore()
		x := st.NewVarRange("x", 0, 3)
		y := st.NewVarRange("y", 0, 3)
		vars := []*Var{x, y}

		check := func(entry string, err error) {
			t.Helper()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("%s with bad %s: want *OptionError, got %v", entry, tc.field, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("%s: OptionError names %q, want %q", entry, oe.Field, tc.field)
			}
		}
		_, err := Solve(st, vars, tc.opts, func(*Store) bool { return true })
		check("Solve", err)
		_, err = Minimize(st, vars, y, tc.opts, nil)
		check("Minimize", err)
		_, err = SolveParallel(st, vars, tc.opts, func(*Store) bool { return true })
		check("SolveParallel", err)
		_, err = MinimizeParallel(st, vars, y, tc.opts, nil)
		check("MinimizeParallel", err)
	}
}

// TestMaxNodesSequential checks the node budget on the sequential
// entry points.
func TestMaxNodesSequential(t *testing.T) {
	build := func() (*Store, []*Var, *Var) {
		st := NewStore()
		vars := make([]*Var, 10)
		for i := range vars {
			vars[i] = st.NewVarRange("v", 0, 14)
		}
		AllDifferent(st, vars...)
		obj := st.NewVarRange("obj", 0, 14)
		MaxOf(st, obj, vars...)
		return st, vars, obj
	}
	st, vars, obj := build()
	res, err := Minimize(st, vars, obj, Options{MaxNodes: 100}, nil)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res.Reason != StopNodeLimit || res.Nodes > 101 {
		t.Fatalf("want node-limit stop near 100 nodes, got reason %v after %d nodes", res.Reason, res.Nodes)
	}
	st2, vars2, _ := build()
	sres, err := Solve(st2, vars2, Options{MaxNodes: 100}, func(*Store) bool { return true })
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sres.Reason != StopNodeLimit || sres.Complete {
		t.Fatalf("want node-limit stop, got %+v", sres)
	}
}

// TestSharedBound exercises the CAS-minimum semantics including the
// nil receiver.
func TestSharedBound(t *testing.T) {
	var nilB *SharedBound
	if nilB.Get() != math.MaxInt64 {
		t.Fatal("nil SharedBound must read as unbounded")
	}
	nilB.Publish(5) // must not panic
	b := NewSharedBound()
	if b.Get() != math.MaxInt64 {
		t.Fatal("fresh SharedBound must read as unbounded")
	}
	b.Publish(10)
	b.Publish(12) // worse: ignored
	if b.Get() != 10 {
		t.Fatalf("bound %d, want 10", b.Get())
	}
	b.Publish(7)
	if b.Get() != 7 {
		t.Fatalf("bound %d, want 7", b.Get())
	}
}

// TestSharedBoundCouplesRuns checks a sequential Minimize prunes
// against an externally published bound and publishes its own
// improvements.
func TestSharedBoundCouplesRuns(t *testing.T) {
	build := func() (*Store, []*Var, *Var) {
		st := NewStore()
		vars := make([]*Var, 5)
		for i := range vars {
			vars[i] = st.NewVarRange("v", 0, 8)
		}
		AllDifferent(st, vars...)
		obj := st.NewVarRange("obj", 0, 8)
		MaxOf(st, obj, vars...)
		return st, vars, obj
	}
	// Free-running reference.
	st0, vars0, obj0 := build()
	ref, err := Minimize(st0, vars0, obj0, Options{}, nil)
	if err != nil || !ref.Found {
		t.Fatalf("reference run: %+v, %v", ref, err)
	}
	// Coupled run starting from an already-optimal external bound: it
	// may still match the bound (non-strict cut) but never beat it.
	b := NewSharedBound()
	b.Publish(ref.Best)
	st1, vars1, obj1 := build()
	res, err := Minimize(st1, vars1, obj1, Options{SharedBound: b}, nil)
	if err != nil {
		t.Fatalf("coupled run: %v", err)
	}
	if !res.Found || res.Best != ref.Best {
		t.Fatalf("coupled run found=%v best=%d, want best %d", res.Found, res.Best, ref.Best)
	}
	if b.Get() != ref.Best {
		t.Fatalf("bound drifted to %d", b.Get())
	}
	// A published improvement must land in the bound.
	b2 := NewSharedBound()
	st2, vars2, obj2 := build()
	res2, err := Minimize(st2, vars2, obj2, Options{SharedBound: b2}, nil)
	if err != nil {
		t.Fatalf("publishing run: %v", err)
	}
	if b2.Get() != res2.Best {
		t.Fatalf("bound %d, want published best %d", b2.Get(), res2.Best)
	}
}
