package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/geost"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/obs"
	"repro/internal/presolve"
)

// Strategy selects the branching-variable heuristic.
type Strategy uint8

// Branching strategies.
const (
	// StrategyFirstFail branches on the module with the fewest
	// remaining placements (dynamic, the default).
	StrategyFirstFail Strategy = iota
	// StrategyLargestFirst branches on modules in order of decreasing
	// minimum tile count (static).
	StrategyLargestFirst
	// StrategyInputOrder branches on modules in input order (static).
	StrategyInputOrder
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFirstFail:
		return "first-fail"
	case StrategyLargestFirst:
		return "largest-first"
	case StrategyInputOrder:
		return "input-order"
	}
	return "unknown"
}

// ValueOrder selects the placement-value heuristic.
type ValueOrder uint8

// Value orderings.
const (
	// OrderBottomLeft tries anchors bottom row first, left to right,
	// design alternatives in declaration order (the default; it steers
	// branch-and-bound towards low placements immediately).
	OrderBottomLeft ValueOrder = iota
	// OrderLexicographic tries design alternatives in declaration
	// order, each bottom-left.
	OrderLexicographic
)

// String names the value order.
func (v ValueOrder) String() string {
	switch v {
	case OrderBottomLeft:
		return "bottom-left"
	case OrderLexicographic:
		return "lexicographic"
	}
	return "unknown"
}

// Options configures a Placer.
type Options struct {
	// Timeout bounds the optimisation; the best placement found within
	// the budget is returned (Optimal=false if the proof did not
	// finish). Zero means no limit.
	Timeout time.Duration
	// Strategy is the branching-variable heuristic.
	Strategy Strategy
	// ValueOrder is the placement-value heuristic.
	ValueOrder ValueOrder
	// FirstSolutionOnly stops at the first complete placement without
	// optimising height.
	FirstSolutionOnly bool
	// StallNodes, when positive, stops optimisation after this many
	// search nodes without an improvement — the deterministic
	// convergence criterion used to measure "solve time" in the
	// experiments. Zero disables it.
	StallNodes int64
	// BusRows, when non-empty, lists the rows carrying the on-FPGA
	// communication bus (ReCoBus-style): every module's bounding box
	// must cross at least one bus row so the module can attach to the
	// bus. Anchors violating this are removed up front.
	BusRows []int
	// Workers, when greater than 1, solves with parallel
	// branch-and-bound on that many goroutines (csp.MinimizeParallel):
	// the search tree is split into subproblems explored on cloned
	// stores against a shared incumbent. 0 or 1 keeps the sequential
	// solver. Exhaustive parallel runs return the same height and the
	// same placement as the sequential solver (ties are broken by
	// subtree order, not arrival order); stalled or timed-out runs may
	// differ, as with any anytime stop.
	Workers int
	// Bound, when non-nil, couples this solve to other concurrent
	// solves of the same objective (portfolio arms): the search prunes
	// against the best height published by any participant and
	// publishes its own improvements. See csp.Options.SharedBound.
	Bound *csp.SharedBound
	// StrongPropagation adds geost compulsory-part pruning to the
	// pairwise non-overlap: objects whose remaining placements share a
	// guaranteed footprint prune their neighbours before being
	// assigned. More pruning per node, fewer nodes.
	StrongPropagation bool
	// Presolve toggles the optimality-preserving presolve pipeline
	// (dominance elimination, symmetry breaking, bound strengthening,
	// warm start; see internal/presolve). The zero value (PresolveOn)
	// runs it before every optimising search; PresolveOff searches the
	// model exactly as built. First-solution-only mode always skips
	// presolve: its lex constraints and warm bound shape the *optimal*
	// search and could exclude the placement a plain dive finds first.
	Presolve PresolveMode
	// Recorder, when non-nil, receives the structured solver event
	// stream (phase markers, branches, backtracks, prunes, incumbents).
	// Nil keeps the solve free of any recording overhead.
	Recorder obs.Recorder
	// Metrics, when non-nil, receives phase timings (model build,
	// search, propagation, optimality proof) and enables per-fixpoint
	// propagation timing on the store.
	Metrics *obs.Registry
}

// Placer places modules onto one partial region. It holds no mutable
// state between Place calls and is reusable, though not concurrently.
type Placer struct {
	region *fabric.Region
	opts   Options
}

// New returns a placer for the given region.
func New(region *fabric.Region, opts Options) *Placer {
	return &Placer{region: region, opts: opts}
}

// Place computes a minimum-height placement of the modules. Modules with
// no feasible position at all yield an error; a module set that is
// individually placeable but jointly infeasible yields Found=false.
func (p *Placer) Place(mods []*module.Module) (*Result, error) {
	//solverlint:allow nondeterminism run-start timestamp anchors Options.Timeout (a documented anytime stop) and Result.Elapsed reporting; exhaustive runs never read it
	start := time.Now()
	if len(mods) == 0 {
		return nil, fmt.Errorf("core: no modules to place")
	}

	reg := p.opts.Metrics
	if p.opts.Recorder != nil {
		p.opts.Recorder.Record(obs.Event{Kind: obs.KindPhase, Phase: "model_build"})
	}
	buildT := reg.Timer("phase_model_build")

	st := csp.NewStore()
	if reg != nil {
		st.EnableTiming(true)
	}
	k := geost.New(st, p.region.W(), p.region.H())
	objects := make([]*geost.Object, len(mods))
	for i, m := range mods {
		geoms := make([]geost.ShapeGeom, m.NumShapes())
		for si, s := range m.Shapes() {
			geoms[si] = ShapeGeomFor(p.region, s)
			if len(p.opts.BusRows) > 0 {
				restrictToBusRows(&geoms[si], p.opts.BusRows)
			}
		}
		o, err := k.AddObject(m.Name(), geoms)
		if err != nil {
			return nil, fmt.Errorf("core: module %s: %w", m.Name(), err)
		}
		objects[i] = o
	}
	k.PostNonOverlap()
	if p.opts.StrongPropagation {
		k.PostCompulsoryNonOverlap()
	}
	height := k.PostHeightObjective(CapacityPrefix(p.region))
	buildT.Stop()

	opts := csp.Options{
		ChooseVar:   p.chooser(mods, objects),
		OrderValues: p.valueOrderer(objects),
		StallNodes:  p.opts.StallNodes,
		Recorder:    p.opts.Recorder,
		Workers:     p.opts.Workers,
		SharedBound: p.opts.Bound,
	}
	if p.opts.Timeout > 0 {
		opts.Deadline = start.Add(p.opts.Timeout)
	}
	parallel := p.opts.Workers > 1

	// snapshot reads the solution through variable ids, not through the
	// objects' own pointers: under parallel search s is a clone of st,
	// holding counterpart variables at the same ids.
	res := &Result{}

	if p.opts.Presolve == PresolveOn && !p.opts.FirstSolutionOnly {
		if p.opts.Recorder != nil {
			p.opts.Recorder.Record(obs.Event{Kind: obs.KindPhase, Phase: "presolve"})
		}
		presolveT := reg.Timer("phase_presolve")
		pstats, perr := presolve.Apply(st, k, height)
		presolveT.Stop()
		res.PresolveStats = &PresolveStats{
			AlternativesDropped: pstats.AlternativesDropped,
			LexConstraints:      pstats.ModulesOrdered,
			BoundDelta:          pstats.BoundDelta,
		}
		reg.Counter("presolve_alternatives_dropped").Add(int64(pstats.AlternativesDropped))
		reg.Counter("presolve_modules_ordered").Add(int64(pstats.ModulesOrdered))
		reg.Counter("presolve_bound_delta").Add(int64(pstats.BoundDelta))
		if perr == csp.ErrInconsistent {
			// Presolve proved the instance infeasible at the root: same
			// outcome as an exhausted search that never found a solution.
			//solverlint:allow nondeterminism Result.Elapsed is reporting-only; no placement decision depends on it
			res.Elapsed = time.Since(start)
			res.Reason = csp.StopExhausted
			return res, nil
		}
		if perr != nil {
			return nil, perr
		}
		if pstats.WarmFound {
			res.PresolveStats.WarmHeight = pstats.WarmObjective
			reg.Gauge("presolve_warm_objective").Set(float64(pstats.WarmObjective))
			// Clip the height domain at the warm objective — non-strict,
			// so every placement as good as the heuristic's survives —
			// and guide the first dive to the warm placement itself. The
			// warm assignment is a solution of the clipped model, so the
			// dive reaches it without backtracking and branch-and-bound
			// opens with a real incumbent instead of a cold first
			// plateau.
			if err := st.SetMax(height, pstats.WarmObjective); err != nil {
				return nil, fmt.Errorf("core: presolve warm clip: %w", err)
			}
			if err := st.Propagate(); err != nil {
				return nil, fmt.Errorf("core: presolve warm clip: %w", err)
			}
			warmVal := make(map[int]int, len(objects))
			for i, o := range objects {
				warmVal[o.Place.ID()] = pstats.WarmValues[i]
			}
			opts.OrderValues = csp.PreferValues(opts.OrderValues, warmVal)
		}
	}
	snapshot := func(s *csp.Store, best int) {
		res.Found = true
		res.Height = best
		res.Placements = res.Placements[:0]
		for i, o := range objects {
			sid, x, y := o.Decode(s.Vars()[o.Place.ID()].Value())
			res.Placements = append(res.Placements, Placement{
				Module:     mods[i],
				ShapeIndex: sid,
				At:         grid.Pt(x, y),
			})
		}
	}

	if p.opts.Recorder != nil {
		p.opts.Recorder.Record(obs.Event{Kind: obs.KindPhase, Phase: "search"})
	}
	searchT := reg.Timer("phase_search")
	if p.opts.FirstSolutionOnly {
		onSolution := func(s *csp.Store) bool {
			best := s.Vars()[height.ID()].Min() // all tops assigned: max top = height min
			snapshot(s, best)
			return false
		}
		var sres csp.SearchResult
		var err error
		if parallel {
			// Which complete placement is found first depends on worker
			// scheduling; first-solution mode trades determinism for
			// latency here.
			sres, err = csp.SolveParallel(st, k.PlaceVars(), opts, onSolution)
		} else {
			sres, err = csp.Solve(st, k.PlaceVars(), opts, onSolution)
		}
		if err != nil {
			return nil, err
		}
		res.Nodes = sres.Nodes
		res.Backtracks = sres.Backtracks
		res.Propagations = sres.Propagations
		res.Reason = sres.Reason
		res.Optimal = false
	} else {
		var mres csp.MinimizeResult
		var err error
		if parallel {
			mres, err = csp.MinimizeParallel(st, k.PlaceVars(), height, opts, snapshot)
		} else {
			mres, err = csp.Minimize(st, k.PlaceVars(), height, opts, snapshot)
		}
		if err != nil {
			return nil, err
		}
		res.Nodes = mres.Nodes
		res.Backtracks = mres.Backtracks
		res.Propagations = mres.Propagations
		res.Reason = mres.Reason
		res.Optimal = mres.Found && mres.Optimal
		res.Stalled = mres.Stalled
		res.ObjectiveTrace = mres.BestObjectiveTrace
	}
	searchDur := searchT.Stop()
	if reg != nil {
		reg.ObserveDuration("phase_propagation", st.PropagationTime())
		// The optimality proof is the tail of the search after the last
		// improving solution.
		if res.Optimal && len(res.ObjectiveTrace) > 0 {
			last := res.ObjectiveTrace[len(res.ObjectiveTrace)-1]
			reg.ObserveDuration("phase_proof", searchDur-last.Elapsed)
		}
	}

	//solverlint:allow nondeterminism Result.Elapsed is reporting-only; no placement decision depends on it
	res.Elapsed = time.Since(start)
	if res.Found {
		res.Utilization = metrics.Utilization(p.region, res.Occupancy(p.region))
	}
	return res, nil
}

// chooser builds the branching-variable heuristic. It always exhausts
// the placement variables before touching auxiliary search variables
// (the height objective): branching on the objective first would turn
// the dive into exact-height packing and thrash.
//
// The heuristic is positional, not pointer-bound: the first
// len(objects) search variables are the placement variables in module
// order (k.PlaceVars ordering), on the original store and on every
// worker clone alike. Capturing the original *Var pointers instead
// would make parallel workers branch on the wrong (frozen) store.
func (p *Placer) chooser(mods []*module.Module, objects []*geost.Object) csp.VarChooser {
	n := len(objects)
	var base csp.VarChooser
	switch p.opts.Strategy {
	case StrategyLargestFirst:
		order := make([]int, len(mods))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return mods[order[a]].MinSize() > mods[order[b]].MinSize()
		})
		base = func(place []*csp.Var) *csp.Var {
			for _, idx := range order {
				if !place[idx].Assigned() {
					return place[idx]
				}
			}
			return nil
		}
	case StrategyInputOrder:
		base = csp.FirstUnassigned
	default:
		base = csp.SmallestDomain
	}
	return func(all []*csp.Var) *csp.Var {
		if v := base(all[:n]); v != nil {
			return v
		}
		return csp.FirstUnassigned(all)
	}
}

// restrictToBusRows clears anchors whose bounding box crosses no bus
// row: with anchor y the box covers rows [y, y+H), so it attaches to a
// bus at row r iff y <= r < y+H.
func restrictToBusRows(g *geost.ShapeGeom, busRows []int) {
	for y := 0; y < g.Valid.H(); y++ {
		attached := false
		for _, r := range busRows {
			if y <= r && r < y+g.H {
				attached = true
				break
			}
		}
		if !attached {
			g.Valid.SetRect(grid.RectXYWH(0, y, g.Valid.W(), 1), false)
		}
	}
}

// valueOrderer builds the placement-value heuristic. For bottom-left
// ordering each object's full candidate list is pre-sorted by
// (y, x, shape); at a node the live values are picked from that
// permutation by a constant-time membership test.
func (p *Placer) valueOrderer(objects []*geost.Object) csp.ValueOrderer {
	if p.opts.ValueOrder == OrderLexicographic {
		return csp.AscendingValues
	}
	// Keyed by variable id so the permutation applies to a worker
	// clone's counterpart variable as well as the original.
	perm := make(map[int][]int, len(objects))
	for _, o := range objects {
		vals := o.Place.Domain().Values()
		obj := o
		sort.SliceStable(vals, func(a, b int) bool {
			sa, xa, ya := obj.Decode(vals[a])
			sb, xb, yb := obj.Decode(vals[b])
			if ya != yb {
				return ya < yb
			}
			if xa != xb {
				return xa < xb
			}
			return sa < sb
		})
		perm[o.Place.ID()] = vals
	}
	return func(v *csp.Var) []int {
		ordered, ok := perm[v.ID()]
		if !ok {
			return csp.AscendingValues(v)
		}
		dom := v.Domain()
		out := make([]int, 0, dom.Size())
		for _, val := range ordered {
			if dom.Contains(val) {
				out = append(out, val)
				if len(out) == dom.Size() {
					break
				}
			}
		}
		return out
	}
}
