package metrics

// BusDistance quantifies communication quality of a placement in a
// ReCoBus-style system: for each placed module (given by its bounding
// rows) the vertical distance to the nearest bus row, averaged over
// modules. Zero means every module crosses a bus (the hard constraint
// the placer can enforce); positive values measure how far modules would
// need dedicated feed-through wiring.
func BusDistance(rowsSpans [][2]int, busRows []int) float64 {
	if len(rowsSpans) == 0 || len(busRows) == 0 {
		return 0
	}
	total := 0
	for _, span := range rowsSpans {
		best := -1
		for _, r := range busRows {
			d := 0
			switch {
			case r < span[0]:
				d = span[0] - r
			case r >= span[1]:
				d = r - (span[1] - 1)
			}
			if best < 0 || d < best {
				best = d
			}
		}
		total += best
	}
	return float64(total) / float64(len(rowsSpans))
}
