package solverlint

import (
	"os"
	"path/filepath"
	"testing"
)

// loadTestPkgs writes the given files into a throwaway module rooted
// at a temp dir and loads ./... from it.
func loadTestPkgs(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module throwaway\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkgs
}

// TestLoadTypeChecks exercises the offline loader end to end: std
// imports resolve through gc export data and the AST carries full type
// information.
func TestLoadTypeChecks(t *testing.T) {
	pkgs := loadTestPkgs(t, map[string]string{
		"a/a.go": `
package a

import "strings"

// Upper shouts.
func Upper(s string) string { return strings.ToUpper(s) }
`,
		"b/b.go": `
package b

// N is a counter.
var N int
`,
	})
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded without type info", p.Path)
		}
	}
}

// TestLoadReportsTypeErrors checks broken fixture code fails loudly
// instead of yielding half-checked packages.
func TestLoadReportsTypeErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module broken\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package broken\n\nvar x undefinedType\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "./..."); err == nil {
		t.Fatal("Load succeeded on code that does not type-check")
	}
}
