// Package regionplan chooses where on a device to allocate the
// reconfigurable region for a given module set — the design-time step
// the paper's related work ([1] three-level resource management, [14]
// automated placement of reconfigurable regions) performs before any
// module placement. The planner enumerates candidate rectangles
// (smallest area first, on a step grid), prunes by per-kind resource
// capacity against the module set's minimum demand, and accepts the
// first candidate on which the constraint-programming placer finds a
// complete placement.
//
// On heterogeneous devices position matters as much as size: a candidate
// must cover enough BRAM/DSP columns in the right arrangement, which the
// capacity filter catches cheaply and the placement check verifies
// exactly.
package regionplan

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// Options configures the planner.
type Options struct {
	// Placer configures the per-candidate feasibility check;
	// FirstSolutionOnly is forced on (the planner needs feasibility,
	// not optimality).
	Placer core.Options
	// Step is the grid granularity for candidate sizes and positions
	// (default 4, matching typical reconfigurable-frame granularity).
	Step int
	// MaxAttempts bounds the number of placement checks (default 64);
	// capacity-infeasible candidates are free.
	MaxAttempts int
}

func (o Options) defaults() Options {
	if o.Step <= 0 {
		o.Step = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 200
	}
	o.Placer.FirstSolutionOnly = true
	return o
}

// Candidate is one evaluated region proposal.
type Candidate struct {
	Rect grid.Rect
	// Result is the feasibility placement (nil when only capacity was
	// checked and failed).
	Result *core.Result
}

// Plan returns the smallest-area step-aligned region of dev on which the
// module set places completely, together with the evaluated candidates
// (in evaluation order) for reporting. An error is returned when no
// candidate within the attempt budget works.
func Plan(dev *fabric.Device, mods []*module.Module, opts Options) (*Candidate, []Candidate, error) {
	opts = opts.defaults()
	if len(mods) == 0 {
		return nil, nil, fmt.Errorf("regionplan: no modules")
	}

	// Minimum dimensions: every module's smallest bounding box must fit.
	minW, minH := 1, 1
	var demand fabric.Histogram
	for _, m := range mods {
		lo, _ := m.Envelope()
		for k := range demand {
			demand[k] += lo[k]
		}
		// The narrowest alternative bounds the region width; likewise
		// height.
		bw, bh := dev.W(), dev.H()
		for _, s := range m.Shapes() {
			if s.W() < bw {
				bw = s.W()
			}
			if s.H() < bh {
				bh = s.H()
			}
		}
		if bw > minW {
			minW = bw
		}
		if bh > minH {
			minH = bh
		}
	}

	candidates := enumerate(dev, minW, minH, opts.Step)
	sort.SliceStable(candidates, func(i, j int) bool {
		ai, aj := candidates[i].Area(), candidates[j].Area()
		if ai != aj {
			return ai < aj
		}
		if candidates[i].MinY != candidates[j].MinY {
			return candidates[i].MinY < candidates[j].MinY
		}
		return candidates[i].MinX < candidates[j].MinX
	})

	var tried []Candidate
	attempts := 0
	for _, rect := range candidates {
		region := dev.Region(rect)
		if !capacitySufficient(region, demand) {
			continue
		}
		if !allModulesAnchorable(region, mods) {
			continue
		}
		attempts++
		if attempts > opts.MaxAttempts {
			break
		}
		res, err := core.New(region, opts.Placer).Place(mods)
		if err != nil {
			// Jointly un-buildable candidate (should be rare after the
			// anchor pre-filter); keep looking.
			tried = append(tried, Candidate{Rect: rect})
			continue
		}
		tried = append(tried, Candidate{Rect: rect, Result: res})
		if res.Found {
			winner := tried[len(tried)-1]
			return &winner, tried, nil
		}
	}
	return nil, tried, fmt.Errorf("regionplan: no feasible region within %d attempts", opts.MaxAttempts)
}

// enumerate lists step-aligned rectangles with dims >= (minW, minH).
func enumerate(dev *fabric.Device, minW, minH, step int) []grid.Rect {
	var out []grid.Rect
	for w := roundUp(minW, step); w <= dev.W(); w += step {
		for h := roundUp(minH, step); h <= dev.H(); h += step {
			for x := 0; x+w <= dev.W(); x += step {
				for y := 0; y+h <= dev.H(); y += step {
					out = append(out, grid.RectXYWH(x, y, w, h))
				}
			}
		}
	}
	return out
}

func roundUp(v, step int) int { return (v + step - 1) / step * step }

// allModulesAnchorable reports whether every module has at least one
// valid anchor for at least one of its shapes in the region — a cheap
// necessary condition checked before spending a placement attempt.
func allModulesAnchorable(region *fabric.Region, mods []*module.Module) bool {
	for _, m := range mods {
		any := false
		for _, s := range m.Shapes() {
			if core.ValidAnchors(region, s).Count() > 0 {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// capacitySufficient reports whether the region's per-kind placeable
// capacity covers the demand.
func capacitySufficient(region *fabric.Region, demand fabric.Histogram) bool {
	have := region.Histogram()
	for k := range demand {
		if demand[k] > have[k] {
			return false
		}
	}
	return true
}
