package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/canon"
	"repro/internal/core"
)

// PlaceResponse is the wire form of a /v1/place result. The body is
// built exactly once per canonical instance — on the solving request —
// and cached verbatim, so cache hits are byte-identical to the
// original response (the per-request hit/miss indicator travels in the
// X-Cache header instead). SolveMs is therefore the original solve's
// wall time, not the serving time of this response.
type PlaceResponse struct {
	// Digest is the canonical instance digest (the cache key), hex.
	Digest string `json:"digest"`
	Fabric string `json:"fabric"`
	// Found reports whether a complete placement exists; an infeasible
	// instance is a valid, cacheable answer with Found=false.
	Found       bool    `json:"found"`
	Height      int     `json:"height"`
	Utilization float64 `json:"utilization"`
	Optimal     bool    `json:"optimal"`
	Stalled     bool    `json:"stalled"`
	Reason      string  `json:"reason"`
	Nodes       int64   `json:"nodes"`
	Backtracks  int64   `json:"backtracks"`
	SolveMs     float64 `json:"solveMs"`
	// Quality tags degraded answers: "approximate" when a baseline
	// heuristic placed the instance because the exact solve missed its
	// deadline or was shed. Omitted (empty) on exact answers, so exact
	// response bodies are byte-identical to the pre-degradation format.
	Quality string `json:"quality,omitempty"`
	// Placements lists one entry per module in canonical (name) order.
	// Shape indexes refer to the canonical shape order (shapes sorted
	// by geometric key), not the order the request listed them in.
	Placements []PlacementSpec `json:"placements,omitempty"`
}

// PlacementSpec is one placed module: chosen design alternative and
// bounding box anchor/size in region coordinates.
type PlacementSpec struct {
	Module string `json:"module"`
	Shape  int    `json:"shape"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	W      int    `json:"w"`
	H      int    `json:"h"`
}

// errorResponse is the body of every non-2xx JSON reply.
type errorResponse struct {
	Error string `json:"error"`
}

// buildResponse encodes the solve outcome for the canonical request.
// quality is QualityExact for solver results (encoded as the empty,
// omitted field) or QualityApproximate for degraded ones.
func buildResponse(digest canon.Digest, req *canon.Request, res *core.Result, quality string) ([]byte, error) {
	resp := PlaceResponse{
		Digest:      digest.String(),
		Fabric:      req.Fabric,
		Found:       res.Found,
		Height:      res.Height,
		Utilization: res.Utilization,
		Optimal:     res.Optimal,
		Stalled:     res.Stalled,
		Reason:      res.Reason.String(),
		Nodes:       res.Nodes,
		Backtracks:  res.Backtracks,
		SolveMs:     float64(res.Elapsed.Microseconds()) / 1e3,
	}
	if quality != QualityExact {
		resp.Quality = quality
	}
	for _, p := range res.Placements {
		s := p.Shape()
		resp.Placements = append(resp.Placements, PlacementSpec{
			Module: p.Module.Name(),
			Shape:  p.ShapeIndex,
			X:      p.At.X,
			Y:      p.At.Y,
			W:      s.W(),
			H:      s.H(),
		})
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("service: encoding response: %w", err)
	}
	return append(body, '\n'), nil
}
