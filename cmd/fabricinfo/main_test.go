package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDevice(t *testing.T) {
	if err := run("spartan-like-24x16", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegionFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.spec")
	if err := os.WriteFile(path, []byte("region t 8 8\nbramcols 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", false); err == nil {
		t.Error("no source accepted")
	}
	if err := run("x", "y", false); err == nil {
		t.Error("both sources accepted")
	}
	if err := run("bogus-device", "", false); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("", "/nonexistent", false); err == nil {
		t.Error("missing region file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.spec")
	if err := os.WriteFile(bad, []byte("wibble\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", bad, false); err == nil {
		t.Error("bad region spec accepted")
	}
}
