package online

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func TestMaximalEmptyRectsEmptyRegion(t *testing.T) {
	region := fabric.Homogeneous(6, 4).FullRegion()
	occ := grid.NewBitmap(6, 4)
	mers := MaximalEmptyRects(region, occ)
	if len(mers) != 1 {
		t.Fatalf("mers = %v, want one full rect", mers)
	}
	if mers[0] != grid.RectXYWH(0, 0, 6, 4) {
		t.Fatalf("mer = %v", mers[0])
	}
}

func TestMaximalEmptyRectsSplit(t *testing.T) {
	region := fabric.Homogeneous(5, 5).FullRegion()
	occ := grid.NewBitmap(5, 5)
	occ.SetRect(grid.RectXYWH(2, 2, 1, 1), true) // single blocker in the centre
	mers := MaximalEmptyRects(region, occ)
	// Four maximal rects around a centre blocker: left 2x5, right 2x5,
	// bottom 5x2, top 5x2.
	want := map[grid.Rect]bool{
		grid.RectXYWH(0, 0, 2, 5): true,
		grid.RectXYWH(3, 0, 2, 5): true,
		grid.RectXYWH(0, 0, 5, 2): true,
		grid.RectXYWH(0, 3, 5, 2): true,
	}
	if len(mers) != len(want) {
		t.Fatalf("mers = %v", mers)
	}
	for _, r := range mers {
		if !want[r] {
			t.Fatalf("unexpected mer %v in %v", r, mers)
		}
	}
}

func TestMaximalEmptyRectsFullyOccupied(t *testing.T) {
	region := fabric.Homogeneous(3, 3).FullRegion()
	occ := grid.NewBitmap(3, 3)
	occ.SetRect(grid.RectXYWH(0, 0, 3, 3), true)
	if mers := MaximalEmptyRects(region, occ); len(mers) != 0 {
		t.Fatalf("mers = %v, want none", mers)
	}
}

func TestMaximalEmptyRectsRespectPlaceability(t *testing.T) {
	// A static column splits the free space even with empty occupancy.
	dev := fabric.Homogeneous(5, 3)
	dev.MaskStatic(grid.RectXYWH(2, 0, 1, 3))
	region := dev.FullRegion()
	mers := MaximalEmptyRects(region, grid.NewBitmap(5, 3))
	want := map[grid.Rect]bool{
		grid.RectXYWH(0, 0, 2, 3): true,
		grid.RectXYWH(3, 0, 2, 3): true,
	}
	if len(mers) != 2 {
		t.Fatalf("mers = %v", mers)
	}
	for _, r := range mers {
		if !want[r] {
			t.Fatalf("unexpected mer %v", r)
		}
	}
}

// Properties: every returned rect is empty, maximal, and every free tile
// is covered by some rect.
func TestMaximalEmptyRectsProperties(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		occ := grid.NewBitmap(8, 8)
		for i := 0; i < int(n%40); i++ {
			occ.Set(rng.Intn(8), rng.Intn(8), true)
		}
		mers := MaximalEmptyRects(region, occ)
		// Emptiness.
		for _, r := range mers {
			for _, p := range r.Points() {
				if occ.Get(p.X, p.Y) {
					return false
				}
			}
		}
		// Maximality: growing any rect by one in any direction hits an
		// occupied/out-of-range tile.
		grow := func(r grid.Rect, dx0, dy0, dx1, dy1 int) grid.Rect {
			return grid.Rect{MinX: r.MinX + dx0, MinY: r.MinY + dy0, MaxX: r.MaxX + dx1, MaxY: r.MaxY + dy1}
		}
		ok := func(r grid.Rect) bool {
			if !region.Bounds().Contains(r) {
				return false
			}
			for _, p := range r.Points() {
				if occ.Get(p.X, p.Y) {
					return false
				}
			}
			return true
		}
		for _, r := range mers {
			for _, g := range []grid.Rect{
				grow(r, -1, 0, 0, 0), grow(r, 0, -1, 0, 0),
				grow(r, 0, 0, 1, 0), grow(r, 0, 0, 0, 1),
			} {
				if ok(g) {
					return false
				}
			}
		}
		// Coverage.
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if occ.Get(x, y) {
					continue
				}
				covered := false
				for _, r := range mers {
					if grid.Pt(x, y).In(r) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
