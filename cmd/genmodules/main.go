// Command genmodules draws a random module workload (the paper's
// Section-V recipe by default) and writes it as a module specification
// consumable by cmd/placer.
//
// Example:
//
//	genmodules -n 30 -seed 7 > modules.spec
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/recobus"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 30, "number of modules")
		seed    = flag.Int64("seed", 1, "random seed")
		clbMin  = flag.Int("clbmin", 20, "minimum CLB demand")
		clbMax  = flag.Int("clbmax", 100, "maximum CLB demand")
		bramMax = flag.Int("brammax", 4, "maximum BRAM demand")
		dspMax  = flag.Int("dspmax", 0, "maximum DSP demand")
		alts    = flag.Int("alts", 4, "design alternatives per module")
	)
	flag.Parse()

	cfg := workload.Config{
		NumModules:   *n,
		CLBMin:       *clbMin,
		CLBMax:       *clbMax,
		BRAMMax:      *bramMax,
		NoBRAM:       *bramMax == 0,
		DSPMax:       *dspMax,
		Alternatives: *alts,
	}
	if err := run(os.Stdout, cfg, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genmodules:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg workload.Config, seed int64) error {
	mods, err := workload.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	return recobus.WriteModules(w, mods)
}
