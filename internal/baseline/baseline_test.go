package baseline

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/workload"
)

func clbModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range Algorithms() {
		if a.String() == "unknown" {
			t.Errorf("algorithm %d unnamed", a)
		}
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("invalid algorithm should be unknown")
	}
}

func TestFirstFitBottomLeft(t *testing.T) {
	r := fabric.Homogeneous(4, 6).FullRegion()
	mods := []*module.Module{clbModule("a", 2, 2), clbModule("b", 2, 2)}
	res, err := Place(r, mods, FirstFit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Height != 2 {
		t.Fatalf("result: %v", res)
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
	// Bottom-left order: a at (0,0), b at (2,0).
	if res.Placements[0].At != grid.Pt(0, 0) || res.Placements[1].At != grid.Pt(2, 0) {
		t.Fatalf("placements: %v", res.Placements)
	}
}

func TestAllAlgorithmsValidAndFound(t *testing.T) {
	dev := fabric.VirtexLike(36, 24)
	r := dev.FullRegion()
	rng := rand.New(rand.NewSource(3))
	mods := workload.MustGenerate(workload.Config{
		NumModules: 8, CLBMin: 10, CLBMax: 30, BRAMMax: 2,
	}, rng)
	for _, alg := range Algorithms() {
		for _, alts := range []bool{false, true} {
			res, err := Place(r, mods, alg, Options{UseAlternatives: alts, Seed: 1, Iterations: 2000})
			if err != nil {
				t.Fatalf("%v alts=%v: %v", alg, alts, err)
			}
			if !res.Found {
				t.Fatalf("%v alts=%v: not found", alg, alts)
			}
			if err := res.Validate(r); err != nil {
				t.Fatalf("%v alts=%v: %v", alg, alts, err)
			}
		}
	}
}

func TestBestFitNotWorseThanFirstFitHere(t *testing.T) {
	// A case where first-fit's input order hurts: big module after
	// smalls. Best-fit must end at most as high.
	r := fabric.Homogeneous(6, 12).FullRegion()
	mods := []*module.Module{
		clbModule("s1", 2, 1), clbModule("s2", 2, 1),
		clbModule("big", 6, 2), clbModule("s3", 2, 1),
	}
	ff, err := Place(r, mods, FirstFit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Place(r, mods, BestFit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Height > ff.Height {
		t.Fatalf("best-fit %d worse than first-fit %d", bf.Height, ff.Height)
	}
}

func TestAnnealingImprovesOrMatchesBLD(t *testing.T) {
	r := fabric.Homogeneous(8, 30).FullRegion()
	rng := rand.New(rand.NewSource(11))
	mods := workload.MustGenerate(workload.Config{
		NumModules: 10, CLBMin: 6, CLBMax: 16, NoBRAM: true, Alternatives: 2,
	}, rng)
	bld, err := Place(r, mods, BottomLeftDecreasing, Options{UseAlternatives: true})
	if err != nil {
		t.Fatal(err)
	}
	ann, err := Place(r, mods, Annealing, Options{UseAlternatives: true, Seed: 7, Iterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !ann.Found || ann.Height > bld.Height {
		t.Fatalf("annealing %d worse than BLD %d", ann.Height, bld.Height)
	}
	if err := ann.Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealingDeterministic(t *testing.T) {
	r := fabric.Homogeneous(6, 20).FullRegion()
	mods := []*module.Module{
		clbModule("a", 3, 2), clbModule("b", 2, 3), clbModule("c", 4, 1), clbModule("d", 2, 2),
	}
	a, err := Place(r, mods, Annealing, Options{Seed: 5, Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(r, mods, Annealing, Options{Seed: 5, Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placements {
		if a.Placements[i].At != b.Placements[i].At ||
			a.Placements[i].ShapeIndex != b.Placements[i].ShapeIndex {
			t.Fatal("same seed produced different annealing results")
		}
	}
}

func TestBaselineInfeasibleModule(t *testing.T) {
	r := fabric.Homogeneous(2, 2).FullRegion()
	if _, err := Place(r, []*module.Module{clbModule("big", 3, 3)}, FirstFit, Options{}); err == nil {
		t.Fatal("infeasible module accepted")
	}
}

func TestBaselineJointlyInfeasible(t *testing.T) {
	r := fabric.Homogeneous(2, 3).FullRegion()
	mods := []*module.Module{clbModule("a", 2, 2), clbModule("b", 2, 2)}
	res, err := Place(r, mods, FirstFit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("jointly infeasible set reported found")
	}
}

func TestBaselineEmptyModules(t *testing.T) {
	r := fabric.Homogeneous(2, 2).FullRegion()
	if _, err := Place(r, nil, FirstFit, Options{}); err == nil {
		t.Fatal("empty module list accepted")
	}
}

func TestCPPlacerBeatsOrMatchesBaselines(t *testing.T) {
	// The optimal CP placement is never higher than any heuristic's.
	r := fabric.Homogeneous(6, 14).FullRegion()
	mods := []*module.Module{
		clbModule("a", 3, 2), clbModule("b", 3, 2),
		clbModule("c", 2, 3), clbModule("d", 4, 1),
	}
	cp, err := core.New(r, core.Options{Timeout: 5 * time.Second}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Found {
		t.Fatal("CP found nothing")
	}
	for _, alg := range Algorithms() {
		res, err := Place(r, mods, alg, Options{Seed: 2, Iterations: 3000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && cp.Height > res.Height {
			t.Fatalf("CP height %d worse than %v height %d", cp.Height, alg, res.Height)
		}
	}
}

func TestUseAlternativesImproves(t *testing.T) {
	// Two 1x4/4x1 bar modules in a 4-wide region (cf. the core test):
	// primary shape is horizontal 4x1 -> BLD stacks them at height 2;
	// restricted further? With alternatives the heuristic can pick
	// either; without, it uses the primary only. Construct so that the
	// primary is the bad one: vertical first.
	var vTiles, hTiles []module.Tile
	for i := 0; i < 4; i++ {
		vTiles = append(vTiles, module.Tile{At: grid.Pt(0, i), Kind: fabric.CLB})
		hTiles = append(hTiles, module.Tile{At: grid.Pt(i, 0), Kind: fabric.CLB})
	}
	mk := func(name string) *module.Module {
		return module.MustModule(name, module.MustShape(vTiles), module.MustShape(hTiles))
	}
	r := fabric.Homogeneous(4, 10).FullRegion()
	mods := []*module.Module{mk("a"), mk("b")}
	with, err := Place(r, mods, BestFit, Options{UseAlternatives: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Place(r, mods, BestFit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if with.Height >= without.Height {
		t.Fatalf("alternatives did not help: with=%d without=%d", with.Height, without.Height)
	}
}
