package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, -2)
	q := Pt(-1, 5)
	if got := p.Add(q); got != Pt(2, 3) {
		t.Errorf("Add = %v, want (2,3)", got)
	}
	if got := p.Sub(q); got != Pt(4, -7) {
		t.Errorf("Sub = %v, want (4,-7)", got)
	}
	if got := p.Neg(); got != Pt(-3, 2) {
		t.Errorf("Neg = %v, want (-3,2)", got)
	}
}

func TestPointAddSubRoundTrip(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := Pt(int(ax), int(ay))
		b := Pt(int(bx), int(by))
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointIn(t *testing.T) {
	r := RectXYWH(0, 0, 4, 3)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(3, 2), true},
		{Pt(4, 2), false},
		{Pt(3, 3), false},
		{Pt(-1, 0), false},
		{Pt(0, -1), false},
	}
	for _, c := range cases {
		if got := c.p.In(r); got != c.want {
			t.Errorf("%v.In(%v) = %v, want %v", c.p, r, got, c.want)
		}
	}
}

func TestSortPointsCanonicalOrder(t *testing.T) {
	ps := []Point{{2, 1}, {0, 0}, {1, 1}, {5, 0}}
	SortPoints(ps)
	want := []Point{{0, 0}, {5, 0}, {1, 1}, {2, 1}}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("SortPoints = %v, want %v", ps, want)
		}
	}
}

func TestSortPointsIsSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := make([]Point, int(n)%32)
		for i := range ps {
			ps[i] = Pt(rng.Intn(10), rng.Intn(10))
		}
		SortPoints(ps)
		for i := 1; i < len(ps); i++ {
			if ps[i].Less(ps[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDedupPoints(t *testing.T) {
	ps := []Point{{1, 1}, {0, 0}, {1, 1}, {0, 0}, {2, 2}}
	out := DedupPoints(ps)
	if len(out) != 3 {
		t.Fatalf("DedupPoints len = %d, want 3 (%v)", len(out), out)
	}
	want := []Point{{0, 0}, {1, 1}, {2, 2}}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("DedupPoints = %v, want %v", out, want)
		}
	}
	if got := DedupPoints(nil); got != nil {
		t.Errorf("DedupPoints(nil) = %v, want nil", got)
	}
}

func TestBoundsOf(t *testing.T) {
	if got := BoundsOf(nil); !got.Empty() {
		t.Errorf("BoundsOf(nil) = %v, want empty", got)
	}
	ps := []Point{{1, 2}, {4, 0}, {3, 5}}
	got := BoundsOf(ps)
	want := Rect{MinX: 1, MinY: 0, MaxX: 5, MaxY: 6}
	if got != want {
		t.Errorf("BoundsOf = %v, want %v", got, want)
	}
	for _, p := range ps {
		if !p.In(got) {
			t.Errorf("point %v not in its own bounds %v", p, got)
		}
	}
}

func TestBoundsOfContainsAll(t *testing.T) {
	f := func(raw []struct{ X, Y int8 }) bool {
		ps := make([]Point, len(ps2pts(raw)))
		copy(ps, ps2pts(raw))
		b := BoundsOf(ps)
		for _, p := range ps {
			if !p.In(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func ps2pts(raw []struct{ X, Y int8 }) []Point {
	ps := make([]Point, len(raw))
	for i, r := range raw {
		ps[i] = Pt(int(r.X), int(r.Y))
	}
	return ps
}
