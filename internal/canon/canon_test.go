package canon

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/workload"
)

// testModules draws a small reproducible batch with alternatives.
func testModules(t testing.TB, seed int64, n int) []*module.Module {
	t.Helper()
	mods, err := workload.Generate(workload.Config{
		NumModules: n, CLBMin: 4, CLBMax: 9, BRAMMax: 1, Alternatives: 3,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return mods
}

func testRequest(t testing.TB) *Request {
	t.Helper()
	return &Request{
		Fabric:  "virtex4-like-72x60",
		Modules: testModules(t, 1, 5),
		Options: core.RequestOptions{StallNodes: 500, BusRows: []int{4, 2, 4}},
	}
}

func digestOf(t testing.TB, r *Request) Digest {
	t.Helper()
	d, err := r.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDigestDeterministic(t *testing.T) {
	r := testRequest(t)
	if d1, d2 := digestOf(t, r), digestOf(t, r); d1 != d2 {
		t.Fatalf("same request digested twice: %s != %s", d1, d2)
	}
	// An independently built identical request digests identically.
	if d1, d2 := digestOf(t, testRequest(t)), digestOf(t, r); d1 != d2 {
		t.Fatalf("identical requests digest differently: %s != %s", d1, d2)
	}
}

func TestDigestModuleOrderInvariant(t *testing.T) {
	r := testRequest(t)
	want := digestOf(t, r)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		p := &Request{Fabric: r.Fabric, Region: r.Region, Options: r.Options}
		p.Modules = append([]*module.Module(nil), r.Modules...)
		rng.Shuffle(len(p.Modules), func(i, j int) {
			p.Modules[i], p.Modules[j] = p.Modules[j], p.Modules[i]
		})
		if got := digestOf(t, p); got != want {
			t.Fatalf("trial %d: module permutation changed digest: %s != %s", trial, got, want)
		}
		if !Equal(r, p) {
			t.Fatalf("trial %d: permuted request not canonically equal", trial)
		}
	}
}

func TestDigestShapeOrderInvariant(t *testing.T) {
	r := testRequest(t)
	want := digestOf(t, r)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := &Request{Fabric: r.Fabric, Region: r.Region, Options: r.Options}
		for _, m := range r.Modules {
			idx := rng.Perm(m.NumShapes())
			pm, err := m.WithShapes(idx...)
			if err != nil {
				t.Fatal(err)
			}
			p.Modules = append(p.Modules, pm)
		}
		if got := digestOf(t, p); got != want {
			t.Fatalf("trial %d: shape permutation changed digest: %s != %s", trial, got, want)
		}
	}
}

func TestDigestBusRowNormalization(t *testing.T) {
	r := testRequest(t)
	p := testRequest(t)
	p.Options.BusRows = []int{2, 4} // sorted, deduped variant of {4, 2, 4}
	if digestOf(t, r) != digestOf(t, p) {
		t.Fatal("bus-row order/duplicates changed digest")
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := testRequest(t)
	want := digestOf(t, base)
	mutate := []struct {
		name string
		mut  func(*Request)
	}{
		{"fabric", func(r *Request) { r.Fabric = "virtex5-like-96x80" }},
		{"region", func(r *Request) { r.Region = grid.RectXYWH(0, 0, 40, 40) }},
		{"timeout", func(r *Request) { r.Options.Timeout = time.Second }},
		{"strategy", func(r *Request) { r.Options.Strategy = core.StrategyLargestFirst }},
		{"value-order", func(r *Request) { r.Options.ValueOrder = core.OrderLexicographic }},
		{"first-only", func(r *Request) { r.Options.FirstSolutionOnly = true }},
		{"stall", func(r *Request) { r.Options.StallNodes = 501 }},
		{"bus-rows", func(r *Request) { r.Options.BusRows = []int{2, 4, 6} }},
		{"workers", func(r *Request) { r.Options.Workers = 4 }},
		{"strong-prop", func(r *Request) { r.Options.StrongPropagation = true }},
		{"presolve", func(r *Request) { r.Options.Presolve = core.PresolveOff }},
		{"module-dropped", func(r *Request) { r.Modules = r.Modules[:len(r.Modules)-1] }},
		{"module-renamed", func(r *Request) {
			m := r.Modules[0]
			renamed, err := module.NewModule("zz", m.Shapes()...)
			if err != nil {
				t.Fatal(err)
			}
			r.Modules = append([]*module.Module{renamed}, r.Modules[1:]...)
		}},
		{"shape-dropped", func(r *Request) {
			m, err := r.Modules[0].WithShapes(0)
			if err != nil {
				t.Fatal(err)
			}
			r.Modules = append([]*module.Module{m}, r.Modules[1:]...)
		}},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			r := testRequest(t)
			tc.mut(r)
			if got := digestOf(t, r); got == want {
				t.Fatalf("mutation %q left digest unchanged", tc.name)
			}
			if Equal(base, r) {
				t.Fatalf("mutation %q left requests canonically equal", tc.name)
			}
		})
	}
}

func TestCanonicalRejects(t *testing.T) {
	mods := testModules(t, 1, 2)
	for _, tc := range []struct {
		name string
		req  Request
	}{
		{"empty-fabric", Request{Modules: mods}},
		{"no-modules", Request{Fabric: "f"}},
		{"nil-module", Request{Fabric: "f", Modules: []*module.Module{nil}}},
		{"dup-names", Request{Fabric: "f", Modules: []*module.Module{mods[0], mods[0]}}},
		{"bad-options", Request{Fabric: "f", Modules: mods,
			Options: core.RequestOptions{Workers: -1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.req.Canonical(); err == nil {
				t.Fatal("want error, got nil")
			}
			if _, err := tc.req.Digest(); err == nil {
				t.Fatal("Digest: want error, got nil")
			}
		})
	}
}

func TestCanonicalDoesNotMutateInput(t *testing.T) {
	r := testRequest(t)
	origFirst := r.Modules[0]
	origRows := append([]int(nil), r.Options.BusRows...)
	if _, err := r.Canonical(); err != nil {
		t.Fatal(err)
	}
	if r.Modules[0] != origFirst {
		t.Fatal("Canonical reordered the input module slice")
	}
	for i, v := range origRows {
		if r.Options.BusRows[i] != v {
			t.Fatal("Canonical mutated the input bus rows")
		}
	}
}

func TestCanonicalOrdering(t *testing.T) {
	r := testRequest(t)
	c, err := r.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c.Modules); i++ {
		if c.Modules[i-1].Name() >= c.Modules[i].Name() {
			t.Fatalf("canonical modules not strictly name-sorted at %d", i)
		}
	}
	for _, m := range c.Modules {
		for i := 1; i < m.NumShapes(); i++ {
			if m.Shape(i-1).Key() >= m.Shape(i).Key() {
				t.Fatalf("canonical shapes of %s not strictly key-sorted at %d", m.Name(), i)
			}
		}
	}
}
