// Command solverlint runs the project's custom static-analysis suite
// (see internal/analysis/solverlint) over the repository:
// clonecomplete, nondeterminism, obsgate, optvalidate, nakedpanic,
// lockscope, ctxflow, goroleak, atomicsafe, and syncmisuse. Each
// analyzer applies only to the packages whose invariants it enforces —
// e.g. nondeterminism covers the search/propagation packages but not
// the workload generators, which are deliberately random.
//
// Usage:
//
//	solverlint [-list] [-json] [-dir dir] [packages]
//
// With no package patterns, ./... is checked. Diagnostics print as
// file:line:col: analyzer: message, or as a JSON array with -json.
// The exit status separates the three outcomes machine consumers care
// about: 0 when the tree is clean, 1 when any finding was reported,
// 2 when loading or analysis itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis/solverlint"
)

// Exit statuses of the driver.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

// scopes maps each analyzer to the import-path fragments it applies
// to. An empty list means every loaded package.
var scopes = map[string][]string{
	// Clonability is a contract of the constraint kernel and the geost
	// propagators; other packages define no propagators.
	"clonecomplete": {"internal/csp", "internal/geost"},
	// Determinism matters on the search and propagation call paths —
	// kernel, geometric propagators, placer — and in canonicalization,
	// where a wandering digest would silently split or alias cache
	// entries. The span-recording layer in internal/obs sits on those
	// same call paths (per-request traces wrap every solve), so it is
	// held to the same bar; its deliberate uses of wall-clock time and
	// crypto/rand ids carry explicit allow pragmas. The fault injector
	// must replay chaos runs exactly, so its deliberately seeded PRNG
	// sites are pragma'd too. Workload/netlist generators and
	// experiment drivers are deliberately seeded-random.
	// The online managers and the session engine must stay
	// deterministic too: a session replayed from the same arrival
	// stream must produce the same placements.
	"nondeterminism": {"internal/csp", "internal/geost", "internal/core", "internal/presolve", "internal/canon", "internal/obs", "internal/faultinject", "internal/online"},
	// The zero-alloc-when-disabled contract covers the solver hot
	// paths instrumented in PR 1 and the request-tracing span model:
	// span emission must stay nil-guarded so a tracerless daemon pays
	// nothing. The fault injector makes the same promise: a daemon
	// without -faults must not pay for the injection sites.
	"obsgate": {"internal/csp", "internal/geost", "internal/core", "internal/presolve", "internal/obs", "internal/faultinject", "internal/online"},
	// Options/OptionError validation lives in the csp kernel and at
	// the core request boundary (RequestOptions.Validate).
	"optvalidate": {"internal/csp", "internal/core"},
	// Library packages must not panic undocumented; cmd/ and examples/
	// binaries are user-facing drivers, not libraries.
	"nakedpanic": {"internal/"},
	// Critical-section discipline covers the serving path — the
	// placement service, its client, the fault injector, the span
	// recorder — and the parallel solver kernel, the packages where a
	// convoyed mutex stalls live requests.
	"lockscope": {"internal/service", "internal/client", "internal/faultinject", "internal/obs", "internal/csp", "internal/presolve"},
	// Context threading is a request-path contract: the service, its
	// client, and the fault injector all operate on behalf of some
	// request and must propagate its cancellation.
	"ctxflow": {"internal/service", "internal/client", "internal/faultinject", "internal/presolve"},
	// Goroutine exit proofs matter in the long-lived packages: a
	// daemon accumulates leaked goroutines until it dies. The solver
	// kernel's parallel portfolio spawns workers too.
	"goroleak": {"internal/service", "internal/client", "internal/faultinject", "internal/obs", "internal/csp", "internal/presolve"},
	// Atomic access discipline and sync-primitive hygiene are
	// library-wide invariants, like nakedpanic.
	"atomicsafe": {"internal/"},
	"syncmisuse": {"internal/"},
}

func inScope(analyzer, importPath string) bool {
	fragments := scopes[analyzer]
	if len(fragments) == 0 {
		return true
	}
	for _, f := range fragments {
		if strings.Contains(importPath, f) {
			return true
		}
	}
	return false
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable driver body: it parses args, runs the
// suite, writes diagnostics to stdout and status chatter to stderr,
// and returns the process exit code.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("solverlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and their scopes, then exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array instead of file:line:col lines")
	dir := fs.String("dir", ".", "module directory to analyze")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: solverlint [-list] [-json] [-dir dir] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if *list {
		for _, a := range solverlint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
			fmt.Fprintf(stdout, "%-16s scope: %s\n", "", strings.Join(scopes[a.Name], ", "))
		}
		return exitClean
	}
	diags, err := run(*dir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "solverlint:", err)
		return exitError
	}
	if *asJSON {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "solverlint:", err)
			return exitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "solverlint: %d finding(s)\n", len(diags))
		return exitFindings
	}
	return exitClean
}

// run loads the packages and applies every in-scope analyzer,
// returning the collected diagnostics.
func run(dir string, patterns []string) ([]solverlint.Diagnostic, error) {
	pkgs, err := solverlint.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []solverlint.Diagnostic
	for _, a := range solverlint.Analyzers() {
		for _, pkg := range pkgs {
			if !inScope(a.Name, pkg.Path) {
				continue
			}
			ds, err := solverlint.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
	}
	return diags, nil
}

// jsonFinding is the machine-readable diagnostic shape: flat fields,
// stable names, one object per finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders diagnostics as a JSON array (never null: a clean
// run is an empty array).
func writeJSON(w io.Writer, diags []solverlint.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
