package fabric_test

import (
	"fmt"

	"repro/internal/fabric"
)

// ExampleSpec builds a small heterogeneous device from a column spec.
func ExampleSpec() {
	spec := fabric.Spec{
		Name: "demo", W: 8, H: 4,
		BRAMColumns:    []int{2},
		ClockRowPeriod: 2,
	}
	dev := spec.MustBuild()
	fmt.Println(dev.Histogram())
	fmt.Println(dev)
	// Output:
	// CLB:28 BRAM:2 CLK:2
	// cckccccc
	// ccbccccc
	// cckccccc
	// ccbccccc
}

// ExampleByName pulls a device from the predefined catalog.
func ExampleByName() {
	dev, err := fabric.ByName("spartan-like-24x16")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %dx%d, %d placeable tiles\n",
		dev.Name(), dev.W(), dev.H(), dev.Histogram().Placeable())
	// Output:
	// homogeneous-24x16: 24x16, 384 placeable tiles
}
