package geost

import (
	"repro/internal/csp"
	"repro/internal/grid"
)

// Store-clone support for the geost kernel (csp.Clonable), required by
// the parallel search entry points: every worker gets an independent
// kernel over the cloned store's variables.
//
// Aliasing audit — what the original and a clone may share:
//
//   - ShapeGeom (Points, Valid bitmap, Hist): immutable after
//     AddObject; every propagator only reads them. Shared.
//   - heightBound.capPrefix: immutable capacity table. Shared.
//   - fabric.Histogram is an array type (value semantics), so
//     MinDemand's running minimum never writes into shape state.
//   - Kernel.scratch: MUTABLE — nonOverlapPair paints the fixed
//     object's footprint into it during propagation. Each clone gets a
//     fresh scratch bitmap; sharing it across workers would corrupt
//     concurrent filtering.
//   - compulsoryRegion allocates fresh bitmaps per call; nothing to
//     duplicate.
//
// Kernel and Object reference each other, so both clone through the
// CloneCtx memo table, registering the new value before descending into
// the cycle.

// cloneKernel returns the clone-side kernel for k, creating it (and its
// objects) on first use within this clone operation.
func cloneKernel(ctx *csp.CloneCtx, k *Kernel) *Kernel {
	if v, ok := ctx.MemoGet(k); ok {
		return v.(*Kernel)
	}
	nk := &Kernel{
		st:      ctx.Store(),
		w:       k.w,
		h:       k.h,
		scratch: grid.NewBitmap(k.w, k.h),
	}
	ctx.MemoPut(k, nk)
	nk.objects = make([]*Object, len(k.objects))
	for i, o := range k.objects {
		nk.objects[i] = cloneObject(ctx, o)
	}
	return nk
}

// cloneObject returns the clone-side object for o.
func cloneObject(ctx *csp.CloneCtx, o *Object) *Object {
	if v, ok := ctx.MemoGet(o); ok {
		return v.(*Object)
	}
	no := &Object{
		Name:   o.Name,
		Shapes: o.Shapes, // immutable geometry, shared
		Place:  ctx.Var(o.Place),
		Top:    ctx.Var(o.Top),
		id:     o.id,
	}
	ctx.MemoPut(o, no)
	no.k = cloneKernel(ctx, o.k)
	return no
}

// CloneFor implements csp.Clonable.
func (p *topLink) CloneFor(ctx *csp.CloneCtx) csp.Propagator {
	return &topLink{o: cloneObject(ctx, p.o)}
}

// CloneFor implements csp.Clonable.
func (p *nonOverlapPair) CloneFor(ctx *csp.CloneCtx) csp.Propagator {
	return &nonOverlapPair{k: cloneKernel(ctx, p.k), a: cloneObject(ctx, p.a), b: cloneObject(ctx, p.b)}
}

// CloneFor implements csp.Clonable.
func (p *heightBound) CloneFor(ctx *csp.CloneCtx) csp.Propagator {
	//solverlint:allow clonecomplete capPrefix is the immutable capacity table (see aliasing audit above); Propagate only reads it
	return &heightBound{k: cloneKernel(ctx, p.k), height: ctx.Var(p.height), capPrefix: p.capPrefix}
}

// CloneFor implements csp.Clonable.
func (p *compulsoryPair) CloneFor(ctx *csp.CloneCtx) csp.Propagator {
	return &compulsoryPair{k: cloneKernel(ctx, p.k), a: cloneObject(ctx, p.a), b: cloneObject(ctx, p.b)}
}
