package core

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/module"
)

func TestPortfolioMatchesSingleOptimum(t *testing.T) {
	r := fabric.Homogeneous(5, 10).FullRegion()
	mods := []*module.Module{
		rectModule("a", 2, 2), rectModule("b", 3, 2), rectModule("c", 2, 3),
	}
	single, err := New(r, Options{}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Portfolio(r, mods, DefaultPortfolio(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if !best.Found || best.Height != single.Height {
		t.Fatalf("portfolio height %d != single %d", best.Height, single.Height)
	}
	if err := best.Validate(r); err != nil {
		t.Fatal(err)
	}
}

// TestPortfolioDeterministic checks the documented reproducibility
// guarantee: with exhaustive arms (no stall, no timeout) the portfolio
// returns the deterministic optimal height on every run, and every run
// returns a valid placement achieving it. Placement identity across
// runs is explicitly NOT guaranteed — the shared incumbent bound lands
// at timing-dependent points of each arm's search and steers dynamic
// heuristics down different, equally optimal branches (see the
// Portfolio doc comment).
func TestPortfolioDeterministic(t *testing.T) {
	r := fabric.Homogeneous(6, 12).FullRegion()
	mods := []*module.Module{
		rectModule("a", 3, 2), rectModule("b", 2, 4), rectModule("c", 4, 2),
	}
	cfgs := DefaultPortfolio(Options{})
	a, err := Portfolio(r, mods, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Portfolio(r, mods, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Found || !b.Found || a.Height != b.Height {
		t.Fatalf("portfolio heights differ across runs: %d vs %d", a.Height, b.Height)
	}
	if err := a.Validate(r); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioInfeasible(t *testing.T) {
	r := fabric.Homogeneous(2, 3).FullRegion()
	mods := []*module.Module{rectModule("a", 2, 2), rectModule("b", 2, 2)}
	res, err := Portfolio(r, mods, DefaultPortfolio(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("portfolio found the impossible")
	}
}

func TestPortfolioErrors(t *testing.T) {
	r := fabric.Homogeneous(4, 4).FullRegion()
	if _, err := Portfolio(r, []*module.Module{rectModule("a", 1, 1)}, nil); err == nil {
		t.Error("empty portfolio accepted")
	}
	// A worker error (infeasible module) propagates.
	if _, err := Portfolio(r, []*module.Module{rectModule("big", 9, 9)},
		DefaultPortfolio(Options{})); err == nil {
		t.Error("worker error swallowed")
	}
}

func TestPortfolioConcurrentSpeed(t *testing.T) {
	// Smoke: a portfolio over a non-trivial instance completes within
	// the per-worker budget plus scheduling slack, i.e. workers really
	// run concurrently rather than sequentially.
	r := fabric.Homogeneous(10, 30).FullRegion()
	var mods []*module.Module
	for i := 0; i < 8; i++ {
		mods = append(mods, rectModule(string(rune('a'+i)), 2+i%3, 2+(i+1)%3))
	}
	budget := 400 * time.Millisecond
	start := time.Now()
	res, err := Portfolio(r, mods, DefaultPortfolio(Options{Timeout: budget}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement")
	}
	if elapsed := time.Since(start); elapsed > 4*budget {
		t.Fatalf("portfolio took %v for a %v per-worker budget: workers look sequential", elapsed, budget)
	}
}
