package core

import (
	"fmt"
	"time"
)

// RequestOptions is the request-level subset of Options: the solver
// parameters a remote caller may set on one placement request. It
// deliberately excludes the process-local hooks (Recorder, Metrics,
// Bound) that cannot travel over a wire and must be attached by the
// serving side. The zero value selects the solver defaults.
//
// RequestOptions is plain data with a deterministic meaning, which is
// what makes placement requests canonicalizable: two requests with
// equal RequestOptions (and equal fabric and modules) run the same
// search and produce the same result.
type RequestOptions struct {
	// Timeout bounds the optimisation (see Options.Timeout). Zero
	// means no limit.
	Timeout time.Duration
	// Strategy is the branching-variable heuristic.
	Strategy Strategy
	// ValueOrder is the placement-value heuristic.
	ValueOrder ValueOrder
	// FirstSolutionOnly stops at the first complete placement.
	FirstSolutionOnly bool
	// StallNodes is the convergence criterion (see Options.StallNodes).
	StallNodes int64
	// BusRows restricts placements to boxes crossing a bus row (see
	// Options.BusRows).
	BusRows []int
	// Workers enables parallel branch-and-bound (see Options.Workers).
	Workers int
	// StrongPropagation adds compulsory-part pruning (see
	// Options.StrongPropagation).
	StrongPropagation bool
}

// Options expands the request-level options into full solver Options,
// leaving the process-local hooks unset for the caller to attach.
func (o RequestOptions) Options() Options {
	return Options{
		Timeout:           o.Timeout,
		Strategy:          o.Strategy,
		ValueOrder:        o.ValueOrder,
		FirstSolutionOnly: o.FirstSolutionOnly,
		StallNodes:        o.StallNodes,
		BusRows:           o.BusRows,
		Workers:           o.Workers,
		StrongPropagation: o.StrongPropagation,
	}
}

// Validate reports the first inconsistency in the options.
func (o RequestOptions) Validate() error {
	if o.Timeout < 0 {
		return fmt.Errorf("core: negative Timeout %v", o.Timeout)
	}
	if o.StallNodes < 0 {
		return fmt.Errorf("core: negative StallNodes %d", o.StallNodes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d", o.Workers)
	}
	if o.Strategy.String() == "unknown" {
		return fmt.Errorf("core: unknown Strategy %d", o.Strategy)
	}
	if o.ValueOrder.String() == "unknown" {
		return fmt.Errorf("core: unknown ValueOrder %d", o.ValueOrder)
	}
	for _, r := range o.BusRows {
		if r < 0 {
			return fmt.Errorf("core: negative bus row %d", r)
		}
	}
	return nil
}

// Strategies lists the branching strategies in declaration order.
func Strategies() []Strategy {
	return []Strategy{StrategyFirstFail, StrategyLargestFirst, StrategyInputOrder}
}

// ValueOrders lists the value orderings in declaration order.
func ValueOrders() []ValueOrder {
	return []ValueOrder{OrderBottomLeft, OrderLexicographic}
}

// ParseStrategy converts a strategy name (as produced by
// Strategy.String) back to the Strategy.
func ParseStrategy(s string) (Strategy, error) {
	for _, st := range Strategies() {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}

// ParseValueOrder converts a value-order name (as produced by
// ValueOrder.String) back to the ValueOrder.
func ParseValueOrder(s string) (ValueOrder, error) {
	for _, v := range ValueOrders() {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: unknown value order %q", s)
}
