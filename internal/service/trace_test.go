package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/obs"
)

// tracesSnapshot fetches and decodes /debug/traces.
func tracesSnapshot(t *testing.T, h http.Handler) obs.TracerSnapshot {
	t.Helper()
	rr := get(t, h, "/debug/traces")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", rr.Code)
	}
	var snap obs.TracerSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// findTrace locates a filed trace by the X-Trace-Id a response carried.
func findTrace(t *testing.T, h http.Handler, id string) obs.TraceSummary {
	t.Helper()
	for _, ts := range tracesSnapshot(t, h).Recent {
		if ts.TraceID == id {
			return ts
		}
	}
	t.Fatalf("trace %s not in /debug/traces", id)
	return obs.TraceSummary{}
}

func spanNames(ts obs.TraceSummary) map[string]obs.SpanSummary {
	byName := make(map[string]obs.SpanSummary, len(ts.Spans))
	for _, s := range ts.Spans {
		byName[s.Name] = s
	}
	return byName
}

// TestTracedRequestSpanTree drives a real solve through the traced
// request path and checks the advertised span tree: admission
// (queue_wait) and solve under the request root, alongside
// canonicalize, cache_lookup, and singleflight, with the solver's
// counters attributed to the solve span.
func TestTracedRequestSpanTree(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Tracer: tracer})
	h := s.Handler()

	rr := post(t, h, genBody(1, 3))
	if rr.Code != http.StatusOK {
		t.Fatalf("place: status %d body %s", rr.Code, rr.Body)
	}
	id := rr.Header().Get("X-Trace-Id")
	if len(id) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32-hex", id)
	}

	ts := findTrace(t, h, id)
	byName := spanNames(ts)
	for _, name := range []string{"request", "canonicalize", "cache_lookup", "singleflight", "queue_wait", "solve"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing from trace (spans %+v)", name, ts.Spans)
		}
	}
	root := byName["request"]
	if root.Parent != 0 {
		t.Fatalf("request span is not the root: %+v", root)
	}
	for _, name := range []string{"canonicalize", "cache_lookup", "singleflight", "queue_wait", "solve"} {
		if byName[name].Parent != root.ID {
			t.Fatalf("span %q not parented to the request root: %+v", name, byName[name])
		}
	}
	if byName["cache_lookup"].Attrs["hit"] != "false" {
		t.Fatalf("miss request's cache_lookup attrs: %+v", byName["cache_lookup"])
	}
	if byName["singleflight"].Attrs["role"] != "leader" {
		t.Fatalf("solo request's singleflight attrs: %+v", byName["singleflight"])
	}
	solve := byName["solve"]
	if solve.Attrs["nodes"] == "" || solve.Attrs["nodes"] == "0" {
		t.Fatalf("solver counters not attributed to the solve span: %+v", solve.Attrs)
	}
	if solve.Attrs["found"] != "true" {
		t.Fatalf("solve span outcome attrs: %+v", solve.Attrs)
	}
}

// TestCacheHitTraceHasNoSolveSpan requires a hit to skip the solver
// entirely: its trace contains the lookup (hit=true) but no
// singleflight, queue_wait, or solve span.
func TestCacheHitTraceHasNoSolveSpan(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Tracer: tracer})
	h := s.Handler()
	body := genBody(2, 2)

	if rr := post(t, h, body); rr.Code != http.StatusOK {
		t.Fatalf("warm-up: status %d body %s", rr.Code, rr.Body)
	}
	rr := post(t, h, body)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Cache") != "hit" {
		t.Fatalf("hit: status %d X-Cache %q", rr.Code, rr.Header().Get("X-Cache"))
	}
	ts := findTrace(t, h, rr.Header().Get("X-Trace-Id"))
	byName := spanNames(ts)
	if byName["cache_lookup"].Attrs["hit"] != "true" {
		t.Fatalf("hit request's cache_lookup attrs: %+v", byName["cache_lookup"])
	}
	for _, name := range []string{"solve", "queue_wait", "singleflight"} {
		if _, ok := byName[name]; ok {
			t.Fatalf("cache hit trace contains a %q span: %+v", name, ts.Spans)
		}
	}
}

// TestQueueWaitSpanUnderSaturation parks a request behind a busy
// worker and requires its trace to carry the admission queue wait as a
// span.
func TestQueueWaitSpanUnderSaturation(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 4, Tracer: tracer})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.solve = func(_ context.Context, req *canon.Request) (*core.Result, error) {
		once.Do(func() { close(entered) })
		if req.Modules[0].Name() == "m0" { // the blocker
			<-release
		}
		return stubResult(len(req.Modules)), nil
	}
	h := s.Handler()

	blocker := make(chan *httptest.ResponseRecorder, 1)
	go func() { blocker <- post(t, h, genBody(1, 1)) }()
	<-entered // the lone worker is now occupied

	queuedDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { queuedDone <- post(t, h, genBody(2, 2)) }()
	// Give the queued request time to be admitted to the queue before
	// releasing the blocker, so a real wait accrues.
	time.Sleep(20 * time.Millisecond)
	close(release)

	rr := <-queuedDone
	if rr.Code != http.StatusOK {
		t.Fatalf("queued request: status %d body %s", rr.Code, rr.Body)
	}
	if rr := <-blocker; rr.Code != http.StatusOK {
		t.Fatalf("blocker: status %d body %s", rr.Code, rr.Body)
	}
	ts := findTrace(t, h, rr.Header().Get("X-Trace-Id"))
	byName := spanNames(ts)
	qw, ok := byName["queue_wait"]
	if !ok {
		t.Fatalf("saturated request's trace has no queue_wait span: %+v", ts.Spans)
	}
	if !qw.Ended || qw.DurMs <= 0 {
		t.Fatalf("queue_wait span did not record the wait: %+v", qw)
	}
}

// TestConcurrentTracedRequestsNoSpanLeakage hammers the traced path
// from many goroutines (run under -race in CI) and then audits every
// filed trace: parent links must resolve within the trace's own span
// set — a span attributed to the wrong request would break the
// invariant.
func TestConcurrentTracedRequestsNoSpanLeakage(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Recent: 256})
	s := newTestServer(t, Config{Workers: 4, MaxInFlight: 256, Tracer: tracer})
	s.solve = func(_ context.Context, req *canon.Request) (*core.Result, error) {
		return stubResult(len(req.Modules)), nil
	}
	h := s.Handler()

	const goroutines = 8
	const rounds = 20
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rr := post(t, h, genBody(int64(g*rounds+r), 1+r%4))
				if rr.Code != http.StatusOK {
					t.Errorf("status %d body %s", rr.Code, rr.Body)
					return
				}
				id := rr.Header().Get("X-Trace-Id")
				if id == "" {
					t.Error("response without X-Trace-Id")
					return
				}
				mu.Lock()
				seen[id]++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	for id, n := range seen {
		if n != 1 {
			t.Fatalf("trace id %s issued to %d requests", id, n)
		}
	}
	snap := tracesSnapshot(t, h)
	if len(snap.Recent) != goroutines*rounds {
		t.Fatalf("recent ring filed %d traces, want %d", len(snap.Recent), goroutines*rounds)
	}
	for _, ts := range snap.Recent {
		ids := make(map[int]bool, len(ts.Spans))
		for _, sp := range ts.Spans {
			if ids[sp.ID] {
				t.Fatalf("trace %s has duplicate span id %d", ts.TraceID, sp.ID)
			}
			ids[sp.ID] = true
		}
		for _, sp := range ts.Spans {
			if sp.Parent != 0 && !ids[sp.Parent] {
				t.Fatalf("trace %s span %q parented outside its trace (parent %d)", ts.TraceID, sp.Name, sp.Parent)
			}
		}
	}
}

// TestClientCancelReturns499 parks a waiter behind a slow singleflight
// leader and disconnects it: the waiter must return immediately with
// the 499 close status while the leader's solve finishes detached.
func TestClientCancelReturns499(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 4, Tracer: tracer})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		close(entered)
		<-release
		return stubResult(1), nil
	}
	h := s.Handler()
	body := genBody(1, 1)

	leaderDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderDone <- post(t, h, body) }()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { waiterDone <- postCtx(t, h, body, ctx) }()
	// Let the waiter join the flight, then hang up.
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case rr := <-waiterDone:
		if rr.Code != statusClientClosedRequest {
			t.Fatalf("canceled waiter: status %d body %s, want 499", rr.Code, rr.Body)
		}
		if rr.Header().Get("X-Trace-Id") == "" {
			t.Fatal("499 response lost its X-Trace-Id")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter kept waiting instead of returning")
	}

	close(release)
	if rr := <-leaderDone; rr.Code != http.StatusOK {
		t.Fatalf("leader: status %d body %s", rr.Code, rr.Body)
	}
	st := s.Stats()
	if st.Canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1 (stats %+v)", st.Canceled, st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("client cancel misfiled as timeout (stats %+v)", st)
	}
}

// TestAccessLogLine checks the one-line-per-request contract and that
// the logged trace id matches the response header.
func TestAccessLogLine(t *testing.T) {
	var buf syncBuffer
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Tracer: tracer, AccessLog: &buf})
	h := s.Handler()

	rr := post(t, h, genBody(3, 2))
	if rr.Code != http.StatusOK {
		t.Fatalf("place: status %d body %s", rr.Code, rr.Body)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines after one request: %q", len(lines), buf.String())
	}
	var rec AccessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v (%q)", err, lines[0])
	}
	if rec.TraceID != rr.Header().Get("X-Trace-Id") {
		t.Fatalf("logged trace id %q != header %q", rec.TraceID, rr.Header().Get("X-Trace-Id"))
	}
	if rec.Method != "POST" || rec.Path != "/v1/place" || rec.Status != 200 || rec.Cache != "miss" {
		t.Fatalf("access record: %+v", rec)
	}
	if rec.Digest == "" || rec.DurMs <= 0 || rec.SolveMs <= 0 {
		t.Fatalf("access record missing measurements: %+v", rec)
	}

	// A malformed request logs an error line with the 400 status.
	buf.Reset()
	if rr := post(t, h, `{`); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", rr.Code)
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != 400 || rec.Error == "" || rec.Cache != "none" {
		t.Fatalf("error access record: %+v", rec)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

// TestErrorResponsesCarryTraceID requires 4xx/5xx responses to be
// correlatable: the X-Trace-Id header must be present on errors too.
func TestErrorResponsesCarryTraceID(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Tracer: tracer})
	h := s.Handler()
	rr := post(t, h, `not json`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rr.Code)
	}
	if id := rr.Header().Get("X-Trace-Id"); len(id) != 32 {
		t.Fatalf("400 response X-Trace-Id = %q, want 32-hex", id)
	}
}

// TestInboundTraceIDHonored lets an upstream caller supply the trace
// id; a malformed one is replaced, not echoed.
func TestInboundTraceIDHonored(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{})
	s := newTestServer(t, Config{Tracer: tracer})
	h := s.Handler()

	want := "00112233445566778899aabbccddeeff"
	req := httptest.NewRequest("POST", "/v1/place", strings.NewReader(genBody(4, 1)))
	req.Header.Set("X-Trace-Id", want)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Trace-Id") != want {
		t.Fatalf("status %d X-Trace-Id %q, want 200 with %s", rr.Code, rr.Header().Get("X-Trace-Id"), want)
	}

	req = httptest.NewRequest("POST", "/v1/place", strings.NewReader(genBody(5, 1)))
	req.Header.Set("X-Trace-Id", "garbage")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if id := rr.Header().Get("X-Trace-Id"); len(id) != 32 || id == "garbage" {
		t.Fatalf("malformed inbound id echoed or dropped: %q", id)
	}
}

// TestTracingDisabledNoHeader pins the disabled default: no tracer, no
// header, /debug/traces empty but serving.
func TestTracingDisabledNoHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rr := post(t, h, genBody(6, 1))
	if rr.Code != http.StatusOK {
		t.Fatalf("place: status %d", rr.Code)
	}
	if id := rr.Header().Get("X-Trace-Id"); id != "" {
		t.Fatalf("untraced response carries X-Trace-Id %q", id)
	}
	snap := tracesSnapshot(t, h)
	if len(snap.Recent)+len(snap.Slowest) != 0 {
		t.Fatalf("disabled tracer filed traces: %+v", snap)
	}
}
