// Package solverlint is a suite of project-specific static analyzers
// that enforce the solver's cross-cutting invariants mechanically:
//
//   - clonecomplete: every propagator (a type with a Propagate method)
//     must implement CloneFor so Store.Clone — and with it the parallel
//     search entry points — keeps working, and CloneFor bodies must not
//     alias mutable slice/map fields of the receiver.
//   - nondeterminism: no time.Now/time.Since, math/rand, or map
//     iteration in search/propagation packages, outside the documented
//     deadline/anytime sites. Exhaustive parallel runs must be
//     bit-identical to sequential runs for any worker count; a single
//     stray wall-clock read or map-order dependence silently breaks
//     that.
//   - obsgate: obs.Recorder.Record calls in hot paths must be guarded
//     by a nil check so the zero-alloc-when-disabled contract of the
//     observability layer holds.
//   - optvalidate: every numeric csp.Options field must be covered by
//     the typed OptionError validation in withDefaults.
//   - nakedpanic: panic in library packages only inside functions whose
//     doc comment declares the panic (documented invariant-violation
//     helpers).
//
// The suite is modelled on golang.org/x/tools/go/analysis but is
// self-contained: the toolchain in this environment has no module
// proxy access, so the framework (package loading, diagnostics,
// suppression comments, fixture tests) is rebuilt here on the standard
// library alone. Packages are loaded with `go list -export` and
// type-checked with go/types against gc export data, which works fully
// offline.
//
// A diagnostic is suppressed by a line comment of the form
//
//	//solverlint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. A whole file is
// exempted from one analyzer with
//
//	//solverlint:allow-file <analyzer> <reason>
//
// anywhere in the file (conventionally next to the package clause);
// file scope exists for files whose entire purpose violates an
// invariant (e.g. a deliberately randomized workload generator), not
// as a bulk alternative to per-line justification. In both forms the
// reason is mandatory: an undocumented suppression is itself a
// finding.
package solverlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, in the style of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //solverlint:allow comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position plus a message, tagged with the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allowed     map[allowKey]bool
	fileAllowed map[fileAllowKey]bool
	diags       []Diagnostic
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// fileAllowKey identifies one (file, analyzer) whole-file suppression.
type fileAllowKey struct {
	file     string
	analyzer string
}

const (
	allowPrefix     = "//solverlint:allow "
	allowFilePrefix = "//solverlint:allow-file "
)

// buildAllowed indexes every //solverlint:allow comment of the files.
// A line comment covers its own line and the following line, so it can
// sit at the end of the offending line or directly above the offending
// declaration. An allow-file comment covers its whole file.
func buildAllowed(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, map[fileAllowKey]bool) {
	allowed := map[allowKey]bool{}
	fileAllowed := map[fileAllowKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, allowFilePrefix); ok {
					name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						continue
					}
					pos := fset.Position(c.Pos())
					fileAllowed[fileAllowKey{file: pos.Filename, analyzer: name}] = true
					continue
				}
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					// A suppression without a reason is ignored, so the
					// underlying diagnostic resurfaces.
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					allowed[allowKey{file: pos.Filename, line: line, analyzer: name}] = true
				}
			}
		}
	}
	return allowed, fileAllowed
}

// Reportf records a diagnostic at pos unless an allow comment covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed[allowKey{file: position.Filename, line: position.Line, analyzer: p.Analyzer.Name}] {
		return
	}
	if p.fileAllowed[fileAllowKey{file: position.Filename, analyzer: p.Analyzer.Name}] {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type checker recorded
// none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// RunAnalyzer applies a to pkg and returns the surviving diagnostics
// sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	allowed, fileAllowed := buildAllowed(pkg.Fset, pkg.Files)
	pass := &Pass{
		Analyzer:    a,
		Fset:        pkg.Fset,
		Files:       pkg.Files,
		Pkg:         pkg.Types,
		TypesInfo:   pkg.Info,
		allowed:     allowed,
		fileAllowed: fileAllowed,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Analyzers returns the full suite in stable order: the five solver
// invariants of PR 3 followed by the five concurrency/context-safety
// analyzers of the serving path (the "concsafe" half of the suite).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CloneComplete,
		Nondeterminism,
		ObsGate,
		OptValidate,
		NakedPanic,
		LockScope,
		CtxFlow,
		GoroLeak,
		AtomicSafe,
		SyncMisuse,
	}
}
