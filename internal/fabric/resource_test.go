package fabric

import "testing"

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
	if Kind(99).String() == "" {
		t.Error("invalid kind has empty String")
	}
}

func TestKindPlaceable(t *testing.T) {
	want := map[Kind]bool{
		CLB: true, BRAM: true, DSP: true,
		IOB: false, Clock: false, Static: false,
	}
	for k, w := range want {
		if got := k.Placeable(); got != w {
			t.Errorf("%v.Placeable = %v, want %v", k, got, w)
		}
	}
}

func TestKindRuneDistinct(t *testing.T) {
	seen := map[byte]Kind{}
	for _, k := range Kinds() {
		r := k.Rune()
		if prev, dup := seen[r]; dup {
			t.Errorf("kinds %v and %v share rune %q", prev, k, r)
		}
		seen[r] = k
	}
	if Kind(99).Rune() != '?' {
		t.Error("invalid kind rune should be '?'")
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("%v not valid", k)
		}
	}
	if Kind(numKinds).Valid() {
		t.Error("numKinds must be invalid")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(CLB)
	h.Add(CLB)
	h.Add(BRAM)
	h.Add(Static)
	h.Add(Kind(200)) // ignored
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Placeable() != 3 {
		t.Fatalf("Placeable = %d, want 3", h.Placeable())
	}
	if h[CLB] != 2 || h[BRAM] != 1 || h[Static] != 1 {
		t.Fatalf("counts wrong: %v", h)
	}
	if h.String() == "" || h.String() == "empty" {
		t.Fatalf("String = %q", h.String())
	}
	var empty Histogram
	if empty.String() != "empty" {
		t.Errorf("empty histogram String = %q", empty.String())
	}
}
