// Package requestoptions is a fixture for the RequestOptions/Validate
// pair: a request boundary whose numeric fields are variously
// validated, half-validated, and forgotten, plus the core.Options
// shape — an internal options bag with no validator of its own that is
// exempt because the package's validated surface is RequestOptions.
package requestoptions

import "fmt"

// PresolveMode mirrors a core enum knob (integer underlying type).
type PresolveMode uint8

// RequestOptions mirrors core.RequestOptions.
type RequestOptions struct {
	StallNodes int64
	Workers    int          // want `RequestOptions\.Workers is read in Validate but no OptionError names it`
	Presolve   PresolveMode // want `RequestOptions\.Presolve is never referenced in Validate`
	Tags       []string     // non-numeric: exempt
}

// Options mirrors core.Options: produced by RequestOptions conversion,
// validated upstream, so no withDefaults here and no finding either.
type Options struct {
	StallNodes int64
	Workers    int
	Presolve   PresolveMode
}

// OptionError mirrors core.OptionError.
type OptionError struct {
	Field string
	Value int64
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("invalid RequestOptions.%s: %d", e.Field, e.Value)
}

// Validate rejects invalid fields with a typed *OptionError.
func (o RequestOptions) Validate() error {
	if o.StallNodes < 0 {
		return &OptionError{Field: "StallNodes", Value: o.StallNodes}
	}
	if o.Workers < 0 { // read, but never rejected with an OptionError
		return fmt.Errorf("bad workers")
	}
	return nil
}

// Report is a decoy: its Validate method must not satisfy the
// RequestOptions check (receiver-type matching).
type Report struct {
	Height int
}

// Validate checks the report, not the options.
func (r Report) Validate() error {
	if r.Height < 0 {
		return fmt.Errorf("negative height")
	}
	return nil
}
