package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	inj, err := Parse("solver:timeout:1;cache:latency:0.25:10ms,queue:error:0.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	want := "solver:timeout:1;cache:latency:0.25:10ms;queue:error:0.5"
	if got := inj.String(); got != want {
		t.Fatalf("spec round trip = %q, want %q", got, want)
	}
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		inj, err := Parse(spec, 1)
		if err != nil || inj != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, inj, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		name, spec, wantSub string
	}{
		{"bad-site", "disk:error:1", "unknown site"},
		{"bad-mode", "solver:explode:1", "unknown mode"},
		{"bad-rate", "solver:error:lots", "bad rate"},
		{"zero-rate", "solver:error:0", "outside (0, 1]"},
		{"over-rate", "solver:error:1.5", "outside (0, 1]"},
		{"bad-delay", "cache:latency:1:fast", "bad delay"},
		{"latency-no-delay", "cache:latency:1", "positive delay"},
		{"partial-wrong-site", "cache:partial:1", "solver site"},
		{"too-few-fields", "solver:error", "site:mode:rate"},
		{"too-many-fields", "solver:error:1:1ms:x", "site:mode:rate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.spec, 1); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse(%q) error = %v, want substring %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}

func TestCheckRateOneAlwaysFires(t *testing.T) {
	inj, err := Parse("solver:timeout:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		d := inj.Check(SiteSolver)
		if !d.Timeout || !d.Injected() {
			t.Fatalf("check %d: rate-1 timeout rule did not fire: %+v", n, d)
		}
	}
	if got := inj.Stats()["solver:timeout"]; got != 100 {
		t.Fatalf("solver:timeout hits = %d, want 100", got)
	}
	// Unarmed sites never fire.
	if d := inj.Check(SiteCache); d.Injected() {
		t.Fatalf("unarmed site injected %+v", d)
	}
}

func TestCheckDeterministicReplay(t *testing.T) {
	run := func() []bool {
		inj, err := Parse("queue:error:0.5", 42)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for n := range out {
			out[n] = inj.Check(SiteQueue).Err != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("check %d diverged between identical seeded runs", n)
		}
		if a[n] {
			fired++
		}
	}
	// A 0.5 rate over 200 draws fires roughly half the time; the exact
	// count is pinned by the seed, the bounds only guard the parser
	// against rate misinterpretation (percent vs fraction).
	if fired < 60 || fired > 140 {
		t.Fatalf("rate 0.5 fired %d/200 times", fired)
	}
}

func TestCheckComposesLatencyWithError(t *testing.T) {
	inj, err := New(1,
		Rule{Site: SiteCache, Mode: ModeLatency, Rate: 1, Delay: 3 * time.Millisecond},
		Rule{Site: SiteCache, Mode: ModeError, Rate: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := inj.Check(SiteCache)
	if d.Delay != 3*time.Millisecond {
		t.Fatalf("delay = %v, want 3ms", d.Delay)
	}
	if !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", d.Err)
	}
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var inj *Injector
	if d := inj.Check(SiteSolver); d.Injected() {
		t.Fatalf("nil injector injected %+v", d)
	}
	if s := inj.Stats(); len(s) != 0 {
		t.Fatalf("nil injector stats = %v", s)
	}
	if inj.String() != "" || inj.Summary() != "" {
		t.Fatalf("nil injector renders %q / %q", inj.String(), inj.Summary())
	}
}

// TestDisabledCheckAllocs pins the zero-cost-when-disabled contract in
// the obs style: the per-request fault checks of a daemon running
// without -faults must not allocate.
func TestDisabledCheckAllocs(t *testing.T) {
	var inj *Injector
	allocs := testing.AllocsPerRun(200, func() {
		inj.Check(SiteCache)
		inj.Check(SiteSingleflight)
		inj.Check(SiteQueue)
		inj.Check(SiteSolver)
	})
	if allocs != 0 {
		t.Fatalf("disabled fault checks allocate %.1f times per request, want 0", allocs)
	}
}

// BenchmarkCheckDisabled is the disabled-path cost: one nil check per
// site, no locks, no PRNG draw.
func BenchmarkCheckDisabled(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		inj.Check(SiteSolver)
	}
}

func TestSummarySortedStable(t *testing.T) {
	inj, err := Parse("solver:timeout:1;cache:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Check(SiteSolver)
	inj.Check(SiteCache)
	inj.Check(SiteCache)
	if got, want := inj.Summary(), "cache:error=2 solver:timeout=1"; got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}

func TestSiteModeParseInverse(t *testing.T) {
	for _, s := range []Site{SiteCache, SiteSingleflight, SiteQueue, SiteSolver} {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseSite(%q) = %v, %v", s.String(), got, err)
		}
	}
	for _, m := range []Mode{ModeError, ModeLatency, ModeTimeout, ModePartial} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if Site(200).String() != "unknown" || Mode(200).String() != "unknown" {
		t.Fatal("out-of-range Site/Mode must render unknown")
	}
}
