package grid

import "testing"

func BenchmarkBitmapAnyAt(b *testing.B) {
	bm := NewBitmap(72, 60)
	for i := 0; i < 72*60; i += 7 {
		bm.Set(i%72, (i/72)%60, true)
	}
	shape := make([]Point, 60)
	for i := range shape {
		shape[i] = Pt(i%8, i/8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.AnyAt(shape, Pt(i%60, i%50))
	}
}

func BenchmarkBitmapCount(b *testing.B) {
	bm := NewBitmap(72, 60)
	bm.SetRect(RectXYWH(3, 3, 60, 50), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Count()
	}
}

func BenchmarkBitmapClone(b *testing.B) {
	bm := NewBitmap(72, 60)
	bm.SetRect(RectXYWH(0, 0, 72, 30), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.Clone()
	}
}

func BenchmarkTransformApplyAll(b *testing.B) {
	pts := make([]Point, 80)
	for i := range pts {
		pts[i] = Pt(i%10, i/10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rot180.ApplyAll(pts)
	}
}
