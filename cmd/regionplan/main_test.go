package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunHappyPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "modules.spec")
	content := "module a\ndemand 8 1 0\nalternatives 2\nmodule b\nshape\nrect 0 0 3 2 CLB\nend\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("virtex2-like-48x32", path, 4, 200, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "modules.spec")
	if err := os.WriteFile(path, []byte("module a\ndemand 4 0 0\nalternatives 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("bogus", path, 4, 10, time.Second); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("spartan-like-24x16", "/nonexistent", 4, 10, time.Second); err == nil {
		t.Error("missing modules file accepted")
	}
	// BRAM demand on a BRAM-free device: planning must fail cleanly.
	bramPath := filepath.Join(t.TempDir(), "bram.spec")
	if err := os.WriteFile(bramPath, []byte("module m\ndemand 4 2 0\nalternatives 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("spartan-like-24x16", bramPath, 4, 5, time.Second); err == nil {
		t.Error("unsatisfiable demand accepted")
	}
}
