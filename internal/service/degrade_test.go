package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/module"
)

// mustInjector parses a fault spec or fails the test.
func mustInjector(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	inj, err := faultinject.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// validatePlacedResponse reconstructs the placements of a 200 response
// against the decoded request and runs the core M_a/M_b/M_c validity
// checks (plus height/utilization agreement) via core.Result.Validate.
func validatePlacedResponse(t *testing.T, reqBody string, respBody []byte) PlaceResponse {
	t.Helper()
	var resp PlaceResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatalf("response does not decode: %v (%s)", err, respBody)
	}
	if !resp.Found {
		return resp
	}
	creq, err := DecodeRequest(strings.NewReader(reqBody), Config{})
	if err != nil {
		t.Fatal(err)
	}
	region, err := regionFor(creq)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*module.Module{}
	for _, m := range creq.Modules {
		byName[m.Name()] = m
	}
	res := &core.Result{
		Found:       true,
		Height:      resp.Height,
		Utilization: resp.Utilization,
	}
	for _, p := range resp.Placements {
		m := byName[p.Module]
		if m == nil {
			t.Fatalf("response places unknown module %q", p.Module)
		}
		if p.Shape < 0 || p.Shape >= m.NumShapes() {
			t.Fatalf("response places %q with shape %d of %d", p.Module, p.Shape, m.NumShapes())
		}
		res.Placements = append(res.Placements, core.Placement{
			Module:     m,
			ShapeIndex: p.Shape,
			At:         grid.Pt(p.X, p.Y),
		})
	}
	if len(res.Placements) != len(creq.Modules) {
		t.Fatalf("response places %d of %d modules", len(res.Placements), len(creq.Modules))
	}
	if err := res.Validate(region); err != nil {
		t.Fatalf("served placement fails validity checks: %v", err)
	}
	return resp
}

// TestDegradeOnInjectedSolverTimeout is the acceptance path: with the
// solver site at a 100% deadline-miss rate and degradation on, a place
// request returns 200 tagged approximate, and the served placement
// passes the core validity checks.
func TestDegradeOnInjectedSolverTimeout(t *testing.T) {
	s := newTestServer(t, Config{
		Degrade: true,
		Faults:  mustInjector(t, "solver:timeout:1"),
	})
	h := s.Handler()
	body := genBody(1, 3)

	rr := post(t, h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("degraded place: status %d body %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Placement-Quality"); got != QualityApproximate {
		t.Fatalf("X-Placement-Quality = %q, want %q", got, QualityApproximate)
	}
	resp := validatePlacedResponse(t, body, rr.Body.Bytes())
	if resp.Quality != QualityApproximate {
		t.Fatalf("body quality = %q, want %q", resp.Quality, QualityApproximate)
	}
	if !resp.Found || len(resp.Placements) != 3 {
		t.Fatalf("degraded response implausible: %+v", resp)
	}
	if resp.Optimal {
		t.Fatal("approximate placement claims optimality")
	}

	st := s.Stats()
	if st.Degraded != 1 || st.Timeouts != 1 {
		t.Fatalf("stats after degradation: degraded=%d timeouts=%d", st.Degraded, st.Timeouts)
	}
	if st.Faults["solver:timeout"] == 0 {
		t.Fatalf("fault fires not reported in stats: %v", st.Faults)
	}
	// Degraded bodies must not be cached: the instance deserves an
	// exact answer once the solver recovers.
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("degraded response was cached (%d entries)", n)
	}
}

// TestDegradedPlacementsValidMetamorphic sweeps seeded workloads
// through the forced-degradation path: every approximate placement
// must satisfy the M_a/M_b/M_c validity checks, whatever the seed.
func TestDegradedPlacementsValidMetamorphic(t *testing.T) {
	s := newTestServer(t, Config{
		Degrade: true,
		Faults:  mustInjector(t, "solver:timeout:1"),
	})
	h := s.Handler()
	for seed := int64(1); seed <= 8; seed++ {
		n := 2 + int(seed)%4
		body := genBody(seed, n)
		rr := post(t, h, body)
		if rr.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d body %s", seed, rr.Code, rr.Body)
		}
		resp := validatePlacedResponse(t, body, rr.Body.Bytes())
		if resp.Quality != QualityApproximate {
			t.Fatalf("seed %d: quality %q", seed, resp.Quality)
		}
	}
}

// TestDegradeOnShed: a request shed by a full admission queue degrades
// to an approximate placement instead of a 429.
func TestDegradeOnShed(t *testing.T) {
	s := newTestServer(t, Config{
		Degrade: true,
		Faults:  mustInjector(t, "queue:error:1"),
	})
	h := s.Handler()
	body := genBody(1, 2)
	rr := post(t, h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("shed place: status %d body %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Placement-Quality"); got != QualityApproximate {
		t.Fatalf("X-Placement-Quality = %q, want %q", got, QualityApproximate)
	}
	validatePlacedResponse(t, body, rr.Body.Bytes())
	st := s.Stats()
	if st.Rejected != 1 || st.Degraded != 1 {
		t.Fatalf("stats after degraded shed: rejected=%d degraded=%d", st.Rejected, st.Degraded)
	}
}

// TestShedWithoutDegradeKeeps429 pins the seed failure behaviour when
// degradation is off, now with retry guidance for the client.
func TestShedWithoutDegradeKeeps429(t *testing.T) {
	s := newTestServer(t, Config{Faults: mustInjector(t, "queue:error:1")})
	h := s.Handler()
	rr := post(t, h, genBody(1, 2))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
}

// TestSolverTimeoutWithoutDegradeKeeps504 pins the seed failure
// behaviour of a missed solve deadline when degradation is off.
func TestSolverTimeoutWithoutDegradeKeeps504(t *testing.T) {
	s := newTestServer(t, Config{Faults: mustInjector(t, "solver:timeout:1")})
	h := s.Handler()
	rr := post(t, h, genBody(1, 2))
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rr.Code, rr.Body)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}

// TestDegradeFallbackFailureFallsThrough: when the baseline heuristics
// cannot place the instance either, the original failure response
// stands.
func TestDegradeFallbackFailureFallsThrough(t *testing.T) {
	s := newTestServer(t, Config{
		Degrade: true,
		Faults:  mustInjector(t, "solver:timeout:1"),
	})
	s.fallback = func(*canon.Request) (*core.Result, error) {
		return nil, fmt.Errorf("fallback wedged")
	}
	h := s.Handler()
	rr := post(t, h, genBody(1, 2))
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 when fallback fails (body %s)", rr.Code, rr.Body)
	}
	if st := s.Stats(); st.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0", st.Degraded)
	}
}

// TestInjectedSolverErrorIs500: an injected solver fault is machinery
// failure, not a client error, and must not be cached.
func TestInjectedSolverErrorIs500(t *testing.T) {
	s := newTestServer(t, Config{Faults: mustInjector(t, "solver:error:1")})
	h := s.Handler()
	rr := post(t, h, genBody(1, 1))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", rr.Code, rr.Body)
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("injected error cached (%d entries)", n)
	}
}

// TestInjectedPartialResultNotCached: a partial (stalled, empty)
// result serves as a legitimate found=false answer but must not poison
// the cache for later fault-free requests.
func TestInjectedPartialResultNotCached(t *testing.T) {
	s := newTestServer(t, Config{Faults: mustInjector(t, "solver:partial:1")})
	var solves int
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		solves++
		return stubResult(1), nil
	}
	h := s.Handler()
	rr := post(t, h, genBody(1, 1))
	if rr.Code != http.StatusOK {
		t.Fatalf("partial place: status %d body %s", rr.Code, rr.Body)
	}
	var resp PlaceResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Found || !resp.Stalled {
		t.Fatalf("partial response: %+v", resp)
	}
	if solves != 0 {
		t.Fatalf("real solve ran %d times despite 100%% partial injection", solves)
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("partial result cached (%d entries)", n)
	}
}

// TestCacheFaultForcesMiss: with the cache site erroring, a primed
// entry is not found by the handler lookup, but the solve path's
// double-check still reuses it — no duplicate solve, miss semantics.
func TestCacheFaultForcesMiss(t *testing.T) {
	s := newTestServer(t, Config{Faults: mustInjector(t, "cache:error:1")})
	var solves int
	var mu sync.Mutex
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		mu.Lock()
		solves++
		mu.Unlock()
		return stubResult(3), nil
	}
	h := s.Handler()
	body := genBody(1, 2)
	r1 := post(t, h, body)
	r2 := post(t, h, body)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("status %d / %d", r1.Code, r2.Code)
	}
	if got := r2.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("second request with cache fault: X-Cache %q, want miss", got)
	}
	if r1.Body.String() != r2.Body.String() {
		t.Fatal("cache-fault path served a different body")
	}
	if solves != 1 {
		t.Fatalf("solves = %d, want 1 (double-check must still reuse the stored body)", solves)
	}
}

// TestSingleflightFaultBypassesDedup: with the dedup layer broken,
// concurrent identical requests each solve solo.
func TestSingleflightFaultBypassesDedup(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:     4,
		MaxInFlight: 16,
		Faults:      mustInjector(t, "singleflight:error:1;cache:error:1"),
	})
	var mu sync.Mutex
	solves := 0
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		mu.Lock()
		solves++
		mu.Unlock()
		entered <- struct{}{}
		<-release
		return stubResult(2), nil
	}
	h := s.Handler()
	body := genBody(1, 2)

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := post(t, h, body)
			if rr.Code != http.StatusOK {
				t.Errorf("status %d body %s", rr.Code, rr.Body)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-entered
	}
	close(release)
	wg.Wait()
	if solves != n {
		t.Fatalf("solves = %d, want %d (singleflight bypassed)", solves, n)
	}
}

// TestInjectedLatencySlowsRequest: latency injection on the cache site
// is observable end to end without failing the request.
func TestInjectedLatencySlowsRequest(t *testing.T) {
	s := newTestServer(t, Config{Faults: mustInjector(t, "cache:latency:1:30ms")})
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		return stubResult(1), nil
	}
	h := s.Handler()
	start := time.Now()
	rr := post(t, h, genBody(1, 1))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request finished in %v despite 30ms injected latency", elapsed)
	}
}

// TestExactResponseBytesPinned pins the exact-path wire format to the
// pre-degradation encoding: with injection disabled and an exact
// solve, the body carries no quality field and exactly the seed field
// set, so cached bodies stay byte-identical across this change.
func TestExactResponseBytesPinned(t *testing.T) {
	s := newTestServer(t, Config{})
	s.solve = func(context.Context, *canon.Request) (*core.Result, error) {
		return &core.Result{Found: true, Height: 4, Utilization: 0.5, Optimal: true}, nil
	}
	h := s.Handler()
	body := `{"fabric":"spartan-like-24x16","modules":[{"name":"a","shapes":[{"tiles":[{"x":0,"y":0,"kind":"CLB"}]}]}]}`
	creq, err := DecodeRequest(strings.NewReader(body), Config{})
	if err != nil {
		t.Fatal(err)
	}
	digest, err := creq.Digest()
	if err != nil {
		t.Fatal(err)
	}
	rr := post(t, h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rr.Code, rr.Body)
	}
	want := fmt.Sprintf(`{"digest":"%s","fabric":"spartan-like-24x16","found":true,"height":4,"utilization":0.5,"optimal":true,"stalled":false,"reason":"exhausted","nodes":0,"backtracks":0,"solveMs":0}`+"\n", digest)
	if got := rr.Body.String(); got != want {
		t.Fatalf("exact response body drifted from the seed encoding:\n got %s\nwant %s", got, want)
	}
	if got := rr.Header().Get("X-Placement-Quality"); got != QualityExact {
		t.Fatalf("X-Placement-Quality = %q, want %q", got, QualityExact)
	}
}
