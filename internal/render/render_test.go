package render

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

func testRegion() *fabric.Region {
	return fabric.NewDevice("t", 5, 3, func(x, y int) fabric.Kind {
		if x == 2 {
			return fabric.BRAM
		}
		return fabric.CLB
	}).FullRegion()
}

func clbModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

func TestRegionRender(t *testing.T) {
	got := Region(testRegion())
	want := "ccbcc\nccbcc\nccbcc"
	if got != want {
		t.Fatalf("Region = %q, want %q", got, want)
	}
}

func TestPlacementsRender(t *testing.T) {
	r := testRegion()
	ps := []core.Placement{
		{Module: clbModule("a", 2, 2), ShapeIndex: 0, At: grid.Pt(0, 0)},
		{Module: clbModule("b", 1, 1), ShapeIndex: 0, At: grid.Pt(4, 2)},
	}
	got := Placements(r, ps)
	want := "ccbcB\nAAbcc\nAAbcc"
	if got != want {
		t.Fatalf("Placements =\n%s\nwant\n%s", got, want)
	}
}

func TestPlacementsWithRuler(t *testing.T) {
	r := testRegion()
	ps := []core.Placement{{Module: clbModule("a", 1, 1), ShapeIndex: 0, At: grid.Pt(0, 0)}}
	got := PlacementsWithRuler(r, ps)
	if !strings.Contains(got, "A = a (shape 0 at (0,0))") {
		t.Fatalf("legend missing:\n%s", got)
	}
	if !strings.Contains(got, "  0 |") || !strings.Contains(got, "  2 |") {
		t.Fatalf("row ruler missing:\n%s", got)
	}
}

func TestShapeAlternativesSideBySide(t *testing.T) {
	m, err := module.GenerateAlternatives("fig1", module.Demand{CLB: 6, BRAM: 2},
		module.AlternativeOptions{Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := ShapeAlternatives(m)
	if !strings.Contains(got, "fig1: 3 design alternatives") {
		t.Fatalf("header missing:\n%s", got)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// All body lines equal length (side-by-side blocks aligned).
	for i := 2; i < len(lines); i++ {
		if len(lines[i]) != len(lines[1]) {
			t.Fatalf("ragged output:\n%s", got)
		}
	}
	if !strings.Contains(got, "b") {
		t.Fatalf("BRAM glyph missing:\n%s", got)
	}
}

func TestSideBySide(t *testing.T) {
	got := SideBySide("L", "aa\nbb", "R", "xx\nyy\nzz")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count = %d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "L") || !strings.Contains(lines[0], "R") {
		t.Fatalf("captions wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "aa") || !strings.Contains(lines[1], "xx") {
		t.Fatalf("rows not joined: %q", lines[1])
	}
	if !strings.Contains(lines[3], "zz") {
		t.Fatalf("tail row lost: %q", lines[3])
	}
}

func TestAnchorMask(t *testing.T) {
	r := testRegion()
	mask := grid.NewBitmap(5, 3)
	mask.Set(0, 0, true)
	mask.Set(3, 2, true)
	got := AnchorMask(r, mask)
	want := "ccb*c\nccbcc\n*cbcc"
	if got != want {
		t.Fatalf("AnchorMask = %q, want %q", got, want)
	}
}

func TestModuleGlyphCycles(t *testing.T) {
	if moduleGlyph(0) != 'A' || moduleGlyph(25) != 'Z' || moduleGlyph(26) != 'a' {
		t.Fatal("glyph order wrong")
	}
	if moduleGlyph(62) != 'A' {
		t.Fatal("glyph cycling wrong")
	}
}

func TestSVG(t *testing.T) {
	r := testRegion()
	ps := []core.Placement{{Module: clbModule("mod", 2, 2), ShapeIndex: 0, At: grid.Pt(0, 0)}}
	var sb strings.Builder
	if err := SVG(&sb, r, ps, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if !strings.Contains(out, ">mod</text>") {
		t.Fatal("module label missing")
	}
	// 15 background tiles + 4 module tiles.
	if n := strings.Count(out, "<rect"); n != 19 {
		t.Fatalf("rect count = %d, want 19", n)
	}
	// Default cell size path.
	var sb2 strings.Builder
	if err := SVG(&sb2, r, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), `width="40"`) {
		t.Fatal("default cell size not applied")
	}
}

func TestPNG(t *testing.T) {
	r := testRegion()
	ps := []core.Placement{{Module: clbModule("m", 2, 2), ShapeIndex: 0, At: grid.Pt(0, 0)}}
	var buf bytes.Buffer
	if err := PNG(&buf, r, ps, 4); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 5*4 || b.Dy() != 3*4 {
		t.Fatalf("image size %dx%d", b.Dx(), b.Dy())
	}
	// The module tile at (0,0) renders bottom-left in module colour (not
	// the CLB background). Sample inside the tile, off the grid line.
	c := img.At(2, b.Dy()-2)
	r8, g8, b8, _ := c.RGBA()
	if r8>>8 == 0xe8 && g8>>8 == 0xe8 && b8>>8 == 0xe8 {
		t.Fatal("module tile rendered as background")
	}
	// Default cell size path.
	var buf2 bytes.Buffer
	if err := PNG(&buf2, r, nil, 0); err != nil {
		t.Fatal(err)
	}
	img2, err := png.Decode(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if img2.Bounds().Dx() != 5*8 {
		t.Fatal("default cell size wrong")
	}
}
