package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// bramStripeRegion: 6 wide, 4 tall, column 2 is BRAM, rest CLB.
func bramStripeRegion() *fabric.Region {
	dev := fabric.NewDevice("stripe", 6, 4, func(x, y int) fabric.Kind {
		if x == 2 {
			return fabric.BRAM
		}
		return fabric.CLB
	})
	return dev.FullRegion()
}

func TestValidAnchorsCLBOnly(t *testing.T) {
	r := bramStripeRegion()
	// A 2x1 CLB bar cannot straddle the BRAM column: anchors with
	// x in {1, 2} are invalid.
	s := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.CLB},
		{At: grid.Pt(1, 0), Kind: fabric.CLB},
	})
	b := ValidAnchors(r, s)
	for y := 0; y < 4; y++ {
		for x := 0; x <= 4; x++ {
			want := x != 1 && x != 2
			if got := b.Get(x, y); got != want {
				t.Errorf("anchor (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	// Out-of-bounds anchor x=5 must be false.
	if b.Get(5, 0) {
		t.Error("anchor beyond region accepted")
	}
}

func TestValidAnchorsWithBRAM(t *testing.T) {
	r := bramStripeRegion()
	// Shape: BRAM at local x=1, CLB at x=0 and x=2. Only anchors with
	// x=1 align the BRAM tile with region column 2.
	s := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.CLB},
		{At: grid.Pt(1, 0), Kind: fabric.BRAM},
		{At: grid.Pt(2, 0), Kind: fabric.CLB},
	})
	b := ValidAnchors(r, s)
	if b.Count() != 4 {
		t.Fatalf("anchor count = %d, want 4 (x=1, all rows)", b.Count())
	}
	for y := 0; y < 4; y++ {
		if !b.Get(1, y) {
			t.Errorf("anchor (1,%d) missing", y)
		}
	}
}

func TestValidAnchorsNoneForDSP(t *testing.T) {
	r := bramStripeRegion()
	s := module.MustShape([]module.Tile{{At: grid.Pt(0, 0), Kind: fabric.DSP}})
	if got := ValidAnchors(r, s).Count(); got != 0 {
		t.Fatalf("DSP anchors = %d on a DSP-free region", got)
	}
}

func TestValidAnchorsRespectsStatic(t *testing.T) {
	dev := fabric.Homogeneous(4, 4)
	dev.MaskStatic(grid.RectXYWH(0, 0, 4, 2)) // bottom half static
	r := dev.FullRegion()
	s := module.MustShape([]module.Tile{{At: grid.Pt(0, 0), Kind: fabric.CLB}})
	b := ValidAnchors(r, s)
	if b.Count() != 8 {
		t.Fatalf("anchors = %d, want 8 (top half only)", b.Count())
	}
	if b.Get(0, 0) || !b.Get(0, 2) {
		t.Fatal("static masking not respected")
	}
}

func TestShapeGeomFor(t *testing.T) {
	r := bramStripeRegion()
	s := module.MustShape([]module.Tile{
		{At: grid.Pt(0, 0), Kind: fabric.CLB},
		{At: grid.Pt(1, 0), Kind: fabric.BRAM},
	})
	g := ShapeGeomFor(r, s)
	if g.W != 2 || g.H != 1 || len(g.Points) != 2 {
		t.Fatalf("geometry wrong: %dx%d %d points", g.W, g.H, len(g.Points))
	}
	if g.Hist[fabric.BRAM] != 1 || g.Hist[fabric.CLB] != 1 {
		t.Fatalf("hist wrong: %v", g.Hist)
	}
	if g.Valid.Count() == 0 {
		t.Fatal("no valid anchors computed")
	}
}

func TestCapacityPrefix(t *testing.T) {
	r := bramStripeRegion()
	cp := CapacityPrefix(r)
	if len(cp) != 5 {
		t.Fatalf("len = %d, want 5", len(cp))
	}
	if cp[0].Total() != 0 {
		t.Fatal("prefix[0] not empty")
	}
	// Each row: 5 CLB + 1 BRAM.
	for h := 1; h <= 4; h++ {
		if cp[h][fabric.CLB] != 5*h || cp[h][fabric.BRAM] != h {
			t.Fatalf("prefix[%d] = %v", h, cp[h])
		}
	}
}
