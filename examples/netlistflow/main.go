// Netlistflow starts where the paper's flow starts: partial modules as
// unplaced, unrouted netlists. Random technology-mapped netlists are
// generated, packed onto the fabric's tile capacities (LUT/FF pairs per
// CLB, one tile per BRAM/DSP primitive), expanded into design
// alternatives, and placed. The netlists themselves never reach the
// constraint model — only their packed shapes do, exactly as in the
// ReCoBus-Builder flow.
//
// Run with: go run ./examples/netlistflow
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/render"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	target := netlist.DefaultPackingTarget()

	recipes := []struct {
		name string
		cfg  netlist.GenConfig
	}{
		{"uart", netlist.GenConfig{LUTs: 90, FFs: 70}},
		{"dma", netlist.GenConfig{LUTs: 140, FFs: 110, BRAMs: 1}},
		{"aes", netlist.GenConfig{LUTs: 220, FFs: 150, BRAMs: 2}},
		{"fir", netlist.GenConfig{LUTs: 120, FFs: 100, DSPs: 2}},
	}

	var mods []*module.Module
	for _, r := range recipes {
		nl, err := netlist.Generate(r.name, r.cfg, rng)
		if err != nil {
			log.Fatal(err)
		}
		demand, err := netlist.Pack(nl, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("netlist %-5s: %3d LUT %3d FF %d BRAM %d DSP (avg fanout %.1f) -> packs to %+v\n",
			nl.Name, nl.Count(netlist.LUT), nl.Count(netlist.FF),
			nl.Count(netlist.BRAMCell), nl.Count(netlist.DSPCell), nl.AvgFanout(), demand)
		m, err := netlist.ToModule(nl, target, module.AlternativeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		mods = append(mods, m)
	}

	spec := fabric.Spec{
		Name: "netlist-28x16",
		W:    28, H: 16,
		BRAMColumns: []int{4, 16},
		DSPColumns:  []int{15},
	}
	region := spec.MustBuild().FullRegion()

	res, err := core.New(region, core.Options{}).Place(mods)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no feasible placement")
	}
	fmt.Println("\nplacement:", res)
	fmt.Println(render.PlacementsWithRuler(region, res.Placements))
}
