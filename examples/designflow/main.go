// Designflow walks the complete tool flow of the paper's Figure 2:
// a textual partial-region description and module specification go in,
// the constraint solver computes an optimal placement honouring the
// ReCoBus bus-attachment constraint, and bitstream assembly estimates
// the reconfiguration cost of the placed system.
//
// Run with: go run ./examples/designflow
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/recobus"
	"repro/internal/render"
)

const regionSpec = `
# A 30x16 partial region: two BRAM columns, a DSP column, clock tiles
# every 8 rows in the dedicated columns, the top 4 rows reserved for the
# static system, and a ReCoBus at rows 0 and 6.
region flowdemo 30 16
bramcols 4 22
dspcols 12
clockrows 8
static 0 12 30 4
bus 0 6
`

const moduleSpec = `
module crypto             # AES round engine: wants embedded memory
demand 18 2 0
alternatives 4

module dsp_filter         # FIR filter on the DSP column
demand 10 0 2
alternatives 4

module io_bridge          # explicit two-layout module
shape
rect 0 0 5 2 CLB
end
shape
rect 0 0 2 5 CLB
end
`

func main() {
	flow, err := recobus.LoadFlow(strings.NewReader(regionSpec), strings.NewReader(moduleSpec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region %s: %d x %d, %s\n", flow.Spec.Fabric.Name,
		flow.Region.W(), flow.Region.H(), flow.Region.Histogram())
	fmt.Printf("bus rows: %v\n\n", flow.Spec.BusRows)

	res, err := flow.Place(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no feasible placement")
	}
	fmt.Println("placement:", res)
	fmt.Println(render.PlacementsWithRuler(flow.Region, res.Placements))

	bs, err := flow.Assemble(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled bitstreams:")
	for _, b := range bs {
		fmt.Println(" ", b)
		blob := b.Encode()
		back, err := recobus.DecodeBitstream(blob)
		if err != nil || back.Module != b.Module {
			log.Fatalf("bitstream round trip failed: %v", err)
		}
	}
	fmt.Println("total reconfiguration time:", recobus.TotalReconfigTime(bs))
}
