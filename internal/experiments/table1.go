// Package experiments reproduces the paper's evaluation: the Table-I
// protocol (50 runs of placing 30 generated modules with and without
// design alternatives), the illustrative figures, and the ablations the
// text argues from (heterogeneity, resource masking, number of
// alternatives, search strategy). The same harness backs cmd/experiment
// and the benchmark suite.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TableIDevice builds the canonical evaluation fabric: a 72×60 partial
// region modelled on a current-generation column-heterogeneous FPGA.
// BRAM columns sit on a 12-column pitch, each with a clean CLB gap to
// its right (module bodies extend rightwards from their memory column);
// DSP columns and the clock spine sit immediately left of BRAM columns,
// and clock-management tiles interrupt the dedicated columns every 16
// rows — the irregularity the paper calls out in modern devices.
func TableIDevice() *fabric.Device {
	dev, err := fabric.ByName("virtex4-like-72x60")
	if err != nil {
		//solverlint:allow nakedpanic the catalog entry name is a fixed literal; ByName cannot fail on it
		panic(err)
	}
	return dev
}

// TableIRegion returns the full reconfigurable region of TableIDevice.
func TableIRegion() *fabric.Region { return TableIDevice().FullRegion() }

// RunConfig parameterises one evaluation protocol run.
type RunConfig struct {
	// Region under placement; nil selects TableIRegion.
	Region *fabric.Region
	// Runs is the number of independent workload draws (paper: 50).
	Runs int
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// Workload configures module generation (zero = paper defaults).
	Workload workload.Config
	// StallNodes is the optimiser convergence criterion (default 2000).
	StallNodes int64
	// Timeout is a per-solve safety cap (default 30s).
	Timeout time.Duration
	// Workers is the number of parallel search goroutines per solve
	// (0 or 1 = sequential branch-and-bound).
	Workers int
	// Presolve toggles the presolve pipeline on every solve (the zero
	// value runs it; core.PresolveOff is the A/B escape hatch).
	Presolve core.PresolveMode
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Recorder, when non-nil, receives the solver event stream of every
	// solve in the protocol.
	Recorder obs.Recorder
	// Metrics, when non-nil, aggregates phase timings across all solves.
	Metrics *obs.Registry
	// BenchPath, when non-empty, is where cmd/experiment writes the
	// per-testcase JSON of the table1 experiment (BENCH_table1.json).
	// The harness itself does not touch the file.
	BenchPath string
}

func (c RunConfig) defaults() RunConfig {
	if c.Region == nil {
		c.Region = TableIRegion()
	}
	if c.Runs == 0 {
		c.Runs = 50
	}
	if c.StallNodes == 0 {
		c.StallNodes = 2000
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Arm aggregates one experiment arm over all runs.
type Arm struct {
	Name string
	// Util is the per-run average resource utilization (fraction).
	Util metrics.Summary
	// Seconds is the per-run solve time.
	Seconds metrics.Summary
	// Height is the per-run occupied height in rows.
	Height metrics.Summary
	// Shapes is the mean number of shapes in play per run.
	Shapes float64
	// Failures counts runs with no complete placement.
	Failures int
}

// TableIResult is the reproduction of the paper's Table I.
type TableIResult struct {
	Runs    int
	Without Arm
	With    Arm
	// Records holds the raw per-testcase outcomes (two per run, one per
	// arm), for machine-readable export via WriteBenchJSON.
	Records []RunRecord
}

// UtilGain returns the utilization improvement in percentage points
// (paper: +11/12 points, 53% → 65%).
func (r *TableIResult) UtilGain() float64 {
	return (r.With.Util.Mean - r.Without.Util.Mean) * 100
}

// TimeRatio returns mean solve time with alternatives over without
// (paper: 10.82 s / 2.55 s ≈ 4.2).
func (r *TableIResult) TimeRatio() float64 {
	if r.Without.Seconds.Mean == 0 {
		return 0
	}
	return r.With.Seconds.Mean / r.Without.Seconds.Mean
}

// Format renders the result in the layout of the paper's Table I.
func (r *TableIResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "IMPACT OF MODULE DESIGN ALTERNATIVES ON AREA UTILIZATION AND EXECUTION TIME (%d runs)\n", r.Runs)
	fmt.Fprintf(&sb, "%-24s %-16s %-14s %-12s %-8s %s\n",
		"Type", "Mean Area Util.", "Mean Time", "Mean Height", "Shapes", "Failures")
	row := func(a Arm) {
		fmt.Fprintf(&sb, "%-24s %5.1f%% ± %4.1f     %6.2fs ± %5.2f %8.1f     %6.1f   %d\n",
			a.Name, a.Util.Mean*100, a.Util.CI95()*100,
			a.Seconds.Mean, a.Seconds.CI95(), a.Height.Mean, a.Shapes, a.Failures)
	}
	row(r.Without)
	row(r.With)
	fmt.Fprintf(&sb, "%-24s %+5.1f pts         %6.2fx\n", "Change", r.UtilGain(), r.TimeRatio())
	return sb.String()
}

// RunTableI executes the Table-I protocol: for each seeded run, generate
// the module batch, place once restricted to the primary layout (no
// design alternatives) and once with all alternatives, and aggregate
// utilization and solve time.
func RunTableI(cfg RunConfig) (*TableIResult, error) {
	cfg = cfg.defaults()
	res := &TableIResult{
		Runs:    cfg.Runs,
		Without: Arm{Name: "No design alternatives"},
		With:    Arm{Name: "Design alternatives"},
	}
	var wUtil, wSec, wHeight []float64
	var nUtil, nSec, nHeight []float64
	var wShapes, nShapes int

	placer := core.New(cfg.Region, core.Options{
		Timeout:    cfg.Timeout,
		StallNodes: cfg.StallNodes,
		Workers:    cfg.Workers,
		Presolve:   cfg.Presolve,
		Recorder:   cfg.Recorder,
		Metrics:    cfg.Metrics,
	})
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
		mods, err := workload.Generate(cfg.Workload, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: run %d: %w", run, err)
		}
		single := workload.FirstShapesOnly(mods)

		without, err := measure(placer, cfg.Region, single)
		if err != nil {
			return nil, fmt.Errorf("experiments: run %d (without): %w", run, err)
		}
		with, err := measure(placer, cfg.Region, mods)
		if err != nil {
			return nil, fmt.Errorf("experiments: run %d (with): %w", run, err)
		}

		res.Records = append(res.Records, record(run, "without", without), record(run, "with", with))
		nShapes += countShapes(single)
		wShapes += countShapes(mods)
		if without.Found {
			nUtil = append(nUtil, without.Utilization)
			nSec = append(nSec, without.Elapsed.Seconds())
			nHeight = append(nHeight, float64(without.Height))
		} else {
			res.Without.Failures++
		}
		if with.Found {
			wUtil = append(wUtil, with.Utilization)
			wSec = append(wSec, with.Elapsed.Seconds())
			wHeight = append(wHeight, float64(with.Height))
		} else {
			res.With.Failures++
		}
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "run %2d/%d: without=%v  with=%v\n",
				run+1, cfg.Runs, without, with)
		}
	}

	res.Without.Util = metrics.Summarize(nUtil)
	res.Without.Seconds = metrics.Summarize(nSec)
	res.Without.Height = metrics.Summarize(nHeight)
	res.Without.Shapes = float64(nShapes) / float64(cfg.Runs)
	res.With.Util = metrics.Summarize(wUtil)
	res.With.Seconds = metrics.Summarize(wSec)
	res.With.Height = metrics.Summarize(wHeight)
	res.With.Shapes = float64(wShapes) / float64(cfg.Runs)
	return res, nil
}

// measure runs one placement and validates the result before returning
// it — an invalid placement is a solver bug, not an experiment outcome.
func measure(p *core.Placer, region *fabric.Region, mods []*module.Module) (*core.Result, error) {
	res, err := p.Place(mods)
	if err != nil {
		return nil, err
	}
	if err := res.Validate(region); err != nil {
		return nil, err
	}
	return res, nil
}

func countShapes(mods []*module.Module) int {
	n := 0
	for _, m := range mods {
		n += m.NumShapes()
	}
	return n
}
