package rtsim

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/module"
)

// ParseSchedule reads a phase schedule. Format ('#' comments):
//
//	phase <name> <dwell>          # dwell in Go duration syntax (40ms)
//	use <module> [<module>...]    # modules resident during the phase
//
// Module names are resolved against library (usually the modules of a
// recobus module specification).
func ParseSchedule(r io.Reader, library map[string]*module.Module) ([]Phase, error) {
	var phases []Phase
	var cur *Phase
	flush := func() {
		if cur != nil {
			phases = append(phases, *cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "phase":
			if len(fields) != 3 {
				return nil, fmt.Errorf("rtsim: schedule line %d: want 'phase <name> <dwell>'", lineNo)
			}
			d, err := time.ParseDuration(fields[2])
			if err != nil {
				return nil, fmt.Errorf("rtsim: schedule line %d: bad dwell: %w", lineNo, err)
			}
			flush()
			cur = &Phase{Name: fields[1], Dwell: d}
		case "use":
			if cur == nil {
				return nil, fmt.Errorf("rtsim: schedule line %d: use outside phase", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("rtsim: schedule line %d: use needs module names", lineNo)
			}
			for _, name := range fields[1:] {
				m, ok := library[name]
				if !ok {
					return nil, fmt.Errorf("rtsim: schedule line %d: unknown module %q", lineNo, name)
				}
				cur.Modules = append(cur.Modules, m)
			}
		default:
			return nil, fmt.Errorf("rtsim: schedule line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(phases) == 0 {
		return nil, fmt.Errorf("rtsim: schedule defines no phases")
	}
	for i := range phases {
		if err := validatePhase(phases[i]); err != nil {
			return nil, fmt.Errorf("rtsim: schedule: %w", err)
		}
	}
	return phases, nil
}

// Library indexes modules by name for schedule resolution.
func Library(mods []*module.Module) map[string]*module.Module {
	out := make(map[string]*module.Module, len(mods))
	for _, m := range mods {
		out[m.Name()] = m
	}
	return out
}
