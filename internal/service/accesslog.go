package service

import (
	"encoding/json"
	"io"
	"sync"
)

// AccessRecord is one structured access-log line: everything needed to
// correlate a single /v1/place request with its trace (X-Trace-Id),
// its cache entry (digest), and the work it caused (queue wait, solve
// time). Cache is one of "hit" (LRU), "dedup" (singleflight waiter),
// "miss" (this request solved), or "none" (no placement was served).
type AccessRecord struct {
	Time    string  `json:"time"`
	TraceID string  `json:"traceId,omitempty"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Status  int     `json:"status"`
	DurMs   float64 `json:"durMs"`
	Digest  string  `json:"digest,omitempty"`
	Cache   string  `json:"cache"`
	QueueMs float64 `json:"queueMs"`
	SolveMs float64 `json:"solveMs"`
	// Quality is "approximate" on degraded responses, empty otherwise.
	Quality string `json:"quality,omitempty"`
	Error   string `json:"error,omitempty"`
}

// accessLogger serialises one JSON object per request onto w. Lines
// are marshalled outside the lock and written whole under it, so
// concurrent handlers cannot interleave bytes. A nil logger is the
// disabled logger; log is a no-op on it.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) log(rec AccessRecord) {
	if l == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // a log line must never fail a request
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}
