package online

import (
	"fmt"
	"math/rand"

	"repro/internal/module"
	"repro/internal/workload"
)

// StreamConfig parameterises task-stream generation.
type StreamConfig struct {
	// Tasks is the number of arrivals (default 100).
	Tasks int
	// Library is the module-demand recipe; modules are drawn fresh per
	// task from this workload configuration (zero = a moderate recipe
	// suited to online churn: 8–40 CLBs, 0–2 BRAM, 4 alternatives).
	Library workload.Config
	// MeanInterarrival is the mean gap between arrivals (default 8).
	MeanInterarrival int
	// MeanDuration is the mean residency (default 60) — a mean load of
	// MeanDuration/MeanInterarrival concurrent tasks.
	MeanDuration int
}

func (c StreamConfig) defaults() StreamConfig {
	if c.Tasks == 0 {
		c.Tasks = 100
	}
	if c.Library.NumModules == 0 {
		c.Library = workload.Config{
			NumModules: 1,
			CLBMin:     8, CLBMax: 40,
			BRAMMax:      2,
			Alternatives: 4,
		}
	}
	c.Library.NumModules = 1
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 8
	}
	if c.MeanDuration == 0 {
		c.MeanDuration = 60
	}
	return c
}

// GenerateStream draws a seeded task stream: geometric interarrival
// gaps and geometric durations around the configured means, each task
// carrying a freshly generated module.
//
//solverlint:allow nondeterminism workload generator: deliberately random, reproducible through the caller's seeded rng
func GenerateStream(cfg StreamConfig, rng *rand.Rand) ([]Task, error) {
	cfg = cfg.defaults()
	geometric := func(mean int) int64 {
		if mean <= 1 {
			return 1
		}
		// Geometric with success probability 1/mean, support >= 1.
		n := int64(1)
		//solverlint:allow nondeterminism draw from the caller's seeded rng: the stream replays from the seed
		for rng.Float64() > 1.0/float64(mean) && n < int64(mean*10) {
			n++
		}
		return n
	}
	tasks := make([]Task, 0, cfg.Tasks)
	now := int64(0)
	for i := 0; i < cfg.Tasks; i++ {
		mods, err := workload.Generate(cfg.Library, rng)
		if err != nil {
			return nil, fmt.Errorf("online: task %d: %w", i, err)
		}
		m, err := renameModule(mods[0], fmt.Sprintf("t%03d", i))
		if err != nil {
			return nil, err
		}
		now += geometric(cfg.MeanInterarrival)
		tasks = append(tasks, Task{
			ID:       TaskID(i),
			Module:   m,
			Arrive:   now,
			Duration: geometric(cfg.MeanDuration),
		})
	}
	return tasks, nil
}

func renameModule(m *module.Module, name string) (*module.Module, error) {
	return module.NewModule(name, m.Shapes()...)
}
