package csp

// Classic constraint problems exercising the solver beyond placement:
// they validate the propagation/search machinery against known answers.

import "testing"

// TestLangfordPairs solves L(2,n): arrange pairs of 1..n so the two
// copies of k are k+1 apart. Known solution counts (up to reversal
// symmetry the raw count doubles): n=3 -> 2, n=4 -> 2, n=7 -> 52.
func TestLangfordPairs(t *testing.T) {
	counts := map[int]int{3: 2, 4: 2, 7: 52}
	for n, want := range counts {
		st := NewStore()
		// pos[k] is the index of the first copy of k+1; second copy sits
		// at pos[k] + (k+1) + 1.
		size := 2 * n
		pos := make([]*Var, n)
		for k := range pos {
			pos[k] = st.NewVarRange("p", 0, size-(k+1)-2)
		}
		// All 2n slots distinct: pairwise constraints between all copies.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				da, db := a+2, b+2 // gap of value k is k+1 where value = k+1 -> a+1+1
				NotEqual(st, pos[a], pos[b])
				NotEqualOffset(st, pos[a], pos[b], db) // first a vs second b
				NotEqualOffset(st, pos[b], pos[a], da) // first b vs second a
				// second a vs second b: pos[a]+da != pos[b]+db
				NotEqualOffset(st, pos[a], pos[b], db-da)
			}
		}
		res, err := Solve(st, pos, Options{}, func(*Store) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if res.Solutions != want || !res.Complete {
			t.Errorf("L(2,%d): %d solutions, want %d", n, res.Solutions, want)
		}
	}
}

// TestMagicSeries solves the magic-series problem: s[i] = number of
// occurrences of i in s. Unique solutions are known for n >= 7:
// (n-4, 2, 1, 0, ..., 0, 1, 0, 0, 0).
func TestMagicSeries(t *testing.T) {
	const n = 8
	st := NewStore()
	s := make([]*Var, n)
	for i := range s {
		s[i] = st.NewVarRange("s", 0, n-1)
	}
	// Occurrence constraints: s[i] counts the occurrences of i in s.
	for i := 0; i < n; i++ {
		Count(st, s[i], i, s...)
	}
	// Redundant constraint speeding things up: sum s[i] = n.
	total := st.NewVarRange("n", n, n)
	Sum(st, total, s...)

	res, err := Solve(st, s, Options{}, func(store *Store) bool {
		// Verify the solution is a genuine magic series.
		vals := make([]int, n)
		for i, v := range s {
			vals[i] = v.Value()
		}
		for i := 0; i < n; i++ {
			count := 0
			for _, v := range vals {
				if v == i {
					count++
				}
			}
			if count != vals[i] {
				t.Fatalf("bogus magic series %v", vals)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 1 || !res.Complete {
		t.Fatalf("magic series n=%d: %d solutions, want 1", n, res.Solutions)
	}
}

// TestGolombRulerMinimize finds the optimal length of a 5-mark Golomb
// ruler (known optimum: 11).
func TestGolombRulerMinimize(t *testing.T) {
	const marks = 5
	const maxLen = 20
	st := NewStore()
	m := make([]*Var, marks)
	for i := range m {
		m[i] = st.NewVarRange("m", 0, maxLen)
	}
	if err := st.Assign(m[0], 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < marks; i++ {
		LessEqOffset(st, m[i], m[i+1], 1) // strictly increasing
	}
	// All pairwise differences distinct: difference variables + pairwise
	// inequality.
	var diffs []*Var
	for i := 0; i < marks; i++ {
		for j := i + 1; j < marks; j++ {
			d := st.NewVarRange("d", 1, maxLen)
			// d = m[j] - m[i]: enforce with two custom half-constraints.
			i, j := i, j
			st.Post(FuncProp(func(store *Store) error {
				if err := store.SetMin(d, m[j].Min()-m[i].Max()); err != nil {
					return err
				}
				if err := store.SetMax(d, m[j].Max()-m[i].Min()); err != nil {
					return err
				}
				if err := store.SetMin(m[j], m[i].Min()+d.Min()); err != nil {
					return err
				}
				if err := store.SetMax(m[j], m[i].Max()+d.Max()); err != nil {
					return err
				}
				if err := store.SetMin(m[i], m[j].Min()-d.Max()); err != nil {
					return err
				}
				return store.SetMax(m[i], m[j].Max()-d.Min())
			}), m[i], m[j], d)
			diffs = append(diffs, d)
		}
	}
	AllDifferent(st, diffs...)

	res, err := Minimize(st, m, m[marks-1], Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Best != 11 || !res.Optimal {
		t.Fatalf("Golomb(5): %+v, want best=11 optimal", res)
	}
}
