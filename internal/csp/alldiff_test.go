package csp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllDifferentBoundsHallInterval(t *testing.T) {
	// x, y in {1,2} form a Hall interval: z must leave {1,2}.
	st := NewStore()
	x := st.NewVarRange("x", 1, 2)
	y := st.NewVarRange("y", 1, 2)
	z := st.NewVarRange("z", 1, 5)
	AllDifferentBounds(st, x, y, z)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if z.Min() != 3 {
		t.Fatalf("z.min = %d, want 3 (Hall interval {1,2})", z.Min())
	}
}

func TestAllDifferentBoundsMirror(t *testing.T) {
	// Hall interval at the top: z's max must drop below it.
	st := NewStore()
	x := st.NewVarRange("x", 4, 5)
	y := st.NewVarRange("y", 4, 5)
	z := st.NewVarRange("z", 1, 5)
	AllDifferentBounds(st, x, y, z)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if z.Max() != 3 {
		t.Fatalf("z.max = %d, want 3", z.Max())
	}
}

func TestAllDifferentBoundsPigeonhole(t *testing.T) {
	// Three variables in a two-value interval: immediate failure, no
	// search needed (plain AllDifferent only fails after assignments).
	st := NewStore()
	vars := []*Var{
		st.NewVarRange("a", 0, 1),
		st.NewVarRange("b", 0, 1),
		st.NewVarRange("c", 0, 1),
	}
	AllDifferentBounds(st, vars...)
	if err := st.Propagate(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want inconsistency at the root", err)
	}
}

func TestAllDifferentBoundsQueensSameCounts(t *testing.T) {
	// Replacing the column all-different with the bounds version must
	// not change solution counts (it only prunes infeasible branches).
	for _, n := range []int{5, 6, 7} {
		st := NewStore()
		q := make([]*Var, n)
		for i := range q {
			q[i] = st.NewVarRange("q", 0, n-1)
		}
		AllDifferentBounds(st, q...)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				NotEqualOffset(st, q[i], q[j], j-i)
				NotEqualOffset(st, q[i], q[j], i-j)
			}
		}
		res, err := Solve(st, q, Options{}, func(*Store) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]int{5: 10, 6: 4, 7: 40}[n]
		if res.Solutions != want {
			t.Fatalf("%d-queens with bounds alldiff: %d solutions, want %d", n, res.Solutions, want)
		}
	}
}

func TestAllDifferentBoundsPrunesMoreThanForwardChecking(t *testing.T) {
	// On a permutation problem the bounds version must not explore more
	// nodes than plain forward checking.
	count := func(bounds bool) int64 {
		st := NewStore()
		n := 7
		vars := make([]*Var, n)
		for i := range vars {
			vars[i] = st.NewVarRange("v", 0, n-1)
		}
		if bounds {
			AllDifferentBounds(st, vars...)
		} else {
			AllDifferent(st, vars...)
		}
		// A few extra interval constraints to create Hall situations.
		for i := 0; i < 3; i++ {
			if err := st.SetMax(vars[i], 2); err != nil {
				panic(err)
			}
		}
		res, err := Solve(st, vars, Options{}, func(*Store) bool { return true })
		if err != nil {
			panic(err)
		}
		return res.Nodes
	}
	fc := count(false)
	bc := count(true)
	if bc > fc {
		t.Fatalf("bounds consistency explored more nodes: %d > %d", bc, fc)
	}
}

// Property: bounds and forward-checking all-different accept exactly the
// same complete assignments (enumeration equivalence on random
// instances).
func TestAllDifferentBoundsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		lo := make([]int, n)
		hi := make([]int, n)
		for i := 0; i < n; i++ {
			lo[i] = rng.Intn(4)
			hi[i] = lo[i] + rng.Intn(4)
		}
		countSolutions := func(bounds bool) int {
			st := NewStore()
			vars := make([]*Var, n)
			for i := range vars {
				vars[i] = st.NewVarRange("v", lo[i], hi[i])
			}
			if bounds {
				AllDifferentBounds(st, vars...)
			} else {
				AllDifferent(st, vars...)
			}
			res, err := Solve(st, vars, Options{}, func(*Store) bool { return true })
			if err != nil {
				panic(err)
			}
			return res.Solutions
		}
		return countSolutions(true) == countSolutions(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
