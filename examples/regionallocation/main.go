// Regionallocation chains the two design-time decisions of a
// reconfigurable system: first allocate a reconfigurable region on the
// device for the module set (the step of Belaid et al. and Becker et
// al. in the paper's related work), then show what design alternatives
// buy *inside* that region — the paper's core claim, at the scale the
// region planner actually chose.
//
// Run with: go run ./examples/regionallocation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/regionplan"
	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	dev, err := fabric.ByName("virtex4-like-72x60")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	mods, err := workload.Generate(workload.Config{
		NumModules: 6,
		CLBMin:     10, CLBMax: 28,
		BRAMMax:      2,
		Alternatives: 4,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	best, tried, err := regionplan.Plan(dev, mods, regionplan.Options{
		Step:        4,
		MaxAttempts: 300,
		Placer:      core.Options{Timeout: 2 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	region := dev.Region(best.Rect)
	fmt.Printf("allocated region %v on %s (%d placement checks)\n",
		best.Rect, dev.Name(), len(tried))
	fmt.Printf("region resources: %s\n\n", region.Histogram())

	placer := core.New(region, core.Options{Timeout: 10 * time.Second, StallNodes: 2000})
	with, err := placer.Place(mods)
	if err != nil {
		log.Fatal(err)
	}
	without, err := placer.Place(workload.FirstShapesOnly(mods))
	if err != nil {
		log.Fatal(err)
	}
	if !with.Found {
		log.Fatal("with-alternatives placement not found")
	}

	fmt.Printf("with alternatives:    %v\n", with)
	if without.Found {
		fmt.Printf("without alternatives: %v\n\n", without)
	} else {
		fmt.Println("without alternatives: NO feasible placement — the region")
		fmt.Println("was sized assuming the placer may pick layouts; locked to")
		fmt.Println("primary layouts the same module set no longer fits.")
		fmt.Println()
	}
	fmt.Println(render.PlacementsWithRuler(region, with.Placements))
}
