package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped tracing layer: a Trace is one
// request's tree of timed Spans, minted by a Tracer that retains
// bounded rings of the most recent and the slowest finished traces (in
// the spirit of golang.org/x/net/trace) and forwards every completed
// span to the existing Recorder/sink machinery as a KindSpan event.
//
// The layer follows the package's zero-cost-when-disabled contract
// end to end: a nil *Tracer mints nil *Trace values, and every Trace
// and Span method is a no-op on a nil receiver, so instrumentation
// sites need no guards and allocate nothing when tracing is off.

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits
// (the W3C trace-context format).
type TraceID [16]byte

// NewTraceID draws a random trace id. The randomness here is identity,
// not behaviour: ids never influence any solver or serving decision.
func NewTraceID() TraceID {
	var id TraceID
	// crypto/rand.Read does not fail on supported platforms; on a
	// hypothetical failure the zero id still traces, just less uniquely.
	_, _ = rand.Read(id[:])
	return id
}

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is all zero (the invalid id).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// ParseTraceID parses the 32-hex-digit form; ok is false for any other
// input, including the all-zero id.
func ParseTraceID(s string) (id TraceID, ok bool) {
	if len(s) != 2*len(id) {
		return id, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return TraceID{}, false
	}
	copy(id[:], b)
	return id, !id.IsZero()
}

// attrKind discriminates the Attr payload.
type attrKind uint8

const (
	attrStr attrKind = iota
	attrInt
	attrBool
	attrFloat
	attrDur
)

// Attr is one typed span attribute. Construct with String, Int, Bool,
// Float or Duration.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// String builds a string-valued attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: attrStr, s: v} }

// Int builds an integer-valued attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Bool builds a boolean-valued attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// Float builds a float-valued attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Duration builds a duration-valued attribute.
func Duration(key string, d time.Duration) Attr {
	return Attr{Key: key, kind: attrDur, i: int64(d)}
}

// Value renders the attribute value as text.
func (a Attr) Value() string {
	switch a.kind {
	case attrInt:
		return strconv.FormatInt(a.i, 10)
	case attrBool:
		if a.i != 0 {
			return "true"
		}
		return "false"
	case attrFloat:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	case attrDur:
		return time.Duration(a.i).String()
	}
	return a.s
}

// encodeAttrs flattens attrs into the Event.Attrs wire form:
// space-separated key=value pairs in attachment order.
func encodeAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value())
	}
	return b.String()
}

// TracerConfig sizes a Tracer. Zero fields take the stated defaults.
type TracerConfig struct {
	// Recorder receives one KindSpan event per completed span (nil
	// keeps spans in the rings only).
	Recorder Recorder
	// Recent is the capacity of the most-recent-traces ring
	// (default 64).
	Recent int
	// Slowest is the capacity of the slowest-traces ring (default 16).
	Slowest int
}

// Tracer mints request-scoped traces and retains bounded rings of the
// most recent and the slowest finished ones. A nil *Tracer is the
// disabled tracer: New returns a nil *Trace whose span operations are
// all no-ops, so callers never guard.
type Tracer struct {
	rec Recorder

	mu      sync.Mutex
	recent  []TraceSummary // ring, position recentN%cap
	recentN int            // traces filed so far
	slowest []TraceSummary // sorted by DurMs descending, len <= slowCap
	slowCap int
}

// NewTracer returns a tracer with the given sink and ring capacities.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = 64
	}
	if cfg.Slowest <= 0 {
		cfg.Slowest = 16
	}
	return &Tracer{
		rec:     cfg.Recorder,
		recent:  make([]TraceSummary, 0, cfg.Recent),
		slowCap: cfg.Slowest,
	}
}

// New starts a trace with a fresh random id; name labels the root span.
// Nil-safe: a nil tracer returns a nil trace.
func (tr *Tracer) New(name string) *Trace {
	if tr == nil {
		return nil
	}
	return tr.NewWithID(NewTraceID(), name)
}

// NewWithID starts a trace under a caller-provided id (e.g. one
// propagated from an upstream system). Nil-safe.
func (tr *Tracer) NewWithID(id TraceID, name string) *Trace {
	if tr == nil {
		return nil
	}
	//solverlint:allow nondeterminism trace start timestamps are reporting-only; no solver or serving decision reads them
	t := &Trace{id: id, tracer: tr, start: time.Now()}
	t.root = t.newSpan(name, 0)
	return t
}

// file inserts a finished trace into both rings.
func (tr *Tracer) file(ts TraceSummary) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.recent) < cap(tr.recent) {
		tr.recent = append(tr.recent, ts)
	} else {
		tr.recent[tr.recentN%cap(tr.recent)] = ts
	}
	tr.recentN++

	pos := sort.Search(len(tr.slowest), func(i int) bool { return tr.slowest[i].DurMs < ts.DurMs })
	if pos >= tr.slowCap {
		return
	}
	tr.slowest = append(tr.slowest, TraceSummary{})
	copy(tr.slowest[pos+1:], tr.slowest[pos:])
	tr.slowest[pos] = ts
	if len(tr.slowest) > tr.slowCap {
		tr.slowest = tr.slowest[:tr.slowCap]
	}
}

// TracerSnapshot is the wire form of a ring dump (GET /debug/traces):
// the most recent finished traces, newest first, and the slowest,
// slowest first.
type TracerSnapshot struct {
	Recent  []TraceSummary `json:"recent"`
	Slowest []TraceSummary `json:"slowest"`
}

// Snapshot copies both rings. Nil-safe: a nil tracer yields empty
// (non-nil) slices.
func (tr *Tracer) Snapshot() TracerSnapshot {
	snap := TracerSnapshot{Recent: []TraceSummary{}, Slowest: []TraceSummary{}}
	if tr == nil {
		return snap
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := len(tr.recent)
	for i := 0; i < n; i++ {
		snap.Recent = append(snap.Recent, tr.recent[(tr.recentN-1-i)%n])
	}
	snap.Slowest = append(snap.Slowest, tr.slowest...)
	return snap
}

// Trace is one request's tree of spans. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Trace struct {
	id     TraceID
	tracer *Tracer
	start  time.Time

	mu       sync.Mutex
	spans    []*Span
	nextID   int
	root     *Span
	finished bool
}

// ID returns the trace id (zero on a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child of the root span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, t.root.id)
}

func (t *Trace) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	t.nextID++
	//solverlint:allow nondeterminism span timestamps are reporting-only; no solver or serving decision reads them
	sp := &Span{trace: t, id: t.nextID, parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Finish ends the root span and files the trace into the tracer's
// recent and slowest rings, returning the root duration. Spans still
// running — detached work owned by this request, e.g. a singleflight
// leader's solve outliving its HTTP request — appear in the filed
// summary marked unended; their KindSpan event is still emitted when
// they eventually end. Only the first Finish files; later calls are
// no-ops returning the root duration.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	d := t.root.End()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return d
	}
	t.finished = true
	ts := t.summaryLocked()
	t.mu.Unlock()
	t.tracer.file(ts)
	return d
}

// summaryLocked snapshots the trace; t.mu must be held.
func (t *Trace) summaryLocked() TraceSummary {
	ts := TraceSummary{
		TraceID: t.id.String(),
		Name:    t.root.name,
		Start:   t.start,
		DurMs:   durMs(t.root.dur),
		Spans:   make([]SpanSummary, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		ss := SpanSummary{
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			StartMs: durMs(sp.start.Sub(t.start)),
			DurMs:   durMs(sp.dur),
			Ended:   sp.ended,
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				ss.Attrs[a.Key] = a.Value()
			}
		}
		ts.Spans = append(ts.Spans, ss)
	}
	return ts
}

// TraceSummary is an immutable snapshot of a finished trace.
type TraceSummary struct {
	TraceID string        `json:"traceId"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	DurMs   float64       `json:"durMs"`
	Spans   []SpanSummary `json:"spans"`
}

// SpanSummary is one span of a TraceSummary. Attrs render as text;
// encoding/json sorts the keys, keeping dumps deterministic.
type SpanSummary struct {
	ID      int               `json:"id"`
	Parent  int               `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartMs float64           `json:"startMs"`
	DurMs   float64           `json:"durMs"`
	Ended   bool              `json:"ended"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Span is one timed interval of a trace. Mutable state is guarded by
// the owning trace's lock; all methods are no-ops on a nil receiver.
type Span struct {
	trace  *Trace
	id     int
	parent int
	name   string
	start  time.Time

	// guarded by trace.mu
	dur   time.Duration
	ended bool
	attrs []Attr
}

// StartChild opens a sub-span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(name, s.id)
}

// SetAttrs appends typed attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.trace.mu.Unlock()
}

// End closes the span, emits its KindSpan event to the tracer's
// recorder, and returns its duration. End is idempotent: a second call
// returns the recorded duration without re-emitting.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.trace
	t.mu.Lock()
	if s.ended {
		d := s.dur
		t.mu.Unlock()
		return d
	}
	s.ended = true
	//solverlint:allow nondeterminism span durations are reporting-only; no solver or serving decision reads them
	s.dur = time.Since(s.start)
	d := s.dur
	attrs := encodeAttrs(s.attrs)
	t.mu.Unlock()
	if rec := t.tracer.rec; rec != nil {
		rec.Record(Event{
			Kind:   KindSpan,
			Trace:  t.id.String(),
			Span:   s.name,
			SpanID: s.id,
			Parent: s.parent,
			Offset: s.start.Sub(t.start),
			Dur:    d,
			Attrs:  attrs,
		})
	}
	return d
}

// Context carriage. Traces and spans travel down a request path via
// context.Context so layers that never see each other (HTTP handler,
// admission pool, solver adapter) agree on the owning request.

type traceCtxKey struct{}
type spanCtxKey struct{}

// ContextWithTrace returns ctx carrying t (ctx unchanged when t is
// nil, so disabled tracing adds no context allocation).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// ContextWithSpan returns ctx carrying s (ctx unchanged when s is nil).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanStats is a Recorder that aggregates a solver event stream into
// per-request counters, attributing search work to the one request
// whose solve emitted it. Pass a fresh SpanStats as the solver
// Options.Recorder for one solve, then AttachTo the request's solve
// span. Safe for concurrent Record calls (parallel search workers).
type SpanStats struct {
	branches     atomic.Int64
	backtracks   atomic.Int64
	propagations atomic.Int64
	prunes       atomic.Int64
	prunedValues atomic.Int64
	solutions    atomic.Int64
	incumbents   atomic.Int64
}

// Record implements Recorder.
func (s *SpanStats) Record(e Event) {
	switch e.Kind {
	case KindBranch:
		s.branches.Add(1)
	case KindBacktrack:
		s.backtracks.Add(1)
	case KindPropagate:
		s.propagations.Add(1)
	case KindPrune:
		s.prunes.Add(1)
		s.prunedValues.Add(int64(e.Removed))
	case KindSolution:
		s.solutions.Add(1)
	case KindIncumbent:
		s.incumbents.Add(1)
	}
}

// AttachTo flattens the counters onto sp as typed attributes (branch
// events are the solver's node count). Nil-safe on both sides.
func (s *SpanStats) AttachTo(sp *Span) {
	if s == nil || sp == nil {
		return
	}
	sp.SetAttrs(
		Int("nodes", s.branches.Load()),
		Int("backtracks", s.backtracks.Load()),
		Int("propagations", s.propagations.Load()),
		Int("prunes", s.prunes.Load()),
		Int("pruned_values", s.prunedValues.Load()),
		Int("solutions", s.solutions.Load()),
		Int("incumbents", s.incumbents.Load()),
	)
}
