package csp

import (
	"math"
	"sync"
	"testing"
)

// emptied returns a domain over d's universe with every value removed.
// An empty domain arises only from pruning, so tests construct one the
// same way the solver does.
func emptied(d *Domain) *Domain {
	e := d.Clone()
	e.Filter(func(int) bool { return false })
	return e
}

func TestDomainUnionIntoEmpty(t *testing.T) {
	d := emptied(NewDomainRange(0, 9))
	o := NewDomainValues(2, 5, 7)
	if !d.Union(o) {
		t.Fatal("union into empty domain reported no change")
	}
	if d.Size() != 3 || d.Min() != 2 || d.Max() != 7 {
		t.Fatalf("union into empty wrong: %v", d)
	}
	if !d.Equal(NewDomainValues(2, 5, 7)) {
		t.Fatalf("union into empty: got %v", d)
	}
}

func TestDomainUnionOfEmptyArgument(t *testing.T) {
	d := NewDomainValues(1, 4)
	if d.Union(emptied(NewDomainRange(0, 9))) {
		t.Fatal("union with empty argument reported a change")
	}
	if !d.Equal(NewDomainValues(1, 4)) {
		t.Fatalf("union with empty argument mutated receiver: %v", d)
	}
}

func TestDomainUnionSingleValue(t *testing.T) {
	d := NewDomainRange(0, 9)
	d.KeepOnly(3)
	o := NewDomainRange(0, 9)
	o.KeepOnly(8)
	if !d.Union(o) {
		t.Fatal("single-value union reported no change")
	}
	if d.Size() != 2 || d.Min() != 3 || d.Max() != 8 {
		t.Fatalf("single-value union wrong: %v", d)
	}
	// Unioning a subset back in is a no-op.
	if d.Union(o) {
		t.Fatal("re-union of subset reported a change")
	}
}

func TestDomainUnionMergesAdjacentIntervals(t *testing.T) {
	// Two halves of one universe that touch at 4/5: the union must be
	// the full contiguous range with correct cached bounds and size.
	d := NewDomainRange(0, 9)
	d.RemoveAbove(4) // {0..4}
	o := NewDomainRange(0, 9)
	o.RemoveBelow(5) // {5..9}
	if !d.Union(o) {
		t.Fatal("adjacent-interval union reported no change")
	}
	if !d.Equal(NewDomainRange(0, 9)) {
		t.Fatalf("adjacent-interval union wrong: %v", d)
	}
	if d.Size() != 10 || d.Min() != 0 || d.Max() != 9 {
		t.Fatalf("adjacent-interval union bounds wrong: size=%d min=%d max=%d",
			d.Size(), d.Min(), d.Max())
	}
}

func TestDomainUnionOutsideUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("union outside the universe did not panic")
		}
	}()
	d := NewDomainRange(0, 9)
	d.Union(NewDomainValues(100))
}

func TestDomainBisectSingleValue(t *testing.T) {
	d := NewDomainRange(0, 9)
	d.KeepOnly(7)
	lo, hi := d.Bisect()
	if lo.Size() != 1 || !lo.Contains(7) {
		t.Fatalf("lo half of singleton bisect wrong: %v", lo)
	}
	if !hi.Empty() {
		t.Fatalf("hi half of singleton bisect not empty: %v", hi)
	}
	// Bisect must not mutate the receiver.
	if d.Size() != 1 || !d.Contains(7) {
		t.Fatalf("bisect mutated receiver: %v", d)
	}
}

func TestDomainBisectEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bisect of empty domain did not panic")
		}
	}()
	emptied(NewDomainRange(0, 9)).Bisect()
}

func TestDomainBisectSparseHalvesPartition(t *testing.T) {
	// The midpoint (5) falls in a hole of the sparse set; each value
	// must land in exactly one half and the halves re-union to the
	// original.
	d := NewDomainValues(0, 1, 9, 10)
	lo, hi := d.Bisect()
	if lo.Size()+hi.Size() != d.Size() {
		t.Fatalf("halves do not partition: lo=%v hi=%v", lo, hi)
	}
	if lo.Max() >= hi.Min() {
		t.Fatalf("halves overlap or misorder: lo=%v hi=%v", lo, hi)
	}
	re := lo.Clone()
	re.Union(hi)
	if !re.Equal(d) {
		t.Fatalf("halves do not re-union to original: %v vs %v", re, d)
	}
}

func TestSharedBoundCASMinConcurrent(t *testing.T) {
	const (
		publishers = 8
		perWorker  = 2000
	)
	b := NewSharedBound()
	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each publisher walks its own descending sequence; the
			// global minimum over all sequences is publishers (worker
			// publishers-1 ends at offset 1 below 2*perWorker... the
			// exact floor is computed below, what matters is that Get
			// only ever decreases and ends at the true minimum.
			for i := 0; i < perWorker; i++ {
				b.Publish(2*perWorker - 2*i + w)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Concurrent readers must observe a non-increasing sequence.
		prev := math.MaxInt64
		for i := 0; i < 10000; i++ {
			cur := b.Get()
			if cur > prev {
				t.Errorf("SharedBound increased: %d -> %d", prev, cur)
				return
			}
			prev = cur
		}
	}()
	wg.Wait()
	<-done
	// Minimum published value: i = perWorker-1 gives 2*perWorker -
	// 2*(perWorker-1) + w = 2 + w, minimised at w = 0.
	if got := b.Get(); got != 2 {
		t.Fatalf("final bound %d, want 2", got)
	}
	// Publishing a larger value after the fact must not regress it.
	b.Publish(1000)
	if got := b.Get(); got != 2 {
		t.Fatalf("bound regressed to %d after stale publish", got)
	}
}

func TestSharedBoundNilSafe(t *testing.T) {
	var b *SharedBound
	if got := b.Get(); got != math.MaxInt64 {
		t.Fatalf("nil Get = %d, want MaxInt64", got)
	}
	b.Publish(5) // must not panic
	if got := b.Get(); got != math.MaxInt64 {
		t.Fatalf("nil Publish mutated bound: %d", got)
	}
}
