// Package service is the placement daemon behind cmd/placed: an
// HTTP/JSON front end that serves core.Placer solves from a canonical
// instance cache. Requests are canonicalized (internal/canon) so that
// batches differing only in module or shape order share one cache
// entry; concurrent identical requests collapse into a single solve
// (singleflight); and a bounded worker pool with a fixed-capacity
// admission queue sheds overload with 429 instead of queueing
// unbounded multi-second solves.
//
// Endpoints:
//
//	POST /v1/place    solve or serve a cached placement (X-Cache: hit|miss)
//	GET  /v1/healthz  liveness
//	GET  /v1/stats    cache/queue/solve counters
//	GET  /v1/fabrics  catalog of placeable devices
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Config sizes the daemon. Zero fields take the stated defaults.
type Config struct {
	// Workers is the number of concurrent solver goroutines (default 2).
	Workers int
	// CacheEntries is the LRU capacity in canonical instances
	// (default 1024).
	CacheEntries int
	// MaxInFlight bounds the admission queue: at most this many solves
	// may be waiting for a worker before requests are rejected with
	// 429 (default 64).
	MaxInFlight int
	// DefaultTimeout is the per-solve budget substituted when a request
	// sets none (default 10s). Requests cannot opt out: an unbounded
	// solve would pin a worker indefinitely.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-solve budget a request may ask for
	// (default 60s).
	MaxTimeout time.Duration
	// QueueGrace is the extra time a solve may spend waiting for a
	// worker before the request gives up with 504 (default 30s).
	QueueGrace time.Duration
	// DefaultStallNodes is the convergence criterion substituted when a
	// request sets none (default 2000, the experiments' default).
	DefaultStallNodes int64
	// Registry receives the daemon's counters and histograms; nil
	// allocates a private registry (still visible via /v1/stats).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 1024
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.QueueGrace <= 0 {
		c.QueueGrace = 30 * time.Second
	}
	if c.DefaultStallNodes <= 0 {
		c.DefaultStallNodes = 2000
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the placement daemon. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg    Config
	cache  *lruCache
	flight *flightGroup
	pool   *pool
	start  time.Time

	// solve computes one canonical instance; tests substitute stubs to
	// probe the concurrency machinery without real solver runs.
	solve func(*canon.Request) (*core.Result, error)

	requests  *obs.Counter
	cacheHits *obs.Counter
	solves    *obs.Counter
	dedups    *obs.Counter
	rejected  *obs.Counter
	timeouts  *obs.Counter
	errCount  *obs.Counter
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:       cfg,
		cache:     newLRU(cfg.CacheEntries),
		flight:    newFlightGroup(),
		pool:      newPool(cfg.Workers, cfg.MaxInFlight),
		start:     time.Now(),
		requests:  reg.Counter("service_requests_total"),
		cacheHits: reg.Counter("service_cache_hits_total"),
		solves:    reg.Counter("service_solves_total"),
		dedups:    reg.Counter("service_dedup_total"),
		rejected:  reg.Counter("service_rejected_total"),
		timeouts:  reg.Counter("service_timeouts_total"),
		errCount:  reg.Counter("service_solve_errors_total"),
	}
	s.solve = s.solvePlacement
	return s
}

// Close stops the worker pool after draining queued solves.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", s.handlePlace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/fabrics", s.handleFabrics)
	return mux
}

// errSolve wraps a solver failure so the handler can distinguish a bad
// instance (client error) from machinery errors.
type errSolve struct{ err error }

func (e errSolve) Error() string { return e.err.Error() }

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	reqT := s.cfg.Registry.Timer("service_request")
	defer reqT.Stop()

	creq, err := DecodeRequest(r.Body, s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	digest, err := creq.Digest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.Get(digest); ok {
		s.cacheHits.Inc()
		writePlacement(w, body, digest, true)
		return
	}
	body, leader, err := s.flight.Do(r.Context(), digest, func() ([]byte, error) {
		return s.solveAndCache(creq, digest)
	})
	switch {
	case errors.Is(err, errBusy):
		s.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, errors.New("admission queue full, retry later"))
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, errors.New("request timed out waiting for a solver"))
		return
	case err != nil:
		var se errSolve
		status := http.StatusInternalServerError
		if errors.As(err, &se) {
			// The solver rejects malformed instances (a module with no
			// feasible position at all, inconsistent options): the
			// request, not the daemon, is at fault.
			status = http.StatusUnprocessableEntity
		}
		s.errCount.Inc()
		writeError(w, status, err)
		return
	}
	if !leader {
		s.dedups.Inc()
	}
	writePlacement(w, body, digest, !leader)
}

// solveAndCache runs one canonical instance on the admission pool and
// caches the encoded response. It runs detached from any single HTTP
// request: waiters that give up do not cancel it, and its result
// serves future requests.
func (s *Server) solveAndCache(creq *canon.Request, digest canon.Digest) ([]byte, error) {
	// Double-check the cache: a request that missed it just before a
	// concurrent identical solve finished (and left the flight group)
	// becomes a fresh leader here; the entry it needs is already
	// cached, because the completed call stores the body before
	// leaving the group.
	if body, ok := s.cache.Get(digest); ok {
		return body, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(),
		s.cfg.QueueGrace+creq.Options.Timeout)
	defer cancel()
	var body []byte
	var solveErr error
	err := s.pool.Submit(ctx, func() {
		solveT := s.cfg.Registry.Timer("service_solve")
		defer solveT.Stop()
		s.solves.Inc()
		res, err := s.solve(creq)
		if err != nil {
			solveErr = errSolve{err}
			return
		}
		body, solveErr = buildResponse(digest, creq, res)
	})
	if err != nil {
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}
	s.cache.Put(digest, body)
	return body, nil
}

// solvePlacement is the production solver: materialise the fabric,
// window the region, place the canonical module set.
func (s *Server) solvePlacement(creq *canon.Request) (*core.Result, error) {
	dev, err := fabric.ByName(creq.Fabric)
	if err != nil {
		return nil, err
	}
	region := dev.FullRegion()
	if creq.Region != (grid.Rect{}) {
		region = dev.Region(creq.Region)
		if region.W() <= 0 || region.H() <= 0 {
			return nil, fmt.Errorf("region %v lies outside fabric %s", creq.Region, creq.Fabric)
		}
	}
	opts := creq.Options.Options()
	opts.Metrics = s.cfg.Registry
	return core.New(region, opts).Place(creq.Modules)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFabrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"fabrics": fabric.Catalog()})
}

// StatsResponse is the wire form of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64    `json:"uptimeSeconds"`
	Requests      int64      `json:"requests"`
	CacheHits     int64      `json:"cacheHits"`
	DedupHits     int64      `json:"dedupHits"`
	Solves        int64      `json:"solves"`
	SolveErrors   int64      `json:"solveErrors"`
	Rejected      int64      `json:"rejected"`
	Timeouts      int64      `json:"timeouts"`
	HitRatio      float64    `json:"hitRatio"`
	QueueDepth    int        `json:"queueDepth"`
	InFlight      int        `json:"inFlight"`
	Workers       int        `json:"workers"`
	MaxInFlight   int        `json:"maxInFlight"`
	Cache         CacheStats `json:"cache"`
}

// Stats snapshots the daemon counters. HitRatio counts both cache hits
// and singleflight-deduplicated requests as hits: neither ran a solve.
func (s *Server) Stats() StatsResponse {
	st := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Value(),
		CacheHits:     s.cacheHits.Value(),
		DedupHits:     s.dedups.Value(),
		Solves:        s.solves.Value(),
		SolveErrors:   s.errCount.Value(),
		Rejected:      s.rejected.Value(),
		Timeouts:      s.timeouts.Value(),
		QueueDepth:    s.pool.QueueDepth(),
		InFlight:      s.pool.InFlight(),
		Workers:       s.cfg.Workers,
		MaxInFlight:   s.cfg.MaxInFlight,
		Cache:         s.cache.Stats(),
	}
	if st.Requests > 0 {
		st.HitRatio = float64(st.CacheHits+st.DedupHits) / float64(st.Requests)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writePlacement serves a (possibly cached) placement body. The body
// bytes are identical for every request of the same canonical
// instance; the hit/miss distinction travels in the X-Cache header so
// it cannot perturb the payload.
func writePlacement(w http.ResponseWriter, body []byte, digest canon.Digest, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Placement-Digest", digest.String())
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
