// Command placer runs the design flow of Figure 2 from the shell: it
// reads a partial-region description and a module specification
// (ReCoBus-style text formats, see internal/recobus), computes an
// optimised placement, prints the floorplan, and optionally assembles
// bitstreams or writes an SVG rendering.
//
// Example:
//
//	placer -region region.spec -modules modules.spec -svg floorplan.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/recobus"
	"repro/internal/render"
)

func main() {
	var (
		regionPath  = flag.String("region", "", "partial-region description file (required)")
		modulesPath = flag.String("modules", "", "module specification file (required)")
		timeout     = flag.Duration("timeout", 10*time.Second, "optimisation budget")
		stall       = flag.Int64("stall", 2000, "stop after this many nodes without improvement")
		first       = flag.Bool("first", false, "stop at the first feasible placement")
		strategy    = flag.String("strategy", "first-fail", "branching: first-fail, largest-first, input-order")
		svgPath     = flag.String("svg", "", "write an SVG floorplan to this file")
		pngPath     = flag.String("png", "", "write a PNG floorplan to this file")
		outPath     = flag.String("out", "", "write the placement file (for checkplacement / external tools)")
		bitstreams  = flag.Bool("bitstreams", false, "assemble and summarise bitstreams")
	)
	flag.Parse()
	if *regionPath == "" || *modulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*regionPath, *modulesPath, *timeout, *stall, *first, *strategy, *svgPath, *pngPath, *outPath, *bitstreams); err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
}

func parseStrategy(s string) (core.Strategy, error) {
	for _, st := range []core.Strategy{core.StrategyFirstFail, core.StrategyLargestFirst, core.StrategyInputOrder} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func run(regionPath, modulesPath string, timeout time.Duration, stall int64, first bool, strategy, svgPath, pngPath, outPath string, bitstreams bool) error {
	regionFile, err := os.Open(regionPath)
	if err != nil {
		return err
	}
	defer regionFile.Close()
	modulesFile, err := os.Open(modulesPath)
	if err != nil {
		return err
	}
	defer modulesFile.Close()

	flow, err := recobus.LoadFlow(regionFile, modulesFile)
	if err != nil {
		return err
	}
	strat, err := parseStrategy(strategy)
	if err != nil {
		return err
	}
	res, err := flow.Place(core.Options{
		Timeout:           timeout,
		StallNodes:        stall,
		FirstSolutionOnly: first,
		Strategy:          strat,
	})
	if err != nil {
		return err
	}
	if !res.Found {
		return fmt.Errorf("no feasible placement for this module set")
	}

	fmt.Println(res)
	fmt.Println(render.PlacementsWithRuler(flow.Region, res.Placements))

	if bitstreams {
		bs, err := flow.Assemble(res)
		if err != nil {
			return err
		}
		fmt.Println("bitstreams:")
		for _, b := range bs {
			fmt.Println(" ", b)
		}
		fmt.Println("total reconfiguration time:", recobus.TotalReconfigTime(bs))
	}

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.SVG(f, flow.Region, res.Placements, 10); err != nil {
			return err
		}
		fmt.Println("wrote", svgPath)
	}
	if pngPath != "" {
		f, err := os.Create(pngPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.PNG(f, flow.Region, res.Placements, 10); err != nil {
			return err
		}
		fmt.Println("wrote", pngPath)
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := recobus.WritePlacement(f, res); err != nil {
			return err
		}
		fmt.Println("wrote", outPath)
	}
	return nil
}
