// Package rtsim plans and simulates deterministic runtime reconfigurable
// systems: a cyclic schedule of phases (module sets) executes on one
// reconfigurable region, and every phase switch streams the entering
// modules' partial bitstreams through the single configuration port.
// This is the "in-advance placement for deterministic run-time
// reconfigurable systems" setting of the paper: placements are computed
// offline, and the quality of those placements — including the use of
// design alternatives — shows up at run time as reconfiguration overhead.
//
// Two planning modes are provided. Fresh mode places every phase
// independently (best per-phase utilization, but modules shared between
// consecutive phases may move and must then be reconfigured). Persistent
// mode pins modules that survive a phase switch to their current
// position and places only the entering modules around them (no
// reconfiguration for survivors, possibly worse packing).
package rtsim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
)

// Phase is one configuration of the reconfigurable region: the modules
// that must be resident, and how long the phase runs.
type Phase struct {
	Name    string
	Modules []*module.Module
	Dwell   time.Duration
}

// Options configures planning.
type Options struct {
	// Placer configures each per-phase placement.
	Placer core.Options
	// FrameModel prices reconfiguration (zero value: DefaultFrameModel).
	FrameModel fabric.FrameModel
	// Persistent pins surviving modules across phase switches.
	Persistent bool
}

// PhasePlan is the planned execution of one phase.
type PhasePlan struct {
	Phase      Phase
	Result     *core.Result
	Entering   []string // modules configured at the switch into this phase
	Kept       []string // modules surviving in place
	SwitchTime time.Duration
}

// Timeline is the planned execution of the full schedule.
type Timeline struct {
	Plans       []PhasePlan
	TotalDwell  time.Duration
	TotalSwitch time.Duration
}

// Overhead returns the fraction of total time spent reconfiguring.
func (t *Timeline) Overhead() float64 {
	total := t.TotalDwell + t.TotalSwitch
	if total <= 0 {
		return 0
	}
	return float64(t.TotalSwitch) / float64(total)
}

// String summarises the timeline.
func (t *Timeline) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d phases, dwell %v, switch %v (%.2f%% overhead)\n",
		len(t.Plans), t.TotalDwell, t.TotalSwitch, t.Overhead()*100)
	for _, p := range t.Plans {
		fmt.Fprintf(&sb, "  %-12s switch=%8v enter=%d keep=%d util=%.1f%%\n",
			p.Phase.Name, p.SwitchTime, len(p.Entering), len(p.Kept),
			p.Result.Utilization*100)
	}
	return sb.String()
}

// placedModule tracks a resident module between phases.
type placedModule struct {
	placement core.Placement
}

// Plan computes placements and switch costs for the schedule on region.
// Phases are entered in order starting from an empty region; the region
// itself is never modified.
func Plan(region *fabric.Region, phases []Phase, opts Options) (*Timeline, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("rtsim: empty schedule")
	}
	if opts.FrameModel.FrameBytes == 0 {
		opts.FrameModel = fabric.DefaultFrameModel()
	}
	if err := opts.FrameModel.Validate(); err != nil {
		return nil, err
	}

	// Per-phase plan timings and entering/kept totals ride on the same
	// registry as the solver metrics of the per-phase placements.
	reg := opts.Placer.Metrics

	tl := &Timeline{}
	resident := map[string]placedModule{}
	for pi, ph := range phases {
		if err := validatePhase(ph); err != nil {
			return nil, fmt.Errorf("rtsim: phase %d: %w", pi, err)
		}
		var plan PhasePlan
		plan.Phase = ph
		var err error
		phaseT := reg.Timer("rtsim_phase_plan")
		if opts.Persistent {
			plan, err = planPersistent(region, ph, resident, opts)
		} else {
			plan, err = planFresh(region, ph, resident, opts)
		}
		phaseT.Stop()
		if err != nil {
			return nil, fmt.Errorf("rtsim: phase %s: %w", ph.Name, err)
		}
		reg.Counter("rtsim_phases_total").Inc()
		reg.Counter("rtsim_entering_total").Add(int64(len(plan.Entering)))
		reg.Counter("rtsim_kept_total").Add(int64(len(plan.Kept)))
		// Update residency and charge the configuration port for the
		// entering modules.
		resident = map[string]placedModule{}
		for _, p := range plan.Result.Placements {
			resident[p.Module.Name()] = placedModule{placement: p}
		}
		for _, name := range plan.Entering {
			p := resident[name].placement
			frames := opts.FrameModel.FrameCount(region, p.Bounds())
			plan.SwitchTime += opts.FrameModel.ReconfigTime(frames)
		}
		tl.TotalSwitch += plan.SwitchTime
		tl.TotalDwell += ph.Dwell
		tl.Plans = append(tl.Plans, plan)
	}
	reg.Gauge("rtsim_switch_overhead").Set(tl.Overhead())
	return tl, nil
}

func validatePhase(ph Phase) error {
	if ph.Name == "" {
		return fmt.Errorf("unnamed phase")
	}
	if len(ph.Modules) == 0 {
		return fmt.Errorf("phase %s has no modules", ph.Name)
	}
	if ph.Dwell < 0 {
		return fmt.Errorf("phase %s has negative dwell", ph.Name)
	}
	seen := map[string]bool{}
	for _, m := range ph.Modules {
		if seen[m.Name()] {
			return fmt.Errorf("phase %s: duplicate module %s", ph.Name, m.Name())
		}
		seen[m.Name()] = true
	}
	return nil
}

// planFresh places the whole phase from scratch; a surviving module only
// avoids reconfiguration if the fresh placement happens to keep its
// position and shape.
func planFresh(region *fabric.Region, ph Phase, resident map[string]placedModule, opts Options) (PhasePlan, error) {
	plan := PhasePlan{Phase: ph}
	res, err := core.New(region, opts.Placer).Place(ph.Modules)
	if err != nil {
		return plan, err
	}
	if !res.Found {
		return plan, fmt.Errorf("no feasible placement")
	}
	plan.Result = res
	for _, p := range res.Placements {
		prev, ok := resident[p.Module.Name()]
		if ok && prev.placement.At == p.At && prev.placement.ShapeIndex == p.ShapeIndex &&
			prev.placement.Shape().Equal(p.Shape()) {
			plan.Kept = append(plan.Kept, p.Module.Name())
		} else {
			plan.Entering = append(plan.Entering, p.Module.Name())
		}
	}
	return plan, nil
}

// planPersistent pins surviving modules and places only the entering
// ones on the remaining area.
func planPersistent(region *fabric.Region, ph Phase, resident map[string]placedModule, opts Options) (PhasePlan, error) {
	plan := PhasePlan{Phase: ph}
	var kept []core.Placement
	var entering []*module.Module
	for _, m := range ph.Modules {
		if prev, ok := resident[m.Name()]; ok {
			kept = append(kept, prev.placement)
			plan.Kept = append(plan.Kept, m.Name())
		} else {
			entering = append(entering, m)
			plan.Entering = append(plan.Entering, m.Name())
		}
	}

	if len(entering) == 0 {
		plan.Result = resultFromPlacements(region, kept)
		return plan, nil
	}

	// Mask the survivors' tiles as static on a cloned device and place
	// only the entering modules around them.
	masked := region.Device().Clone()
	off := region.DeviceBounds()
	for _, p := range kept {
		for _, t := range p.Tiles() {
			masked.MaskStatic(grid.RectXYWH(off.MinX+t.X, off.MinY+t.Y, 1, 1))
		}
	}
	sub := masked.Region(off)
	res, err := core.New(sub, opts.Placer).Place(entering)
	if err != nil {
		return plan, err
	}
	if !res.Found {
		return plan, fmt.Errorf("no feasible placement for entering modules")
	}
	plan.Result = resultFromPlacements(region, append(kept, res.Placements...))
	return plan, nil
}

// resultFromPlacements packages placements (already known valid on
// region) as a core.Result with recomputed metrics, and re-validates
// them defensively.
func resultFromPlacements(region *fabric.Region, ps []core.Placement) *core.Result {
	res := &core.Result{Found: true, Placements: ps}
	for _, p := range ps {
		if top := p.Top(); top > res.Height {
			res.Height = top
		}
	}
	res.Utilization = metrics.Utilization(region, res.Occupancy(region))
	return res
}
