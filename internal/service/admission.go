package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// errBusy is returned by pool.Submit when the admission queue is full.
// The HTTP layer maps it to 429 Too Many Requests: under overload the
// daemon sheds load immediately instead of building an unbounded
// backlog of multi-second solves.
var errBusy = errors.New("service: admission queue full")

// pool is the bounded-concurrency admission path: a fixed number of
// worker goroutines drain a fixed-capacity job queue. Admission is
// non-blocking — a request either takes a queue slot or is rejected
// with errBusy — and a job whose context expires while queued is
// skipped, so dead clients cannot occupy workers.
type pool struct {
	jobs    chan *poolJob
	queued  atomic.Int64
	running atomic.Int64
	closing sync.Once
	wg      sync.WaitGroup
}

type poolJob struct {
	ctx  context.Context
	run  func()
	done chan struct{} // closed once run finished or the job was skipped
	ran  bool
}

// newPool starts workers goroutines behind a queue of maxInFlight
// slots (minimums 1 and 1).
func newPool(workers, maxInFlight int) *pool {
	if workers < 1 {
		workers = 1
	}
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	p := &pool{jobs: make(chan *poolJob, maxInFlight)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		if j.ctx.Err() == nil {
			p.running.Add(1)
			j.run()
			j.ran = true
			p.running.Add(-1)
		}
		close(j.done)
	}
}

// Submit enqueues fn and waits for it to finish. It returns errBusy
// when the queue is full, ctx.Err() when the context expires before
// fn completed, and nil once fn has run.
func (p *pool) Submit(ctx context.Context, fn func()) error {
	j := &poolJob{ctx: ctx, run: fn, done: make(chan struct{})}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
	default:
		return errBusy
	}
	select {
	case <-j.done:
		if !j.ran {
			return ctx.Err()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth returns the number of jobs waiting for a worker.
func (p *pool) QueueDepth() int { return int(p.queued.Load()) }

// InFlight returns the number of jobs currently executing.
func (p *pool) InFlight() int { return int(p.running.Load()) }

// Close stops the workers after the queued jobs drain. Submit must not
// be called after Close.
func (p *pool) Close() {
	p.closing.Do(func() { close(p.jobs) })
	p.wg.Wait()
}
