package workload

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

func TestDefaultsMatchPaper(t *testing.T) {
	c := Config{}.Defaults()
	if c.NumModules != 30 || c.CLBMin != 20 || c.CLBMax != 100 ||
		c.BRAMMin != 0 || c.BRAMMax != 4 || c.Alternatives != 4 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumModules: -1, CLBMax: 10, Alternatives: 1},
		{NumModules: 1, CLBMin: 5, CLBMax: 2, Alternatives: 1},
		{NumModules: 1, CLBMax: 10, BRAMMin: 3, BRAMMax: 1, Alternatives: 1},
		{NumModules: 1, CLBMax: 10, Alternatives: -2},
		{NumModules: 1, CLBMax: 10, DSPMax: -1, Alternatives: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestGenerateRespectsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mods, err := Generate(Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 30 {
		t.Fatalf("len = %d", len(mods))
	}
	for _, m := range mods {
		h := m.Shape(0).Histogram()
		if h[fabric.CLB] < 20 || h[fabric.CLB] > 100 {
			t.Errorf("%s CLB = %d outside [20,100]", m.Name(), h[fabric.CLB])
		}
		if h[fabric.BRAM] > 4 {
			t.Errorf("%s BRAM = %d > 4", m.Name(), h[fabric.BRAM])
		}
		if m.NumShapes() > 4 || m.NumShapes() < 1 {
			t.Errorf("%s has %d shapes", m.Name(), m.NumShapes())
		}
		// All alternatives of a module consume the same resources.
		for _, s := range m.Shapes() {
			if s.Histogram() != h {
				t.Errorf("%s alternatives differ in resources", m.Name())
			}
		}
	}
}

func TestGenerateFourAlternativesTypical(t *testing.T) {
	// The paper's workload: 30 modules yield 120 shapes. Allow a small
	// shortfall for symmetric modules whose rotation collapses.
	rng := rand.New(rand.NewSource(2))
	mods := MustGenerate(Config{}, rng)
	total := 0
	for _, m := range mods {
		total += m.NumShapes()
	}
	if total < 110 || total > 120 {
		t.Fatalf("total shapes = %d, want ≈120", total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{}, rand.New(rand.NewSource(5)))
	b := MustGenerate(Config{}, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i].Shape(0).Key() != b[i].Shape(0).Key() {
			t.Fatalf("module %d differs across same-seed runs", i)
		}
	}
	c := MustGenerate(Config{}, rand.New(rand.NewSource(6)))
	same := true
	for i := range a {
		if a[i].Shape(0).Key() != c[i].Shape(0).Key() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical batch")
	}
}

func TestFirstShapesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mods := MustGenerate(Config{}, rng)
	single := FirstShapesOnly(mods)
	for i := range single {
		if single[i].NumShapes() != 1 {
			t.Fatalf("module %d kept %d shapes", i, single[i].NumShapes())
		}
		if !single[i].Shape(0).Equal(mods[i].Shape(0)) {
			t.Fatalf("module %d primary shape changed", i)
		}
		if mods[i].NumShapes() == 1 {
			continue
		}
	}
	// Originals untouched.
	for i := range mods {
		if mods[i].NumShapes() == 1 {
			continue
		}
		if mods[i].NumShapes() < 2 {
			t.Fatal("original batch mutated")
		}
	}
}

func TestTotalDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mods := MustGenerate(Config{NumModules: 5}, rng)
	want := 0
	for _, m := range mods {
		want += m.Shape(0).Size()
	}
	if got := TotalDemand(mods); got != want {
		t.Fatalf("TotalDemand = %d, want %d", got, want)
	}
}

func TestGenerateWithDSP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mods := MustGenerate(Config{NumModules: 20, DSPMax: 3}, rng)
	anyDSP := false
	for _, m := range mods {
		if m.Shape(0).Histogram()[fabric.DSP] > 0 {
			anyDSP = true
		}
	}
	if !anyDSP {
		t.Fatal("DSPMax=3 produced no DSP demand in 20 modules")
	}
}

func TestGenerateNoRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mods := MustGenerate(Config{NumModules: 5, NoRotation: true}, rng)
	for _, m := range mods {
		for i, s := range m.Shapes() {
			for j, o := range m.Shapes() {
				if i < j && s.Transform180().Equal(o) {
					t.Fatalf("%s shapes %d/%d are rotations", m.Name(), i, j)
				}
			}
		}
	}
}
