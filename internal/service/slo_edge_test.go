package service

import (
	"testing"
	"time"
)

// TestSLOWindowEdges is the table-driven edge suite for the rolling
// bucket ring: exact window boundaries (a request n-1 seconds old is
// the last one a n-second window sees), full 3600-bucket wrap-around,
// empty windows, clamping, and the latency-objective boundary.
func TestSLOWindowEdges(t *testing.T) {
	type obs struct {
		atSec  int64 // offset from the test epoch
		dur    time.Duration
		status int
	}
	const epoch = int64(3_000_000)
	objective := 100 * time.Millisecond

	cases := []struct {
		name     string
		observe  []obs
		readAt   int64 // offset from epoch
		window   time.Duration
		want     SLOWindowStats
		wantVacr bool // expect the vacuous ratios (1, 1)
	}{
		{
			name:     "empty tracker is vacuously attained",
			readAt:   0,
			window:   time.Minute,
			want:     SLOWindowStats{Availability: 1, LatencyAttainment: 1},
			wantVacr: true,
		},
		{
			name:    "request at the trailing edge is still counted",
			observe: []obs{{atSec: 0, dur: time.Millisecond, status: 200}},
			// A 60s window read at epoch+59 spans seconds [epoch, epoch+59].
			readAt: 59,
			window: time.Minute,
			want:   SLOWindowStats{Requests: 1, Available: 1, WithinLatency: 1, Availability: 1, LatencyAttainment: 1},
		},
		{
			name:     "request one second past the trailing edge is dropped",
			observe:  []obs{{atSec: 0, dur: time.Millisecond, status: 200}},
			readAt:   60,
			window:   time.Minute,
			want:     SLOWindowStats{Availability: 1, LatencyAttainment: 1},
			wantVacr: true,
		},
		{
			name:    "hour window sees its own trailing edge",
			observe: []obs{{atSec: 0, dur: time.Millisecond, status: 200}},
			readAt:  sloBucketSeconds - 1,
			window:  time.Hour,
			want:    SLOWindowStats{Requests: 1, Available: 1, WithinLatency: 1, Availability: 1, LatencyAttainment: 1},
		},
		{
			name: "full ring wrap does not resurrect stale buckets",
			observe: []obs{
				{atSec: 0, dur: time.Millisecond, status: 200},
				// Exactly one ring period later this lands in the SAME
				// slot; the stale counts must be overwritten, not added.
				{atSec: sloBucketSeconds, dur: time.Millisecond, status: 500},
			},
			readAt: sloBucketSeconds,
			window: time.Hour,
			want:   SLOWindowStats{Requests: 1, Available: 0, WithinLatency: 0, Availability: 0, LatencyAttainment: 0},
		},
		{
			name: "sub-second window clamps to one bucket",
			observe: []obs{
				{atSec: 0, dur: time.Millisecond, status: 200},
				{atSec: 1, dur: time.Millisecond, status: 500},
			},
			readAt: 1,
			window: time.Nanosecond,
			want:   SLOWindowStats{Requests: 1, Available: 0, WithinLatency: 0, Availability: 0, LatencyAttainment: 0},
		},
		{
			name:     "oversized window clamps to the ring depth",
			observe:  []obs{{atSec: 0, dur: time.Millisecond, status: 200}},
			readAt:   sloBucketSeconds, // one second beyond the clamped horizon
			window:   24 * time.Hour,
			want:     SLOWindowStats{Availability: 1, LatencyAttainment: 1},
			wantVacr: true,
		},
		{
			name: "latency exactly at the objective counts as fast",
			observe: []obs{
				{atSec: 0, dur: objective, status: 200},
				{atSec: 0, dur: objective + time.Nanosecond, status: 200},
			},
			readAt: 0,
			window: time.Minute,
			want:   SLOWindowStats{Requests: 2, Available: 2, WithinLatency: 1, Availability: 1, LatencyAttainment: 0.5},
		},
		{
			name: "5xx is neither available nor fast; a prompt 4xx is both",
			observe: []obs{
				{atSec: 0, dur: time.Millisecond, status: 503},
				{atSec: 0, dur: time.Millisecond, status: 429},
				{atSec: 0, dur: time.Millisecond, status: 200},
			},
			readAt: 0,
			window: time.Minute,
			want:   SLOWindowStats{Requests: 3, Available: 2, WithinLatency: 2, Availability: 2.0 / 3, LatencyAttainment: 2.0 / 3},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{}
			tr := newSLOTracker(objective)
			tr.now = clk.now
			for _, o := range tc.observe {
				clk.sec = epoch + o.atSec
				tr.Observe(o.dur, o.status)
			}
			clk.sec = epoch + tc.readAt
			got := tr.Window(tc.window)
			if got != tc.want {
				t.Fatalf("window: got %+v, want %+v", got, tc.want)
			}
			if tc.wantVacr && (got.Requests != 0 || got.Availability != 1 || got.LatencyAttainment != 1) {
				t.Fatalf("expected vacuous attainment, got %+v", got)
			}
		})
	}
}

// TestSLOBucketReuseWithinRing: two requests in the same second share
// a bucket; a request one second later starts a fresh one, and both
// remain visible inside the window.
func TestSLOBucketReuseWithinRing(t *testing.T) {
	clk := &fakeClock{sec: 4_000_000}
	tr := newSLOTracker(100 * time.Millisecond)
	tr.now = clk.now

	tr.Observe(time.Millisecond, 200)
	tr.Observe(time.Millisecond, 200)
	clk.sec++
	tr.Observe(time.Millisecond, 200)

	if w := tr.Window(time.Minute); w.Requests != 3 || w.Available != 3 {
		t.Fatalf("adjacent buckets: %+v", w)
	}
	if w := tr.Window(time.Second); w.Requests != 1 {
		t.Fatalf("1s window spans more than the current bucket: %+v", w)
	}
}
