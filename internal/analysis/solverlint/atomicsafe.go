package solverlint

import (
	"go/ast"
	"go/types"
)

// AtomicSafe enforces all-or-nothing atomics: once any access to a
// variable goes through sync/atomic (atomic.LoadInt64(&s.n),
// atomic.AddInt64(&s.n, 1), ...), every access must — a plain read
// races with the atomic writers, and a plain write tears under the
// atomic readers. The typed atomic wrappers (atomic.Int64 and
// friends) make this unrepresentable, which is why the serving path
// prefers them; this analyzer guards the residual function-based
// sites.
//
// Mechanics: the package is scanned for &x arguments of sync/atomic
// calls; the addressed variables (struct fields or package-level/local
// vars, resolved through the type checker) form the atomic set. Any
// other reference to a variable in that set, outside an &x argument
// of a sync/atomic call, is reported.
var AtomicSafe = &Analyzer{
	Name: "atomicsafe",
	Doc:  "a variable accessed via sync/atomic anywhere may never be read or written plainly elsewhere",
	Run:  runAtomicSafe,
}

func runAtomicSafe(pass *Pass) error {
	atomicVars := map[*types.Var]bool{}
	inAtomicArg := map[ast.Node]bool{}

	// Pass 1: collect the variables addressed by sync/atomic calls and
	// remember the exact reference nodes so pass 2 skips them.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if v := referencedVar(pass, un.X); v != nil {
					atomicVars[v] = true
					markRefs(un.X, inAtomicArg)
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: any other reference to an atomic variable is a plain
	// (racy) access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if inAtomicArg[n] {
				return true
			}
			var v *types.Var
			var name string
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if inAtomicArg[n] {
					return true
				}
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if f, ok := sel.Obj().(*types.Var); ok && atomicVars[f] {
						v, name = f, types.ExprString(n)
					}
				}
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && atomicVars[obj] {
					v, name = obj, n.Name
				}
			}
			if v != nil {
				pass.Reportf(n.Pos(),
					"plain access to %s, which is accessed with sync/atomic elsewhere in this package: this read/write races with the atomic sites (use sync/atomic here too, or an atomic.%s field)",
					name, suggestedAtomicType(v.Type()))
				return false
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call targets the sync/atomic package's
// function API.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// referencedVar resolves expr (the operand of an & argument) to the
// variable it addresses: a struct field for selector expressions, the
// object itself for identifiers.
func referencedVar(pass *Pass, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if f, ok := sel.Obj().(*types.Var); ok {
				return f
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// markRefs records expr and every identifier/selector inside it as
// part of an atomic call argument.
func markRefs(expr ast.Expr, marked map[ast.Node]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if n != nil {
			marked[n] = true
		}
		return true
	})
}

// suggestedAtomicType names the typed atomic wrapper matching t, for
// the diagnostic's fix hint.
func suggestedAtomicType(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint:
		return "Uint64"
	case types.Bool:
		return "Bool"
	case types.UnsafePointer:
		return "Pointer"
	}
	return "Value"
}
