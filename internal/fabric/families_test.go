package fabric

import (
	"testing"

	"repro/internal/grid"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", Spec{Name: "v", W: 8, H: 8}, true},
		{"zero size", Spec{Name: "z", W: 0, H: 8}, false},
		{"bram out of range", Spec{Name: "b", W: 8, H: 8, BRAMColumns: []int{8}}, false},
		{"dsp negative", Spec{Name: "d", W: 8, H: 8, DSPColumns: []int{-1}}, false},
		{"clock out of range", Spec{Name: "c", W: 8, H: 8, ClockColumns: []int{9}}, false},
		{"negative period", Spec{Name: "p", W: 8, H: 8, ClockRowPeriod: -1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate err = %v, want ok=%v", c.name, err, c.ok)
		}
		if _, err := c.spec.Build(); (err == nil) != c.ok {
			t.Errorf("%s: Build err mismatch", c.name)
		}
	}
}

func TestSpecBuildPriorities(t *testing.T) {
	spec := Spec{
		Name: "prio", W: 6, H: 4,
		BRAMColumns:  []int{2},
		DSPColumns:   []int{2, 3}, // column 2 contested: BRAM wins over DSP
		ClockColumns: []int{3},    // column 3 contested: clock wins over DSP
		IOBRing:      true,
	}
	d := spec.MustBuild()
	if d.KindAt(2, 0) != BRAM {
		t.Errorf("col 2 = %v, want BRAM", d.KindAt(2, 0))
	}
	if d.KindAt(3, 0) != Clock {
		t.Errorf("col 3 = %v, want Clock", d.KindAt(3, 0))
	}
	if d.KindAt(0, 0) != IOB || d.KindAt(5, 0) != IOB {
		t.Error("IOB ring missing")
	}
	if d.KindAt(1, 0) != CLB {
		t.Error("base column not CLB")
	}
}

func TestSpecClockRowInterruption(t *testing.T) {
	spec := Spec{
		Name: "clkrows", W: 4, H: 8,
		BRAMColumns:    []int{1},
		DSPColumns:     []int{2},
		ClockRowPeriod: 4,
	}
	d := spec.MustBuild()
	// Rows 3 and 7 inside BRAM/DSP columns become clock tiles.
	for _, y := range []int{3, 7} {
		if d.KindAt(1, y) != Clock || d.KindAt(2, y) != Clock {
			t.Fatalf("row %d not interrupted: %v/%v", y, d.KindAt(1, y), d.KindAt(2, y))
		}
		// CLB columns are unaffected.
		if d.KindAt(0, y) != CLB {
			t.Fatalf("CLB column interrupted at row %d", y)
		}
	}
	if d.KindAt(1, 0) != BRAM || d.KindAt(2, 2) != DSP {
		t.Fatal("non-interrupted rows lost their kind")
	}
}

func TestHomogeneous(t *testing.T) {
	d := Homogeneous(10, 5)
	h := d.Histogram()
	if h[CLB] != 50 || h.Total() != 50 {
		t.Fatalf("homogeneous histogram: %v", h)
	}
}

func TestVirtexLikeStructure(t *testing.T) {
	d := VirtexLike(48, 16)
	h := d.Histogram()
	if h[BRAM] == 0 || h[DSP] == 0 || h[Clock] == 0 || h[IOB] == 0 {
		t.Fatalf("VirtexLike missing resource kinds: %v", h)
	}
	if h[CLB] <= h[BRAM] {
		t.Fatalf("CLB should dominate: %v", h)
	}
	// Regular alignment: BRAM columns are uniform top to bottom.
	for x := 0; x < d.W(); x++ {
		k0 := d.KindAt(x, 0)
		for y := 1; y < d.H(); y++ {
			if d.KindAt(x, y) != k0 {
				t.Fatalf("VirtexLike column %d not uniform", x)
			}
		}
	}
}

func TestIrregularVirtexLikeStructure(t *testing.T) {
	d := IrregularVirtexLike(48, 32, 1)
	h := d.Histogram()
	if h[BRAM] == 0 || h[DSP] == 0 {
		t.Fatalf("irregular device missing dedicated resources: %v", h)
	}
	// Clock-row interruption: some BRAM column must contain a clock tile.
	interrupted := false
	for x := 0; x < d.W() && !interrupted; x++ {
		hasBRAM, hasClock := false, false
		for y := 0; y < d.H(); y++ {
			switch d.KindAt(x, y) {
			case BRAM:
				hasBRAM = true
			case Clock:
				hasClock = true
			}
		}
		if hasBRAM && hasClock {
			interrupted = true
		}
	}
	if !interrupted {
		t.Fatal("no clock-interrupted BRAM column found")
	}
}

func TestIrregularVirtexLikeDeterministic(t *testing.T) {
	a := IrregularVirtexLike(48, 16, 7)
	b := IrregularVirtexLike(48, 16, 7)
	if a.String() != b.String() {
		t.Fatal("same seed produced different devices")
	}
	c := IrregularVirtexLike(48, 16, 8)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical devices (suspicious)")
	}
}

func TestIrregularDiffersFromRegular(t *testing.T) {
	reg := VirtexLike(48, 16)
	irr := IrregularVirtexLike(48, 16, 3)
	if reg.String() == irr.String() {
		t.Fatal("irregular fabric identical to regular fabric")
	}
	_ = grid.Pt(0, 0) // keep grid import for the helper below
}

func TestCatalog(t *testing.T) {
	names := Catalog()
	if len(names) < 4 {
		t.Fatalf("catalog too small: %v", names)
	}
	for _, n := range names {
		dev, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if dev.W() <= 0 || dev.H() <= 0 {
			t.Fatalf("%s: degenerate device", n)
		}
		// Fresh instance each call: masking one must not affect the next.
		dev.MaskStatic(dev.Bounds())
		dev2, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if dev2.Histogram()[Static] == dev2.Histogram().Total() {
			t.Fatalf("%s: catalog returned shared device state", n)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestCatalogVirtex4MatchesTableI(t *testing.T) {
	dev, err := ByName("virtex4-like-72x60")
	if err != nil {
		t.Fatal(err)
	}
	if dev.W() != 72 || dev.H() != 60 {
		t.Fatalf("size %dx%d", dev.W(), dev.H())
	}
	if dev.KindAt(6, 0) != BRAM || dev.KindAt(17, 0) != DSP || dev.KindAt(29, 0) != Clock {
		t.Fatal("column layout wrong")
	}
	if dev.KindAt(6, 15) != Clock {
		t.Fatal("clock-row interruption missing")
	}
}
