package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func homoRegion(w, h int) *fabric.Region {
	return fabric.Homogeneous(w, h).FullRegion()
}

func TestUtilizationEmpty(t *testing.T) {
	r := homoRegion(4, 4)
	occ := grid.NewBitmap(4, 4)
	if got := Utilization(r, occ); got != 0 {
		t.Fatalf("empty utilization = %v", got)
	}
	if got := OverallUtilization(r, occ); got != 0 {
		t.Fatalf("empty overall = %v", got)
	}
}

func TestUtilizationSpan(t *testing.T) {
	r := homoRegion(4, 10)
	occ := grid.NewBitmap(4, 10)
	// Fill rows 0 and 1 fully: extent is 2 rows, 8 tiles, all occupied.
	occ.SetRect(grid.RectXYWH(0, 0, 4, 2), true)
	if got := Utilization(r, occ); got != 1.0 {
		t.Fatalf("full-extent utilization = %v, want 1", got)
	}
	// Add one tile on row 4: extent is 5 rows = 20 tiles, 9 occupied.
	occ.Set(0, 4, true)
	want := 9.0 / 20.0
	if got := Utilization(r, occ); math.Abs(got-want) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", got, want)
	}
	// Overall uses all 40 tiles.
	if got := OverallUtilization(r, occ); math.Abs(got-9.0/40.0) > 1e-12 {
		t.Fatalf("overall = %v", got)
	}
}

func TestUtilizationIgnoresUnusableTiles(t *testing.T) {
	// Region with a static column: denominator counts only placeable.
	dev := fabric.Homogeneous(4, 4)
	dev.MaskStatic(grid.RectXYWH(0, 0, 1, 4))
	r := dev.FullRegion()
	occ := grid.NewBitmap(4, 4)
	occ.SetRect(grid.RectXYWH(1, 0, 3, 1), true) // fill usable part of row 0
	if got := Utilization(r, occ); got != 1.0 {
		t.Fatalf("utilization = %v, want 1 (static excluded)", got)
	}
}

func TestFreeInSpan(t *testing.T) {
	r := homoRegion(3, 5)
	occ := grid.NewBitmap(3, 5)
	occ.Set(0, 0, true)
	occ.Set(2, 1, true)
	// Extent rows 0..1: 6 usable, 2 occupied.
	if got := FreeInSpan(r, occ); got != 4 {
		t.Fatalf("FreeInSpan = %d, want 4", got)
	}
	if got := FreeInSpan(r, grid.NewBitmap(3, 5)); got != 0 {
		t.Fatalf("empty FreeInSpan = %d", got)
	}
}

func TestLargestFreeRect(t *testing.T) {
	r := homoRegion(4, 4)
	occ := grid.NewBitmap(4, 4)
	// Occupy the left 2 columns of rows 0..2; top occupied row = 2.
	occ.SetRect(grid.RectXYWH(0, 0, 2, 3), true)
	// Free space within extent: columns 2..3, rows 0..2 = 2x3 = 6.
	if got := LargestFreeRect(r, occ); got != 6 {
		t.Fatalf("LargestFreeRect = %d, want 6", got)
	}
}

func TestLargestFreeRectScattered(t *testing.T) {
	r := homoRegion(3, 3)
	occ := grid.NewBitmap(3, 3)
	// Checkerboard occupation of rows 0..2.
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if (x+y)%2 == 0 {
				occ.Set(x, y, true)
			}
		}
	}
	if got := LargestFreeRect(r, occ); got != 1 {
		t.Fatalf("LargestFreeRect = %d, want 1", got)
	}
	frag := Fragmentation(r, occ)
	if frag <= 0.5 {
		t.Fatalf("checkerboard fragmentation = %v, want high", frag)
	}
}

func TestFragmentationSolid(t *testing.T) {
	r := homoRegion(4, 4)
	occ := grid.NewBitmap(4, 4)
	occ.SetRect(grid.RectXYWH(0, 0, 2, 2), true)
	// Free space in extent: columns 2..3 rows 0..1 = one 2x2 rect.
	if got := Fragmentation(r, occ); got != 0 {
		t.Fatalf("solid free space fragmentation = %v, want 0", got)
	}
	// Full occupation: no free space.
	occ.SetRect(grid.RectXYWH(0, 0, 4, 2), true)
	if got := Fragmentation(r, occ); got != 0 {
		t.Fatalf("no-free fragmentation = %v, want 0", got)
	}
}

func TestLargestInHistogramKnown(t *testing.T) {
	cases := []struct {
		h    []int
		want int
	}{
		{[]int{2, 1, 5, 6, 2, 3}, 10},
		{[]int{1, 1, 1, 1}, 4},
		{[]int{4}, 4},
		{[]int{}, 0},
		{[]int{0, 0}, 0},
		{[]int{3, 0, 3}, 3},
	}
	for _, c := range cases {
		if got := largestInHistogram(c.h); got != c.want {
			t.Errorf("largestInHistogram(%v) = %d, want %d", c.h, got, c.want)
		}
	}
}

// Property: the largest free rectangle never exceeds the free tile count
// and is positive whenever a free tile exists in the span.
func TestLargestFreeRectBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := homoRegion(6, 6)
		occ := grid.NewBitmap(6, 6)
		v := seed
		for i := 0; i < int(n%24); i++ {
			v = v*6364136223846793005 + 1442695040888963407
			x := int(uint64(v)>>33) % 6
			y := int(uint64(v)>>50) % 6
			occ.Set(x, y, true)
		}
		free := FreeInSpan(r, occ)
		rect := LargestFreeRect(r, occ)
		if rect > free {
			return false
		}
		if free > 0 && rect == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("Summary = %+v", s)
	}
	// Sample stddev of this classic dataset is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.CI95() != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.StdDev != 0 || one.CI95() != 0 {
		t.Fatalf("single summary = %+v", one)
	}
}

func TestBusDistance(t *testing.T) {
	// Module rows [2,5) vs bus at 0: distance 2. Crossing bus: 0.
	if got := BusDistance([][2]int{{2, 5}}, []int{0}); got != 2 {
		t.Fatalf("BusDistance = %v, want 2", got)
	}
	if got := BusDistance([][2]int{{2, 5}}, []int{3}); got != 0 {
		t.Fatalf("crossing BusDistance = %v, want 0", got)
	}
	if got := BusDistance([][2]int{{2, 5}}, []int{8}); got != 4 {
		t.Fatalf("above BusDistance = %v, want 4 (8 - 4)", got)
	}
	// Nearest of several buses wins; mean over modules. Span [0,2) vs
	// bus 3: distance 3-1=2; span [6,8) vs bus 3: 6-3=3; mean 2.5.
	if got := BusDistance([][2]int{{0, 2}, {6, 8}}, []int{3}); got != 2.5 {
		t.Fatalf("mean BusDistance = %v, want 2.5", got)
	}
	if BusDistance(nil, []int{1}) != 0 || BusDistance([][2]int{{0, 1}}, nil) != 0 {
		t.Fatal("empty inputs should be 0")
	}
}

func TestBusDistanceEdges(t *testing.T) {
	// Exactly abutting: span [2,5) covers rows 2..4. A bus at 5 is the
	// first row above the module — distance 1, not 0. Likewise a bus at
	// 1 just below. Buses at the boundary rows 2 and 4 cross: 0.
	if got := BusDistance([][2]int{{2, 5}}, []int{5}); got != 1 {
		t.Errorf("bus abutting above = %v, want 1", got)
	}
	if got := BusDistance([][2]int{{2, 5}}, []int{1}); got != 1 {
		t.Errorf("bus abutting below = %v, want 1", got)
	}
	if got := BusDistance([][2]int{{2, 5}}, []int{2}); got != 0 {
		t.Errorf("bus on bottom row = %v, want 0", got)
	}
	if got := BusDistance([][2]int{{2, 5}}, []int{4}); got != 0 {
		t.Errorf("bus on top row = %v, want 0", got)
	}

	// Single-row span [3,4): only row 3 crosses.
	if got := BusDistance([][2]int{{3, 4}}, []int{3}); got != 0 {
		t.Errorf("single-row crossing = %v, want 0", got)
	}
	if got := BusDistance([][2]int{{3, 4}}, []int{0, 7}); got != 3 {
		t.Errorf("single-row distance = %v, want 3", got)
	}

	// Unsorted bus rows: the nearest must win regardless of order.
	if got := BusDistance([][2]int{{10, 12}}, []int{0, 30, 13, 2}); got != 2 {
		t.Errorf("unsorted buses = %v, want 2 (13 - 11)", got)
	}
	if got := BusDistance([][2]int{{10, 12}}, []int{30, 11, 0}); got != 0 {
		t.Errorf("unsorted crossing = %v, want 0", got)
	}
}
