// Command regionplan allocates a reconfigurable region on a device for
// a module set: the design-time step preceding module placement. It
// prints the winning region, its resource inventory, and the
// feasibility placement.
//
// Example:
//
//	genmodules -n 6 -clbmin 10 -clbmax 30 > modules.spec
//	regionplan -device virtex4-like-72x60 -modules modules.spec
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/recobus"
	"repro/internal/regionplan"
	"repro/internal/render"
)

func main() {
	var (
		device      = flag.String("device", "virtex4-like-72x60", "predefined device name")
		modulesPath = flag.String("modules", "", "module specification file (required)")
		step        = flag.Int("step", 4, "candidate grid step")
		attempts    = flag.Int("attempts", 300, "max placement attempts")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-candidate budget")
	)
	flag.Parse()
	if *modulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*device, *modulesPath, *step, *attempts, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "regionplan:", err)
		os.Exit(1)
	}
}

func run(device, modulesPath string, step, attempts int, timeout time.Duration) error {
	dev, err := fabric.ByName(device)
	if err != nil {
		return err
	}
	f, err := os.Open(modulesPath)
	if err != nil {
		return err
	}
	defer f.Close()
	mods, err := recobus.ParseModules(f)
	if err != nil {
		return err
	}

	best, tried, err := regionplan.Plan(dev, mods, regionplan.Options{
		Step:        step,
		MaxAttempts: attempts,
		Placer:      core.Options{Timeout: timeout},
	})
	if err != nil {
		return fmt.Errorf("%w (%d candidates placement-checked)", err, len(tried))
	}

	region := dev.Region(best.Rect)
	fmt.Printf("device:      %s (%dx%d)\n", dev.Name(), dev.W(), dev.H())
	fmt.Printf("region:      %v (%d tiles, %s)\n", best.Rect, best.Rect.Area(), region.Histogram())
	fmt.Printf("checked:     %d candidates with placements\n", len(tried))
	fmt.Printf("feasibility: %v\n\n", best.Result)
	fmt.Println(render.PlacementsWithRuler(region, best.Result.Placements))
	return nil
}
