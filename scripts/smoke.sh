#!/bin/sh
# smoke.sh — end-to-end smoke test of the placement daemon, as run by
# the CI "smoke" job (and `make smoke` locally): build cmd/placed,
# start it on the Table-I fabric's catalog, place the committed smoke
# request twice and require a cache miss then a byte-identical cache
# hit, check liveness, and shut down cleanly.
set -eu

PORT="${PORT:-18723}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
WORKDIR="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/placed" ./cmd/placed

"$WORKDIR/placed" -addr "$ADDR" -workers 2 -cache-entries 64 -max-inflight 16 &
DAEMON_PID=$!

# Wait for liveness.
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke: daemon never became healthy on $BASE" >&2
        exit 1
    fi
    sleep 0.1
done
echo "smoke: daemon healthy on $BASE"

place() {
    curl -sf -D "$WORKDIR/$1.headers" -o "$WORKDIR/$1.body" \
        -H 'Content-Type: application/json' \
        --data-binary @cmd/placed/testdata/smoke-request.json \
        "$BASE/v1/place"
    grep -i '^x-cache:' "$WORKDIR/$1.headers" | tr -d '\r' | awk '{print $2}'
}

CACHE1="$(place first)"
if [ "$CACHE1" != "miss" ]; then
    echo "smoke: first placement X-Cache=$CACHE1, want miss" >&2
    exit 1
fi
CACHE2="$(place second)"
if [ "$CACHE2" != "hit" ]; then
    echo "smoke: second placement X-Cache=$CACHE2, want hit" >&2
    exit 1
fi
if ! cmp -s "$WORKDIR/first.body" "$WORKDIR/second.body"; then
    echo "smoke: cache hit is not byte-identical to the original response" >&2
    exit 1
fi
echo "smoke: miss then byte-identical hit"

curl -sf "$BASE/v1/stats"
echo

kill "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "smoke: daemon exited non-zero on SIGTERM" >&2
    exit 1
}
DAEMON_PID=""
echo "smoke: clean shutdown"
