# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# steps as `make check`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race vet fmt-check check bench fuzz clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt-check vet build race

# The observability acceptance benchmark: recording disabled must show
# the baseline allocation profile.
bench:
	$(GO) test -run xxx -bench BenchmarkSearch -benchmem ./internal/csp

# Native Go fuzzing beyond the committed corpus. Each target gets
# FUZZTIME of mutation; new crashers land in testdata/fuzz/.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDomain -fuzztime $(FUZZTIME) ./internal/csp
	$(GO) test -run xxx -fuzz FuzzPlacementValid -fuzztime $(FUZZTIME) ./internal/core

clean:
	$(GO) clean ./...
