// Command checkplacement independently verifies a placement file
// against its region and module specifications: constraints M_a (inside
// the region), M_b (resource match) and M_c (non-overlap) are checked
// tile by tile, and the placement's quality metrics are reported. Use it
// to validate placements produced by external tools — or by cmd/placer's
// -out flag.
//
// Example:
//
//	placer -region region.spec -modules modules.spec -out placement.spec
//	checkplacement -region region.spec -modules modules.spec -placement placement.spec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/recobus"
)

func main() {
	var (
		regionPath    = flag.String("region", "", "partial-region description file (required)")
		modulesPath   = flag.String("modules", "", "module specification file (required)")
		placementPath = flag.String("placement", "", "placement file (required)")
	)
	flag.Parse()
	if *regionPath == "" || *modulesPath == "" || *placementPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*regionPath, *modulesPath, *placementPath); err != nil {
		fmt.Fprintln(os.Stderr, "checkplacement: INVALID:", err)
		os.Exit(1)
	}
}

func run(regionPath, modulesPath, placementPath string) error {
	regionFile, err := os.Open(regionPath)
	if err != nil {
		return err
	}
	defer regionFile.Close()
	modulesFile, err := os.Open(modulesPath)
	if err != nil {
		return err
	}
	defer modulesFile.Close()
	flow, err := recobus.LoadFlow(regionFile, modulesFile)
	if err != nil {
		return err
	}

	placementFile, err := os.Open(placementPath)
	if err != nil {
		return err
	}
	defer placementFile.Close()
	res, err := recobus.ParsePlacement(placementFile, flow.Region, flow.Modules)
	if err != nil {
		return err
	}

	occ := res.Occupancy(flow.Region)
	fmt.Println("VALID placement")
	fmt.Printf("modules:       %d\n", len(res.Placements))
	fmt.Printf("height:        %d rows\n", res.Height)
	fmt.Printf("utilization:   %.1f%%\n", res.Utilization*100)
	fmt.Printf("fragmentation: %.2f\n", metrics.Fragmentation(flow.Region, occ))
	return nil
}
