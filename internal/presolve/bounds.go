package presolve

import (
	"repro/internal/csp"
	"repro/internal/geost"
)

// strengthenBound raises the height objective's lower bound with a
// disjunctive wide-row argument, complementing the geost capacity
// bound (which only counts tiles, not their horizontal extent): a
// shape row occupying more than half the region width cannot share a
// fabric row with any other object's wide row — two subsets of a
// W-cell row each larger than W/2 intersect by pigeonhole, violating
// non-overlap regardless of their x offsets. Every placed object
// therefore contributes at least its cheapest surviving alternative's
// wide-row count in distinct fabric rows, all below the occupied
// height.
func strengthenBound(st *csp.Store, k *geost.Kernel, height *csp.Var) error {
	total := 0
	for _, o := range k.Objects() {
		minWide := -1
		for sid := range o.Shapes {
			if !o.ShapePresent(sid) {
				continue
			}
			w := wideRows(&o.Shapes[sid], k.W())
			if minWide < 0 || w < minWide {
				minWide = w
			}
		}
		if minWide > 0 {
			total += minWide
		}
	}
	if total <= height.Min() {
		return nil
	}
	if err := st.SetMin(height, total); err != nil {
		return err
	}
	return st.Propagate()
}

// wideRows counts the rows of g occupied in more than half the
// region's width.
func wideRows(g *geost.ShapeGeom, spaceW int) int {
	counts := make([]int, g.H)
	for _, p := range g.Points {
		counts[p.Y]++
	}
	n := 0
	for _, c := range counts {
		if 2*c > spaceW {
			n++
		}
	}
	return n
}
