// The solver benchmark-regression gate. Wall-clock benchmarks are too
// noisy to gate a CI job on directly, so the gate pins the solver's
// *deterministic* effort metrics — search nodes and backtracks of a
// sequential solve, which are bit-reproducible for a fixed instance and
// configuration — exactly via a committed baseline (BENCH_solver.json)
// with a small slack, and uses wall time only as a coarse sanity bound.
//
//	go test -run TestBenchGate -benchgate .            # gate against the baseline
//	go test -run TestBenchGate -benchgate-update .     # re-baseline after an intended change
//
// CI runs the gate via scripts/benchgate.sh (`make benchgate`). A
// failure means the change regressed solver pruning: either fix it, or
// re-baseline with -benchgate-update and justify the new numbers in the
// change description.
package repro_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/module"
	"repro/internal/workload"
)

var (
	benchgateRun    = flag.Bool("benchgate", false, "run the solver benchmark-regression gate against BENCH_solver.json")
	benchgateUpdate = flag.Bool("benchgate-update", false, "rewrite BENCH_solver.json from the current build")
)

const benchGatePath = "BENCH_solver.json"

const (
	// gateEffortSlack bounds nodes and backtracks relative to the
	// baseline. The metrics are deterministic, so any slack at all is
	// generosity toward incidental changes (e.g. a reordered propagator
	// queue); real pruning regressions blow well past 10%.
	gateEffortSlack = 1.10
	// gateTimeSlack bounds wall time. CI machines vary widely, so this
	// only catches catastrophic slowdowns (an accidental O(n²) in a hot
	// path), not percentage-level drift — that is what nodes are for.
	gateTimeSlack = 5.0
)

// gateRecord is one scenario's pinned numbers in BENCH_solver.json.
type gateRecord struct {
	Name       string `json:"name"`
	Height     int    `json:"height"`
	Optimal    bool   `json:"optimal"`
	Nodes      int64  `json:"nodes"`
	Backtracks int64  `json:"backtracks"`
	NS         int64  `json:"ns"`
}

type gateFile struct {
	Comment   string       `json:"comment"`
	Scenarios []gateRecord `json:"scenarios"`
}

type gateScenario struct {
	name   string
	region *fabric.Region
	mods   []*module.Module
	opts   core.Options
}

// gateScenarios builds the pinned scenario set. All solves are
// sequential (Workers 0) with no wall-clock timeout, so nodes and
// backtracks depend only on the instance and the options — the
// convergence criterion is the experiments' StallNodes. The first two
// scenarios are the presolve before/after pair on the Table-I
// alternatives workload: the gate's headline trajectory points.
func gateScenarios() []gateScenario {
	table1 := experiments.TableIRegion()
	t1mods := workload.MustGenerate(workload.Config{}, rand.New(rand.NewSource(1)))

	fig3 := fabric.Spec{Name: "fig3", W: 24, H: 12, BRAMColumns: []int{4, 16}}
	fig3Mods := workload.MustGenerate(workload.Config{
		NumModules: 6, CLBMin: 6, CLBMax: 14, BRAMMax: 2, Alternatives: 2,
	}, rand.New(rand.NewSource(1)))

	fig5 := fabric.Spec{Name: "fig5", W: 36, H: 24, BRAMColumns: []int{5, 17, 29}, DSPColumns: []int{16}}
	fig5Mods := workload.MustGenerate(workload.Config{
		NumModules: 12, CLBMin: 8, CLBMax: 24, BRAMMax: 3, Alternatives: 4,
	}, rand.New(rand.NewSource(5)))

	on := core.Options{StallNodes: 800}
	off := on
	off.Presolve = core.PresolveOff

	return []gateScenario{
		{"table1-alternatives-presolve-off", table1, t1mods, off},
		{"table1-alternatives-presolve-on", table1, t1mods, on},
		{"table1-no-alternatives", table1, workload.FirstShapesOnly(t1mods), on},
		{"fig3-alternatives", fig3.MustBuild().FullRegion(), fig3Mods, on},
		{"fig5-alternatives", fig5.MustBuild().FullRegion(), fig5Mods, on},
	}
}

func runGateScenario(t *testing.T, sc gateScenario) gateRecord {
	t.Helper()
	start := time.Now()
	res, err := core.New(sc.region, sc.opts).Place(sc.mods)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("%s: %v", sc.name, err)
	}
	if !res.Found {
		t.Fatalf("%s: no placement found", sc.name)
	}
	if verr := res.Validate(sc.region); verr != nil {
		t.Fatalf("%s: invalid placement: %v", sc.name, verr)
	}
	return gateRecord{
		Name:       sc.name,
		Height:     res.Height,
		Optimal:    res.Optimal,
		Nodes:      res.Nodes,
		Backtracks: res.Backtracks,
		NS:         elapsed.Nanoseconds(),
	}
}

// TestBenchGate is skipped by default (a full run is a few dozen
// seconds of solving) and armed with -benchgate / -benchgate-update.
func TestBenchGate(t *testing.T) {
	if !*benchgateRun && !*benchgateUpdate {
		t.Skip("benchmark-regression gate; run with -benchgate (or -benchgate-update to re-baseline)")
	}

	var got []gateRecord
	for _, sc := range gateScenarios() {
		rec := runGateScenario(t, sc)
		t.Logf("%s: height=%d optimal=%v nodes=%d backtracks=%d elapsed=%v",
			rec.Name, rec.Height, rec.Optimal, rec.Nodes, rec.Backtracks, time.Duration(rec.NS))
		got = append(got, rec)
	}

	if *benchgateUpdate {
		out := gateFile{
			Comment:   "Solver effort baseline for scripts/benchgate.sh. Regenerate with: go test -run TestBenchGate -benchgate-update .",
			Scenarios: got,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchGatePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", benchGatePath)
		return
	}

	data, err := os.ReadFile(benchGatePath)
	if err != nil {
		t.Fatalf("missing baseline (re-create with -benchgate-update): %v", err)
	}
	var base gateFile
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("%s: %v", benchGatePath, err)
	}
	want := make(map[string]gateRecord, len(base.Scenarios))
	for _, rec := range base.Scenarios {
		want[rec.Name] = rec
	}

	var failures []string
	for _, rec := range got {
		b, ok := want[rec.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no baseline entry (re-run -benchgate-update)", rec.Name))
			continue
		}
		if rec.Height != b.Height {
			failures = append(failures, fmt.Sprintf("%s: height %d, baseline %d", rec.Name, rec.Height, b.Height))
		}
		if rec.Optimal != b.Optimal {
			failures = append(failures, fmt.Sprintf("%s: optimal=%v, baseline %v", rec.Name, rec.Optimal, b.Optimal))
		}
		if maxN := int64(float64(b.Nodes) * gateEffortSlack); rec.Nodes > maxN {
			failures = append(failures, fmt.Sprintf("%s: nodes %d exceeds baseline %d x%.2f = %d",
				rec.Name, rec.Nodes, b.Nodes, gateEffortSlack, maxN))
		}
		if maxB := int64(float64(b.Backtracks) * gateEffortSlack); rec.Backtracks > maxB {
			failures = append(failures, fmt.Sprintf("%s: backtracks %d exceeds baseline %d x%.2f = %d",
				rec.Name, rec.Backtracks, b.Backtracks, gateEffortSlack, maxB))
		}
		if maxT := int64(float64(b.NS) * gateTimeSlack); rec.NS > maxT {
			failures = append(failures, fmt.Sprintf("%s: wall time %v exceeds baseline %v x%.0f",
				rec.Name, time.Duration(rec.NS), time.Duration(b.NS), gateTimeSlack))
		}
	}
	for name := range want {
		found := false
		for _, rec := range got {
			if rec.Name == name {
				found = true
				break
			}
		}
		if !found {
			failures = append(failures, fmt.Sprintf("%s: baseline entry has no scenario (stale %s?)", name, benchGatePath))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			t.Error(f)
		}
		t.Fatalf("solver effort regressed against %s; if intended, re-baseline with -benchgate-update", benchGatePath)
	}
}
