package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/workload"
)

// The differential property behind the presolve layer: every presolve
// technique (dominance elimination, symmetry breaking, bound
// strengthening, warm start) is optimality-preserving, so an
// exhaustive solve with presolve on must prove the same optimal height
// as one with presolve off — on every instance, under every solver
// configuration. The suite sweeps several hundred seeded generated
// instances across fabric layouts (homogeneous, BRAM columns, bus
// rows) and solver knobs (strong propagation, parallel workers) and
// asserts exactly that, plus geometric validity of both placements.
//
// Only exhaustive runs (no timeout, no stall criterion) carry the
// guarantee: an anytime stop freezes whatever incumbent each search
// happened to reach, and presolve legitimately changes the trajectory.
// Instances are kept small so several hundred optimality proofs stay
// fast enough for `go test ./...` under -race in CI.

// diffArm is one fabric/options cell of the differential sweep; each
// cell runs `runs` seeded instances.
type diffArm struct {
	name string
	spec fabric.Spec
	cfg  workload.Config
	opts core.Options
	runs int
}

func diffArms() []diffArm {
	exhaustive := core.Options{}
	strong := exhaustive
	strong.StrongPropagation = true
	parallel := exhaustive
	parallel.Workers = 2
	bus := exhaustive
	bus.BusRows = []int{2, 6}
	return []diffArm{
		{
			name: "homogeneous",
			spec: fabric.Spec{Name: "d1", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 8, NoBRAM: true, Alternatives: 2},
			opts: exhaustive, runs: 60,
		},
		{
			name: "identical-modules", // symmetry groups fire here
			spec: fabric.Spec{Name: "d2", W: 9, H: 8},
			cfg:  workload.Config{NumModules: 4, CLBMin: 4, CLBMax: 4, NoBRAM: true, Alternatives: 2},
			opts: exhaustive, runs: 40,
		},
		{
			name: "bram-column",
			spec: fabric.Spec{Name: "d3", W: 12, H: 8, BRAMColumns: []int{5}},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 7, BRAMMin: 0, BRAMMax: 1, Alternatives: 3},
			opts: exhaustive, runs: 40,
		},
		{
			name: "bus-rows",
			spec: fabric.Spec{Name: "d4", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 6, NoBRAM: true, Alternatives: 2},
			opts: bus, runs: 30,
		},
		{
			name: "strong-propagation",
			spec: fabric.Spec{Name: "d5", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 8, NoBRAM: true, Alternatives: 2},
			opts: strong, runs: 30,
		},
		{
			name: "parallel",
			spec: fabric.Spec{Name: "d6", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 8, NoBRAM: true, Alternatives: 2},
			opts: parallel, runs: 30,
		},
		{
			name: "wide-rows", // the pigeonhole bound fires here
			spec: fabric.Spec{Name: "d7", W: 6, H: 10},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 8, NoBRAM: true, Alternatives: 2},
			opts: exhaustive, runs: 30,
		},
	}
}

// TestPresolveDifferential: ≥200 seeded instances, presolve on vs off,
// identical optimal objective and valid placements on both sides.
func TestPresolveDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of exhaustive solves; skipped with -short")
	}
	total := 0
	for _, arm := range diffArms() {
		total += arm.runs
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			t.Parallel()
			region := arm.spec.MustBuild().FullRegion()
			for run := 0; run < arm.runs; run++ {
				seed := int64(1000 + run)
				mods, err := workload.Generate(arm.cfg, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("seed %d: generate: %v", seed, err)
				}

				on := arm.opts
				on.Presolve = core.PresolveOn
				off := arm.opts
				off.Presolve = core.PresolveOff

				resOn, errOn := core.New(region, on).Place(mods)
				resOff, errOff := core.New(region, off).Place(mods)
				if (errOn == nil) != (errOff == nil) {
					t.Fatalf("seed %d: error mismatch: on=%v off=%v", seed, errOn, errOff)
				}
				if errOn != nil {
					continue // both rejected the instance the same way
				}
				if resOn.Found != resOff.Found {
					t.Fatalf("seed %d: feasibility mismatch: on=%v off=%v",
						seed, resOn.Found, resOff.Found)
				}
				if !resOn.Found {
					continue
				}
				if !resOn.Optimal || !resOff.Optimal {
					t.Fatalf("seed %d: exhaustive run not proven optimal: on=%v off=%v",
						seed, resOn.Optimal, resOff.Optimal)
				}
				if resOn.Height != resOff.Height {
					t.Fatalf("seed %d: optimal height diverged: presolve-on=%d presolve-off=%d",
						seed, resOn.Height, resOff.Height)
				}
				if err := resOn.Validate(region); err != nil {
					t.Fatalf("seed %d: presolve-on placement invalid: %v", seed, err)
				}
				if err := resOff.Validate(region); err != nil {
					t.Fatalf("seed %d: presolve-off placement invalid: %v", seed, err)
				}
			}
		})
	}
	if total < 200 {
		t.Fatalf("differential sweep covers %d instances, want >= 200", total)
	}
}

// TestPresolveStatsReported pins the plumbing: a presolve-on solve
// reports PresolveStats (with a warm-start height and, on an instance
// of interchangeable modules, a posted lex chain), a presolve-off
// solve reports none.
func TestPresolveStatsReported(t *testing.T) {
	region := fabric.Homogeneous(8, 6).FullRegion()
	square := func(name string) *module.Module {
		var tiles []module.Tile
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
			}
		}
		return module.MustModule(name, module.MustShape(tiles))
	}
	mods := []*module.Module{square("a"), square("b"), square("c")}

	on, err := core.New(region, core.Options{}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if on.PresolveStats == nil {
		t.Fatal("presolve-on result carries no PresolveStats")
	}
	if on.PresolveStats.LexConstraints != 2 {
		t.Fatalf("three interchangeable modules should chain 2 lex constraints, got %d",
			on.PresolveStats.LexConstraints)
	}
	if on.PresolveStats.WarmHeight < on.Height {
		t.Fatalf("warm height %d below the proven optimum %d",
			on.PresolveStats.WarmHeight, on.Height)
	}

	off, err := core.New(region, core.Options{Presolve: core.PresolveOff}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if off.PresolveStats != nil {
		t.Fatalf("presolve-off result carries PresolveStats %+v", off.PresolveStats)
	}
	if on.Height != off.Height || !on.Optimal || !off.Optimal {
		t.Fatalf("objectives diverged: on=%d (optimal=%v) off=%d (optimal=%v)",
			on.Height, on.Optimal, off.Height, off.Optimal)
	}
}
