package csp

import "fmt"

// This file implements store cloning, the foundation of the parallel
// branch-and-bound search: each worker solves on an independent deep
// copy of the constraint store, so workers share nothing mutable and
// the only cross-worker channel is the explicit incumbent bound.
//
// Cloning a store means cloning the whole constraint network, not just
// the domains: propagators hold *Var pointers (and, in the geost
// kernel, pointers into object/kernel structures), so every propagator
// must be re-targeted at the cloned variables. Propagators opt into
// cloning by implementing Clonable; a store holding any propagator that
// does not is rejected by Clone with a *CloneError rather than silently
// aliasing state across goroutines.

// CloneCtx carries the original-to-clone mapping of one Store.Clone
// call. Propagator CloneFor implementations use it to re-target the
// variables they watch; constraint kernels layered on top of csp (such
// as geost) use the memo table to clone their own shared structures
// exactly once per Clone call.
type CloneCtx struct {
	dst  *Store
	vars []*Var // indexed by original variable id
	memo map[any]any
}

// Store returns the destination store of the clone in progress.
func (c *CloneCtx) Store() *Store { return c.dst }

// Var maps a variable of the source store to its clone. Mapping is by
// variable id, so passing a variable that does not belong to the source
// store is a caller bug (and panics when the id is out of range).
func (c *CloneCtx) Var(v *Var) *Var {
	if v == nil {
		return nil
	}
	if v.id < 0 || v.id >= len(c.vars) {
		panic(fmt.Sprintf("csp: CloneCtx.Var on foreign variable %s (id %d)", v.name, v.id))
	}
	return c.vars[v.id]
}

// Vars maps a slice of source-store variables to their clones (freshly
// allocated; the input is not retained).
func (c *CloneCtx) Vars(vs []*Var) []*Var {
	out := make([]*Var, len(vs))
	for i, v := range vs {
		out[i] = c.Var(v)
	}
	return out
}

// MemoGet looks up a previously memoized clone of key (any shared
// structure cloned at most once per Clone call).
func (c *CloneCtx) MemoGet(key any) (any, bool) {
	v, ok := c.memo[key]
	return v, ok
}

// MemoPut memoizes val as the clone of key. Callers cloning cyclic
// structures must memoize the new object before descending into its
// references, so the cycle resolves through the memo table.
func (c *CloneCtx) MemoPut(key, val any) { c.memo[key] = val }

// Clonable is the propagator extension required by Store.Clone: return
// an independent copy of the propagator with every variable reference
// mapped through ctx. Immutable payload (lookup tables, shape
// geometry, capacity prefixes) may be shared between the original and
// the clone; any mutable scratch state must be duplicated. A CloneFor
// returning nil marks the propagator as not clonable after all (used by
// wrappers whose wrapped propagator is not Clonable).
type Clonable interface {
	CloneFor(ctx *CloneCtx) Propagator
}

// CloneError reports the propagator that prevented a Store.Clone.
type CloneError struct {
	// Prop is the metrics/trace name of the offending propagator.
	Prop string
}

// Error implements error.
func (e *CloneError) Error() string {
	return fmt.Sprintf("csp: propagator %s does not support Store.Clone", e.Prop)
}

// Clone returns an independent deep copy of the store: cloned domains,
// re-targeted propagators, copied propagation-queue state. The clone
// starts at trail level zero regardless of the source's level — it is a
// snapshot of the current domains, and cannot Pop below the clone
// point. Statistics (propagation counts, per-propagator runs,
// accumulated propagation time) restart at zero, and no recorder is
// installed on the clone.
//
// Clone fails with a *CloneError if any registered propagator does not
// implement Clonable (FuncProp closures, for example, cannot be
// re-targeted mechanically).
//
// Clone itself is not safe for concurrent use with mutations of the
// source store; take all clones before handing them to workers.
func (st *Store) Clone() (*Store, error) {
	dst := NewStore()
	dst.timing = st.timing
	dst.vars = make([]*Var, len(st.vars))
	ctx := &CloneCtx{dst: dst, vars: dst.vars, memo: map[any]any{}}
	for i, v := range st.vars {
		dst.vars[i] = &Var{
			id:       v.id,
			name:     v.name,
			dom:      v.dom.Clone(),
			watchers: append([]int(nil), v.watchers...),
		}
	}
	dst.props = make([]propEntry, len(st.props))
	for i := range st.props {
		c, ok := st.props[i].p.(Clonable)
		var np Propagator
		if ok {
			np = c.CloneFor(ctx)
		}
		if np == nil {
			return nil, &CloneError{Prop: st.propName(i)}
		}
		dst.props[i] = propEntry{p: np, name: st.props[i].name}
	}
	dst.queued = append([]bool(nil), st.queued...)
	dst.queue = append([]int(nil), st.queue...)
	dst.failed = st.failed
	return dst, nil
}
