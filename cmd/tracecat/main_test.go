package main

import (
	"bytes"
	"strings"
	"testing"
)

// sampleStream is two traces interleaved with solver events, the way a
// real placed -trace stream looks. Trace aaaa… is the slow one (root
// 10ms), bbbb… the fast one (root 2ms).
const sampleStream = `{"t":"2026-08-08T12:00:00Z","kind":"branch","depth":3}
{"t":"2026-08-08T12:00:00Z","kind":"span","trace":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa","span":"queue_wait","span_id":2,"parent":1,"start_ms":0.1,"dur_ms":1.0}
{"t":"2026-08-08T12:00:00Z","kind":"span","trace":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa","span":"solve","span_id":3,"parent":1,"start_ms":1.2,"dur_ms":8.0,"attrs":"nodes=42"}
{"t":"2026-08-08T12:00:00Z","kind":"prune","removed":5}
{"t":"2026-08-08T12:00:00Z","kind":"span","trace":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa","span":"request","span_id":1,"start_ms":0,"dur_ms":10.0}
{"t":"2026-08-08T12:00:01Z","kind":"span","trace":"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb","span":"cache_lookup","span_id":2,"parent":1,"start_ms":0.1,"dur_ms":0.5,"attrs":"hit=true"}
{"t":"2026-08-08T12:00:01Z","kind":"span","trace":"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb","span":"request","span_id":1,"start_ms":0,"dur_ms":2.0}
not json at all
`

func TestRunRendersWaterfallAndAggregate(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 5, strings.NewReader(sampleStream)); err != nil {
		t.Fatal(err)
	}
	s := out.String()

	// Both traces render, slowest first.
	ia := strings.Index(s, "trace aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	ib := strings.Index(s, "trace bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	if ia < 0 || ib < 0 {
		t.Fatalf("missing trace headers:\n%s", s)
	}
	if ia > ib {
		t.Fatalf("traces not sorted slowest first:\n%s", s)
	}
	if !strings.Contains(s, "10.00ms, 3 spans") {
		t.Fatalf("slow trace header wrong:\n%s", s)
	}
	if !strings.Contains(s, "nodes=42") {
		t.Fatalf("span attrs dropped:\n%s", s)
	}

	// Aggregate table: solve has 8ms self, request self = (10-9)+(2-0.5)
	// = 2.5ms, roots total 12ms.
	if !strings.Contains(s, "span") || !strings.Contains(s, "%crit") {
		t.Fatalf("aggregate header missing:\n%s", s)
	}
	for _, want := range []string{"solve", "request", "queue_wait", "cache_lookup"} {
		if !strings.Contains(s, want) {
			t.Fatalf("aggregate row %q missing:\n%s", want, s)
		}
	}
	// solve: count 1, total 8ms, self 8ms, 8/12 = 66.7% of root time.
	solveLine := lineWith(t, s, "solve")
	for _, want := range []string{"1", "8.00ms", "66.7%"} {
		if !strings.Contains(solveLine, want) {
			t.Fatalf("solve row missing %q: %q", want, solveLine)
		}
	}
}

// lineWith returns the first line whose first field is name.
func lineWith(t *testing.T, s, name string) string {
	t.Helper()
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"\t") {
			return line
		}
	}
	t.Fatalf("no line for %q in:\n%s", name, s)
	return ""
}

func TestRunLimitsTraces(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 1, strings.NewReader(sampleStream)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "trace aaaa") {
		t.Fatalf("slowest trace not rendered:\n%s", s)
	}
	if strings.Contains(s, "trace bbbb") {
		t.Fatalf("-n 1 rendered more than one trace:\n%s", s)
	}
	if !strings.Contains(s, "1 more traces not rendered") {
		t.Fatalf("truncation note missing:\n%s", s)
	}
	// The aggregate still covers every trace.
	if !strings.Contains(s, "cache_lookup") {
		t.Fatalf("aggregate dropped unrendered traces:\n%s", s)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 5, strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no span events") {
		t.Fatalf("empty input output: %q", out.String())
	}
}

func TestRunMergesMultipleReaders(t *testing.T) {
	a := `{"kind":"span","trace":"cccccccccccccccccccccccccccccccc","span":"request","span_id":1,"start_ms":0,"dur_ms":1.0}` + "\n"
	b := `{"kind":"span","trace":"cccccccccccccccccccccccccccccccc","span":"solve","span_id":2,"parent":1,"start_ms":0.2,"dur_ms":0.5}` + "\n"
	var out bytes.Buffer
	if err := run(&out, 5, strings.NewReader(a), strings.NewReader(b)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1.00ms, 2 spans") {
		t.Fatalf("readers not merged into one trace:\n%s", out.String())
	}
}

// TestBarGeometry pins the proportional bar: a span covering the whole
// trace fills the bar; a tiny one still gets one cell.
func TestBarGeometry(t *testing.T) {
	full := bar(0, 10, 10)
	if strings.Count(full, "█") != barWidth {
		t.Fatalf("full-extent bar not full: %q", full)
	}
	tiny := bar(9.99, 0.0001, 10)
	if strings.Count(tiny, "█") != 1 {
		t.Fatalf("tiny span bar: %q", tiny)
	}
	if empty := bar(0, 0, 0); strings.Count(empty, "█") != 0 {
		t.Fatalf("zero-total bar: %q", empty)
	}
}
