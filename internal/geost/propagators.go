package geost

import (
	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/grid"
)

// topLink channels between an object's placement variable and its Top
// variable: Top = y + height(shape). Bounds of Top are maintained from
// the placement domain, and placements incompatible with Top's bounds
// are pruned (this is how a branch-and-bound cap on total height reaches
// into placement domains).
type topLink struct {
	o *Object
}

// Name implements csp.Named.
func (p *topLink) Name() string { return "geost.top-link" }

func (p *topLink) Propagate(st *csp.Store) error {
	o := p.o
	lo, hi := o.k.h+1, -1
	o.Place.Domain().ForEach(func(val int) bool {
		t := o.topOf(val)
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
		return true
	})
	if err := st.SetMin(o.Top, lo); err != nil {
		return err
	}
	if err := st.SetMax(o.Top, hi); err != nil {
		return err
	}
	tLo, tHi := o.Top.Min(), o.Top.Max()
	if tLo > lo || tHi < hi {
		return st.FilterDomain(o.Place, func(val int) bool {
			t := o.topOf(val)
			return t >= tLo && t <= tHi
		})
	}
	return nil
}

// nonOverlapPair enforces that two objects do not share a tile, by
// forward checking: once one side is assigned, the other side's
// candidate placements that collide with it are pruned. A bounding-box
// test rejects most candidates before the per-tile test.
type nonOverlapPair struct {
	k    *Kernel
	a, b *Object
}

// Name implements csp.Named.
func (p *nonOverlapPair) Name() string { return "geost.non-overlap" }

func (p *nonOverlapPair) Propagate(st *csp.Store) error {
	if err := p.dir(st, p.a, p.b); err != nil {
		return err
	}
	return p.dir(st, p.b, p.a)
}

func (p *nonOverlapPair) dir(st *csp.Store, fixed, other *Object) error {
	if !fixed.Assigned() {
		return nil
	}
	sid, x, y := fixed.Placement()
	g := &fixed.Shapes[sid]
	at := grid.Pt(x, y)
	box := grid.RectXYWH(x, y, g.W, g.H)

	// Paint the fixed object into the kernel scratch bitmap; unpaint
	// before returning so the scratch stays clean for the next pair.
	scratch := p.k.scratch
	scratch.SetPoints(translate(g.Points, at), true)
	defer scratch.SetPoints(translate(g.Points, at), false)

	return st.FilterDomain(other.Place, func(val int) bool {
		osid, ox, oy := other.Decode(val)
		og := &other.Shapes[osid]
		if !box.Overlaps(grid.RectXYWH(ox, oy, og.W, og.H)) {
			return true
		}
		return !scratch.AnyAt(og.Points, grid.Pt(ox, oy))
	})
}

func translate(ps []grid.Point, d grid.Point) []grid.Point {
	out := make([]grid.Point, len(ps))
	for i, p := range ps {
		out[i] = p.Add(d)
	}
	return out
}

// heightBound implements capacity-based bound reasoning for the
// occupied-height objective: every tile of every object lies strictly
// below the height variable, so for each resource kind the capacity of
// the space's first h rows must cover the objects' total minimum
// demand. The propagator raises the height variable's lower bound to the
// smallest h whose capacity suffices — and thereby fails fast when a
// branch-and-bound cap is unachievable.
type heightBound struct {
	k      *Kernel
	height *csp.Var
	// capPrefix[h][kind] = tiles of that kind in rows < h.
	capPrefix []fabric.Histogram
}

// PostHeightObjective creates the occupied-height variable: height =
// max over objects of Top, plus capacity-based lower-bound reasoning
// against capPrefix (capPrefix[h] must hold per-kind tile counts of the
// space's first h rows; len(capPrefix) == spaceH+1). It panics on a
// capPrefix of the wrong length or a kernel without objects — both are
// modelling bugs.
func (k *Kernel) PostHeightObjective(capPrefix []fabric.Histogram) *csp.Var {
	if len(capPrefix) != k.h+1 {
		panic("geost: capPrefix must have spaceH+1 entries")
	}
	if len(k.objects) == 0 {
		panic("geost: PostHeightObjective with no objects")
	}
	height := k.st.NewVarRange("height", 0, k.h)
	tops := make([]*csp.Var, len(k.objects))
	for i, o := range k.objects {
		tops[i] = o.Top
	}
	csp.MaxOf(k.st, height, tops...)
	hb := &heightBound{k: k, height: height, capPrefix: capPrefix}
	watched := append([]*csp.Var{height}, k.PlaceVars()...)
	k.st.Post(hb, watched...)
	return height
}

// Name implements csp.Named.
func (p *heightBound) Name() string { return "geost.height-bound" }

func (p *heightBound) Propagate(st *csp.Store) error {
	var demand fabric.Histogram
	for _, o := range p.k.objects {
		d := o.MinDemand()
		for k := range demand {
			demand[k] += d[k]
		}
	}
	h := p.height.Min()
	for h <= p.k.h && !sufficient(p.capPrefix[h], demand) {
		h++
	}
	// If even the full space cannot cover the demand, SetMin empties the
	// height domain and reports inconsistency.
	return st.SetMin(p.height, h)
}

func sufficient(capacity, demand fabric.Histogram) bool {
	for k := range demand {
		if demand[k] > capacity[k] {
			return false
		}
	}
	return true
}
