package fabric

import (
	"fmt"
	"sort"
)

// catalog holds the predefined synthetic device families. Each entry is
// a constructor so callers always receive a fresh, unmasked device.
var catalog = map[string]func() *Device{
	// A small homogeneous-era part: logic only.
	"spartan-like-24x16": func() *Device { return Homogeneous(24, 16) },
	// Previous generation: dedicated columns regularly aligned.
	"virtex2-like-48x32": func() *Device { return VirtexLike(48, 32) },
	// Current generation, the paper's evaluation target: pitch-12 BRAM
	// columns each with a clean CLB gap to the right, DSP columns and a
	// clock spine adjacent-left of BRAM columns, and clock tiles
	// interrupting dedicated columns every 16 rows.
	"virtex4-like-72x60": func() *Device {
		spec := Spec{
			Name:           "virtex4-like-72x60",
			W:              72,
			H:              60,
			BRAMColumns:    []int{6, 18, 30, 42, 54, 66},
			DSPColumns:     []int{17, 53},
			ClockColumns:   []int{29},
			ClockRowPeriod: 16,
		}
		return spec.MustBuild()
	},
	// A large current-generation part with irregular column spread
	// (fixed seed: the catalog is deterministic).
	"virtex5-like-96x80": func() *Device { return IrregularVirtexLike(96, 80, 5) },
}

// Catalog returns the names of the predefined devices, sorted.
func Catalog() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName builds a fresh instance of a predefined device.
func ByName(name string) (*Device, error) {
	mk, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown device %q (catalog: %v)", name, Catalog())
	}
	return mk(), nil
}
