// Sdr places a software-defined-radio module library: demodulators that
// are swapped at run time depending on the active waveform, plus fixed
// front-end modules, all attached to a ReCoBus on row 0. The example
// sweeps the number of design alternatives per module and reports how
// utilization of the reconfigurable region responds — the paper's
// headline effect on a concrete system.
//
// Run with: go run ./examples/sdr
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/render"
)

var library = []struct {
	name   string
	demand module.Demand
}{
	{"ddc", module.Demand{CLB: 22, BRAM: 2}},     // digital down-converter
	{"fir", module.Demand{CLB: 18, BRAM: 1}},     // channel filter
	{"fft", module.Demand{CLB: 28, BRAM: 3}},     // spectral front end
	{"psk_demod", module.Demand{CLB: 14}},        // PSK demodulator
	{"fm_demod", module.Demand{CLB: 10}},         // FM demodulator
	{"viterbi", module.Demand{CLB: 26, BRAM: 1}}, // decoder
}

func main() {
	spec := fabric.Spec{
		Name: "sdr-36x18",
		W:    36, H: 18,
		BRAMColumns: []int{5, 17, 29},
		DSPColumns:  []int{16},
	}
	region := spec.MustBuild().FullRegion()
	// Two bus lanes: four of the six modules demand a BRAM column, and
	// the region has three such columns, so a single bus row could not
	// host them all (two BRAM modules would need the same column).
	busRows := []int{0, 9}

	fmt.Printf("SDR region: %dx%d (%s), bus at rows %v\n\n",
		region.W(), region.H(), region.Histogram(), busRows)

	var best *core.Result
	for _, alts := range []int{1, 2, 4} {
		var mods []*module.Module
		for _, e := range library {
			m, err := module.GenerateAlternatives(e.name, e.demand,
				module.AlternativeOptions{Count: alts})
			if err != nil {
				log.Fatal(err)
			}
			mods = append(mods, m)
		}
		placer := core.New(region, core.Options{
			Timeout:    10 * time.Second,
			StallNodes: 3000,
			BusRows:    busRows,
		})
		res, err := placer.Place(mods)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			log.Fatalf("alts=%d: no feasible placement", alts)
		}
		occ := res.Occupancy(region)
		fmt.Printf("alternatives=%d: %v, fragmentation=%.2f\n",
			alts, res, metrics.Fragmentation(region, occ))
		best = res
	}

	fmt.Println("\nfinal floorplan (4 alternatives per module):")
	fmt.Println(render.PlacementsWithRuler(region, best.Placements))
}
