package canon_test

import (
	"math/rand"
	"testing"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/workload"
)

// FuzzCanonDigest drives the digest's core contract — digest equality
// is canonical equality — from fuzzed instances:
//
//   - determinism: the same request digests identically every time;
//   - idempotence: canonicalizing a canonical request is a no-op;
//   - invariance: permuting modules, shapes and bus rows (and
//     duplicating bus rows) never moves the digest;
//   - sensitivity: a semantic mutation (rename, dropped shape, option
//     change, region change, fabric change) always moves it.
//
// Seed corpus lives in testdata/fuzz/FuzzCanonDigest.
func FuzzCanonDigest(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), "virtex4-like-72x60", int64(7), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1), "spartan-like-24x16", int64(3), uint8(1))
	f.Add(int64(3), uint8(6), uint8(4), "f", int64(11), uint8(2))
	f.Add(int64(4), uint8(2), uint8(3), "virtex4-like-72x60", int64(5), uint8(3))
	f.Add(int64(5), uint8(4), uint8(2), "dev-…-utf8", int64(13), uint8(4))
	f.Add(int64(6), uint8(5), uint8(1), "x", int64(17), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nMods, alts uint8, fab string, permSeed int64, mutate uint8) {
		cfg := workload.Config{
			NumModules:   1 + int(nMods%6),
			CLBMin:       3,
			CLBMax:       8,
			NoBRAM:       true,
			Alternatives: 1 + int(alts%4),
		}
		mods, err := workload.Generate(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Skip()
		}
		req := &canon.Request{
			Fabric:  fab,
			Region:  grid.Rect{MinX: int(nMods % 3), MinY: 0, MaxX: int(nMods%3) + 20, MaxY: 16},
			Modules: mods,
			Options: core.RequestOptions{
				StallNodes:        int64(alts%8) * 100,
				Workers:           int(nMods % 3),
				BusRows:           []int{int(alts % 5), int(nMods % 7)},
				StrongPropagation: seed%2 == 0,
			},
		}

		d1, err := req.Digest()
		if fab == "" {
			if err == nil {
				t.Fatal("empty fabric digested without error")
			}
			return
		}
		if err != nil {
			t.Fatalf("digest: %v", err)
		}

		// Determinism: a second digest of the untouched request agrees.
		d1b, err := req.Digest()
		if err != nil || d1 != d1b {
			t.Fatalf("digest not deterministic: %s vs %s (err %v)", d1, d1b, err)
		}

		// Idempotence: the canonical form is its own canonical form.
		c, err := req.Canonical()
		if err != nil {
			t.Fatalf("canonical: %v", err)
		}
		cb, err := c.CanonicalBytes()
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		rb, _ := req.CanonicalBytes()
		if string(cb) != string(rb) {
			t.Fatal("canonicalization is not idempotent")
		}

		// Invariance: permute everything semantics-preserving.
		perm := permuteRequest(t, req, rand.New(rand.NewSource(permSeed)))
		d2, err := perm.Digest()
		if err != nil {
			t.Fatalf("permuted digest: %v", err)
		}
		if d1 != d2 {
			t.Fatalf("permutation moved the digest: %s vs %s", d1, d2)
		}
		if !canon.Equal(req, perm) {
			t.Fatal("digest-equal requests not canon.Equal")
		}

		// Sensitivity: one semantic mutation must move the digest.
		mut, desc := mutateRequest(t, req, mutate)
		d3, err := mut.Digest()
		if err != nil {
			t.Fatalf("mutated (%s) digest: %v", desc, err)
		}
		if d3 == d1 {
			t.Fatalf("mutation %q left the digest unchanged", desc)
		}
		if canon.Equal(req, mut) {
			t.Fatalf("mutation %q left the requests canon.Equal", desc)
		}
	})
}

// permuteRequest returns a semantically identical request: shuffled
// module order, shuffled shape order within each module, and bus rows
// reversed plus one duplicated.
func permuteRequest(t *testing.T, req *canon.Request, rng *rand.Rand) *canon.Request {
	t.Helper()
	out := *req
	out.Modules = make([]*module.Module, len(req.Modules))
	for i, m := range req.Modules {
		pm, err := m.WithShapes(rng.Perm(m.NumShapes())...)
		if err != nil {
			t.Fatal(err)
		}
		out.Modules[i] = pm
	}
	rng.Shuffle(len(out.Modules), func(i, j int) {
		out.Modules[i], out.Modules[j] = out.Modules[j], out.Modules[i]
	})
	rows := req.Options.BusRows
	rev := make([]int, 0, len(rows)+1)
	for i := len(rows) - 1; i >= 0; i-- {
		rev = append(rev, rows[i])
	}
	if len(rows) > 0 {
		rev = append(rev, rows[0]) // duplicate: dedup must absorb it
	}
	out.Options.BusRows = rev
	return &out
}

// mutateRequest applies one semantic mutation selected by sel and
// returns the mutated request plus a description for failure messages.
func mutateRequest(t *testing.T, req *canon.Request, sel uint8) (*canon.Request, string) {
	t.Helper()
	out := *req
	switch sel % 6 {
	case 0:
		out.Fabric = req.Fabric + "'"
		return &out, "fabric name"
	case 1:
		out.Region.MaxY = req.Region.MaxY + 1
		return &out, "region window"
	case 2:
		mods := append([]*module.Module(nil), req.Modules...)
		renamed, err := module.NewModule(mods[0].Name()+"'", mods[0].Shapes()...)
		if err != nil {
			t.Fatal(err)
		}
		mods[0] = renamed
		out.Modules = mods
		return &out, "module name"
	case 3:
		out.Options.StallNodes = req.Options.StallNodes + 1
		return &out, "stall budget"
	case 4:
		out.Options.StrongPropagation = !req.Options.StrongPropagation
		return &out, "propagation strength"
	default:
		maxRow := 0
		for _, r := range req.Options.BusRows {
			if r >= maxRow {
				maxRow = r + 1
			}
		}
		out.Options.BusRows = append(append([]int(nil), req.Options.BusRows...), maxRow)
		return &out, "bus rows"
	}
}
