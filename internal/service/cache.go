package service

import (
	"container/list"
	"sync"

	"repro/internal/canon"
)

// CacheStats is a snapshot of the result cache's counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// lruCache is a fixed-capacity least-recently-used map from canonical
// request digests to encoded response bodies. Values are the exact
// bytes served for the original solve, which is what makes cache hits
// byte-identical to the first response. Safe for concurrent use.
type lruCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[canon.Digest]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key  canon.Digest
	body []byte
}

// newLRU returns a cache holding at most capacity entries (minimum 1).
func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[canon.Digest]*list.Element, capacity),
	}
}

// Get returns the cached body for key and marks it most recently used.
// Callers must not mutate the returned slice.
func (c *lruCache) Get(key canon.Digest) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Put stores body under key, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes its body
// and recency.
func (c *lruCache) Put(key canon.Digest, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Reset drops every entry but keeps the counters (benchmarks use it to
// force cold-path solves).
func (c *lruCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[canon.Digest]*list.Element, c.capacity)
}

// Stats snapshots the counters.
func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
