package online

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func TestMaximalEmptyRectsEmptyRegion(t *testing.T) {
	region := fabric.Homogeneous(6, 4).FullRegion()
	occ := grid.NewBitmap(6, 4)
	mers := MaximalEmptyRects(region, occ)
	if len(mers) != 1 {
		t.Fatalf("mers = %v, want one full rect", mers)
	}
	if mers[0] != grid.RectXYWH(0, 0, 6, 4) {
		t.Fatalf("mer = %v", mers[0])
	}
}

func TestMaximalEmptyRectsSplit(t *testing.T) {
	region := fabric.Homogeneous(5, 5).FullRegion()
	occ := grid.NewBitmap(5, 5)
	occ.SetRect(grid.RectXYWH(2, 2, 1, 1), true) // single blocker in the centre
	mers := MaximalEmptyRects(region, occ)
	// Four maximal rects around a centre blocker: left 2x5, right 2x5,
	// bottom 5x2, top 5x2.
	want := map[grid.Rect]bool{
		grid.RectXYWH(0, 0, 2, 5): true,
		grid.RectXYWH(3, 0, 2, 5): true,
		grid.RectXYWH(0, 0, 5, 2): true,
		grid.RectXYWH(0, 3, 5, 2): true,
	}
	if len(mers) != len(want) {
		t.Fatalf("mers = %v", mers)
	}
	for _, r := range mers {
		if !want[r] {
			t.Fatalf("unexpected mer %v in %v", r, mers)
		}
	}
}

func TestMaximalEmptyRectsFullyOccupied(t *testing.T) {
	region := fabric.Homogeneous(3, 3).FullRegion()
	occ := grid.NewBitmap(3, 3)
	occ.SetRect(grid.RectXYWH(0, 0, 3, 3), true)
	if mers := MaximalEmptyRects(region, occ); len(mers) != 0 {
		t.Fatalf("mers = %v, want none", mers)
	}
}

func TestMaximalEmptyRectsRespectPlaceability(t *testing.T) {
	// A static column splits the free space even with empty occupancy.
	dev := fabric.Homogeneous(5, 3)
	dev.MaskStatic(grid.RectXYWH(2, 0, 1, 3))
	region := dev.FullRegion()
	mers := MaximalEmptyRects(region, grid.NewBitmap(5, 3))
	want := map[grid.Rect]bool{
		grid.RectXYWH(0, 0, 2, 3): true,
		grid.RectXYWH(3, 0, 2, 3): true,
	}
	if len(mers) != 2 {
		t.Fatalf("mers = %v", mers)
	}
	for _, r := range mers {
		if !want[r] {
			t.Fatalf("unexpected mer %v", r)
		}
	}
}

// Regression for the containment-filter aliasing bug: the filter used
// to build its output as `out := cands[:0]`, so every append clobbered
// an entry of cands that the inner containment loop still reads. The
// filter must leave its input untouched. The candidate list is crafted
// so a drop happens before keeps (the first candidate is contained in a
// later one): with the aliased output, the keeps then shift left over
// the dropped slot and rewrite the input in place, which this test
// catches on the old code.
func TestDropContainedDoesNotClobberInput(t *testing.T) {
	cands := []grid.Rect{
		grid.RectXYWH(0, 0, 1, 1), // contained in the next two: dropped first
		grid.RectXYWH(0, 0, 4, 1),
		grid.RectXYWH(0, 0, 1, 4),
		grid.RectXYWH(2, 2, 2, 2),
		grid.RectXYWH(2, 2, 1, 1), // contained: dropped
		grid.RectXYWH(5, 5, 3, 3),
	}
	orig := make([]grid.Rect, len(cands))
	copy(orig, cands)

	got := dropContained(cands)

	for i := range cands {
		if cands[i] != orig[i] {
			t.Fatalf("dropContained mutated its input: cands[%d] = %v, was %v (cands now %v)",
				i, cands[i], orig[i], cands)
		}
	}
	want := map[grid.Rect]bool{
		grid.RectXYWH(0, 0, 4, 1): true,
		grid.RectXYWH(0, 0, 1, 4): true,
		grid.RectXYWH(2, 2, 2, 2): true,
		grid.RectXYWH(5, 5, 3, 3): true,
	}
	if len(got) != len(want) {
		t.Fatalf("dropContained = %v, want the %d maximal rects", got, len(want))
	}
	for _, r := range got {
		if !want[r] {
			t.Fatalf("dropContained kept non-maximal %v (out %v)", r, got)
		}
	}
}

// bruteForceMaximalRects is the oracle for TestMaximalEmptyRectsOracle:
// enumerate every free rectangle of the region (all tiles placeable and
// unoccupied) and keep exactly those that no one-tile growth keeps
// free — the definition of a maximal empty rectangle, with none of the
// sweep's cleverness.
func bruteForceMaximalRects(region *fabric.Region, occ *grid.Bitmap) []grid.Rect {
	w, h := region.W(), region.H()
	isFree := func(r grid.Rect) bool {
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > w || r.MaxY > h {
			return false
		}
		for _, p := range r.Points() {
			if !region.PlaceableAt(p.X, p.Y) || occ.Get(p.X, p.Y) {
				return false
			}
		}
		return true
	}
	var out []grid.Rect
	for y0 := 0; y0 < h; y0++ {
		for y1 := y0 + 1; y1 <= h; y1++ {
			for x0 := 0; x0 < w; x0++ {
				for x1 := x0 + 1; x1 <= w; x1++ {
					r := grid.Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
					if !isFree(r) {
						continue
					}
					if isFree(grid.Rect{MinX: x0 - 1, MinY: y0, MaxX: x1, MaxY: y1}) ||
						isFree(grid.Rect{MinX: x0, MinY: y0 - 1, MaxX: x1, MaxY: y1}) ||
						isFree(grid.Rect{MinX: x0, MinY: y0, MaxX: x1 + 1, MaxY: y1}) ||
						isFree(grid.Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1 + 1}) {
						continue
					}
					out = append(out, r)
				}
			}
		}
	}
	return out
}

// TestMaximalEmptyRectsOracle cross-checks the sweep against the
// brute-force all-maximal-rectangles oracle on small random regions
// with non-placeable holes: the two must agree exactly, as sets, on
// every instance. Runs under the race job via the ordinary suite.
func TestMaximalEmptyRectsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		w, h := 2+rng.Intn(7), 2+rng.Intn(7)
		dev := fabric.Homogeneous(w, h)
		// Punch static (non-placeable) holes so the free space is
		// bounded by more than just occupancy.
		for i := rng.Intn(3); i > 0; i-- {
			dev.MaskStatic(grid.RectXYWH(rng.Intn(w), rng.Intn(h), 1, 1))
		}
		region := dev.FullRegion()
		occ := grid.NewBitmap(w, h)
		for i := rng.Intn(w * h); i > 0; i-- {
			occ.Set(rng.Intn(w), rng.Intn(h), true)
		}

		got := MaximalEmptyRects(region, occ)
		want := bruteForceMaximalRects(region, occ)
		gotSet := map[grid.Rect]bool{}
		for _, r := range got {
			if gotSet[r] {
				t.Fatalf("trial %d (%dx%d): duplicate rect %v in %v\nocc:\n%s", trial, w, h, r, got, occ)
			}
			gotSet[r] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%dx%d): got %d rects %v, oracle %d rects %v\nocc:\n%s",
				trial, w, h, len(got), got, len(want), want, occ)
		}
		for _, r := range want {
			if !gotSet[r] {
				t.Fatalf("trial %d (%dx%d): oracle rect %v missing from %v\nocc:\n%s", trial, w, h, r, got, occ)
			}
		}
	}
}

// Properties: every returned rect is empty, maximal, and every free tile
// is covered by some rect.
func TestMaximalEmptyRectsProperties(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		occ := grid.NewBitmap(8, 8)
		for i := 0; i < int(n%40); i++ {
			occ.Set(rng.Intn(8), rng.Intn(8), true)
		}
		mers := MaximalEmptyRects(region, occ)
		// Emptiness.
		for _, r := range mers {
			for _, p := range r.Points() {
				if occ.Get(p.X, p.Y) {
					return false
				}
			}
		}
		// Maximality: growing any rect by one in any direction hits an
		// occupied/out-of-range tile.
		grow := func(r grid.Rect, dx0, dy0, dx1, dy1 int) grid.Rect {
			return grid.Rect{MinX: r.MinX + dx0, MinY: r.MinY + dy0, MaxX: r.MaxX + dx1, MaxY: r.MaxY + dy1}
		}
		ok := func(r grid.Rect) bool {
			if !region.Bounds().Contains(r) {
				return false
			}
			for _, p := range r.Points() {
				if occ.Get(p.X, p.Y) {
					return false
				}
			}
			return true
		}
		for _, r := range mers {
			for _, g := range []grid.Rect{
				grow(r, -1, 0, 0, 0), grow(r, 0, -1, 0, 0),
				grow(r, 0, 0, 1, 0), grow(r, 0, 0, 0, 1),
			} {
				if ok(g) {
					return false
				}
			}
		}
		// Coverage.
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if occ.Get(x, y) {
					continue
				}
				covered := false
				for _, r := range mers {
					if grid.Pt(x, y).In(r) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
