package solverlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsGate enforces the zero-alloc-when-disabled contract of the
// observability layer: constructing an obs.Event and calling
// Recorder.Record costs a struct copy and a virtual call, so every
// Record call in solver hot paths must be guarded by a nil check on
// the recorder. An unguarded call on a nil interface also panics, so
// this is a correctness check as much as a performance one. Accepted
// guards:
//
//   - an enclosing `if <recv> != nil { ... }` (possibly with more
//     conditions and-ed on),
//   - an earlier `if <recv> == nil { return }` in the same function,
//   - being the body of a Record method itself (recorder decorators
//     forward unconditionally; their caller holds the guard).
//
// Sites whose guard lives in the caller by documented contract carry a
// //solverlint:allow obsgate comment naming that contract.
var ObsGate = &Analyzer{
	Name: "obsgate",
	Doc:  "Recorder.Record calls in hot paths must be guarded by a nil check on the recorder",
	Run:  runObsGate,
}

func runObsGate(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Record methods forward to an inner recorder by design;
			// the nil guard is the caller's.
			if fd.Name.Name == "Record" && fd.Recv != nil {
				continue
			}
			checkRecordCalls(pass, fd)
		}
	}
	return nil
}

// checkRecordCalls walks fd's body, tracking the enclosing-node stack
// so each Record call can be checked for a surrounding guard.
func checkRecordCalls(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := recorderReceiver(pass, call)
		if recv == "" {
			return true
		}
		if guardedByAncestor(stack, recv) || guardedByEarlyReturn(fd.Body, recv, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"unguarded %s.Record call: wrap it in `if %s != nil { ... }` so the disabled path stays zero-cost (and nil-safe)",
			recv, recv)
		return true
	})
}

// recorderReceiver returns the source text of the receiver expression
// when call is <recv>.Record(...) on a Recorder-typed value, else "".
func recorderReceiver(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Record" {
		return ""
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !isRecorderType(t) {
		return ""
	}
	return types.ExprString(sel.X)
}

// isRecorderType reports whether t is (a pointer to) a named type or
// interface called Recorder — the obs.Recorder event sink, or a
// fixture stand-in.
func isRecorderType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recorder"
}

// guardedByAncestor reports whether some enclosing if statement's
// condition contains `recv != nil`.
func guardedByAncestor(stack []ast.Node, recv string) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if ok && condHasNotNil(ifStmt.Cond, recv) {
			return true
		}
	}
	return false
}

// condHasNotNil reports whether cond contains the conjunct
// `recv != nil` (either operand order), possibly nested under &&/||.
func condHasNotNil(cond ast.Expr, recv string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "!=" {
			return true
		}
		if (isNilIdent(be.X) && types.ExprString(be.Y) == recv) ||
			(isNilIdent(be.Y) && types.ExprString(be.X) == recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

// guardedByEarlyReturn reports whether body contains, before pos, a
// top-level `if recv == nil { return ... }` statement.
func guardedByEarlyReturn(body *ast.BlockStmt, recv string, pos token.Pos) bool {
	for _, stmt := range body.List {
		if stmt.Pos() >= pos {
			break
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || !condHasEqNil(ifStmt.Cond, recv) || len(ifStmt.Body.List) == 0 {
			continue
		}
		if _, ok := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func condHasEqNil(cond ast.Expr, recv string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return false
	}
	return (isNilIdent(be.X) && types.ExprString(be.Y) == recv) ||
		(isNilIdent(be.Y) && types.ExprString(be.X) == recv)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
