package csp

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// VarChooser selects the next unassigned variable to branch on, or nil
// when all given variables are assigned.
type VarChooser func(vars []*Var) *Var

// ValueOrderer returns branching values for v in trial order. It must
// return values from v's current domain.
type ValueOrderer func(v *Var) []int

// FirstUnassigned branches on the variables in the order given.
func FirstUnassigned(vars []*Var) *Var {
	for _, v := range vars {
		if !v.Assigned() {
			return v
		}
	}
	return nil
}

// SmallestDomain implements first-fail: branch on an unassigned variable
// with the fewest remaining values (ties broken by order).
func SmallestDomain(vars []*Var) *Var {
	var best *Var
	for _, v := range vars {
		if v.Assigned() {
			continue
		}
		if best == nil || v.Size() < best.Size() {
			best = v
		}
	}
	return best
}

// AscendingValues tries domain values smallest-first.
func AscendingValues(v *Var) []int { return v.Domain().Values() }

// DescendingValues tries domain values largest-first.
func DescendingValues(v *Var) []int {
	vals := v.Domain().Values()
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	return vals
}

// PreferValues wraps a ValueOrderer so each variable tries a preferred
// value (keyed by variable id, so the preference survives store
// cloning) before the inner order. Variables without a preference, or
// whose preferred value has left the domain, keep the inner order
// untouched. When the preferences form a solution of the model, the
// first dive of a depth-first search reproduces it without
// backtracking — the mechanism behind warm-started branch-and-bound:
// the heuristic placement becomes the search's first incumbent and
// every later branch is taken with a real bound already in place.
func PreferValues(inner ValueOrderer, pref map[int]int) ValueOrderer {
	if inner == nil {
		inner = AscendingValues
	}
	if len(pref) == 0 {
		return inner
	}
	return func(v *Var) []int {
		out := inner(v)
		want, ok := pref[v.ID()]
		if !ok {
			return out
		}
		for i, val := range out {
			if val == want {
				copy(out[1:i+1], out[:i])
				out[0] = want
				break
			}
		}
		return out
	}
}

// Options configures search.
type Options struct {
	// ChooseVar selects the branching variable; default SmallestDomain.
	ChooseVar VarChooser
	// OrderValues orders branching values; default AscendingValues.
	OrderValues ValueOrderer
	// Deadline, when non-zero, aborts search afterwards; partial results
	// (solutions found so far) remain valid.
	Deadline time.Time
	// MaxSolutions stops enumeration after this many solutions
	// (0 = unlimited; Minimize ignores it).
	MaxSolutions int
	// StallNodes, when positive, makes Minimize stop after exploring
	// this many nodes without improving the incumbent — a deterministic
	// convergence criterion for anytime optimisation. Solve ignores it.
	StallNodes int64
	// MaxNodes, when positive, aborts search after exploring this many
	// branching nodes (shared globally across workers in the parallel
	// entry points) with Reason StopNodeLimit — a deterministic budget
	// that, unlike Deadline, does not depend on machine speed.
	MaxNodes int64
	// Recorder, when non-nil, receives the structured search event
	// stream (branch, backtrack, solution, incumbent) and is installed
	// on the store for the duration of the search so propagation-level
	// events (propagate, prune) are captured too. Nil keeps the search
	// hot path free of any recording overhead.
	Recorder obs.Recorder
	// Workers sets the number of search goroutines used by
	// SolveParallel and MinimizeParallel (0 = runtime.GOMAXPROCS).
	// The sequential entry points ignore it.
	Workers int
	// SplitDepth is the number of leading branching levels expanded
	// into independent subproblems by the parallel entry points
	// (0 = 1). Deeper splits yield more, finer-grained subproblems.
	SplitDepth int
	// SharedBound, when non-nil, couples this run to other concurrent
	// minimisation runs over the same objective: the search prunes
	// against the best objective published by any participant, and
	// publishes its own improvements. Solutions matching the shared
	// bound exactly are still accepted (the cut is non-strict), so
	// every participant reports its own best solution. With an
	// external bound, Optimal means optimal relative to that bound.
	SharedBound *SharedBound
}

// OptionError reports an invalid Options field value.
type OptionError struct {
	// Field is the Options field name.
	Field string
	// Value is the rejected value.
	Value int64
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("csp: invalid Options.%s: %d", e.Field, e.Value)
}

func (o Options) withDefaults() (Options, error) {
	switch {
	case o.MaxSolutions < 0:
		return o, &OptionError{Field: "MaxSolutions", Value: int64(o.MaxSolutions)}
	case o.StallNodes < 0:
		return o, &OptionError{Field: "StallNodes", Value: o.StallNodes}
	case o.MaxNodes < 0:
		return o, &OptionError{Field: "MaxNodes", Value: o.MaxNodes}
	case o.Workers < 0:
		return o, &OptionError{Field: "Workers", Value: int64(o.Workers)}
	case o.SplitDepth < 0:
		return o, &OptionError{Field: "SplitDepth", Value: int64(o.SplitDepth)}
	}
	if o.ChooseVar == nil {
		o.ChooseVar = SmallestDomain
	}
	if o.OrderValues == nil {
		o.OrderValues = AscendingValues
	}
	if o.SplitDepth == 0 {
		o.SplitDepth = 1
	}
	return o, nil
}

// StopReason says why a search run ended. The zero value (StopExhausted)
// is only reported by runs that actually ran to completion; aborted runs
// carry the specific cause, removing the silent-stop ambiguity between a
// proof, a stall and a timeout.
type StopReason uint8

// Stop reasons.
const (
	// StopExhausted: the search space was fully explored (for Minimize
	// this is the optimality proof).
	StopExhausted StopReason = iota
	// StopTimeout: Options.Deadline fired.
	StopTimeout
	// StopStalled: Options.StallNodes elapsed without an improvement.
	StopStalled
	// StopCut: enumeration was cut short by the solution callback or
	// Options.MaxSolutions.
	StopCut
	// StopNodeLimit: Options.MaxNodes was reached.
	StopNodeLimit
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case StopExhausted:
		return "exhausted"
	case StopTimeout:
		return "timeout"
	case StopStalled:
		return "stalled"
	case StopCut:
		return "cut"
	case StopNodeLimit:
		return "node-limit"
	}
	return "unknown"
}

// SearchResult summarises a Solve run.
type SearchResult struct {
	// Solutions is the number of solutions delivered.
	Solutions int
	// Complete is true when the search space was exhausted (false when
	// the deadline fired or enumeration was cut short).
	Complete bool
	// Reason says why the run ended (exhausted, timeout or cut).
	Reason StopReason
	// Nodes counts branching nodes explored.
	Nodes int64
	// Backtracks counts dead ends: branch attempts whose propagation
	// failed.
	Backtracks int64
	// Propagations counts propagator executions during the run.
	Propagations int64
}

// Solve runs depth-first search over vars, invoking onSolution with the
// store in an all-assigned, propagated state for every solution. If
// onSolution returns false, enumeration stops early. The store is left
// at its entry state.
func Solve(st *Store, vars []*Var, opts Options, onSolution func(*Store) bool) (SearchResult, error) {
	opts, err := opts.withDefaults()
	var res SearchResult
	if err != nil {
		return res, err
	}
	propBase := st.nPropag
	if opts.Recorder != nil {
		prev := st.Recorder()
		st.SetRecorder(opts.Recorder)
		defer st.SetRecorder(prev)
	}
	if err := st.Propagate(); err != nil {
		res.Propagations = st.nPropag - propBase
		if err == ErrInconsistent {
			res.Complete = true
			return res, nil
		}
		return res, err
	}
	stop := searchRec(st, vars, &opts, &res, 0, onSolution)
	res.Complete = !stop
	if !stop {
		res.Reason = StopExhausted
	}
	res.Propagations = st.nPropag - propBase
	return res, nil
}

func deadlineHit(opts *Options) bool {
	//solverlint:allow nondeterminism Options.Deadline is a documented anytime stop; deadline runs are non-deterministic by contract
	return !opts.Deadline.IsZero() && time.Now().After(opts.Deadline)
}

// searchRec returns true when enumeration must stop entirely (deadline
// or solution-callback cut).
func searchRec(st *Store, vars []*Var, opts *Options, res *SearchResult, depth int, onSolution func(*Store) bool) bool {
	if deadlineHit(opts) {
		res.Reason = StopTimeout
		return true
	}
	if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
		res.Reason = StopNodeLimit
		return true
	}
	v := opts.ChooseVar(vars)
	if v == nil {
		res.Solutions++
		if opts.Recorder != nil {
			opts.Recorder.Record(obs.Event{Kind: obs.KindSolution, Depth: depth})
		}
		keepGoing := onSolution(st)
		if !keepGoing {
			res.Reason = StopCut
			return true
		}
		if opts.MaxSolutions > 0 && res.Solutions >= opts.MaxSolutions {
			res.Reason = StopCut
			return true
		}
		return false
	}
	res.Nodes++
	for _, val := range opts.OrderValues(v) {
		if opts.Recorder != nil {
			opts.Recorder.Record(obs.Event{Kind: obs.KindBranch, Var: v.name, Value: val, Depth: depth})
		}
		st.Push()
		err := st.Assign(v, val)
		if err == nil {
			err = st.Propagate()
		}
		if err == nil {
			if stop := searchRec(st, vars, opts, res, depth+1, onSolution); stop {
				st.Pop()
				return true
			}
		} else {
			res.Backtracks++
			if opts.Recorder != nil {
				opts.Recorder.Record(obs.Event{Kind: obs.KindBacktrack, Depth: depth})
			}
		}
		st.Pop()
	}
	return false
}

// ObjectivePoint is one improving step of a branch-and-bound run: the
// new incumbent objective, and when it was found in nodes and wall-clock
// time since the start of the run. The sequence of points reconstructs
// the solver's anytime behaviour (objective-vs-time curves).
type ObjectivePoint struct {
	Objective int
	Nodes     int64
	Elapsed   time.Duration
}

// MinimizeResult reports the outcome of a branch-and-bound run.
type MinimizeResult struct {
	// Found is true when at least one solution was seen.
	Found bool
	// Best is the objective value of the best solution.
	Best int
	// Optimal is true when the search proved Best optimal (search space
	// exhausted under the final bound).
	Optimal bool
	// Stalled is true when the run stopped via Options.StallNodes
	// (equivalent to Reason == StopStalled).
	Stalled bool
	// Reason says why the run ended: StopExhausted is a completed
	// optimality proof (or infeasibility proof), StopStalled the
	// StallNodes criterion, StopTimeout the deadline.
	Reason StopReason
	// Nodes counts branching nodes explored.
	Nodes int64
	// Backtracks counts dead ends: branch attempts whose propagation
	// failed.
	Backtracks int64
	// Propagations counts propagator executions during the run.
	Propagations int64
	// BestObjectiveTrace records every improving solution in order —
	// the incumbent-over-time series.
	BestObjectiveTrace []ObjectivePoint
}

// minimizeState carries the mutable bookkeeping of one Minimize run that
// is not part of the public result.
type minimizeState struct {
	bound        int
	boundHandle  int
	lastImproved int64
	start        time.Time
	onImproved   func(*Store, int)
}

// Minimize finds an assignment of vars minimising obj using depth-first
// branch-and-bound: after each improving solution the objective is
// bounded below the incumbent and search continues. onImproved (may be
// nil) is called with the store at each improving solution so the caller
// can snapshot the assignment. The store is restored on return.
func Minimize(st *Store, vars []*Var, obj *Var, opts Options, onImproved func(*Store, int)) (MinimizeResult, error) {
	opts, err := opts.withDefaults()
	var res MinimizeResult
	if err != nil {
		return res, err
	}
	propBase := st.nPropag
	if opts.Recorder != nil {
		prev := st.Recorder()
		st.SetRecorder(opts.Recorder)
		defer st.SetRecorder(prev)
	}

	ms := &minimizeState{
		// bound is exclusive: solutions must achieve obj < bound.
		bound: obj.Max() + 1,
		//solverlint:allow nondeterminism run-start timestamp only feeds ObjectivePoint.Elapsed (anytime trace), never a search decision
		start:      time.Now(),
		onImproved: onImproved,
	}
	boundProp := FuncProp(func(s *Store) error {
		hi := ms.bound - 1
		if b := opts.SharedBound.Get(); b < hi {
			hi = b // non-strict: matching another run's best is allowed
		}
		return s.SetMax(obj, hi)
	})
	ms.boundHandle = st.Post(WithName(boundProp, "bnb.bound"), obj)

	searchVars := vars
	if !containsVar(vars, obj) {
		searchVars = append(append([]*Var{}, vars...), obj)
	}

	if err := st.Propagate(); err != nil {
		res.Propagations = st.nPropag - propBase
		if err == ErrInconsistent {
			res.Optimal = true // infeasible: vacuously closed
			return res, nil
		}
		return res, err
	}

	stopped := minimizeRec(st, searchVars, obj, &opts, &res, ms, 0)
	res.Optimal = !stopped
	if !stopped {
		res.Reason = StopExhausted
	}
	res.Propagations = st.nPropag - propBase
	return res, nil
}

func containsVar(vars []*Var, v *Var) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

func minimizeRec(st *Store, vars []*Var, obj *Var, opts *Options, res *MinimizeResult, ms *minimizeState, depth int) bool {
	if deadlineHit(opts) {
		res.Reason = StopTimeout
		return true
	}
	if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
		res.Reason = StopNodeLimit
		return true
	}
	if opts.StallNodes > 0 && res.Found && res.Nodes-ms.lastImproved > opts.StallNodes {
		res.Stalled = true
		res.Reason = StopStalled
		return true
	}
	v := opts.ChooseVar(vars)
	if v == nil {
		val := obj.Value()
		if !res.Found || val < res.Best {
			res.Found = true
			res.Best = val
			ms.bound = val
			ms.lastImproved = res.Nodes
			opts.SharedBound.Publish(val)
			res.BestObjectiveTrace = append(res.BestObjectiveTrace, ObjectivePoint{
				Objective: val,
				Nodes:     res.Nodes,
				//solverlint:allow nondeterminism Elapsed annotates the anytime trace for reporting; no search decision reads it
				Elapsed: time.Since(ms.start),
			})
			if opts.Recorder != nil {
				opts.Recorder.Record(obs.Event{Kind: obs.KindIncumbent, Objective: val, Nodes: res.Nodes, Depth: depth})
			}
			if ms.onImproved != nil {
				ms.onImproved(st, val)
			}
		}
		return false
	}
	res.Nodes++
	for _, val := range opts.OrderValues(v) {
		if deadlineHit(opts) {
			res.Reason = StopTimeout
			return true
		}
		if opts.Recorder != nil {
			opts.Recorder.Record(obs.Event{Kind: obs.KindBranch, Var: v.name, Value: val, Depth: depth})
		}
		st.Push()
		st.Schedule(ms.boundHandle) // the bound may have tightened since Push
		err := st.Assign(v, val)
		if err == nil {
			err = st.Propagate()
		}
		if err == nil {
			if stop := minimizeRec(st, vars, obj, opts, res, ms, depth+1); stop {
				st.Pop()
				return true
			}
		} else {
			res.Backtracks++
			if opts.Recorder != nil {
				opts.Recorder.Record(obs.Event{Kind: obs.KindBacktrack, Depth: depth})
			}
		}
		st.Pop()
	}
	return false
}
