package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/online"
)

// OnlineRow aggregates one online manager over the protocol runs.
type OnlineRow struct {
	Label   string
	Service metrics.Summary // fraction of arrivals placed
	Util    metrics.Summary // time-weighted utilization
	Frag    metrics.Summary // mean free-space fragmentation
}

// FormatOnlineRows renders the online comparison table.
func FormatOnlineRows(title string, rows []OnlineRow) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-28s %-18s %-18s %s\n",
		"Manager", "Service Level", "Mean Util.", "Mean Fragmentation")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %5.1f%% ± %4.1f      %5.1f%% ± %4.1f      %.2f\n",
			r.Label, r.Service.Mean*100, r.Service.CI95()*100,
			r.Util.Mean*100, r.Util.CI95()*100, r.Frag.Mean)
	}
	return sb.String()
}

// OnlineComparison runs the online-placement protocol: per seeded run, a
// task stream is drawn and every space-management policy serves it on
// the Table-I region. It quantifies the related-work axes of the paper
// (free-space vs occupied-space management, 1D slots vs 2D placement,
// and design alternatives in the online setting).
func OnlineComparison(cfg RunConfig, stream online.StreamConfig) ([]OnlineRow, error) {
	cfg = cfg.defaults()
	if stream.Tasks == 0 {
		// Saturating default for the Table-I region: ~60 concurrent
		// tasks of 10–60 CLBs keep the region contended so the policies
		// separate on service level, not just fragmentation.
		stream = online.StreamConfig{
			Tasks:            200,
			MeanInterarrival: 2,
			MeanDuration:     120,
		}
		stream.Library.CLBMin, stream.Library.CLBMax = 10, 60
		stream.Library.BRAMMax = 3
		stream.Library.Alternatives = 4
		stream.Library.NumModules = 1
	}
	managers := online.Managers()
	acc := make([]struct{ service, util, frag []float64 }, len(managers))

	for run := 0; run < cfg.Runs; run++ {
		tasks, err := online.GenerateStream(stream, rand.New(rand.NewSource(cfg.Seed+int64(run))))
		if err != nil {
			return nil, fmt.Errorf("experiments: online run %d: %w", run, err)
		}
		for mi, mgr := range managers {
			st, err := online.Simulate(cfg.Region, mgr, tasks, fabric.DefaultFrameModel())
			if err != nil {
				return nil, fmt.Errorf("experiments: online run %d (%s): %w", run, mgr.Name(), err)
			}
			acc[mi].service = append(acc[mi].service, st.ServiceLevel)
			acc[mi].util = append(acc[mi].util, st.MeanUtil)
			acc[mi].frag = append(acc[mi].frag, st.MeanFrag)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "online run %d/%d %s: %v\n", run+1, cfg.Runs, mgr.Name(), st)
			}
		}
	}

	rows := make([]OnlineRow, len(managers))
	for mi, mgr := range managers {
		rows[mi] = OnlineRow{
			Label:   mgr.Name(),
			Service: metrics.Summarize(acc[mi].service),
			Util:    metrics.Summarize(acc[mi].util),
			Frag:    metrics.Summarize(acc[mi].frag),
		}
	}
	return rows, nil
}
