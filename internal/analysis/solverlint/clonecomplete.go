package solverlint

import (
	"go/ast"
	"go/types"
)

// CloneComplete enforces the Clonable protocol that parallel search
// depends on: any named type with a Propagate method (a propagator)
// must also implement CloneFor, or Store.Clone rejects the whole store
// and SolveParallel/MinimizeParallel stop working for every model that
// posts the propagator. It additionally checks CloneFor bodies for
// receiver-field aliasing: a composite literal or assignment that
// copies a slice- or map-typed field straight from the receiver shares
// mutable state between the original and the clone, which corrupts
// concurrent workers. Immutable payload (lookup tables, geometry) may
// be shared, but must say so with a //solverlint:allow clonecomplete
// comment — the aliasing audit lives in the code, not in reviewers'
// heads.
var CloneComplete = &Analyzer{
	Name: "clonecomplete",
	Doc:  "propagators must implement CloneFor, and CloneFor must not alias mutable slice/map fields of the receiver",
	Run:  runCloneComplete,
}

func runCloneComplete(pass *Pass) error {
	checkCloneForPresence(pass)
	checkCloneForAliasing(pass)
	return nil
}

// checkCloneForPresence reports named types that have a Propagate
// method but no CloneFor.
func checkCloneForPresence(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && !tn.IsAlias() {
			checkTypeHasCloneFor(pass, tn)
		}
	}
}

func checkTypeHasCloneFor(pass *Pass, tn *types.TypeName) {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return
	}
	// Method sets: look through a pointer receiver so value- and
	// pointer-receiver propagators are both covered.
	mset := types.NewMethodSet(types.NewPointer(named))
	prop := lookupMethod(mset, "Propagate")
	if prop == nil || !isPropagateSig(prop) {
		return
	}
	if lookupMethod(mset, "CloneFor") != nil {
		return
	}
	pass.Reportf(tn.Pos(),
		"type %s has a Propagate method but no CloneFor: Store.Clone rejects it, breaking parallel search (implement CloneFor, or document why the propagator is not clonable)",
		tn.Name())
}

func lookupMethod(mset *types.MethodSet, name string) *types.Func {
	for i := 0; i < mset.Len(); i++ {
		if f, ok := mset.At(i).Obj().(*types.Func); ok && f.Name() == name {
			return f
		}
	}
	return nil
}

// isPropagateSig reports whether f looks like a propagator's Propagate:
// at least one parameter (the store) and exactly one result of type
// error.
func isPropagateSig(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() < 1 || sig.Results().Len() != 1 {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

// checkCloneForAliasing inspects every CloneFor method body for direct
// receiver-field aliasing of slice/map fields.
func checkCloneForAliasing(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "CloneFor" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverObject(pass, fd)
			if recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.KeyValueExpr:
					reportAliasedField(pass, recv, n.Value)
				case *ast.AssignStmt:
					for _, rhs := range n.Rhs {
						reportAliasedField(pass, recv, rhs)
					}
				case *ast.CompositeLit:
					// Positional composite literals: &T{p.xs, p.c}.
					for _, elt := range n.Elts {
						if _, ok := elt.(*ast.KeyValueExpr); !ok {
							reportAliasedField(pass, recv, elt)
						}
					}
				}
				return true
			})
		}
	}
}

// receiverObject returns the types.Object of fd's named receiver, or
// nil for anonymous receivers.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// reportAliasedField reports e when it is a selector recv.F whose field
// F has slice or map type — shared mutable state between original and
// clone.
func reportAliasedField(pass *Pass, recv types.Object, e ast.Expr) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return
	}
	t := pass.TypeOf(sel)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(e.Pos(),
			"CloneFor aliases field %s.%s (%s): the clone shares the backing store with the original; deep-copy it, or mark it immutable with a //solverlint:allow clonecomplete comment",
			id.Name, sel.Sel.Name, t)
	}
}
