package online

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

func clbModule(name string, w, h int) *module.Module {
	var tiles []module.Tile
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, module.Tile{At: grid.Pt(x, y), Kind: fabric.CLB})
		}
	}
	return module.MustModule(name, module.MustShape(tiles))
}

func TestSimulateFirstFitBasic(t *testing.T) {
	region := fabric.Homogeneous(8, 8).FullRegion()
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 4, 4), Arrive: 0, Duration: 10},
		{ID: 1, Module: clbModule("b", 4, 4), Arrive: 1, Duration: 10},
		{ID: 2, Module: clbModule("c", 8, 8), Arrive: 2, Duration: 10}, // cannot fit alongside
		{ID: 3, Module: clbModule("d", 8, 8), Arrive: 50, Duration: 5}, // fits after departures
	}
	st, err := Simulate(region, &FirstFit{}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 4 || st.Accepted != 3 || st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ServiceLevel != 0.75 {
		t.Fatalf("service level = %v", st.ServiceLevel)
	}
	if st.TotalReconfig <= 0 || st.Horizon <= 0 || st.MeanUtil <= 0 {
		t.Fatalf("degenerate stats: %v", st)
	}
}

func TestSimulateDepartureFreesSpace(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 4, 4), Arrive: 0, Duration: 10},
		{ID: 1, Module: clbModule("b", 4, 4), Arrive: 10, Duration: 10}, // departs exactly at arrival
	}
	st, err := Simulate(region, &FirstFit{}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 2 {
		t.Fatalf("departure did not free space: %+v", st)
	}
}

// releaseRecorder wraps a manager and records the order Release is
// called in.
type releaseRecorder struct {
	FirstFit
	released []TaskID
}

func (m *releaseRecorder) Release(id TaskID) {
	m.released = append(m.released, id)
	m.FirstFit.Release(id)
}

// TestSameTickDeparturesReleaseInIDOrder pins the departure heap's
// tie-break: tasks departing on the same tick must release in ascending
// id order, not in whatever heap-internal order their insertion
// sequence produced. The ids arrive in descending order so a time-only
// comparison (the old departureHeap.Less) pops them in a different,
// insertion-dependent order.
func TestSameTickDeparturesReleaseInIDOrder(t *testing.T) {
	region := fabric.Homogeneous(16, 16).FullRegion()
	const deadline = 100
	var tasks []Task
	for i := 0; i < 8; i++ {
		// Descending ids 8..1, arriving in that order, all departing at
		// the deadline tick.
		id := TaskID(8 - i)
		tasks = append(tasks, Task{
			ID:       id,
			Module:   clbModule("m", 2, 2),
			Arrive:   int64(i),
			Duration: deadline - int64(i),
		})
	}
	mgr := &releaseRecorder{}
	if _, err := Simulate(region, mgr, tasks, fabric.DefaultFrameModel()); err != nil {
		t.Fatal(err)
	}
	if len(mgr.released) != len(tasks) {
		t.Fatalf("released %d of %d tasks: %v", len(mgr.released), len(tasks), mgr.released)
	}
	for i := 1; i < len(mgr.released); i++ {
		if mgr.released[i-1] >= mgr.released[i] {
			t.Fatalf("same-tick departures released out of id order: %v", mgr.released)
		}
	}
}

// badManager returns overlapping placements to exercise the simulator's
// validation.
type badManager struct{ base }

func (m *badManager) Name() string                { return "bad" }
func (m *badManager) Reset(region *fabric.Region) { m.reset(region) }
func (m *badManager) TryPlace(Task) (Placement, bool) {
	return Placement{Shape: 0, At: grid.Pt(0, 0)}, true
}

func TestSimulateRejectsInvalidManager(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 2, 2), Arrive: 0, Duration: 100},
		{ID: 1, Module: clbModule("b", 2, 2), Arrive: 1, Duration: 100},
	}
	if _, err := Simulate(region, &badManager{}, tasks, fabric.DefaultFrameModel()); err == nil {
		t.Fatal("overlapping placement accepted")
	}
}

func TestAllManagersRunCleanOnStream(t *testing.T) {
	dev := (&fabric.Spec{Name: "t", W: 32, H: 16, BRAMColumns: []int{4, 20}}).MustBuild()
	region := dev.FullRegion()
	tasks, err := GenerateStream(StreamConfig{Tasks: 60}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, mgr := range Managers() {
		st, err := Simulate(region, mgr, tasks, fabric.DefaultFrameModel())
		if err != nil {
			t.Fatalf("%s: %v", mgr.Name(), err)
		}
		if st.Offered != 60 {
			t.Fatalf("%s: offered %d", mgr.Name(), st.Offered)
		}
		if st.Accepted == 0 {
			t.Fatalf("%s: accepted nothing", mgr.Name())
		}
		if st.String() == "" {
			t.Fatalf("%s: empty stats string", mgr.Name())
		}
	}
}

func TestAlternativesImproveServiceLevel(t *testing.T) {
	// On a heterogeneous region under load, letting the manager choose
	// among design alternatives must not reduce acceptances (same
	// greedy policy, strictly larger choice set at each step is not a
	// guarantee in general, but holds for this seeded stream and is the
	// effect the paper predicts).
	dev := (&fabric.Spec{Name: "t", W: 32, H: 16, BRAMColumns: []int{4, 20}}).MustBuild()
	region := dev.FullRegion()
	tasks, err := GenerateStream(StreamConfig{Tasks: 80, MeanInterarrival: 4}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Simulate(region, &FirstFit{}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	with, err := Simulate(region, &FirstFit{UseAlternatives: true}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if with.Accepted < without.Accepted {
		t.Fatalf("alternatives hurt service: %d < %d", with.Accepted, without.Accepted)
	}
}

func TestSlot1DInternalFragmentation(t *testing.T) {
	// Slot placement reserves full-height slot columns: concurrent
	// acceptance is bounded by slot count even for small modules.
	region := fabric.Homogeneous(32, 16).FullRegion()
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{
			ID: TaskID(i), Module: clbModule("m", 2, 2), Arrive: int64(i), Duration: 1000,
		})
	}
	st, err := Simulate(region, &Slot1D{SlotWidth: 8}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 4 { // 32/8 slots
		t.Fatalf("slot acceptance = %d, want 4", st.Accepted)
	}
	// 2D first-fit accepts all 8.
	st2, err := Simulate(region, &FirstFit{}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Accepted != 8 {
		t.Fatalf("2D acceptance = %d, want 8", st2.Accepted)
	}
}

func TestSlot1DReleaseReusesSlots(t *testing.T) {
	region := fabric.Homogeneous(16, 8).FullRegion()
	tasks := []Task{
		{ID: 0, Module: clbModule("a", 8, 4), Arrive: 0, Duration: 5},
		{ID: 1, Module: clbModule("b", 8, 4), Arrive: 1, Duration: 5},
		{ID: 2, Module: clbModule("c", 8, 4), Arrive: 20, Duration: 5},
	}
	st, err := Simulate(region, &Slot1D{SlotWidth: 8}, tasks, fabric.DefaultFrameModel())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 3 {
		t.Fatalf("slots not reused: %+v", st)
	}
}

func TestGenerateStreamDeterministic(t *testing.T) {
	a, err := GenerateStream(StreamConfig{Tasks: 10}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(StreamConfig{Tasks: 10}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrive != b[i].Arrive || a[i].Duration != b[i].Duration ||
			a[i].Module.Shape(0).Key() != b[i].Module.Shape(0).Key() {
			t.Fatal("stream not deterministic")
		}
	}
	if a[0].Arrive <= 0 || a[5].Arrive <= a[4].Arrive-1 {
		t.Fatal("arrivals not increasing")
	}
}

func TestGenerateStreamDefaults(t *testing.T) {
	tasks, err := GenerateStream(StreamConfig{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 100 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	for _, task := range tasks {
		if task.Duration < 1 || task.Module == nil {
			t.Fatalf("bad task: %+v", task)
		}
	}
}
