// Videopipeline models the workload class the paper's introduction
// motivates: a runtime reconfigurable video platform that swaps
// processing pipelines while the system keeps running. A cyclic
// two-phase schedule is planned offline with the constraint-programming
// placer (design alternatives enabled), both in fresh mode (each phase
// re-optimised from scratch) and persistent mode (modules surviving a
// phase switch stay in place), and the reconfiguration overhead of both
// plans is compared.
//
// Run with: go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/module"
	"repro/internal/render"
	"repro/internal/rtsim"
)

func mustModule(name string, d module.Demand) *module.Module {
	m, err := module.GenerateAlternatives(name, d, module.AlternativeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	spec := fabric.Spec{
		Name: "video-32x20",
		W:    32, H: 20,
		BRAMColumns:    []int{4, 15, 26},
		ClockRowPeriod: 10,
	}
	region := spec.MustBuild().FullRegion()

	// The DMA engine is resident in both phases; the processing stages
	// swap. 40 ms dwell ≈ one frame of work per phase at 25 fps.
	dma := mustModule("dma", module.Demand{CLB: 10, BRAM: 1})
	phases := []rtsim.Phase{
		{
			Name: "capture+scale",
			Modules: []*module.Module{
				dma,
				mustModule("deinterlace", module.Demand{CLB: 24, BRAM: 2}),
				mustModule("scaler", module.Demand{CLB: 30, BRAM: 2}),
				mustModule("colorspace", module.Demand{CLB: 16}),
			},
			Dwell: 40 * time.Millisecond,
		},
		{
			Name: "analyse",
			Modules: []*module.Module{
				dma,
				mustModule("edge_detect", module.Demand{CLB: 20, BRAM: 1}),
				mustModule("motion_est", module.Demand{CLB: 36, BRAM: 3}),
				mustModule("histogram", module.Demand{CLB: 12, BRAM: 1}),
			},
			Dwell: 40 * time.Millisecond,
		},
	}

	opts := rtsim.Options{
		Placer: core.Options{Timeout: 10 * time.Second, StallNodes: 3000},
	}
	fresh, err := rtsim.Plan(region, phases, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Persistent = true
	persistent, err := rtsim.Plan(region, phases, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fresh planning (each phase re-optimised):")
	fmt.Println(fresh)
	fmt.Println("persistent planning (survivors pinned):")
	fmt.Println(persistent)

	fmt.Println("phase floorplans (persistent plan):")
	for _, p := range persistent.Plans {
		fmt.Printf("-- %s --\n%s\n", p.Phase.Name,
			render.Placements(region, p.Result.Placements))
	}
	fmt.Printf("\nswitch cost into 'analyse': fresh=%v persistent=%v\n",
		fresh.Plans[1].SwitchTime, persistent.Plans[1].SwitchTime)
}
