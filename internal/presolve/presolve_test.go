package presolve

import (
	"testing"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/geost"
	"repro/internal/grid"
)

// allValid returns a bitmap accepting every anchor.
func allValid(w, h int) *grid.Bitmap {
	b := grid.NewBitmap(w, h)
	b.SetRect(grid.RectXYWH(0, 0, w, h), true)
	return b
}

// rectGeom builds a full w×h rectangle of CLB tiles valid everywhere
// in a spaceW×spaceH space.
func rectGeom(w, h, spaceW, spaceH int) geost.ShapeGeom {
	var pts []grid.Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, grid.Pt(x, y))
		}
	}
	var hist fabric.Histogram
	hist[fabric.CLB] = len(pts)
	return geost.ShapeGeom{Points: pts, W: w, H: h, Valid: allValid(spaceW, spaceH), Hist: hist}
}

// uniformCapPrefix returns the capacity prefix for a homogeneous CLB
// space.
func uniformCapPrefix(w, h int) []fabric.Histogram {
	out := make([]fabric.Histogram, h+1)
	for i := 1; i <= h; i++ {
		out[i][fabric.CLB] = w * i
	}
	return out
}

// buildModel assembles a kernel over a w×h space with one object per
// shape list and the height objective posted.
func buildModel(t *testing.T, w, h int, shapes [][]geost.ShapeGeom) (*csp.Store, *geost.Kernel, *csp.Var) {
	t.Helper()
	st := csp.NewStore()
	k := geost.New(st, w, h)
	for i, s := range shapes {
		if _, err := k.AddObject(string(rune('a'+i)), s); err != nil {
			t.Fatal(err)
		}
	}
	k.PostNonOverlap()
	height := k.PostHeightObjective(uniformCapPrefix(w, h))
	if err := st.Propagate(); err != nil {
		t.Fatalf("root propagation: %v", err)
	}
	return st, k, height
}

// TestDominanceDropsCoveredAlternative: a 2×2 alternative whose tiles
// cover its 1×1 sibling's (and which is placeable at strictly fewer
// anchors) is dominated and leaves the domain; the 1×1 survives.
func TestDominanceDropsCoveredAlternative(t *testing.T) {
	st, k, _ := buildModel(t, 6, 6, [][]geost.ShapeGeom{
		{rectGeom(1, 1, 6, 6), rectGeom(2, 2, 6, 6)},
	})
	stats := &Stats{}
	if err := dominance(st, k, stats); err != nil {
		t.Fatal(err)
	}
	if stats.AlternativesDropped != 1 {
		t.Fatalf("AlternativesDropped = %d, want 1", stats.AlternativesDropped)
	}
	o := k.Objects()[0]
	if !o.ShapePresent(0) {
		t.Fatal("dominating 1x1 alternative was dropped")
	}
	if o.ShapePresent(1) {
		t.Fatal("dominated 2x2 alternative survived")
	}
}

// TestDominanceKeepsIncomparable: a 1×2 and a 2×1 bar are tile-wise
// incomparable, so neither may be dropped.
func TestDominanceKeepsIncomparable(t *testing.T) {
	st, k, _ := buildModel(t, 6, 6, [][]geost.ShapeGeom{
		{rectGeom(1, 2, 6, 6), rectGeom(2, 1, 6, 6)},
	})
	stats := &Stats{}
	if err := dominance(st, k, stats); err != nil {
		t.Fatal(err)
	}
	if stats.AlternativesDropped != 0 {
		t.Fatalf("AlternativesDropped = %d, want 0", stats.AlternativesDropped)
	}
	o := k.Objects()[0]
	if !o.ShapePresent(0) || !o.ShapePresent(1) {
		t.Fatal("an incomparable alternative was dropped")
	}
}

// TestSymmetryGroupsIdenticalObjects: three identical 2×2 objects form
// one interchangeable group chained by two lex constraints, and the
// constrained model still proves the unconstrained optimum.
func TestSymmetryGroupsIdenticalObjects(t *testing.T) {
	shapes := [][]geost.ShapeGeom{
		{rectGeom(2, 2, 6, 6)},
		{rectGeom(2, 2, 6, 6)},
		{rectGeom(2, 2, 6, 6)},
	}
	st, k, height := buildModel(t, 6, 6, shapes)
	stats := &Stats{}
	groups := symmetry(st, k, stats)
	if stats.Groups != 1 || stats.ModulesOrdered != 2 {
		t.Fatalf("Groups=%d ModulesOrdered=%d, want 1 and 2", stats.Groups, stats.ModulesOrdered)
	}
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want one group of three", groups)
	}
	if err := st.Propagate(); err != nil {
		t.Fatalf("propagation after lex chain: %v", err)
	}
	res, err := csp.Minimize(st, k.PlaceVars(), height, csp.Options{}, nil)
	if err != nil || !res.Found || !res.Optimal {
		t.Fatalf("minimize under lex chain: err=%v res=%+v", err, res)
	}
	if res.Best != 2 {
		t.Fatalf("optimum under lex chain = %d, want 2 (three 2x2 side by side)", res.Best)
	}
}

// TestSymmetrySkipsDistinctObjects: objects of different shapes are
// not interchangeable; no group, no constraint.
func TestSymmetrySkipsDistinctObjects(t *testing.T) {
	st, k, _ := buildModel(t, 6, 6, [][]geost.ShapeGeom{
		{rectGeom(2, 2, 6, 6)},
		{rectGeom(3, 1, 6, 6)},
	})
	stats := &Stats{}
	if groups := symmetry(st, k, stats); len(groups) != 0 {
		t.Fatalf("groups = %v, want none", groups)
	}
	if stats.Groups != 0 || stats.ModulesOrdered != 0 {
		t.Fatalf("Groups=%d ModulesOrdered=%d, want 0 and 0", stats.Groups, stats.ModulesOrdered)
	}
}

// TestStrengthenBoundWideRows: four 3×1 bars in a 4-wide region. The
// tile-capacity bound only proves ceil(12/4) = 3 rows, but each bar
// spans more than half the region width, so no two can share a row:
// the pigeonhole bound must raise the height minimum to 4.
func TestStrengthenBoundWideRows(t *testing.T) {
	shapes := make([][]geost.ShapeGeom, 4)
	for i := range shapes {
		shapes[i] = []geost.ShapeGeom{rectGeom(3, 1, 4, 8)}
	}
	st, k, height := buildModel(t, 4, 8, shapes)
	if got := height.Min(); got != 3 {
		t.Fatalf("capacity bound = %d, want 3 before strengthening", got)
	}
	if err := strengthenBound(st, k, height); err != nil {
		t.Fatal(err)
	}
	if got := height.Min(); got != 4 {
		t.Fatalf("height lower bound = %d after strengthening, want 4", got)
	}
}

// TestApplyWarmStartFeasible: the warm placement Apply reports must be
// geometrically consistent — every value live in its object's domain,
// no two objects overlapping, and the claimed objective equal to the
// real top row of the painted placement.
func TestApplyWarmStartFeasible(t *testing.T) {
	shapes := [][]geost.ShapeGeom{
		{rectGeom(2, 2, 6, 6), rectGeom(4, 1, 6, 6)},
		{rectGeom(2, 2, 6, 6)},
		{rectGeom(3, 1, 6, 6), rectGeom(1, 3, 6, 6)},
	}
	st, k, height := buildModel(t, 6, 6, shapes)
	stats, err := Apply(st, k, height)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WarmFound {
		t.Fatal("warm start found no placement on a trivially feasible instance")
	}
	occ := grid.NewBitmap(k.W(), k.H())
	top := 0
	for i, o := range k.Objects() {
		val := stats.WarmValues[i]
		if !o.Place.Domain().Contains(val) {
			t.Fatalf("object %d: warm value %d not in the (post-presolve) domain", i, val)
		}
		sid, x, y := o.Decode(val)
		for _, p := range o.Shapes[sid].Points {
			if occ.Get(x+p.X, y+p.Y) {
				t.Fatalf("object %d: warm placement overlaps at (%d,%d)", i, x+p.X, y+p.Y)
			}
			occ.Set(x+p.X, y+p.Y, true)
		}
		if t2 := o.TopOf(val); t2 > top {
			top = t2
		}
	}
	if top != stats.WarmObjective {
		t.Fatalf("WarmObjective = %d, painted top = %d", stats.WarmObjective, top)
	}
	if stats.WarmObjective < height.Min() {
		t.Fatalf("warm objective %d below the height lower bound %d", stats.WarmObjective, height.Min())
	}
}
