// Package baseline implements the heuristic placers the paper's related
// work section positions against the constraint-programming approach:
// first-fit and bottom-left-decreasing online-style packers, a best-fit
// variant, and a simulated-annealing optimiser. They share the core
// placer's valid-anchor machinery (so heterogeneity is handled
// identically) and report results in the same Result type, making
// head-to-head utilization comparisons direct.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
)

// Algorithm selects a baseline placer.
type Algorithm uint8

// Baseline algorithms.
const (
	// FirstFit places modules in input order at the bottom-left-most
	// feasible anchor.
	FirstFit Algorithm = iota
	// BottomLeftDecreasing sorts modules by size (largest first) and
	// then first-fits them.
	BottomLeftDecreasing
	// BestFit places each module (input order) at the anchor minimising
	// the resulting occupied height.
	BestFit
	// Annealing refines a bottom-left-decreasing start by simulated
	// annealing over single-module moves.
	Annealing
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case FirstFit:
		return "first-fit"
	case BottomLeftDecreasing:
		return "bottom-left-decreasing"
	case BestFit:
		return "best-fit"
	case Annealing:
		return "annealing"
	}
	return "unknown"
}

// Algorithms lists all baseline placers.
func Algorithms() []Algorithm {
	return []Algorithm{FirstFit, BottomLeftDecreasing, BestFit, Annealing}
}

// Options configures baseline placement.
type Options struct {
	// UseAlternatives lets the heuristic choose among all design
	// alternatives of a module; otherwise only the primary shape is
	// used.
	UseAlternatives bool
	// Seed drives the annealing random source.
	Seed int64
	// Iterations bounds annealing moves (default 20000).
	Iterations int
}

// candidate is one (shape, anchor) pair of a module, with its tiles
// pre-translated relative to the anchor for fast occupancy tests.
type candidate struct {
	shapeIdx int
	points   []grid.Point // shape-relative
	w, h     int
}

type placedState struct {
	region  *fabric.Region
	occ     *grid.Bitmap
	anchors [][]*grid.Bitmap // per module, per shape
	cands   [][]candidate    // per module, per shape
	mods    []*module.Module
}

func newState(region *fabric.Region, mods []*module.Module, useAlts bool) (*placedState, error) {
	s := &placedState{
		region:  region,
		occ:     grid.NewBitmap(region.W(), region.H()),
		anchors: make([][]*grid.Bitmap, len(mods)),
		cands:   make([][]candidate, len(mods)),
		mods:    mods,
	}
	for i, m := range mods {
		nShapes := m.NumShapes()
		if !useAlts {
			nShapes = 1
		}
		any := false
		for si := 0; si < nShapes; si++ {
			sh := m.Shape(si)
			va := core.ValidAnchors(region, sh)
			s.anchors[i] = append(s.anchors[i], va)
			s.cands[i] = append(s.cands[i], candidate{
				shapeIdx: si,
				points:   sh.Points(),
				w:        sh.W(),
				h:        sh.H(),
			})
			if va.Count() > 0 {
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("baseline: module %s has no feasible placement", m.Name())
		}
	}
	return s, nil
}

// fits reports whether module i's shape si fits at (x, y) given current
// occupancy.
func (s *placedState) fits(i, si, x, y int) bool {
	if !s.anchors[i][si].Get(x, y) {
		return false
	}
	return !s.occ.AnyAt(s.cands[i][si].points, grid.Pt(x, y))
}

func (s *placedState) paint(i, si, x, y int, v bool) {
	for _, p := range s.cands[i][si].points {
		s.occ.Set(p.X+x, p.Y+y, v)
	}
}

// bottomLeft returns the bottom-left-most feasible (shape, anchor) of
// module i, or ok=false.
func (s *placedState) bottomLeft(i int) (si, x, y int, ok bool) {
	for yy := 0; yy < s.region.H(); yy++ {
		for xx := 0; xx < s.region.W(); xx++ {
			for ci := range s.cands[i] {
				if s.fits(i, ci, xx, yy) {
					return ci, xx, yy, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

// bestFit returns the feasible (shape, anchor) of module i minimising
// (resulting top, y, x), or ok=false.
func (s *placedState) bestFit(i, currentTop int) (si, x, y int, ok bool) {
	bestTop := 1 << 30
	for yy := 0; yy < s.region.H(); yy++ {
		if ok && yy >= bestTop {
			break // anchors at or above the best top cannot improve
		}
		for xx := 0; xx < s.region.W(); xx++ {
			for ci := range s.cands[i] {
				if !s.fits(i, ci, xx, yy) {
					continue
				}
				top := yy + s.cands[i][ci].h
				if top < currentTop {
					top = currentTop
				}
				if !ok || top < bestTop {
					ok = true
					bestTop = top
					si, x, y = ci, xx, yy
				}
			}
		}
	}
	return si, x, y, ok
}

// Place runs the selected baseline and returns a core.Result (with
// Optimal always false: these are heuristics).
func Place(region *fabric.Region, mods []*module.Module, alg Algorithm, opts Options) (*core.Result, error) {
	start := time.Now()
	if len(mods) == 0 {
		return nil, fmt.Errorf("baseline: no modules to place")
	}
	st, err := newState(region, mods, opts.UseAlternatives)
	if err != nil {
		return nil, err
	}

	order := make([]int, len(mods))
	for i := range order {
		order[i] = i
	}
	if alg == BottomLeftDecreasing || alg == Annealing {
		sortBySizeDesc(order, mods)
	}

	placements := make([]core.Placement, len(mods))
	placedOK := true
	currentTop := 0
	for _, i := range order {
		var si, x, y int
		var ok bool
		if alg == BestFit {
			si, x, y, ok = st.bestFit(i, currentTop)
		} else {
			si, x, y, ok = st.bottomLeft(i)
		}
		if !ok {
			placedOK = false
			break
		}
		st.paint(i, si, x, y, true)
		placements[i] = core.Placement{Module: mods[i], ShapeIndex: si, At: grid.Pt(x, y)}
		if top := y + st.cands[i][si].h; top > currentTop {
			currentTop = top
		}
	}

	res := &core.Result{}
	if placedOK {
		res.Found = true
		res.Placements = placements
		if alg == Annealing {
			anneal(st, placements, opts)
		}
		res.Height = maxTop(placements)
		res.Utilization = metrics.Utilization(region, res.Occupancy(region))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func sortBySizeDesc(order []int, mods []*module.Module) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && mods[order[j]].MinSize() > mods[order[j-1]].MinSize(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func maxTop(ps []core.Placement) int {
	top := 0
	for _, p := range ps {
		if t := p.Top(); t > top {
			top = t
		}
	}
	return top
}

// anneal refines placements in-place by simulated annealing: random
// single-module relocations, accepted by the Metropolis criterion on a
// cost mixing occupied height (dominant) and total module elevation
// (gradient within equal heights).
func anneal(st *placedState, placements []core.Placement, opts Options) {
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20000
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	cost := func() float64 {
		h := 0
		sumTop := 0
		for _, p := range placements {
			t := p.Top()
			if t > h {
				h = t
			}
			sumTop += t
		}
		return float64(h)*1000 + float64(sumTop)
	}

	cur := cost()
	t0 := 200.0
	for it := 0; it < iters; it++ {
		temp := t0 * math.Pow(0.001/t0, float64(it)/float64(iters))
		i := rng.Intn(len(placements))
		old := placements[i]
		oldIdx := shapeStateIndex(st, i, old.ShapeIndex)
		if oldIdx < 0 {
			continue
		}
		st.paint(i, oldIdx, old.At.X, old.At.Y, false)

		// Draw a random candidate anchor biased low: pick a random row
		// from the lower half more often.
		ci := rng.Intn(len(st.cands[i]))
		x := rng.Intn(st.region.W())
		y := rng.Intn(st.region.H())
		if rng.Intn(2) == 0 {
			y = rng.Intn(st.region.H()/2 + 1)
		}
		if !st.fits(i, ci, x, y) {
			st.paint(i, oldIdx, old.At.X, old.At.Y, true)
			continue
		}
		st.paint(i, ci, x, y, true)
		placements[i] = core.Placement{Module: old.Module, ShapeIndex: st.cands[i][ci].shapeIdx, At: grid.Pt(x, y)}
		nxt := cost()
		if nxt <= cur || rng.Float64() < math.Exp((cur-nxt)/temp) {
			cur = nxt
			continue
		}
		// Reject: restore.
		st.paint(i, ci, x, y, false)
		st.paint(i, oldIdx, old.At.X, old.At.Y, true)
		placements[i] = old
	}
}

// shapeStateIndex maps a module's shape index back to its slot in the
// state's candidate list (identity when alternatives are enabled, 0
// otherwise).
func shapeStateIndex(st *placedState, i, shapeIdx int) int {
	for ci, c := range st.cands[i] {
		if c.shapeIdx == shapeIdx {
			return ci
		}
	}
	return -1
}
