// Command loadgen is the chaos/soak driver for placed: it replays a
// seeded stream of placement workloads against a live daemon —
// typically one running with -faults — and asserts the robustness
// contract on every answer:
//
//   - every 200 response decodes, and when it carries a placement the
//     placement passes the core validity checks (in-bounds, on
//     compatible tiles, non-overlapping) against the request's own
//     fabric region;
//   - every 200 placement is tagged exact or approximate, nothing
//     else;
//   - only the documented failure statuses appear (429/499/500/504),
//     and 429s are retried by the built-in client with backoff.
//
// The run is fully reproducible: workload i is generated from
// -seed + i, and the retry client's jitter is seeded too. Exit status
// is non-zero when any invariant was violated, so `make chaos` and CI
// can gate on it.
//
// With -mode sessions the driver targets the stateful online API
// instead: each worker opens one session, replays a seeded
// arrive/depart/defrag mix, and mirrors every answer onto a
// client-side shadow occupancy revalidated with the same oracle the
// server uses (online.ValidatePlacement). Any divergence — an
// overlapping placement, an unpriced or invalid relocation, a release
// the server and shadow disagree on — is a violation and fails the
// run.
//
// Example (against a daemon started with
// `placed -faults 'solver:timeout:0.3;cache:error:0.2'`):
//
//	loadgen -addr http://localhost:8080 -requests 200 -concurrency 8
//	loadgen -addr http://localhost:8080 -duration 30s   # soak mode
//	loadgen -addr http://localhost:8080 -mode sessions -requests 200
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/service"
)

type cliOpts struct {
	addr        string
	mode        string
	requests    int
	duration    time.Duration
	concurrency int
	seed        int64
	modulesMin  int
	modulesMax  int
	fabric      string
	timeout     time.Duration
	verbose     bool
}

func main() {
	var o cliOpts
	flag.StringVar(&o.addr, "addr", "http://localhost:8080", "base URL of the placed daemon")
	flag.StringVar(&o.mode, "mode", "batch", "workload mode: batch (stateless /v1/place) or sessions (stateful online API)")
	flag.IntVar(&o.requests, "requests", 100, "number of workloads to replay (ignored when -duration is set)")
	flag.DurationVar(&o.duration, "duration", 0, "soak mode: replay workloads for this long instead of a fixed count")
	flag.IntVar(&o.concurrency, "concurrency", 4, "parallel request workers")
	flag.Int64Var(&o.seed, "seed", 1, "base workload seed; request i uses seed+i")
	flag.IntVar(&o.modulesMin, "modules-min", 2, "minimum modules per workload")
	flag.IntVar(&o.modulesMax, "modules-max", 5, "maximum modules per workload")
	flag.StringVar(&o.fabric, "fabric", "spartan-like-24x16", "fabric to place onto")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-request client timeout")
	flag.BoolVar(&o.verbose, "v", false, "log each violation as it happens")
	flag.Parse()

	var sum *summary
	var err error
	switch o.mode {
	case "", "batch":
		sum, err = run(o, os.Stdout)
	case "sessions":
		sum, err = runSessions(o, os.Stdout)
	default:
		err = fmt.Errorf("unknown -mode %q (want batch or sessions)", o.mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if sum.Violations > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d invariant violations\n", sum.Violations)
		os.Exit(1)
	}
}

// summary is the machine-readable run report, printed as one JSON
// object on stdout.
type summary struct {
	Requests    int64            `json:"requests"`
	Exact       int64            `json:"exact"`
	Approximate int64            `json:"approximate"`
	Infeasible  int64            `json:"infeasible"`
	Retries     int64            `json:"retries"`
	Statuses    map[string]int64 `json:"statuses"`
	Transport   int64            `json:"transportErrors"`
	Violations  int64            `json:"violations"`
	ElapsedMs   float64          `json:"elapsedMs"`
}

// counters aggregates worker results under one lock.
type counters struct {
	mu  sync.Mutex
	sum summary
	out io.Writer
	vrb bool
}

func (c *counters) violation(seq int64, format string, args ...any) {
	c.mu.Lock()
	c.sum.Violations++
	if c.vrb {
		fmt.Fprintf(c.out, "loadgen: workload %d: VIOLATION: %s\n", seq, fmt.Sprintf(format, args...))
	}
	c.mu.Unlock()
}

func run(o cliOpts, out io.Writer) (*summary, error) {
	if o.concurrency <= 0 {
		o.concurrency = 1
	}
	if o.modulesMin < 1 {
		o.modulesMin = 1
	}
	if o.modulesMax < o.modulesMin {
		o.modulesMax = o.modulesMin
	}
	if _, err := fabric.ByName(o.fabric); err != nil {
		return nil, err
	}

	c := client.New(o.addr, client.Options{
		Seed:       o.seed,
		HTTPClient: &http.Client{Timeout: o.timeout},
	})
	agg := &counters{out: out, vrb: o.verbose}
	agg.sum.Statuses = map[string]int64{}

	var seq atomic.Int64
	start := time.Now()
	deadline := time.Time{}
	if o.duration > 0 {
		deadline = start.Add(o.duration)
	}
	next := func() (int64, bool) {
		i := seq.Add(1) - 1
		if o.duration > 0 {
			return i, time.Now().Before(deadline)
		}
		return i, i < int64(o.requests)
	}

	var wg sync.WaitGroup
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := next()
				if !ok {
					return
				}
				runOne(c, o, i, agg)
			}
		}()
	}
	wg.Wait()

	agg.sum.ElapsedMs = float64(time.Since(start).Microseconds()) / 1e3
	line, err := json.MarshalIndent(&agg.sum, "", "  ")
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, string(line))
	return &agg.sum, nil
}

// workloadBody builds the generate-spec request for workload i: the
// daemon expands the spec deterministically, so the same -seed always
// replays the same instance stream.
func workloadBody(o cliOpts, i int64) string {
	seed := o.seed + i
	span := int64(o.modulesMax - o.modulesMin + 1)
	n := o.modulesMin + int(seed%span+span)%int(span)
	return fmt.Sprintf(`{"fabric":%q,"generate":{"seed":%d,"numModules":%d,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2},"options":{"stallNodes":200,"timeoutMs":5000}}`, o.fabric, seed, n)
}

func runOne(c *client.Client, o cliOpts, i int64, agg *counters) {
	body := workloadBody(o, i)
	res, err := c.Do(context.Background(), "/v1/place", []byte(body))

	agg.mu.Lock()
	agg.sum.Requests++
	if res != nil {
		agg.sum.Retries += int64(res.Retries)
		agg.sum.Statuses[fmt.Sprintf("%d", res.Status)]++
	}
	if err != nil {
		agg.sum.Transport++
	}
	agg.mu.Unlock()
	if err != nil {
		return
	}

	switch res.Status {
	case http.StatusOK:
		checkPlacement(o, i, body, res, agg)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Retries exhausted while shedding persisted: legitimate under
		// sustained overload, not a violation.
	case http.StatusInternalServerError, http.StatusGatewayTimeout:
		// Documented failure modes under fault injection.
	default:
		agg.violation(i, "unexpected status %d: %s", res.Status, res.Body)
	}
}

// checkPlacement enforces the 200 contract: decodable body, a known
// quality tag, and — when a placement was found — core validity
// against the request's own region.
func checkPlacement(o cliOpts, i int64, reqBody string, res *client.Result, agg *counters) {
	quality := res.Header.Get("X-Placement-Quality")
	if quality != service.QualityExact && quality != service.QualityApproximate {
		agg.violation(i, "X-Placement-Quality %q is neither exact nor approximate", quality)
		return
	}
	var resp service.PlaceResponse
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		agg.violation(i, "200 body does not decode: %v", err)
		return
	}
	if !resp.Found {
		agg.mu.Lock()
		agg.sum.Infeasible++
		agg.mu.Unlock()
		return
	}

	creq, err := service.DecodeRequest(strings.NewReader(reqBody), service.Config{})
	if err != nil {
		agg.violation(i, "replaying request: %v", err)
		return
	}
	dev, err := fabric.ByName(creq.Fabric)
	if err != nil {
		agg.violation(i, "fabric: %v", err)
		return
	}
	region := dev.FullRegion()
	byName := map[string]*module.Module{}
	for _, m := range creq.Modules {
		byName[m.Name()] = m
	}
	rec := &core.Result{
		Found:       true,
		Height:      resp.Height,
		Utilization: resp.Utilization,
	}
	for _, p := range resp.Placements {
		m := byName[p.Module]
		if m == nil {
			agg.violation(i, "placement names unknown module %q", p.Module)
			return
		}
		if p.Shape < 0 || p.Shape >= m.NumShapes() {
			agg.violation(i, "module %q uses shape %d of %d", p.Module, p.Shape, m.NumShapes())
			return
		}
		rec.Placements = append(rec.Placements, core.Placement{
			Module:     m,
			ShapeIndex: p.Shape,
			At:         grid.Pt(p.X, p.Y),
		})
	}
	if len(rec.Placements) != len(creq.Modules) {
		agg.violation(i, "placed %d of %d modules", len(rec.Placements), len(creq.Modules))
		return
	}
	if err := rec.Validate(region); err != nil {
		agg.violation(i, "placement invalid (%s): %v", quality, err)
		return
	}

	agg.mu.Lock()
	if quality == service.QualityApproximate {
		agg.sum.Approximate++
	} else {
		agg.sum.Exact++
	}
	agg.mu.Unlock()
}
