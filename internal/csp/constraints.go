package csp

import "fmt"

// notEqualOffset enforces x != y + c.
type notEqualOffset struct {
	x, y *Var
	c    int
}

// NotEqual posts x != y.
func NotEqual(st *Store, x, y *Var) { NotEqualOffset(st, x, y, 0) }

// NotEqualOffset posts x != y + c.
func NotEqualOffset(st *Store, x, y *Var, c int) {
	st.Post(&notEqualOffset{x, y, c}, x, y)
}

// Name implements Named.
func (p *notEqualOffset) Name() string { return "csp.not-equal" }

// CloneFor implements Clonable.
func (p *notEqualOffset) CloneFor(ctx *CloneCtx) Propagator {
	return &notEqualOffset{ctx.Var(p.x), ctx.Var(p.y), p.c}
}

func (p *notEqualOffset) Propagate(st *Store) error {
	if v, ok := p.y.dom.Singleton(); ok {
		if err := st.Remove(p.x, v+p.c); err != nil {
			return err
		}
	}
	if v, ok := p.x.dom.Singleton(); ok {
		if err := st.Remove(p.y, v-p.c); err != nil {
			return err
		}
	}
	return nil
}

// lessEqOffset enforces x + c <= y (bounds consistency).
type lessEqOffset struct {
	x, y *Var
	c    int
}

// LessEq posts x <= y.
func LessEq(st *Store, x, y *Var) { LessEqOffset(st, x, y, 0) }

// LessEqOffset posts x + c <= y.
func LessEqOffset(st *Store, x, y *Var, c int) {
	st.Post(&lessEqOffset{x, y, c}, x, y)
}

// Name implements Named.
func (p *lessEqOffset) Name() string { return "csp.less-eq" }

// CloneFor implements Clonable.
func (p *lessEqOffset) CloneFor(ctx *CloneCtx) Propagator {
	return &lessEqOffset{ctx.Var(p.x), ctx.Var(p.y), p.c}
}

func (p *lessEqOffset) Propagate(st *Store) error {
	if err := st.SetMax(p.x, p.y.Max()-p.c); err != nil {
		return err
	}
	return st.SetMin(p.y, p.x.Min()+p.c)
}

// equalOffset enforces x = y + c (domain consistency).
type equalOffset struct {
	x, y *Var
	c    int
}

// Equal posts x = y.
func Equal(st *Store, x, y *Var) { EqualOffset(st, x, y, 0) }

// EqualOffset posts x = y + c.
func EqualOffset(st *Store, x, y *Var, c int) {
	st.Post(&equalOffset{x, y, c}, x, y)
}

// Name implements Named.
func (p *equalOffset) Name() string { return "csp.equal" }

// CloneFor implements Clonable.
func (p *equalOffset) CloneFor(ctx *CloneCtx) Propagator {
	return &equalOffset{ctx.Var(p.x), ctx.Var(p.y), p.c}
}

func (p *equalOffset) Propagate(st *Store) error {
	if err := st.FilterDomain(p.x, func(v int) bool { return p.y.dom.Contains(v - p.c) }); err != nil {
		return err
	}
	return st.FilterDomain(p.y, func(v int) bool { return p.x.dom.Contains(v + p.c) })
}

// allDifferent enforces pairwise difference by forward checking: once a
// variable is assigned, its value is pruned from the others.
type allDifferent struct {
	vars []*Var
}

// AllDifferent posts pairwise-distinct over vars.
func AllDifferent(st *Store, vars ...*Var) {
	p := &allDifferent{vars: vars}
	st.Post(p, vars...)
}

// Name implements Named.
func (p *allDifferent) Name() string { return "csp.all-different" }

// CloneFor implements Clonable.
func (p *allDifferent) CloneFor(ctx *CloneCtx) Propagator {
	return &allDifferent{vars: ctx.Vars(p.vars)}
}

func (p *allDifferent) Propagate(st *Store) error {
	for _, v := range p.vars {
		val, ok := v.dom.Singleton()
		if !ok {
			continue
		}
		for _, o := range p.vars {
			if o == v {
				continue
			}
			if err := st.Remove(o, val); err != nil {
				return err
			}
		}
	}
	return nil
}

// sum enforces total = Σ vars (bounds consistency).
type sum struct {
	vars  []*Var
	total *Var
}

// Sum posts total = Σ vars.
func Sum(st *Store, total *Var, vars ...*Var) {
	p := &sum{vars: vars, total: total}
	watched := append([]*Var{total}, vars...)
	st.Post(p, watched...)
}

// Name implements Named.
func (p *sum) Name() string { return "csp.sum" }

// CloneFor implements Clonable.
func (p *sum) CloneFor(ctx *CloneCtx) Propagator {
	return &sum{vars: ctx.Vars(p.vars), total: ctx.Var(p.total)}
}

func (p *sum) Propagate(st *Store) error {
	loSum, hiSum := 0, 0
	for _, v := range p.vars {
		loSum += v.Min()
		hiSum += v.Max()
	}
	if err := st.SetMin(p.total, loSum); err != nil {
		return err
	}
	if err := st.SetMax(p.total, hiSum); err != nil {
		return err
	}
	for _, v := range p.vars {
		// total - (sum of others' bounds) brackets v.
		othersLo := loSum - v.Min()
		othersHi := hiSum - v.Max()
		if err := st.SetMin(v, p.total.Min()-othersHi); err != nil {
			return err
		}
		if err := st.SetMax(v, p.total.Max()-othersLo); err != nil {
			return err
		}
	}
	return nil
}

// maxOf enforces m = max(vars) (bounds consistency).
type maxOf struct {
	vars []*Var
	m    *Var
}

// MaxOf posts m = max(vars). It panics when vars is empty: the maximum
// of nothing is a modelling bug.
func MaxOf(st *Store, m *Var, vars ...*Var) {
	if len(vars) == 0 {
		panic("csp: MaxOf over no variables")
	}
	p := &maxOf{vars: vars, m: m}
	watched := append([]*Var{m}, vars...)
	st.Post(p, watched...)
}

// Name implements Named.
func (p *maxOf) Name() string { return "csp.max-of" }

// CloneFor implements Clonable.
func (p *maxOf) CloneFor(ctx *CloneCtx) Propagator {
	return &maxOf{vars: ctx.Vars(p.vars), m: ctx.Var(p.m)}
}

func (p *maxOf) Propagate(st *Store) error {
	// m's bounds from the vars.
	loBest, hiBest := p.vars[0].Min(), p.vars[0].Max()
	for _, v := range p.vars[1:] {
		if v.Min() > loBest {
			loBest = v.Min()
		}
		if v.Max() > hiBest {
			hiBest = v.Max()
		}
	}
	if err := st.SetMin(p.m, loBest); err != nil {
		return err
	}
	if err := st.SetMax(p.m, hiBest); err != nil {
		return err
	}
	// Every var is <= m.
	for _, v := range p.vars {
		if err := st.SetMax(v, p.m.Max()); err != nil {
			return err
		}
	}
	// If only one var can reach m's minimum, push it up.
	if count := p.countReaching(p.m.Min()); count == 1 {
		for _, v := range p.vars {
			if v.Max() >= p.m.Min() {
				if err := st.SetMin(v, p.m.Min()); err != nil {
					return err
				}
				break
			}
		}
	}
	return nil
}

func (p *maxOf) countReaching(val int) int {
	n := 0
	for _, v := range p.vars {
		if v.Max() >= val {
			n++
		}
	}
	return n
}

// element enforces result = table[index] (domain consistency, with
// out-of-range indices pruned).
type element struct {
	index  *Var
	table  []int
	result *Var
}

// Element posts result = table[index]. It panics on an empty table,
// which admits no support at all and is a modelling bug.
func Element(st *Store, index *Var, table []int, result *Var) {
	if len(table) == 0 {
		panic("csp: Element with empty table")
	}
	st.Post(&element{index: index, table: table, result: result}, index, result)
}

// Name implements Named.
func (p *element) Name() string { return "csp.element" }

// CloneFor implements Clonable; the value table is immutable and
// shared.
func (p *element) CloneFor(ctx *CloneCtx) Propagator {
	//solverlint:allow clonecomplete table is write-once at Element post time; Propagate only reads it
	return &element{index: ctx.Var(p.index), table: p.table, result: ctx.Var(p.result)}
}

func (p *element) Propagate(st *Store) error {
	if err := st.FilterDomain(p.index, func(i int) bool {
		return i >= 0 && i < len(p.table) && p.result.dom.Contains(p.table[i])
	}); err != nil {
		return err
	}
	return st.FilterDomain(p.result, func(r int) bool {
		ok := false
		p.index.dom.ForEach(func(i int) bool {
			if p.table[i] == r {
				ok = true
				return false
			}
			return true
		})
		return ok
	})
}

// binaryTable enforces (x, y) ∈ allowed (domain consistency).
type binaryTable struct {
	x, y    *Var
	allowed map[[2]int]bool
	xs      map[int][]int // x value -> supported y values
	ys      map[int][]int
}

// BinaryTable posts (x, y) ∈ pairs. It panics on an empty pair list,
// which admits no support at all and is a modelling bug.
func BinaryTable(st *Store, x, y *Var, pairs [][2]int) {
	if len(pairs) == 0 {
		panic("csp: BinaryTable with no allowed pairs")
	}
	p := &binaryTable{
		x: x, y: y,
		allowed: make(map[[2]int]bool, len(pairs)),
		xs:      map[int][]int{},
		ys:      map[int][]int{},
	}
	for _, pr := range pairs {
		if !p.allowed[pr] {
			p.allowed[pr] = true
			p.xs[pr[0]] = append(p.xs[pr[0]], pr[1])
			p.ys[pr[1]] = append(p.ys[pr[1]], pr[0])
		}
	}
	st.Post(p, x, y)
}

// Name implements Named.
func (p *binaryTable) Name() string { return "csp.binary-table" }

// CloneFor implements Clonable; the support tables are immutable and
// shared.
func (p *binaryTable) CloneFor(ctx *CloneCtx) Propagator {
	return &binaryTable{
		x: ctx.Var(p.x), y: ctx.Var(p.y),
		//solverlint:allow clonecomplete support tables are write-once at BinaryTable post time; Propagate only reads them
		allowed: p.allowed, xs: p.xs, ys: p.ys,
	}
}

func (p *binaryTable) Propagate(st *Store) error {
	if err := st.FilterDomain(p.x, func(xv int) bool {
		for _, yv := range p.xs[xv] {
			if p.y.dom.Contains(yv) {
				return true
			}
		}
		return false
	}); err != nil {
		return err
	}
	return st.FilterDomain(p.y, func(yv int) bool {
		for _, xv := range p.ys[yv] {
			if p.x.dom.Contains(xv) {
				return true
			}
		}
		return false
	})
}

// FuncProp wraps a plain function as a Propagator, for ad-hoc
// constraints. FuncProp does not implement Clonable — a closure cannot
// be re-targeted mechanically — so stores holding one cannot be cloned
// for parallel search; post ad-hoc constraints per worker instead.
//
//solverlint:allow clonecomplete not clonable by design; Store.Clone rejects it with a CloneError (see doc above)
type FuncProp func(st *Store) error

// Propagate implements Propagator.
func (f FuncProp) Propagate(st *Store) error { return f(st) }

// mustAssignedString is a debugging helper shared by tests.
func mustAssignedString(vars []*Var) string {
	s := ""
	for i, v := range vars {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", v.Name(), v.Value())
	}
	return s
}
