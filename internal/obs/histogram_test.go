package obs

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 112.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if got, want := h.Mean(), 112.0/5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// 10k uniform samples in [0, 1000) with 10-wide linear buckets: the
	// interpolated quantiles must land within one bucket of the truth.
	h := newHistogram(LinearBounds(10, 10, 100))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Observe(rng.Float64() * 1000)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.1, 100}, {0.5, 500}, {0.9, 900}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 15 {
			t.Errorf("q%.2f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileExponential(t *testing.T) {
	// Exponential with mean 100 into doubling buckets; median must be
	// near 100·ln2 ≈ 69.3 within bucket resolution (bucket [64,128]).
	h := newHistogram(ExpBounds(1, 2, 16))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		h.Observe(rng.ExpFloat64() * 100)
	}
	got := h.Quantile(0.5)
	if got < 64 || got > 100 {
		t.Errorf("median = %v, want within bucket of %v", got, 100*math.Ln2)
	}
}

func TestHistogramQuantileSmallSample(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	h.Observe(15)
	// A single sample: every quantile is within the observed range,
	// which collapses to the sample itself.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 15 {
			t.Errorf("q%v = %v, want 15", q, got)
		}
	}
}

func TestHistogramQuantileEdge(t *testing.T) {
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Samples beyond the last bound land in the +Inf bucket; quantiles
	// there report the observed max, not infinity.
	h.Observe(5)
	h.Observe(7)
	if got := h.Quantile(0.99); got != 7 {
		t.Errorf("overflow-bucket quantile = %v, want 7", got)
	}
	// Out-of-range q is clamped.
	if got := h.Quantile(2); got != 7 {
		t.Errorf("q=2 quantile = %v, want 7", got)
	}
	if got := h.Quantile(-1); got > 7 {
		t.Errorf("q=-1 quantile = %v, want <= max", got)
	}
}

func TestBoundsHelpers(t *testing.T) {
	exp := ExpBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", exp, want)
		}
	}
	lin := LinearBounds(5, 5, 3)
	wantL := []float64{5, 10, 15}
	for i := range wantL {
		if lin[i] != wantL[i] {
			t.Fatalf("LinearBounds = %v, want %v", lin, wantL)
		}
	}
}
