package solverlint

import (
	"path/filepath"
	"testing"
)

func TestCloneComplete(t *testing.T)  { RunFixture(t, CloneComplete, "clonecomplete") }
func TestNondeterminism(t *testing.T) { RunFixture(t, Nondeterminism, "nondeterminism") }
func TestObsGate(t *testing.T)        { RunFixture(t, ObsGate, "obsgate") }
func TestOptValidate(t *testing.T)    { RunFixture(t, OptValidate, "optvalidate") }
func TestNakedPanic(t *testing.T)     { RunFixture(t, NakedPanic, "nakedpanic") }
func TestLockScope(t *testing.T)      { RunFixture(t, LockScope, "lockscope") }
func TestCtxFlow(t *testing.T)        { RunFixture(t, CtxFlow, "ctxflow") }
func TestGoroLeak(t *testing.T)       { RunFixture(t, GoroLeak, "goroleak") }
func TestAtomicSafe(t *testing.T)     { RunFixture(t, AtomicSafe, "atomicsafe") }
func TestSyncMisuse(t *testing.T)     { RunFixture(t, SyncMisuse, "syncmisuse") }

// TestAnalyzersRegistered pins the suite composition: the driver and
// the docs both enumerate these ten names.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{
		"clonecomplete", "nondeterminism", "obsgate", "optvalidate", "nakedpanic",
		"lockscope", "ctxflow", "goroleak", "atomicsafe", "syncmisuse",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

// TestAllowCommentRequiresReason checks that a bare //solverlint:allow
// without a justification does not suppress anything.
func TestAllowCommentRequiresReason(t *testing.T) {
	pkg := loadTestPkg(t, map[string]string{"p.go": `
// Package p is a throwaway.
package p

func f() {
	panic("no reason given") //solverlint:allow nakedpanic
}
`})
	diags, err := RunAnalyzer(NakedPanic, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("reason-less allow comment suppressed the diagnostic: got %v", diags)
	}
}

// TestAllowCommentLineScope checks the reach of a line-level pragma:
// its own line and the next line, nothing further.
func TestAllowCommentLineScope(t *testing.T) {
	pkg := loadTestPkg(t, map[string]string{"p.go": `
// Package p is a throwaway.
package p

func f() {
	//solverlint:allow nakedpanic covers the next line only
	panic("suppressed")
}

func g() {
	//solverlint:allow nakedpanic too far away to matter
	_ = 0
	panic("not suppressed")
}
`})
	diags, err := RunAnalyzer(NakedPanic, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the out-of-range panic reported, got %v", diags)
	}
	if got := diags[0].Pos.Line; got != 13 {
		t.Errorf("diagnostic on line %d, want line 13 (the panic two lines past its pragma)", got)
	}
}

// TestAllowCommentWrongAnalyzer checks that a pragma naming a
// different analyzer does not suppress this one's finding.
func TestAllowCommentWrongAnalyzer(t *testing.T) {
	pkg := loadTestPkg(t, map[string]string{"p.go": `
// Package p is a throwaway.
package p

func f() {
	//solverlint:allow obsgate pragma for a different analyzer
	panic("not suppressed")
}
`})
	diags, err := RunAnalyzer(NakedPanic, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("wrong-analyzer pragma changed the diagnostics: got %v", diags)
	}
}

// TestAllowFileScope checks the file-level pragma: it silences the
// named analyzer across its whole file, but not in sibling files and
// not for other analyzers.
func TestAllowFileScope(t *testing.T) {
	pkg := loadTestPkg(t, map[string]string{
		"a.go": `
// Package p is a throwaway.
//solverlint:allow-file nakedpanic generated assertions audited in review
package p

func f() {
	panic("suppressed, start of file")
}

func g() {
	panic("suppressed, end of file")
}
`,
		"b.go": `
package p

func h() {
	panic("sibling file is not covered")
}
`,
	})
	diags, err := RunAnalyzer(NakedPanic, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want only the sibling-file panic, got %v", diags)
	}
	if base := filepath.Base(diags[0].Pos.Filename); base != "b.go" {
		t.Errorf("diagnostic in %s, want b.go", base)
	}
}

// TestAllowFileRequiresReason checks that a reason-less allow-file
// pragma suppresses nothing.
func TestAllowFileRequiresReason(t *testing.T) {
	pkg := loadTestPkg(t, map[string]string{"p.go": `
// Package p is a throwaway.
//solverlint:allow-file nakedpanic
package p

func f() {
	panic("no reason given")
}
`})
	diags, err := RunAnalyzer(NakedPanic, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("reason-less allow-file pragma suppressed the diagnostic: got %v", diags)
	}
}

// loadTestPkg writes files into a throwaway module and loads it.
func loadTestPkg(t *testing.T, files map[string]string) *Package {
	t.Helper()
	pkgs := loadTestPkgs(t, files)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}
