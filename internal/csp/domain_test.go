package csp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDomainRange(t *testing.T) {
	d := NewDomainRange(3, 9)
	if d.Size() != 7 || d.Min() != 3 || d.Max() != 9 {
		t.Fatalf("range domain wrong: %v", d)
	}
	for v := 3; v <= 9; v++ {
		if !d.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if d.Contains(2) || d.Contains(10) {
		t.Fatal("contains out-of-range values")
	}
}

func TestDomainRangePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi < lo")
		}
	}()
	NewDomainRange(5, 4)
}

func TestDomainValues(t *testing.T) {
	d := NewDomainValues(7, 3, 7, 100)
	if d.Size() != 3 || d.Min() != 3 || d.Max() != 100 {
		t.Fatalf("values domain wrong: size=%d min=%d max=%d", d.Size(), d.Min(), d.Max())
	}
	want := []int{3, 7, 100}
	got := d.Values()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Values = %v, want %v", got, want)
	}
}

func TestDomainRemove(t *testing.T) {
	d := NewDomainRange(0, 5)
	if !d.Remove(0) || d.Min() != 1 {
		t.Fatal("Remove(min) failed")
	}
	if !d.Remove(5) || d.Max() != 4 {
		t.Fatal("Remove(max) failed")
	}
	if d.Remove(5) {
		t.Fatal("double Remove reported change")
	}
	if d.Remove(1000) || d.Remove(-7) {
		t.Fatal("out-of-universe Remove reported change")
	}
	if d.Size() != 4 {
		t.Fatalf("Size = %d, want 4", d.Size())
	}
}

func TestDomainRemoveBelowAbove(t *testing.T) {
	d := NewDomainRange(0, 200) // multi-word
	if !d.RemoveBelow(70) || d.Min() != 70 {
		t.Fatalf("RemoveBelow: min=%d", d.Min())
	}
	if !d.RemoveAbove(130) || d.Max() != 130 {
		t.Fatalf("RemoveAbove: max=%d", d.Max())
	}
	if d.Size() != 61 {
		t.Fatalf("Size = %d, want 61", d.Size())
	}
	if d.RemoveBelow(70) || d.RemoveAbove(130) {
		t.Fatal("idempotent bound ops reported change")
	}
	// Kill everything via bounds.
	d2 := NewDomainRange(10, 20)
	if !d2.RemoveAbove(5) || !d2.Empty() {
		t.Fatal("RemoveAbove below universe should empty domain")
	}
	d3 := NewDomainRange(10, 20)
	if !d3.RemoveBelow(100) || !d3.Empty() {
		t.Fatal("RemoveBelow above universe should empty domain")
	}
}

func TestDomainKeepOnly(t *testing.T) {
	d := NewDomainRange(0, 10)
	if !d.KeepOnly(4) {
		t.Fatal("KeepOnly reported no change")
	}
	if v, ok := d.Singleton(); !ok || v != 4 {
		t.Fatalf("Singleton = %d,%v", v, ok)
	}
	if d.KeepOnly(4) {
		t.Fatal("KeepOnly on singleton reported change")
	}
	if !d.KeepOnly(7) || !d.Empty() {
		t.Fatal("KeepOnly with absent value should empty")
	}
}

func TestDomainFilter(t *testing.T) {
	d := NewDomainRange(0, 20)
	if !d.Filter(func(v int) bool { return v%3 == 0 }) {
		t.Fatal("Filter reported no change")
	}
	if d.Size() != 7 || d.Min() != 0 || d.Max() != 18 {
		t.Fatalf("filtered: size=%d min=%d max=%d", d.Size(), d.Min(), d.Max())
	}
	if d.Filter(func(v int) bool { return true }) {
		t.Fatal("identity Filter reported change")
	}
}

func TestDomainForEachEarlyStop(t *testing.T) {
	d := NewDomainRange(0, 100)
	n := 0
	d.ForEach(func(v int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("ForEach visited %d values after early stop", n)
	}
}

func TestDomainCloneEqual(t *testing.T) {
	d := NewDomainValues(1, 5, 9)
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Remove(5)
	if d.Equal(c) || !d.Contains(5) {
		t.Fatal("clone aliases original")
	}
	e := NewDomainValues(1, 5, 10)
	if d.Equal(e) {
		t.Fatal("different domains reported equal")
	}
}

func TestDomainString(t *testing.T) {
	if got := NewDomainValues(1, 3).String(); got != "{1,3}" {
		t.Fatalf("String = %q", got)
	}
	big := NewDomainRange(0, 99)
	if got := big.String(); got != "{0..99|100}" {
		t.Fatalf("String = %q", got)
	}
	empty := NewDomainRange(0, 0)
	empty.Remove(0)
	if got := empty.String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestDomainEmptyPanics(t *testing.T) {
	d := NewDomainRange(0, 0)
	d.Remove(0)
	for name, f := range map[string]func(){
		"Min": func() { d.Min() },
		"Max": func() { d.Max() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty domain did not panic", name)
				}
			}()
			f()
		}()
	}
}

// referenceSet mirrors domain operations on a map for property testing.
func TestDomainAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDomainRange(0, 150)
		ref := map[int]bool{}
		for v := 0; v <= 150; v++ {
			ref[v] = true
		}
		refDel := func(pred func(int) bool) {
			for v := range ref {
				if pred(v) {
					delete(ref, v)
				}
			}
		}
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0:
				v := rng.Intn(160) - 5
				d.Remove(v)
				delete(ref, v)
			case 1:
				v := rng.Intn(150)
				d.RemoveBelow(v)
				refDel(func(x int) bool { return x < v })
			case 2:
				v := rng.Intn(150)
				d.RemoveAbove(v)
				refDel(func(x int) bool { return x > v })
			case 3:
				mod := 2 + rng.Intn(5)
				d.Filter(func(x int) bool { return x%mod != 1 })
				refDel(func(x int) bool { return x%mod == 1 })
			}
			if d.Size() != len(ref) {
				return false
			}
			if len(ref) > 0 {
				keys := make([]int, 0, len(ref))
				for v := range ref {
					keys = append(keys, v)
				}
				sort.Ints(keys)
				if d.Min() != keys[0] || d.Max() != keys[len(keys)-1] {
					return false
				}
				for _, v := range keys {
					if !d.Contains(v) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainAnyInRange(t *testing.T) {
	d := NewDomainValues(3, 70, 200)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 2, false},
		{0, 3, true},
		{3, 3, true},
		{4, 69, false},
		{4, 70, true},
		{71, 199, false},
		{71, 300, true},
		{201, 500, false},
		{-100, -1, false},
		{5, 4, false}, // empty range
		{0, 1000, true},
	}
	for _, c := range cases {
		if got := d.AnyInRange(c.lo, c.hi); got != c.want {
			t.Errorf("AnyInRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	empty := NewDomainRange(0, 0)
	empty.Remove(0)
	if empty.AnyInRange(0, 100) {
		t.Error("empty domain AnyInRange true")
	}
}

// Property: AnyInRange agrees with a scan.
func TestDomainAnyInRangeAgainstScan(t *testing.T) {
	f := func(seed int64, lo8, hi8 int8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int, 0, 12)
		for i := 0; i < 12; i++ {
			vals = append(vals, rng.Intn(200))
		}
		d := NewDomainValues(vals...)
		lo, hi := int(lo8)+60, int(hi8)+60
		want := false
		for _, v := range vals {
			if v >= lo && v <= hi {
				want = true
			}
		}
		return d.AnyInRange(lo, hi) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
