// Package core implements the paper's module placer: given a
// heterogeneous partial region and a set of modules with design
// alternatives, it computes a placement minimising the occupied height —
// and thereby maximising average resource utilization — by constraint
// programming over the geost kernel.
//
// The constraint model follows Section III of the paper:
//
//   - M_a (inside the region) and M_b (resource-type match) are fused
//     into per-shape valid-anchor bitmaps computed by ValidAnchors;
//   - M_c (non-overlap) is the geost kernel's pairwise filter;
//   - the objective (eq. 6) is the geost occupied-height variable,
//     minimised by branch-and-bound.
package core

import (
	"repro/internal/fabric"
	"repro/internal/geost"
	"repro/internal/grid"
	"repro/internal/module"
)

// ValidAnchors computes the anchor positions where shape s can be
// placed on region r: anchor (x, y) is valid iff every tile of s,
// translated by (x, y), lands on a region tile of exactly the tile's
// resource kind. This realises the paper's constraints M_a ∧ M_b — the
// geost extension of boxes and forbidden regions with a resource
// property.
func ValidAnchors(r *fabric.Region, s *module.Shape) *grid.Bitmap {
	b := grid.NewBitmap(r.W(), r.H())
	maxX := r.W() - s.W()
	maxY := r.H() - s.H()
	tiles := s.Tiles()
	for y := 0; y <= maxY; y++ {
	anchors:
		for x := 0; x <= maxX; x++ {
			for _, t := range tiles {
				if r.KindAt(x+t.At.X, y+t.At.Y) != t.Kind {
					continue anchors
				}
			}
			b.Set(x, y, true)
		}
	}
	return b
}

// ShapeGeomFor converts a module shape into the geost kernel's geometry,
// including its valid-anchor bitmap on r.
func ShapeGeomFor(r *fabric.Region, s *module.Shape) geost.ShapeGeom {
	return geost.ShapeGeom{
		Points: s.Points(),
		W:      s.W(),
		H:      s.H(),
		Valid:  ValidAnchors(r, s),
		Hist:   s.Histogram(),
	}
}

// CapacityPrefix returns, for every h in 0..r.H(), the per-kind tile
// capacity of the region's first h rows. It feeds the geost kernel's
// capacity-based height bound.
func CapacityPrefix(r *fabric.Region) []fabric.Histogram {
	out := make([]fabric.Histogram, r.H()+1)
	for y := 0; y < r.H(); y++ {
		out[y+1] = out[y]
		for x := 0; x < r.W(); x++ {
			out[y+1].Add(r.KindAt(x, y))
		}
	}
	return out
}
