package recobus

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
)

// Bitstream describes one module's partial configuration bitstream as
// produced by the assembly step of the flow: which frames it touches and
// what loading it costs over the configuration port.
type Bitstream struct {
	Module       string
	ShapeIndex   int
	X, Y         int
	Frames       int
	Bytes        int
	ReconfigTime time.Duration
}

// String summarises the bitstream.
func (b Bitstream) String() string {
	return fmt.Sprintf("%s@(%d,%d)/shape%d: %d frames, %d bytes, %v",
		b.Module, b.X, b.Y, b.ShapeIndex, b.Frames, b.Bytes, b.ReconfigTime)
}

// Assemble simulates bitstream assembly for a placement result: for
// every placed module it derives the configuration frames its bounding
// box touches under the frame model and the time to stream them through
// the configuration port.
func Assemble(region *fabric.Region, res *core.Result, fm fabric.FrameModel) ([]Bitstream, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, fmt.Errorf("recobus: cannot assemble bitstreams for an unplaced result")
	}
	out := make([]Bitstream, 0, len(res.Placements))
	for _, p := range res.Placements {
		frames := fm.FrameCount(region, p.Bounds())
		out = append(out, Bitstream{
			Module:       p.Module.Name(),
			ShapeIndex:   p.ShapeIndex,
			X:            p.At.X,
			Y:            p.At.Y,
			Frames:       frames,
			Bytes:        frames * fm.FrameBytes,
			ReconfigTime: fm.ReconfigTime(frames),
		})
	}
	return out, nil
}

// TotalReconfigTime sums the loading times of a bitstream set: the cost
// of configuring the whole module set once.
func TotalReconfigTime(bs []Bitstream) time.Duration {
	var total time.Duration
	for _, b := range bs {
		total += b.ReconfigTime
	}
	return total
}

// bitstreamMagic identifies encoded bitstream blobs.
const bitstreamMagic = 0x52435242 // "RCRB"

// Encode serialises the bitstream descriptor plus synthetic frame
// payload into a self-contained blob (magic, header, zeroed frame data),
// standing in for the device-specific binary the real tool chain emits.
func (b Bitstream) Encode() []byte {
	name := []byte(b.Module)
	buf := make([]byte, 0, 4+4+len(name)+5*4+b.Bytes)
	var tmp [4]byte
	put := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(bitstreamMagic)
	put(uint32(len(name)))
	buf = append(buf, name...)
	put(uint32(b.ShapeIndex))
	put(uint32(b.X))
	put(uint32(b.Y))
	put(uint32(b.Frames))
	put(uint32(b.Bytes))
	buf = append(buf, make([]byte, b.Bytes)...)
	return buf
}

// DecodeBitstream parses a blob produced by Encode.
func DecodeBitstream(data []byte) (Bitstream, error) {
	var b Bitstream
	get := func() (uint32, bool) {
		if len(data) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		return v, true
	}
	magic, ok := get()
	if !ok || magic != bitstreamMagic {
		return b, fmt.Errorf("recobus: bad bitstream magic")
	}
	nameLen, ok := get()
	if !ok || int(nameLen) > len(data) {
		return b, fmt.Errorf("recobus: truncated bitstream name")
	}
	b.Module = string(data[:nameLen])
	data = data[nameLen:]
	fields := []*int{&b.ShapeIndex, &b.X, &b.Y, &b.Frames, &b.Bytes}
	for _, f := range fields {
		v, ok := get()
		if !ok {
			return b, fmt.Errorf("recobus: truncated bitstream header")
		}
		*f = int(v)
	}
	if len(data) != b.Bytes {
		return b, fmt.Errorf("recobus: payload size %d != header %d", len(data), b.Bytes)
	}
	return b, nil
}
