package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeFiles(t *testing.T) (region, modules, schedule string) {
	t.Helper()
	dir := t.TempDir()
	region = filepath.Join(dir, "region.spec")
	modules = filepath.Join(dir, "modules.spec")
	schedule = filepath.Join(dir, "sched.spec")
	files := map[string]string{
		region:   "region t 20 12\nbramcols 4 14\nbus 0\n",
		modules:  "module a\ndemand 8 1 0\nalternatives 2\nmodule b\nshape\nrect 0 0 3 2 CLB\nend\n",
		schedule: "phase boot 10ms\nuse a b\nphase run 30ms\nuse a\n",
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return region, modules, schedule
}

func TestRunFreshAndPersistent(t *testing.T) {
	region, modules, schedule := writeFiles(t)
	for _, persistent := range []bool{false, true} {
		if err := run(region, modules, schedule, persistent, 5*time.Second, 200, true); err != nil {
			t.Fatalf("persistent=%v: %v", persistent, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	region, modules, schedule := writeFiles(t)
	if err := run("/nonexistent", modules, schedule, false, time.Second, 0, false); err == nil {
		t.Error("missing region accepted")
	}
	if err := run(region, "/nonexistent", schedule, false, time.Second, 0, false); err == nil {
		t.Error("missing modules accepted")
	}
	if err := run(region, modules, "/nonexistent", false, time.Second, 0, false); err == nil {
		t.Error("missing schedule accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.spec")
	if err := os.WriteFile(bad, []byte("use ghost\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(region, modules, bad, false, time.Second, 0, false); err == nil {
		t.Error("bad schedule accepted")
	}
}
