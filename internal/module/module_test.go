package module

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func twoShapes() (*Shape, *Shape) {
	a := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.CLB},
		{grid.Pt(1, 0), fabric.CLB},
	})
	b := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.CLB},
		{grid.Pt(0, 1), fabric.CLB},
	})
	return a, b
}

func TestNewModuleValidation(t *testing.T) {
	a, _ := twoShapes()
	if _, err := NewModule(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewModule("m"); err == nil {
		t.Error("zero shapes accepted")
	}
	if _, err := NewModule("m", nil); err == nil {
		t.Error("nil shape accepted")
	}
	m, err := NewModule("m", a)
	if err != nil || m.Name() != "m" || m.NumShapes() != 1 {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestModuleDeduplicatesShapes(t *testing.T) {
	a, b := twoShapes()
	aCopy := MustShape(a.Tiles())
	m := MustModule("m", a, aCopy, b, b)
	if m.NumShapes() != 2 {
		t.Fatalf("NumShapes = %d, want 2 after dedup", m.NumShapes())
	}
	if !m.Shape(0).Equal(a) || !m.Shape(1).Equal(b) {
		t.Fatal("dedup reordered shapes")
	}
}

func TestModuleWithShapes(t *testing.T) {
	a, b := twoShapes()
	m := MustModule("m", a, b)
	only, err := m.WithShapes(1)
	if err != nil {
		t.Fatal(err)
	}
	if only.NumShapes() != 1 || !only.Shape(0).Equal(b) {
		t.Fatal("WithShapes(1) wrong")
	}
	if _, err := m.WithShapes(); err == nil {
		t.Error("WithShapes() accepted")
	}
	if _, err := m.WithShapes(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	first := m.FirstShapeOnly()
	if first.NumShapes() != 1 || !first.Shape(0).Equal(a) {
		t.Fatal("FirstShapeOnly wrong")
	}
	// Original module unchanged.
	if m.NumShapes() != 2 {
		t.Fatal("WithShapes mutated the source module")
	}
}

func TestModuleEnvelope(t *testing.T) {
	small := MustShape([]Tile{{grid.Pt(0, 0), fabric.CLB}})
	big := MustShape([]Tile{
		{grid.Pt(0, 0), fabric.CLB},
		{grid.Pt(1, 0), fabric.CLB},
		{grid.Pt(2, 0), fabric.BRAM},
	})
	m := MustModule("m", small, big)
	lo, hi := m.Envelope()
	if lo[fabric.CLB] != 1 || hi[fabric.CLB] != 2 {
		t.Fatalf("CLB envelope %d..%d, want 1..2", lo[fabric.CLB], hi[fabric.CLB])
	}
	if lo[fabric.BRAM] != 0 || hi[fabric.BRAM] != 1 {
		t.Fatalf("BRAM envelope %d..%d, want 0..1", lo[fabric.BRAM], hi[fabric.BRAM])
	}
	if m.MinSize() != 1 {
		t.Fatalf("MinSize = %d, want 1", m.MinSize())
	}
	if !strings.Contains(m.String(), "2 shapes") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestModuleStringEqualEnvelope(t *testing.T) {
	a, b := twoShapes()
	m := MustModule("m", a, b)
	s := m.String()
	if !strings.Contains(s, "CLB:2") || strings.Contains(s, "..") {
		t.Fatalf("String = %q, want single envelope with CLB:2", s)
	}
}
