// Command fabricinfo inspects fabric models: the predefined device
// catalog or a partial-region description file. It prints dimensions,
// the per-kind resource histogram, the configuration-frame cost of a
// full reconfiguration, and optionally the tile map.
//
// Examples:
//
//	fabricinfo -list
//	fabricinfo -device virtex4-like-72x60 -map
//	fabricinfo -region region.spec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fabric"
	"repro/internal/recobus"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the device catalog")
		device     = flag.String("device", "", "predefined device name")
		regionPath = flag.String("region", "", "partial-region description file")
		showMap    = flag.Bool("map", false, "print the tile map")
	)
	flag.Parse()

	if *list {
		for _, n := range fabric.Catalog() {
			dev, err := fabric.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fabricinfo:", err)
				os.Exit(1)
			}
			fmt.Printf("%-22s %3dx%-3d %s\n", n, dev.W(), dev.H(), dev.Histogram())
		}
		return
	}
	if err := run(*device, *regionPath, *showMap); err != nil {
		fmt.Fprintln(os.Stderr, "fabricinfo:", err)
		os.Exit(1)
	}
}

func run(device, regionPath string, showMap bool) error {
	var region *fabric.Region
	switch {
	case device != "" && regionPath != "":
		return fmt.Errorf("use -device or -region, not both")
	case device != "":
		dev, err := fabric.ByName(device)
		if err != nil {
			return err
		}
		region = dev.FullRegion()
	case regionPath != "":
		f, err := os.Open(regionPath)
		if err != nil {
			return err
		}
		defer f.Close()
		spec, err := recobus.ParseRegion(f)
		if err != nil {
			return err
		}
		region, err = spec.Build()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -list, -device or -region")
	}

	hist := region.Histogram()
	fmt.Printf("device:    %s\n", region.Device().Name())
	fmt.Printf("size:      %d x %d tiles\n", region.W(), region.H())
	fmt.Printf("resources: %s\n", hist)
	fmt.Printf("placeable: %d tiles (%.1f%%)\n", hist.Placeable(),
		100*float64(hist.Placeable())/float64(hist.Total()))

	fm := fabric.DefaultFrameModel()
	frames := fm.FrameCount(region, region.Bounds())
	fmt.Printf("full reconfiguration: %d frames, %d bytes, %v\n",
		frames, frames*fm.FrameBytes, fm.ReconfigTime(frames))

	if showMap {
		fmt.Println()
		fmt.Println(region)
	}
	return nil
}
