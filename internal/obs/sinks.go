package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// JSONL is a Recorder that writes one JSON object per event, stamped
// with the wall-clock offset (milliseconds) since the sink was created.
// It buffers internally; call Flush before reading the output. Safe for
// concurrent Record calls.
type JSONL struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	start time.Time
}

// jsonEvent is the trace wire format. Numeric zero fields that carry no
// information for the kind are elided via omitempty.
type jsonEvent struct {
	TMs       float64 `json:"t_ms"`
	Kind      string  `json:"kind"`
	Phase     string  `json:"phase,omitempty"`
	Var       string  `json:"var,omitempty"`
	Value     int     `json:"value,omitempty"`
	Depth     int     `json:"depth,omitempty"`
	Prop      string  `json:"prop,omitempty"`
	Removed   int     `json:"removed,omitempty"`
	Objective int     `json:"objective,omitempty"`
	Nodes     int64   `json:"nodes,omitempty"`
	Worker    int     `json:"worker,omitempty"`
	Trace     string  `json:"trace,omitempty"`
	Span      string  `json:"span,omitempty"`
	SpanID    int     `json:"span_id,omitempty"`
	Parent    int     `json:"parent,omitempty"`
	StartMs   float64 `json:"start_ms,omitempty"`
	DurMs     float64 `json:"dur_ms,omitempty"`
	Attrs     string  `json:"attrs,omitempty"`
}

// NewJSONL returns a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	//solverlint:allow nondeterminism the stream epoch stamps event lines for humans; the solver never reads it back
	return &JSONL{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// Record implements Recorder.
func (j *JSONL) Record(e Event) {
	je := jsonEvent{
		//solverlint:allow nondeterminism event timestamps are output-only telemetry; no search decision reads them
		TMs:       float64(time.Since(j.start).Microseconds()) / 1000,
		Kind:      e.Kind.String(),
		Phase:     e.Phase,
		Var:       e.Var,
		Value:     e.Value,
		Depth:     e.Depth,
		Prop:      e.Prop,
		Removed:   e.Removed,
		Objective: e.Objective,
		Nodes:     e.Nodes,
		Worker:    e.Worker,
		Trace:     e.Trace,
		Span:      e.Span,
		SpanID:    e.SpanID,
		Parent:    e.Parent,
		StartMs:   float64(e.Offset.Microseconds()) / 1000,
		DurMs:     float64(e.Dur.Microseconds()) / 1000,
		Attrs:     e.Attrs,
	}
	j.mu.Lock()
	// Encoding errors surface at Flush; a trace must never abort a solve.
	_ = j.enc.Encode(je)
	j.mu.Unlock()
}

// Flush drains the internal buffer to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Stats is a Recorder that aggregates the event stream into a Registry:
// totals for branches/backtracks/propagations/prunes, pruned-value
// counts, per-propagator run counters, and the incumbent objective
// trajectory (gauge solver_best_objective, counter
// solver_incumbents_total).
type Stats struct {
	reg *Registry

	branches     *Counter
	backtracks   *Counter
	propagations *Counter
	prunes       *Counter
	pruned       *Counter
	solutions    *Counter
	incumbents   *Counter
	best         *Gauge
	maxDepth     *Gauge

	mu      sync.Mutex
	perProp map[string]*Counter
	maxSeen int
}

// NewStats returns a Stats aggregator feeding reg.
func NewStats(reg *Registry) *Stats {
	return &Stats{
		reg:          reg,
		branches:     reg.Counter("solver_branches_total"),
		backtracks:   reg.Counter("solver_backtracks_total"),
		propagations: reg.Counter("solver_propagations_total"),
		prunes:       reg.Counter("solver_prunes_total"),
		pruned:       reg.Counter("solver_pruned_values_total"),
		solutions:    reg.Counter("solver_solutions_total"),
		incumbents:   reg.Counter("solver_incumbents_total"),
		best:         reg.Gauge("solver_best_objective"),
		maxDepth:     reg.Gauge("solver_max_depth"),
		perProp:      map[string]*Counter{},
	}
}

// Record implements Recorder.
func (s *Stats) Record(e Event) {
	switch e.Kind {
	case KindBranch:
		s.branches.Inc()
		s.noteDepth(e.Depth)
	case KindBacktrack:
		s.backtracks.Inc()
	case KindPropagate:
		s.propagations.Inc()
		s.propCounter(e.Prop).Inc()
	case KindPrune:
		s.prunes.Inc()
		s.pruned.Add(int64(e.Removed))
	case KindSolution:
		s.solutions.Inc()
	case KindIncumbent:
		s.incumbents.Inc()
		s.best.Set(float64(e.Objective))
	}
}

func (s *Stats) noteDepth(d int) {
	s.mu.Lock()
	if d > s.maxSeen {
		s.maxSeen = d
		s.maxDepth.Set(float64(d))
	}
	s.mu.Unlock()
}

func (s *Stats) propCounter(name string) *Counter {
	s.mu.Lock()
	c, ok := s.perProp[name]
	if !ok {
		c = s.reg.Counter(`solver_propagator_runs_total{propagator="` + name + `"}`)
		s.perProp[name] = c
	}
	s.mu.Unlock()
	return c
}

// family splits a possibly-labelled metric name into its family.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (families sorted, one TYPE comment per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]string, 0, len(r.counters))
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n := range r.counters {
		counters = append(counters, n)
	}
	gauges := make([]string, 0, len(r.gauges))
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	hists := make([]string, 0, len(r.hists))
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n := range r.hists {
		hists = append(hists, n)
	}
	cv := map[string]int64{}
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n, c := range r.counters {
		cv[n] = c.Value()
	}
	gv := map[string]float64{}
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n, g := range r.gauges {
		gv[n] = g.Value()
	}
	hv := map[string]histSnapshot{}
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n, h := range r.hists {
		hv[n] = h.snapshot()
	}
	r.mu.Unlock()

	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)

	bw := bufio.NewWriter(w)
	lastFam := ""
	for _, n := range counters {
		if f := family(n); f != lastFam {
			fmt.Fprintf(bw, "# TYPE %s counter\n", f)
			lastFam = f
		}
		fmt.Fprintf(bw, "%s %d\n", n, cv[n])
	}
	for _, n := range gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n", family(n))
		fmt.Fprintf(bw, "%s %s\n", n, formatFloat(gv[n]))
	}
	for _, n := range hists {
		s := hv[n]
		fam, labels := splitLabels(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		cum := uint64(0)
		for i, b := range s.bounds {
			cum += s.counts[i]
			fmt.Fprintf(bw, "%s_bucket{%sle=\"%s\"} %d\n", fam, labels, formatFloat(b), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, labels, s.count)
		suffix := ""
		if labels != "" {
			suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", fam, suffix, formatFloat(s.sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", fam, suffix, s.count)
	}
	return bw.Flush()
}

// splitLabels returns the family and the inner label text (with a
// trailing comma when non-empty) of a possibly-labelled name.
func splitLabels(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteSummary renders a human-readable summary table: counters and
// gauges first, then one line per histogram with count, mean and the
// p50/p90/p99 quantile estimates.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type kv struct {
		name string
		val  string
	}
	var scalars []kv
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n, c := range r.counters {
		scalars = append(scalars, kv{n, fmt.Sprintf("%d", c.Value())})
	}
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n, g := range r.gauges {
		scalars = append(scalars, kv{n, formatFloat(g.Value())})
	}
	type hrow struct {
		name string
		s    histSnapshot
	}
	var hrows []hrow
	//solverlint:allow nondeterminism keys are collected then sorted before rendering; iteration order never escapes
	for n, h := range r.hists {
		hrows = append(hrows, hrow{n, h.snapshot()})
	}
	r.mu.Unlock()

	sort.Slice(scalars, func(i, j int) bool { return scalars[i].name < scalars[j].name })
	sort.Slice(hrows, func(i, j int) bool { return hrows[i].name < hrows[j].name })

	bw := bufio.NewWriter(w)
	if len(scalars) > 0 {
		fmt.Fprintln(bw, "-- metrics --")
		for _, s := range scalars {
			fmt.Fprintf(bw, "%-64s %s\n", s.name, s.val)
		}
	}
	if len(hrows) > 0 {
		fmt.Fprintln(bw, "-- histograms --")
		fmt.Fprintf(bw, "%-48s %8s %12s %12s %12s %12s\n", "name", "count", "mean", "p50", "p90", "max")
		for _, hr := range hrows {
			s := hr.s
			if s.count == 0 {
				fmt.Fprintf(bw, "%-48s %8d\n", hr.name, 0)
				continue
			}
			mean := s.sum / float64(s.count)
			h := &Histogram{bounds: s.bounds, counts: s.counts, count: s.count, sum: s.sum, min: s.min, max: s.max}
			fmt.Fprintf(bw, "%-48s %8d %12.6g %12.6g %12.6g %12.6g\n",
				hr.name, s.count, mean, h.Quantile(0.5), h.Quantile(0.9), s.max)
		}
	}
	return bw.Flush()
}
