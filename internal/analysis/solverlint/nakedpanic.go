package solverlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedPanic forbids undocumented panics in library packages. The
// solver uses panic deliberately for invariant violations that always
// indicate a caller bug (Value() on an unassigned variable, Pop
// without Push, empty-domain constructors) — but only when the
// function's doc comment says so, turning the panic into API contract
// rather than landmine. A panic inside a function whose documentation
// does not mention it is either a missing doc sentence or an error
// path that should return an error; both are findings.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "panic in library packages only inside functions whose doc comment documents the panic",
	Run:  runNakedPanic,
}

func runNakedPanic(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if docMentionsPanic(fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				pass.Reportf(call.Pos(),
					"undocumented panic in %s: document the invariant in the doc comment (mention \"panic\"), or return an error",
					fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// docMentionsPanic reports whether the doc comment contains the word
// "panic" in any form ("panics if", "Panics when", ...).
func docMentionsPanic(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(strings.ToLower(doc.Text()), "panic")
}
