// Package obsgate is a fixture: Recorder.Record call sites with and
// without the required nil guard.
package obsgate

// Event stands in for obs.Event.
type Event struct {
	Kind  int
	Depth int
}

// Recorder stands in for obs.Recorder.
type Recorder interface {
	Record(Event)
}

type options struct {
	rec Recorder
}

type store struct {
	rec Recorder
}

func guardedIf(o *options) {
	if o.rec != nil {
		o.rec.Record(Event{Kind: 1}) // clean: enclosing nil check
	}
}

func guardedConjunction(o *options, depth int) {
	if depth > 0 && o.rec != nil {
		o.rec.Record(Event{Depth: depth}) // clean: nil check and-ed on
	}
}

func guardedEarlyReturn(o *options) {
	if o.rec == nil {
		return
	}
	o.rec.Record(Event{Kind: 2}) // clean: early-return guard
}

func unguarded(o *options) {
	o.rec.Record(Event{Kind: 3}) // want `unguarded o\.rec\.Record call`
}

func wrongGuard(o *options, s *store) {
	if s.rec != nil {
		o.rec.Record(Event{Kind: 4}) // want `unguarded o\.rec\.Record call`
	}
}

// contractGuarded mirrors Store.notePrune: the guard is the documented
// caller contract.
func contractGuarded(s *store) {
	//solverlint:allow obsgate callers check s.rec != nil per this helper's doc contract
	s.rec.Record(Event{Kind: 5})
}

// forwarding stands in for recorder decorators: Record methods forward
// unconditionally, the caller holds the guard.
type forwarding struct {
	inner Recorder
}

// Record implements Recorder.
func (f forwarding) Record(e Event) {
	f.inner.Record(e) // clean: inside a Record method
}
