package module

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/grid"
)

// Demand states how many tiles of each placeable resource a module
// implementation needs. It corresponds to the resource requirements the
// paper's workload generator draws (20–100 CLBs, 0–4 embedded memory
// blocks).
type Demand struct {
	CLB  int
	BRAM int
	DSP  int
}

// Total returns the total tile count of the demand.
func (d Demand) Total() int { return d.CLB + d.BRAM + d.DSP }

// Validate reports the first inconsistency: demands must be non-negative
// and include at least one tile.
func (d Demand) Validate() error {
	if d.CLB < 0 || d.BRAM < 0 || d.DSP < 0 {
		return fmt.Errorf("module: negative demand %+v", d)
	}
	if d.Total() == 0 {
		return fmt.Errorf("module: empty demand")
	}
	return nil
}

// Histogram converts the demand into a fabric histogram.
func (d Demand) Histogram() fabric.Histogram {
	var h fabric.Histogram
	h[fabric.CLB] = d.CLB
	h[fabric.BRAM] = d.BRAM
	h[fabric.DSP] = d.DSP
	return h
}

// Side selects on which side of a synthesised layout the dedicated
// resource columns sit. Two sides of the same bounding box are the
// paper's "internal layout" alternatives: same external shape, dedicated
// resources at different positions within it.
type Side uint8

// Dedicated-column placement sides.
const (
	DedicatedLeft Side = iota
	DedicatedRight
)

// String names the side.
func (s Side) String() string {
	if s == DedicatedLeft {
		return "left"
	}
	return "right"
}

// Synthesize builds one shape realising demand within a bounding box of
// the given width, mirroring how ReCoBus-style module implementations
// are floorplanned: dedicated resources (BRAM, then DSP) occupy their own
// full columns on the chosen side — matching the column structure of the
// target fabric — and CLBs fill the remaining columns bottom-up as
// evenly as possible.
//
// The resulting shape is generally not a full rectangle: trailing CLB
// columns may be shorter, and dedicated columns only carry as many tiles
// as demanded. That unevenness is what makes 180° rotation a genuinely
// different layout.
func Synthesize(d Demand, width int, side Side) (*Shape, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if width < 1 {
		return nil, fmt.Errorf("module: width %d < 1", width)
	}
	dedicated := 0
	if d.BRAM > 0 {
		dedicated++
	}
	if d.DSP > 0 {
		dedicated++
	}
	clbCols := width - dedicated
	if d.CLB > 0 && clbCols < 1 {
		return nil, fmt.Errorf("module: width %d leaves no CLB columns (dedicated=%d)", width, dedicated)
	}
	if d.CLB == 0 && dedicated == 0 {
		return nil, fmt.Errorf("module: demand %+v has nothing to lay out", d)
	}

	// Assign column x positions: dedicated columns grouped at the chosen
	// side, BRAM outermost.
	var bramX, dspX = -1, -1
	var clbStart int
	switch side {
	case DedicatedLeft:
		next := 0
		if d.BRAM > 0 {
			bramX = next
			next++
		}
		if d.DSP > 0 {
			dspX = next
			next++
		}
		clbStart = next
	case DedicatedRight:
		next := width - 1
		if d.BRAM > 0 {
			bramX = next
			next--
		}
		if d.DSP > 0 {
			dspX = next
			next--
		}
		clbStart = 0
	default:
		return nil, fmt.Errorf("module: invalid side %d", side)
	}

	tiles := make([]Tile, 0, d.Total())
	stack := func(x, n int, k fabric.Kind) {
		for y := 0; y < n; y++ {
			tiles = append(tiles, Tile{At: grid.Pt(x, y), Kind: k})
		}
	}
	if bramX >= 0 {
		stack(bramX, d.BRAM, fabric.BRAM)
	}
	if dspX >= 0 {
		stack(dspX, d.DSP, fabric.DSP)
	}
	if d.CLB > 0 {
		base := d.CLB / clbCols
		extra := d.CLB % clbCols
		for i := 0; i < clbCols; i++ {
			n := base
			if i < extra {
				n++
			}
			stack(clbStart+i, n, fabric.CLB)
		}
	}
	return NewShape(tiles)
}

// BalancedWidth returns a bounding-box width giving a roughly square
// layout for demand d: the dedicated columns plus enough CLB columns
// that column height ≈ width.
func BalancedWidth(d Demand) int {
	dedicated := 0
	if d.BRAM > 0 {
		dedicated++
	}
	if d.DSP > 0 {
		dedicated++
	}
	if d.CLB == 0 {
		if dedicated == 0 {
			return 1
		}
		return dedicated
	}
	clbCols := int(math.Round(math.Sqrt(float64(d.CLB))))
	if clbCols < 1 {
		clbCols = 1
	}
	return clbCols + dedicated
}
