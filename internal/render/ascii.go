// Package render draws floorplans: partial regions, module shapes and
// placements, as ASCII art (for terminals and golden tests) and as SVG
// (for figure reproduction). The ASCII renderer is the workhorse behind
// the regenerated Figures 1, 3, 4 and 5 of the paper.
package render

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// moduleGlyph returns the letter used for the i-th module: A..Z then
// a..z then 0..9, cycling.
func moduleGlyph(i int) byte {
	const glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	return glyphs[i%len(glyphs)]
}

// Region renders the bare resource map of a region: one glyph per tile
// (see fabric.Kind.Rune), top row first.
func Region(r *fabric.Region) string {
	return r.String()
}

// Placements renders a placement on its region: module tiles as the
// module's letter, free placeable tiles as the resource glyph, and
// unusable tiles as '#' (static) or the resource glyph (IOB/clock).
func Placements(r *fabric.Region, ps []core.Placement) string {
	w, h := r.W(), r.H()
	cells := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cells[y*w+x] = r.KindAt(x, y).Rune()
		}
	}
	for i, p := range ps {
		g := moduleGlyph(i)
		for _, t := range p.Tiles() {
			if t.X >= 0 && t.Y >= 0 && t.X < w && t.Y < h {
				cells[t.Y*w+t.X] = g
			}
		}
	}
	var sb strings.Builder
	for y := h - 1; y >= 0; y-- {
		sb.Write(cells[y*w : (y+1)*w])
		if y > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// PlacementsWithRuler is Placements with a row index gutter and a
// legend naming each module letter.
func PlacementsWithRuler(r *fabric.Region, ps []core.Placement) string {
	body := Placements(r, ps)
	lines := strings.Split(body, "\n")
	var sb strings.Builder
	for i, line := range lines {
		y := r.H() - 1 - i
		fmt.Fprintf(&sb, "%3d |%s|\n", y, line)
	}
	sb.WriteString("    ")
	sb.WriteString(strings.Repeat("-", r.W()+2))
	sb.WriteByte('\n')
	for i, p := range ps {
		fmt.Fprintf(&sb, "  %c = %s (shape %d at %v)\n",
			moduleGlyph(i), p.Module.Name(), p.ShapeIndex, p.At)
	}
	return sb.String()
}

// Shape renders a single module shape (resource glyphs, '.' for empty
// bounding-box cells).
func Shape(s *module.Shape) string {
	return s.String()
}

// ShapeAlternatives renders all design alternatives of a module side by
// side, as in Figure 1 of the paper.
func ShapeAlternatives(m *module.Module) string {
	blocks := make([][]string, m.NumShapes())
	width := make([]int, m.NumShapes())
	maxH := 0
	for i, s := range m.Shapes() {
		blocks[i] = strings.Split(s.String(), "\n")
		width[i] = s.W()
		if len(blocks[i]) > maxH {
			maxH = len(blocks[i])
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d design alternatives\n", m.Name(), m.NumShapes())
	// Bottom-align the blocks: shapes share a baseline, as in Figure 1.
	for row := 0; row < maxH; row++ {
		for i := range blocks {
			pad := maxH - len(blocks[i])
			var line string
			if row >= pad {
				line = blocks[i][row-pad]
			}
			fmt.Fprintf(&sb, "%-*s", width[i], line)
			if i < len(blocks)-1 {
				sb.WriteString("   ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SideBySide joins two multi-line renders horizontally with the given
// captions, used for the with/without-alternatives comparisons of
// Figures 3 and 5.
func SideBySide(leftCaption, left, rightCaption, right string) string {
	ll := strings.Split(left, "\n")
	rl := strings.Split(right, "\n")
	lw := len(leftCaption)
	for _, l := range ll {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s   %s\n", lw, leftCaption, rightCaption)
	n := len(ll)
	if len(rl) > n {
		n = len(rl)
	}
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ll) {
			l = ll[i]
		}
		if i < len(rl) {
			r = rl[i]
		}
		fmt.Fprintf(&sb, "%-*s   %s\n", lw, l, r)
	}
	return sb.String()
}

// AnchorMask renders the valid-anchor positions of a shape on a region
// (Figure 4b: the gray areas where a module may be placed): '*' marks a
// valid anchor, resource glyphs elsewhere.
func AnchorMask(r *fabric.Region, mask *grid.Bitmap) string {
	var sb strings.Builder
	for y := r.H() - 1; y >= 0; y-- {
		for x := 0; x < r.W(); x++ {
			if mask.Get(x, y) {
				sb.WriteByte('*')
			} else {
				sb.WriteByte(r.KindAt(x, y).Rune())
			}
		}
		if y > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
