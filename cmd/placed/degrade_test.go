package main

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"
)

// chaosBody is a small self-contained workload for the fault-path
// tests: fast for the baseline heuristics, deterministic for replay.
const chaosBody = `{"fabric":"spartan-like-24x16","generate":{"seed":3,"numModules":3,"clbMin":4,"clbMax":6,"noBram":true,"alternatives":2},"options":{"stallNodes":200,"timeoutMs":5000}}`

func chaosOpts(faults string, degrade bool) cliOpts {
	return cliOpts{
		workers:        2,
		cacheEntries:   64,
		maxInFlight:    16,
		defaultTimeout: 20 * time.Second,
		maxTimeout:     30 * time.Second,
		accessLog:      "",
		faults:         faults,
		faultsSeed:     1,
		degrade:        degrade,
	}
}

func postPlace(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestDaemonShed429 drives the admission-shedding failure path end to
// end: with the queue site erroring and degradation off, the daemon
// answers 429 with retry guidance.
func TestDaemonShed429(t *testing.T) {
	base, done := startDaemon(t, chaosOpts("queue:error:1", false))
	resp, body := postPlace(t, base, chaosBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
	if err := sigterm(t, done); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// TestDaemonTimeout504 drives the deadline-miss failure path end to
// end with degradation off.
func TestDaemonTimeout504(t *testing.T) {
	base, done := startDaemon(t, chaosOpts("solver:timeout:1", false))
	resp, body := postPlace(t, base, chaosBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if err := sigterm(t, done); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// TestDaemonDegraded200 is the daemon-level acceptance test: every
// exact solve misses its deadline, yet -degrade turns the failure into
// a 200 tagged approximate, and the fault counters surface in stats.
func TestDaemonDegraded200(t *testing.T) {
	base, done := startDaemon(t, chaosOpts("solver:timeout:1", true))
	resp, body := postPlace(t, base, chaosBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Placement-Quality"); got != "approximate" {
		t.Fatalf("X-Placement-Quality = %q, want approximate", got)
	}
	if !bytes.Contains(body, []byte(`"quality":"approximate"`)) {
		t.Fatalf("body not tagged approximate: %s", body)
	}
	if !bytes.Contains(body, []byte(`"found":true`)) {
		t.Fatalf("degraded answer found no placement: %s", body)
	}

	stats, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(stats.Body)
	stats.Body.Close()
	for _, want := range []string{`"degraded":1`, `"solver:timeout"`} {
		if !bytes.Contains(statsBody, []byte(want)) {
			t.Fatalf("stats missing %s: %s", want, statsBody)
		}
	}

	if err := sigterm(t, done); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// TestRunBadFaultSpec: a malformed -faults value must fail startup,
// not silently run without injection.
func TestRunBadFaultSpec(t *testing.T) {
	o := chaosOpts("solver:exploded:1", false)
	o.addr = freePort(t)
	if err := run(o); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
}
