package obs

import (
	"math"
	"sync"
)

// Histogram is a fixed-bucket histogram with Prometheus-style cumulative
// exposition and quantile estimation by linear interpolation within
// buckets. It is safe for concurrent Observe calls.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1; last bucket is (bounds[n-1], +Inf)
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// newHistogram builds a histogram over the given bucket upper bounds
// (an implicit +Inf bucket is appended). Bounds that are not strictly
// increasing panic: buckets would silently misclassify observations.
func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExpBounds returns n exponentially growing bucket bounds starting at
// start with the given factor — the usual shape for latencies. It
// panics unless start > 0, factor > 1 and n >= 1.
func ExpBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBounds needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBounds returns n bounds start, start+step, ... It panics
// unless step > 0 and n >= 1.
func LinearBounds(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic("obs: LinearBounds needs step > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// DefDurationBounds are the default bounds for phase/latency timers, in
// seconds: 10 µs .. ~84 s, doubling.
var DefDurationBounds = ExpBounds(10e-6, 2, 24)

// Observe records one sample. No-op on a nil Histogram (as handed out
// by a nil Registry).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	idx := len(h.bounds)
	// Bounds lists are short (tens); linear scan beats binary search.
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) assuming samples are
// uniformly distributed within each bucket, the same model Prometheus'
// histogram_quantile uses. The estimate is clamped to the observed
// [min, max]; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.counts)-1 {
			var lo, hi float64
			switch {
			case i == len(h.bounds): // +Inf bucket
				return h.max
			case i == 0:
				lo, hi = 0, h.bounds[0]
				if h.min < lo {
					lo = h.min
				}
			default:
				lo, hi = h.bounds[i-1], h.bounds[i]
			}
			est := lo + (hi-lo)*(rank-cum)/float64(c)
			return clamp(est, h.min, h.max)
		}
		cum = next
	}
	return h.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// histSnapshot is a consistent copy for exposition.
type histSnapshot struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := histSnapshot{
		bounds: h.bounds,
		counts: append([]uint64(nil), h.counts...),
		count:  h.count,
		sum:    h.sum,
		min:    h.min,
		max:    h.max,
	}
	return s
}
