// Package syncmisuse is a fixture: classic sync-primitive misuse.
package syncmisuse

import "sync"

// AddInside counts the goroutine from inside itself: Wait can return
// before the goroutine is scheduled.
func AddInside(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		w := w
		go func() {
			wg.Add(1) // want `WaitGroup\.Add inside the spawned goroutine`
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

// AddOutside is the good shape: Add on the spawning side.
func AddOutside(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

type pool struct {
	done sync.WaitGroup
}

// Stop calls Done on a wait group nothing in this package ever Adds
// to: the counter underflows.
func (p *pool) Stop() {
	p.done.Done() // want `nothing in this package ever calls Add`
}

// lockCopy receives a mutex by value: it locks a private copy.
func lockCopy(mu sync.Mutex) { // want `sync\.Mutex passed by value`
	mu.Lock()
	defer mu.Unlock()
}

// lockPtr is the good signature: the pointer shares the lock.
func lockPtr(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// copyMu snapshots the hot mutex by value.
func copyMu(g *guarded) {
	cp := g.mu // want `copying a sync\.Mutex by value`
	cp.Lock()
	cp.Unlock()
}

// fresh is fine: a new declaration is not a copy of live state.
func fresh() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// legacyCopy keeps a by-value snapshot during shutdown, when the
// original is provably quiescent; the pragma records that.
func legacyCopy(g *guarded) {
	//solverlint:allow syncmisuse fixture: frozen snapshot during shutdown quiescence
	cp := g.mu
	cp.Lock()
	cp.Unlock()
}
