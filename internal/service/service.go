// Package service is the placement daemon behind cmd/placed: an
// HTTP/JSON front end that serves core.Placer solves from a canonical
// instance cache. Requests are canonicalized (internal/canon) so that
// batches differing only in module or shape order share one cache
// entry; concurrent identical requests collapse into a single solve
// (singleflight); and a bounded worker pool with a fixed-capacity
// admission queue sheds overload with 429 instead of queueing
// unbounded multi-second solves.
//
// Every /v1/place request is traced end to end when a Tracer is
// configured: canonicalization, cache lookup, singleflight role,
// admission-queue wait and the solve itself become spans of one
// request-scoped trace (internal/obs), the solver's counters are
// attributed to the owning request's solve span, the trace id travels
// back in the X-Trace-Id header, one JSON access-log line is emitted
// per request, and rolling SLO attainment is reported by /v1/stats.
//
// Endpoints:
//
//	POST   /v1/place                        solve or serve a cached placement (X-Cache: hit|miss)
//	POST   /v1/sessions                     open a stateful online session
//	POST   /v1/sessions/{id}/place          place one arrival (greedy, CP replan fallback)
//	DELETE /v1/sessions/{id}/modules/{task} release a resident module
//	POST   /v1/sessions/{id}/defrag         compact the session, moves priced by the frame model
//	GET    /v1/sessions/{id}/stats          residency, utilization, fragmentation
//	DELETE /v1/sessions/{id}                close a session
//	GET    /v1/healthz                      liveness
//	GET    /v1/stats                        cache/queue/solve/session counters plus SLO attainment
//	GET    /v1/fabrics                      catalog of placeable devices
//	GET    /debug/traces                    recent and slowest request traces
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Config sizes the daemon. Zero fields take the stated defaults.
type Config struct {
	// Workers is the number of concurrent solver goroutines (default 2).
	Workers int
	// CacheEntries is the LRU capacity in canonical instances
	// (default 1024).
	CacheEntries int
	// MaxInFlight bounds the admission queue: at most this many solves
	// may be waiting for a worker before requests are rejected with
	// 429 (default 64).
	MaxInFlight int
	// DefaultTimeout is the per-solve budget substituted when a request
	// sets none (default 10s). Requests cannot opt out: an unbounded
	// solve would pin a worker indefinitely.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-solve budget a request may ask for
	// (default 60s).
	MaxTimeout time.Duration
	// QueueGrace is the extra time a solve may spend waiting for a
	// worker before the request gives up with 504 (default 30s).
	QueueGrace time.Duration
	// DefaultStallNodes is the convergence criterion substituted when a
	// request sets none (default 2000, the experiments' default).
	DefaultStallNodes int64
	// DefaultPresolve is the presolve mode substituted when a request
	// sets none. The zero value is core.PresolveOn, so presolve is on
	// by default; cmd/placed lowers it with -presolve=off.
	DefaultPresolve core.PresolveMode
	// Registry receives the daemon's counters and histograms; nil
	// allocates a private registry (still visible via /v1/stats).
	Registry *obs.Registry
	// Tracer mints the request-scoped traces; nil disables tracing
	// (no spans, no X-Trace-Id header) at zero per-request cost.
	Tracer *obs.Tracer
	// AccessLog receives one JSON line per /v1/place request; nil
	// disables access logging.
	AccessLog io.Writer
	// SLOLatency is the request-latency objective for SLO accounting
	// (default 500ms).
	SLOLatency time.Duration
	// SLOWindow is the headline SLO attainment window reported by
	// /v1/stats (default 1h, clamped to [1s, 1h]; the 1m/5m/1h
	// standard windows are always reported alongside).
	SLOWindow time.Duration
	// Degrade enables graceful degradation: a request whose exact
	// solve misses its deadline or is shed by admission is answered
	// with a fast approximate placement (tagged X-Placement-Quality:
	// approximate) instead of a 504/429, as long as the baseline
	// heuristics find a valid one. Off by default: degradation changes
	// the failure-path status codes, so it is an explicit opt-in
	// (cmd/placed enables it with -degrade).
	Degrade bool
	// Faults arms deterministic fault injection on the serving path
	// (see internal/faultinject); nil — the default — disables
	// injection at zero per-request cost.
	Faults *faultinject.Injector
	// MaxSessions caps live online sessions; creating one past the cap
	// evicts the least recently used (default 256).
	MaxSessions int
	// SessionTTL expires sessions idle for longer (default 15m).
	// Expiry is lazy — checked on access — so the daemon runs no
	// background reaper goroutine.
	SessionTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 1024
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.QueueGrace <= 0 {
		c.QueueGrace = 30 * time.Second
	}
	if c.DefaultStallNodes <= 0 {
		c.DefaultStallNodes = 2000
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 500 * time.Millisecond
	}
	if c.SLOWindow <= 0 || c.SLOWindow > time.Hour {
		c.SLOWindow = time.Hour
	}
	if c.SLOWindow < time.Second {
		c.SLOWindow = time.Second
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server is the placement daemon. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg       Config
	cache     *lruCache
	flight    *flightGroup
	pool      *pool
	start     time.Time
	accessLog *accessLogger
	slo       *sloTracker

	// solve computes one canonical instance; tests substitute stubs to
	// probe the concurrency machinery without real solver runs. The
	// context carries the owning request's solve span (if any); it is
	// not a cancellation signal — solves run detached by design.
	solve func(context.Context, *canon.Request) (*core.Result, error)
	// fallback computes the approximate placement served when the
	// exact solve degraded; tests substitute stubs.
	fallback func(*canon.Request) (*core.Result, error)
	// faults is the armed fault injector (nil = disabled); kept as a
	// field so every site check is one pointer load.
	faults *faultinject.Injector

	// sessions is the online-session table; sessionSlots bounds the
	// session solves (replan, defrag) that run inline under a session
	// lock instead of on the detached worker pool (see session.go).
	sessions     *sessionStore
	sessionSlots chan struct{}

	requests    *obs.Counter
	cacheHits   *obs.Counter
	solves      *obs.Counter
	dedups      *obs.Counter
	rejected    *obs.Counter
	timeouts    *obs.Counter
	canceled    *obs.Counter
	errCount    *obs.Counter
	degraded    *obs.Counter
	sessCreated *obs.Counter
	sessEvicted *obs.Counter
	sessExpired *obs.Counter
	sessReplans *obs.Counter
	sessDefrags *obs.Counter
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:          cfg,
		cache:        newLRU(cfg.CacheEntries),
		flight:       newFlightGroup(),
		pool:         newPool(cfg.Workers, cfg.MaxInFlight),
		start:        time.Now(),
		accessLog:    newAccessLogger(cfg.AccessLog),
		slo:          newSLOTracker(cfg.SLOLatency),
		sessions:     newSessionStore(cfg.MaxSessions, cfg.SessionTTL, nil),
		sessionSlots: make(chan struct{}, cfg.Workers),
		requests:     reg.Counter("service_requests_total"),
		cacheHits:    reg.Counter("service_cache_hits_total"),
		solves:       reg.Counter("service_solves_total"),
		dedups:       reg.Counter("service_dedup_total"),
		rejected:     reg.Counter("service_rejected_total"),
		timeouts:     reg.Counter("service_timeouts_total"),
		canceled:     reg.Counter("service_canceled_total"),
		errCount:     reg.Counter("service_solve_errors_total"),
		degraded:     reg.Counter("service_degraded_total"),
		sessCreated:  reg.Counter("service_sessions_created_total"),
		sessEvicted:  reg.Counter("service_sessions_evicted_total"),
		sessExpired:  reg.Counter("service_sessions_expired_total"),
		sessReplans:  reg.Counter("service_session_replans_total"),
		sessDefrags:  reg.Counter("service_session_defrags_total"),
	}
	s.faults = cfg.Faults
	s.solve = s.solvePlacement
	s.fallback = s.solveApproximate
	return s
}

// Close stops the worker pool after draining queued solves.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", s.observed(s.servePlace))
	mux.HandleFunc("POST /v1/sessions", s.observed(s.handleSessionCreate))
	mux.HandleFunc("POST /v1/sessions/{id}/place", s.observed(s.handleSessionPlace))
	mux.HandleFunc("POST /v1/sessions/{id}/defrag", s.observed(s.handleSessionDefrag))
	mux.HandleFunc("GET /v1/sessions/{id}/stats", s.observed(s.handleSessionStats))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.observed(s.handleSessionDelete))
	mux.HandleFunc("DELETE /v1/sessions/{id}/modules/{task}", s.observed(s.handleSessionRelease))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/fabrics", s.handleFabrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return mux
}

// errSolve wraps a solver failure so the handler can distinguish a bad
// instance (client error) from machinery errors.
type errSolve struct{ err error }

func (e errSolve) Error() string { return e.err.Error() }

// statusClientClosedRequest is the non-standard 499 code (nginx
// convention) logged when the client disconnected before a response
// could be served; no client observes it.
const statusClientClosedRequest = 499

// placeOutcome accumulates what the access log and SLO accounting need
// to know about one /v1/place request. The queue/solve durations are
// written by the detached leader goroutine — which may outlive the
// request that spawned it — and read by the deferred logger, hence the
// atomics.
type placeOutcome struct {
	status  int
	cache   string
	digest  string
	errText string
	quality string
	queueNs atomic.Int64
	solveNs atomic.Int64
}

// traceFor mints the request-scoped trace, honouring a well-formed
// client-supplied X-Trace-Id so upstream callers can correlate. Nil
// when tracing is disabled.
func (s *Server) traceFor(r *http.Request) *obs.Trace {
	if s.cfg.Tracer == nil {
		return nil
	}
	if id, ok := obs.ParseTraceID(r.Header.Get("X-Trace-Id")); ok {
		return s.cfg.Tracer.NewWithID(id, "request")
	}
	return s.cfg.Tracer.New("request")
}

// observed wraps a traced endpoint body with the daemon's per-request
// bookkeeping: the request counter and timer, the request-scoped trace
// (X-Trace-Id on every response, including errors), SLO accounting,
// and one access-log line. /v1/place and every session endpoint share
// this skeleton, so all of them show up in the same operational
// surfaces.
func (s *Server) observed(h func(http.ResponseWriter, *http.Request, *obs.Trace, *placeOutcome)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		reqT := s.cfg.Registry.Timer("service_request")
		start := time.Now()
		tr := s.traceFor(r)
		if tr != nil {
			// Set on the header map before any WriteHeader call, so error
			// responses (400/429/499/504/...) carry the id too.
			w.Header().Set("X-Trace-Id", tr.ID().String())
		}
		out := &placeOutcome{status: http.StatusOK, cache: "none"}
		defer func() {
			elapsed := time.Since(start)
			reqT.Stop()
			tr.Finish()
			s.slo.Observe(elapsed, out.status)
			s.accessLog.log(AccessRecord{
				Time:    start.UTC().Format(time.RFC3339Nano),
				TraceID: traceIDString(tr),
				Method:  r.Method,
				Path:    r.URL.Path,
				Status:  out.status,
				DurMs:   float64(elapsed.Microseconds()) / 1000,
				Digest:  out.digest,
				Cache:   out.cache,
				QueueMs: float64(out.queueNs.Load()) / 1e6,
				SolveMs: float64(out.solveNs.Load()) / 1e6,
				Quality: out.quality,
				Error:   out.errText,
			})
		}()
		h(w, r, tr, out)
	}
}

func traceIDString(tr *obs.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID().String()
}

// servePlace is the traced request body of handlePlace; it fills out
// for the deferred access-log/SLO bookkeeping.
func (s *Server) servePlace(w http.ResponseWriter, r *http.Request, tr *obs.Trace, out *placeOutcome) {
	canonSp := tr.StartSpan("canonicalize")
	creq, err := DecodeRequest(r.Body, s.cfg)
	if err != nil {
		canonSp.End()
		s.failPlace(w, out, http.StatusBadRequest, err)
		return
	}
	digest, err := creq.Digest()
	canonSp.End()
	if err != nil {
		s.failPlace(w, out, http.StatusBadRequest, err)
		return
	}
	out.digest = digest.String()

	// Fault site "cache": an injected fault models an unavailable
	// cache backend — the lookup is skipped (forced miss) after any
	// injected latency; the solve path below still stores its result.
	cacheFault := s.faults.Check(faultinject.SiteCache)
	if cacheFault.Delay > 0 {
		time.Sleep(cacheFault.Delay)
	}
	lookupSp := tr.StartSpan("cache_lookup")
	var body []byte
	var ok bool
	if cacheFault.Err == nil && !cacheFault.Timeout {
		body, ok = s.cache.Get(digest)
	}
	if lookupSp != nil {
		lookupSp.SetAttrs(obs.Bool("hit", ok))
		lookupSp.End()
	}
	if ok {
		s.cacheHits.Inc()
		out.cache = "hit"
		writePlacement(w, body, digest, true, QualityExact)
		return
	}

	// Fault site "singleflight": an injected fault models a broken
	// dedup layer — this request solves solo instead of joining the
	// flight group (the cache double-check in solveAndCache keeps the
	// result consistent).
	flightFault := s.faults.Check(faultinject.SiteSingleflight)
	if flightFault.Delay > 0 {
		time.Sleep(flightFault.Delay)
	}
	flightSp := tr.StartSpan("singleflight")
	var leader bool
	if flightFault.Err != nil || flightFault.Timeout {
		leader = true
		body, err = s.solveAndCache(tr, out, creq, digest)
	} else {
		body, leader, err = s.flight.Do(r.Context(), digest, func() ([]byte, error) {
			return s.solveAndCache(tr, out, creq, digest)
		})
	}
	if flightSp != nil {
		role := "waiter"
		if leader {
			role = "leader"
		}
		flightSp.SetAttrs(obs.String("role", role))
		flightSp.End()
	}
	switch {
	case errors.Is(err, errBusy):
		s.rejected.Inc()
		if s.cfg.Degrade && s.serveDegraded(w, tr, out, creq, digest) {
			return
		}
		// Shed before any solve state existed: safe for the client to
		// retry shortly (internal/client honours this header).
		w.Header().Set("Retry-After", "1")
		s.failPlace(w, out, http.StatusTooManyRequests, errors.New("admission queue full, retry later"))
		return
	case errors.Is(err, context.Canceled) && errors.Is(r.Context().Err(), context.Canceled):
		// The client disconnected while this request was queued or
		// waiting on a singleflight leader: stop immediately (the
		// leader's solve stays detached and still fills the cache) and
		// log a 499 instead of burning the timeout. Never degrade: no
		// one is listening.
		s.canceled.Inc()
		s.failPlace(w, out, statusClientClosedRequest, errors.New("client closed request"))
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.timeouts.Inc()
		if s.cfg.Degrade && s.serveDegraded(w, tr, out, creq, digest) {
			return
		}
		s.failPlace(w, out, http.StatusGatewayTimeout, errors.New("request timed out waiting for a solver"))
		return
	case err != nil:
		var se errSolve
		status := http.StatusInternalServerError
		if errors.As(err, &se) {
			// The solver rejects malformed instances (a module with no
			// feasible position at all, inconsistent options): the
			// request, not the daemon, is at fault.
			status = http.StatusUnprocessableEntity
		}
		s.errCount.Inc()
		s.failPlace(w, out, status, err)
		return
	}
	out.cache = "miss"
	if !leader {
		s.dedups.Inc()
		out.cache = "dedup"
	}
	writePlacement(w, body, digest, !leader, QualityExact)
}

// failPlace records the failure in the outcome and writes the error
// body. The X-Trace-Id header was set before any write, so error
// responses stay correlatable with the access log.
func (s *Server) failPlace(w http.ResponseWriter, out *placeOutcome, status int, err error) {
	out.status = status
	out.errText = err.Error()
	writeError(w, status, err)
}

// solveAndCache runs one canonical instance on the admission pool and
// caches the encoded response. It runs detached from any single HTTP
// request: waiters that give up do not cancel it, and its result
// serves future requests. The queue-wait and solve spans it records
// belong to the leader request's trace (tr); if that request has
// already finished, the spans still reach the span sink, marked
// unended in the trace's filed ring summary.
func (s *Server) solveAndCache(tr *obs.Trace, out *placeOutcome, creq *canon.Request, digest canon.Digest) ([]byte, error) {
	// Double-check the cache: a request that missed it just before a
	// concurrent identical solve finished (and left the flight group)
	// becomes a fresh leader here; the entry it needs is already
	// cached, because the completed call stores the body before
	// leaving the group.
	if body, ok := s.cache.Get(digest); ok {
		return body, nil
	}
	// Fault site "queue": an injected error models a full admission
	// queue (shed → 429 or degradation), an injected timeout a request
	// that expired while queued (→ 504 or degradation).
	queueFault := s.faults.Check(faultinject.SiteQueue)
	if queueFault.Delay > 0 {
		time.Sleep(queueFault.Delay)
	}
	if queueFault.Err != nil {
		return nil, errBusy
	}
	if queueFault.Timeout {
		return nil, context.DeadlineExceeded
	}
	// The singleflight leader's solve is detached from any one caller
	// on purpose: followers share its result, so one follower's
	// cancellation must not abort the work the others are waiting on.
	// The solve is still bounded by its own grace+solve timeout.
	//solverlint:allow ctxflow deliberate detachment: shared singleflight solve outlives any single caller
	ctx, cancel := context.WithTimeout(context.Background(),
		s.cfg.QueueGrace+creq.Options.Timeout)
	defer cancel()
	queueSp := tr.StartSpan("queue_wait")
	queued := time.Now()
	var body []byte
	var solveErr error
	var skipStore bool
	err := s.pool.Submit(ctx, func() {
		wait := time.Since(queued)
		queueSp.End()
		out.queueNs.Store(int64(wait))
		s.cfg.Registry.ObserveDuration("service_queue_wait", wait)
		solveT := s.cfg.Registry.Timer("service_solve")
		solveSp := tr.StartSpan("solve")
		s.solves.Inc()
		sctx := obs.ContextWithSpan(obs.ContextWithTrace(ctx, tr), solveSp)
		res, err := s.injectedSolve(sctx, creq, &skipStore)
		solveDur := solveT.Stop()
		out.solveNs.Store(int64(solveDur))
		if err != nil {
			if solveSp != nil {
				solveSp.SetAttrs(obs.String("error", err.Error()))
				solveSp.End()
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, faultinject.ErrInjected) {
				// A missed solve deadline keeps its identity so the
				// HTTP layer can degrade instead of erroring; an
				// injected solver error is machinery failure (500),
				// not a malformed instance (422).
				solveErr = err
			} else {
				solveErr = errSolve{err}
			}
			return
		}
		if solveSp != nil {
			solveSp.SetAttrs(
				obs.Bool("found", res.Found),
				obs.Int("height", int64(res.Height)),
				obs.String("reason", res.Reason.String()),
			)
			solveSp.End()
		}
		body, solveErr = buildResponse(digest, creq, res, QualityExact)
	})
	// A job that was shed (errBusy) or expired while queued never ran;
	// close its queue-wait span so the trace does not dangle. End is
	// idempotent, so the raced already-ran case stays correct.
	queueSp.End()
	if err != nil {
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}
	if !skipStore {
		s.cache.Put(digest, body)
	}
	return body, nil
}

// injectedSolve interposes the "solver" fault site in front of the
// real (or stubbed) solve. An injected timeout surfaces as the
// deadline miss the HTTP layer degrades on; an injected error as a
// machinery failure; an injected partial as a stalled, placement-free
// result that must not poison the cache (hence *skipStore).
func (s *Server) injectedSolve(ctx context.Context, creq *canon.Request, skipStore *bool) (*core.Result, error) {
	fault := s.faults.Check(faultinject.SiteSolver)
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	switch {
	case fault.Timeout:
		return nil, context.DeadlineExceeded
	case fault.Err != nil:
		return nil, fault.Err
	case fault.Partial:
		*skipStore = true
		return &core.Result{Stalled: true, Reason: csp.StopStalled}, nil
	}
	return s.solve(ctx, creq)
}

// solvePlacement is the production solver: materialise the fabric,
// window the region, place the canonical module set. When ctx carries
// a solve span, a per-request obs.SpanStats recorder is threaded
// through the solver options and the search counters (nodes,
// backtracks, propagations, prunes, incumbents) are attributed to that
// span on return.
func (s *Server) solvePlacement(ctx context.Context, creq *canon.Request) (*core.Result, error) {
	region, err := regionFor(creq)
	if err != nil {
		return nil, err
	}
	opts := creq.Options.Options()
	opts.Metrics = s.cfg.Registry
	if sp := obs.SpanFromContext(ctx); sp != nil {
		stats := &obs.SpanStats{}
		opts.Recorder = stats
		defer stats.AttachTo(sp)
	}
	return core.New(region, opts).Place(creq.Modules)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFabrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"fabrics": fabric.Catalog()})
}

// handleTraces dumps the tracer's recent and slowest rings. With
// tracing disabled both lists are empty.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Tracer.Snapshot())
}

// StatsResponse is the wire form of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Requests      int64   `json:"requests"`
	CacheHits     int64   `json:"cacheHits"`
	DedupHits     int64   `json:"dedupHits"`
	Solves        int64   `json:"solves"`
	SolveErrors   int64   `json:"solveErrors"`
	Rejected      int64   `json:"rejected"`
	Timeouts      int64   `json:"timeouts"`
	Canceled      int64   `json:"canceled"`
	// Degraded counts requests answered with an approximate placement
	// after the exact solve missed its deadline or was shed.
	Degraded    int64      `json:"degraded"`
	HitRatio    float64    `json:"hitRatio"`
	QueueDepth  int        `json:"queueDepth"`
	InFlight    int        `json:"inFlight"`
	Workers     int        `json:"workers"`
	MaxInFlight int        `json:"maxInFlight"`
	Cache       CacheStats `json:"cache"`
	SLO         SLOStats   `json:"slo"`
	// Sessions counts live online sessions; the *_total companions
	// count lifecycle events since start.
	Sessions        int   `json:"sessions"`
	SessionsCreated int64 `json:"sessionsCreated"`
	SessionsEvicted int64 `json:"sessionsEvicted"`
	SessionsExpired int64 `json:"sessionsExpired"`
	SessionReplans  int64 `json:"sessionReplans"`
	SessionDefrags  int64 `json:"sessionDefrags"`
	// Faults snapshots fault-injection fires ("site:mode" -> count);
	// omitted when injection is disabled.
	Faults map[string]int64 `json:"faults,omitempty"`
}

// Stats snapshots the daemon counters. HitRatio counts both cache hits
// and singleflight-deduplicated requests as hits: neither ran a solve.
func (s *Server) Stats() StatsResponse {
	st := StatsResponse{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Value(),
		CacheHits:       s.cacheHits.Value(),
		DedupHits:       s.dedups.Value(),
		Solves:          s.solves.Value(),
		SolveErrors:     s.errCount.Value(),
		Rejected:        s.rejected.Value(),
		Timeouts:        s.timeouts.Value(),
		Canceled:        s.canceled.Value(),
		Degraded:        s.degraded.Value(),
		QueueDepth:      s.pool.QueueDepth(),
		InFlight:        s.pool.InFlight(),
		Workers:         s.cfg.Workers,
		MaxInFlight:     s.cfg.MaxInFlight,
		Cache:           s.cache.Stats(),
		SLO:             s.slo.Stats(s.cfg.SLOWindow),
		Sessions:        s.sessions.len(),
		SessionsCreated: s.sessCreated.Value(),
		SessionsEvicted: s.sessEvicted.Value(),
		SessionsExpired: s.sessExpired.Value(),
		SessionReplans:  s.sessReplans.Value(),
		SessionDefrags:  s.sessDefrags.Value(),
	}
	if s.faults != nil {
		st.Faults = s.faults.Stats()
	}
	if st.Requests > 0 {
		st.HitRatio = float64(st.CacheHits+st.DedupHits) / float64(st.Requests)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writePlacement serves a (possibly cached) placement body. The body
// bytes are identical for every request of the same canonical
// instance; the per-request hit/miss and exact/approximate
// distinctions travel in the X-Cache and X-Placement-Quality headers
// so they cannot perturb the payload.
func writePlacement(w http.ResponseWriter, body []byte, digest canon.Digest, hit bool, quality string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Placement-Digest", digest.String())
	w.Header().Set("X-Placement-Quality", quality)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
