package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(70, 3) // spans two words per row
	if b.W() != 70 || b.H() != 3 {
		t.Fatalf("dimensions = %dx%d", b.W(), b.H())
	}
	b.Set(0, 0, true)
	b.Set(69, 2, true)
	b.Set(64, 1, true)
	if !b.Get(0, 0) || !b.Get(69, 2) || !b.Get(64, 1) {
		t.Fatal("set bits not readable")
	}
	if b.Get(1, 0) || b.Get(63, 1) {
		t.Fatal("unset bits read as set")
	}
	b.Set(64, 1, false)
	if b.Get(64, 1) {
		t.Fatal("clear failed")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
}

func TestBitmapOutOfRange(t *testing.T) {
	b := NewBitmap(4, 4)
	b.Set(-1, 0, true)
	b.Set(0, -1, true)
	b.Set(4, 0, true)
	b.Set(0, 4, true)
	if b.Count() != 0 {
		t.Fatal("out-of-range Set modified bitmap")
	}
	if b.Get(-1, -1) || b.Get(4, 4) {
		t.Fatal("out-of-range Get returned true")
	}
}

func TestBitmapNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitmap(-1, 2) did not panic")
		}
	}()
	NewBitmap(-1, 2)
}

func TestBitmapSetRectClipped(t *testing.T) {
	b := NewBitmap(5, 5)
	b.SetRect(RectXYWH(3, 3, 10, 10), true)
	if b.Count() != 4 {
		t.Fatalf("clipped SetRect count = %d, want 4", b.Count())
	}
	b.SetRect(RectXYWH(3, 3, 1, 1), false)
	if b.Get(3, 3) || b.Count() != 3 {
		t.Fatal("SetRect clear failed")
	}
}

func TestBitmapAnyAt(t *testing.T) {
	b := NewBitmap(8, 8)
	b.Set(4, 4, true)
	shape := []Point{{0, 0}, {1, 0}, {0, 1}}
	if !b.AnyAt(shape, Pt(4, 4)) {
		t.Error("AnyAt should hit (4,4)")
	}
	if !b.AnyAt(shape, Pt(3, 4)) {
		t.Error("AnyAt should hit via (1,0) offset")
	}
	if b.AnyAt(shape, Pt(5, 5)) {
		t.Error("AnyAt false positive")
	}
	if b.AnyAt(shape, Pt(-10, -10)) {
		t.Error("AnyAt out of range should be false")
	}
}

func TestBitmapBooleanOps(t *testing.T) {
	a := NewBitmap(10, 2)
	b := NewBitmap(10, 2)
	a.Set(1, 0, true)
	b.Set(2, 1, true)
	if a.Intersects(b) {
		t.Fatal("disjoint Intersects true")
	}
	a.Or(b)
	if !a.Get(2, 1) || a.Count() != 2 {
		t.Fatal("Or failed")
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects after Or false")
	}
	a.AndNot(b)
	if a.Get(2, 1) || a.Count() != 1 {
		t.Fatal("AndNot failed")
	}
}

func TestBitmapDimensionMismatchPanics(t *testing.T) {
	a := NewBitmap(4, 4)
	b := NewBitmap(5, 4)
	for name, f := range map[string]func(){
		"Or":         func() { a.Or(b) },
		"AndNot":     func() { a.AndNot(b) },
		"Intersects": func() { a.Intersects(b) },
		"CopyFrom":   func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched dims did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBitmapMaxSetY(t *testing.T) {
	b := NewBitmap(6, 6)
	if b.MaxSetY() != -1 {
		t.Fatal("empty MaxSetY != -1")
	}
	b.Set(2, 0, true)
	b.Set(5, 3, true)
	if got := b.MaxSetY(); got != 3 {
		t.Fatalf("MaxSetY = %d, want 3", got)
	}
}

func TestBitmapCountRow(t *testing.T) {
	b := NewBitmap(100, 3)
	for x := 0; x < 100; x += 2 {
		b.Set(x, 1, true)
	}
	if got := b.CountRow(1); got != 50 {
		t.Fatalf("CountRow(1) = %d, want 50", got)
	}
	if b.CountRow(0) != 0 || b.CountRow(-1) != 0 || b.CountRow(3) != 0 {
		t.Fatal("CountRow out-of-range not zero")
	}
}

func TestBitmapCloneIndependent(t *testing.T) {
	a := NewBitmap(8, 8)
	a.Set(3, 3, true)
	c := a.Clone()
	c.Set(4, 4, true)
	if a.Get(4, 4) {
		t.Fatal("Clone aliases original")
	}
	a.Clear()
	if !c.Get(3, 3) {
		t.Fatal("Clear leaked into clone")
	}
}

func TestBitmapString(t *testing.T) {
	b := NewBitmap(3, 2)
	b.Set(0, 0, true)
	b.Set(2, 1, true)
	want := "..#\n#.."
	if got := b.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: Count equals the number of distinct set points.
func TestBitmapCountMatchesSetPoints(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBitmap(16, 16)
		seen := map[Point]bool{}
		for i := 0; i < int(n); i++ {
			p := Pt(rng.Intn(16), rng.Intn(16))
			b.Set(p.X, p.Y, true)
			seen[p] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AnyInRect agrees with a pointwise scan.
func TestBitmapAnyInRectPointwise(t *testing.T) {
	f := func(seed int64, rx, ry int8, rw, rh uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBitmap(12, 12)
		for i := 0; i < 10; i++ {
			b.Set(rng.Intn(12), rng.Intn(12), true)
		}
		r := RectXYWH(int(rx)%12, int(ry)%12, int(rw)%8, int(rh)%8)
		want := false
		for _, p := range r.Points() {
			if b.Get(p.X, p.Y) {
				want = true
			}
		}
		return b.AnyInRect(r) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
