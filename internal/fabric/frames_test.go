package fabric

import (
	"testing"

	"repro/internal/grid"
)

func TestDefaultFrameModelValid(t *testing.T) {
	m := DefaultFrameModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestFrameModelValidate(t *testing.T) {
	bad := []FrameModel{
		{FrameBytes: 0, PortBytesPerSecond: 1},
		{FrameBytes: 10, PortBytesPerSecond: 0},
		{FrameBytes: 10, PortBytesPerSecond: 1, FramesPerColumn: map[Kind]int{CLB: -1}},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
}

func TestFrameCount(t *testing.T) {
	d := stripeDevice() // col 3 BRAM, col 6 DSP, rest CLB; 8x4
	r := d.FullRegion()
	m := FrameModel{
		FramesPerColumn:    map[Kind]int{CLB: 2, BRAM: 10, DSP: 5},
		FrameBytes:         100,
		PortBytesPerSecond: 1000,
	}
	// Columns 2..4 over 2 rows: CLB(2) + BRAM(10) + CLB(2) per row = 14,
	// times height 2 = 28.
	got := m.FrameCount(r, grid.RectXYWH(2, 0, 3, 2))
	if got != 28 {
		t.Fatalf("FrameCount = %d, want 28", got)
	}
	// Empty and out-of-range areas cost nothing.
	if m.FrameCount(r, grid.Rect{}) != 0 {
		t.Fatal("empty area should cost 0 frames")
	}
	if m.FrameCount(r, grid.RectXYWH(100, 100, 5, 5)) != 0 {
		t.Fatal("out-of-range area should cost 0 frames")
	}
}

func TestFrameCountChargesWorstKindInColumn(t *testing.T) {
	// A BRAM column interrupted by a clock tile: the BRAM rate must win.
	spec := Spec{Name: "mix", W: 3, H: 4, BRAMColumns: []int{1}, ClockRowPeriod: 2}
	d := spec.MustBuild()
	r := d.FullRegion()
	m := FrameModel{
		FramesPerColumn:    map[Kind]int{CLB: 1, BRAM: 8, Clock: 2},
		FrameBytes:         10,
		PortBytesPerSecond: 10,
	}
	// Full height of column 1 (kinds BRAM and Clock alternating): worst
	// kind is BRAM at 8/row, height 4 -> 32.
	got := m.FrameCount(r, grid.RectXYWH(1, 0, 1, 4))
	if got != 32 {
		t.Fatalf("FrameCount = %d, want 32", got)
	}
}

func TestReconfigTime(t *testing.T) {
	m := FrameModel{FrameBytes: 100, PortBytesPerSecond: 1000}
	d := m.ReconfigTime(10) // 1000 bytes at 1000 B/s = 1s
	if d.Seconds() != 1.0 {
		t.Fatalf("ReconfigTime = %v, want 1s", d)
	}
	zero := FrameModel{FrameBytes: 100}
	if zero.ReconfigTime(10) != 0 {
		t.Fatal("zero-bandwidth model should report 0")
	}
}
