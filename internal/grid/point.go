// Package grid provides the discrete-geometry substrate used by the
// fabric model, the module model and the geost constraint kernel: integer
// points, rectangles, rigid transforms on the unit grid, and dense
// occupancy bitmaps.
//
// All coordinates are integer tile coordinates. The positive x axis points
// right and the positive y axis points up, matching the column/row layout
// of FPGA fabrics where y indexes rows of a reconfigurable region.
package grid

import "fmt"

// Point is an integer coordinate pair on the tile grid.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the translation of p by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Neg returns the point reflected through the origin.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// In reports whether p lies inside r.
func (p Point) In(r Rect) bool {
	return r.MinX <= p.X && p.X < r.MaxX && r.MinY <= p.Y && p.Y < r.MaxY
}

// Less orders points lexicographically by (Y, X). It provides the
// canonical ordering used when normalising tile sets.
func (p Point) Less(q Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}

// String returns "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// SortPoints sorts ps in place into the canonical (Y, X) order.
func SortPoints(ps []Point) {
	// Insertion sort: tile lists are short and often nearly sorted; this
	// also avoids pulling package sort into the hot path.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Less(ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// DedupPoints sorts ps and removes duplicates, returning the shortened
// slice (which aliases ps).
func DedupPoints(ps []Point) []Point {
	if len(ps) == 0 {
		return ps
	}
	SortPoints(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// BoundsOf returns the tight bounding rectangle of ps. It returns the
// empty rectangle for an empty slice.
func BoundsOf(ps []Point) Rect {
	if len(ps) == 0 {
		return Rect{}
	}
	r := Rect{MinX: ps[0].X, MinY: ps[0].Y, MaxX: ps[0].X + 1, MaxY: ps[0].Y + 1}
	for _, p := range ps[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.X+1 > r.MaxX {
			r.MaxX = p.X + 1
		}
		if p.Y+1 > r.MaxY {
			r.MaxY = p.Y + 1
		}
	}
	return r
}
