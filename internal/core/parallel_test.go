package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/module"
)

// TestPlacerParallelMatchesSequential checks the core-level contract
// of Options.Workers: exhaustive parallel solves return the same
// height AND the identical placement as the sequential solver, for
// every strategy and worker count. This is the end-to-end counterpart
// of the csp-level TestParallelMatchesSequential, driving the full
// geost model (clone protocol, positional heuristics, id-based
// snapshots) through worker goroutines; run it under -race.
func TestPlacerParallelMatchesSequential(t *testing.T) {
	r := fabric.Homogeneous(6, 10).FullRegion()
	mods := []*module.Module{
		rectModule("a", 3, 2),
		barModule("b", 4),
		rectModule("c", 2, 3),
		barModule("d", 3),
	}
	for _, strategy := range []Strategy{StrategyFirstFail, StrategyLargestFirst, StrategyInputOrder} {
		seq, err := New(r, Options{Strategy: strategy}).Place(mods)
		if err != nil {
			t.Fatalf("%v sequential: %v", strategy, err)
		}
		if !seq.Found || !seq.Optimal {
			t.Fatalf("%v sequential did not close the instance: %+v", strategy, seq)
		}
		for _, workers := range []int{2, 4} {
			par, err := New(r, Options{Strategy: strategy, Workers: workers}).Place(mods)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", strategy, workers, err)
			}
			if !par.Found || !par.Optimal {
				t.Fatalf("%v workers=%d did not close the instance: reason %v", strategy, workers, par.Reason)
			}
			if par.Height != seq.Height {
				t.Fatalf("%v workers=%d: height %d, sequential %d", strategy, workers, par.Height, seq.Height)
			}
			if err := par.Validate(r); err != nil {
				t.Fatalf("%v workers=%d: invalid placement: %v", strategy, workers, err)
			}
			if len(par.Placements) != len(seq.Placements) {
				t.Fatalf("%v workers=%d: placement count mismatch", strategy, workers)
			}
			for i := range seq.Placements {
				if par.Placements[i].At != seq.Placements[i].At ||
					par.Placements[i].ShapeIndex != seq.Placements[i].ShapeIndex {
					t.Fatalf("%v workers=%d: module %s placed at %v shape %d, sequential %v shape %d",
						strategy, workers, seq.Placements[i].Module.Name(),
						par.Placements[i].At, par.Placements[i].ShapeIndex,
						seq.Placements[i].At, seq.Placements[i].ShapeIndex)
				}
			}
		}
	}
}

// TestPlacerParallelFirstSolution checks Workers with
// FirstSolutionOnly: some valid complete placement arrives (which one
// is scheduling-dependent, as documented).
func TestPlacerParallelFirstSolution(t *testing.T) {
	r := fabric.Homogeneous(6, 10).FullRegion()
	mods := []*module.Module{
		rectModule("a", 3, 2), rectModule("b", 2, 4), rectModule("c", 4, 2),
	}
	res, err := New(r, Options{FirstSolutionOnly: true, Workers: 4}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement found")
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("first-solution mode must not claim optimality")
	}
}

// TestPlacerParallelStalled checks stop-reason plumbing end to end:
// a stalled parallel solve reports Stalled with a valid incumbent.
func TestPlacerParallelStalled(t *testing.T) {
	r := fabric.Homogeneous(8, 24).FullRegion()
	var mods []*module.Module
	for i := 0; i < 7; i++ {
		mods = append(mods, rectModule(string(rune('a'+i)), 2+i%3, 2+(i+1)%2))
	}
	res, err := New(r, Options{StallNodes: 100, Workers: 4}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement before stalling")
	}
	if err := res.Validate(r); err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		// The instance may close before the stall budget; that is fine,
		// but then the reason must say so.
		if res.Stalled {
			t.Fatal("both Optimal and Stalled set")
		}
	}
}
