package presolve

import (
	"repro/internal/csp"
	"repro/internal/geost"
)

// symmetry posts lex-ordering constraints between interchangeable
// objects. Two objects are interchangeable when their shape lists
// match sid for sid (equal tile sets) and their current placement
// domains are equal as value sets — then every constraint of the model
// (non-overlap, top links, the height objective) is invariant under
// swapping the two objects, and any solution permuting a group's
// placements can be rewritten, by sorting the group's values
// ascending, into one satisfying place_1 < place_2 < ... (equal values
// are impossible: identical shapes at the same anchor overlap). The
// chain therefore keeps at least one optimal representative per
// permutation class while the search skips the other k!-1 relabelings.
//
// Grouping is sid-aligned on purpose: objects with the same shape
// *set* in a different order would need a sid remap to swap, which the
// raw lex order over encoded values does not model. The canonicalized
// requests the service solves (canon sorts shapes by key) make
// identical modules sid-aligned anyway.
// It returns the groups as lists of object indices in chain order, so
// the caller can canonicalize a warm placement against the posted
// orderings.
func symmetry(st *csp.Store, k *geost.Kernel, stats *Stats) [][]int {
	objs := k.Objects()
	grouped := make([]bool, len(objs))
	var groups [][]int
	for i := range objs {
		if grouped[i] {
			continue
		}
		prev := -1
		for j := i + 1; j < len(objs); j++ {
			if grouped[j] {
				continue
			}
			if !interchangeable(objs[i], objs[j]) {
				continue
			}
			grouped[j] = true
			if prev < 0 {
				stats.Groups++
				prev = i
				groups = append(groups, []int{i})
			}
			csp.LessEq(st, objs[prev].Place, objs[j].Place)
			stats.ModulesOrdered++
			prev = j
			groups[len(groups)-1] = append(groups[len(groups)-1], j)
		}
	}
	return groups
}

// interchangeable reports whether a and b can be swapped in any
// solution without changing feasibility or the objective.
func interchangeable(a, b *geost.Object) bool {
	if len(a.Shapes) != len(b.Shapes) {
		return false
	}
	for sid := range a.Shapes {
		ga, gb := &a.Shapes[sid], &b.Shapes[sid]
		if ga.W != gb.W || ga.H != gb.H || len(ga.Points) != len(gb.Points) {
			return false
		}
		if !pointsSubset(ga.Points, gb.Points) {
			return false
		}
	}
	return equalDomains(a.Place.Domain(), b.Place.Domain())
}

// equalDomains reports value-set equality of two domains.
func equalDomains(da, db *csp.Domain) bool {
	if da.Size() != db.Size() {
		return false
	}
	equal := true
	da.ForEach(func(val int) bool {
		if !db.Contains(val) {
			equal = false
			return false
		}
		return true
	})
	return equal
}
