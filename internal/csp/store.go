package csp

import (
	"errors"
	"fmt"
)

// ErrInconsistent is returned by propagation when some variable's domain
// became empty: the current search node admits no solution.
var ErrInconsistent = errors.New("csp: inconsistent (empty domain)")

// Var is a finite-domain integer variable. Mutate its domain only
// through Store methods so changes are trailed for backtracking and
// watching propagators are scheduled.
type Var struct {
	id       int
	name     string
	dom      *Domain
	watchers []int // indices into Store.props

	// trailedAt is the trail level at which the current domain object
	// was installed; a mutation at a deeper level must clone first
	// (copy-on-write trailing).
	trailedAt int
}

// Name returns the variable name.
func (v *Var) Name() string { return v.name }

// Domain returns the current domain for read-only inspection.
func (v *Var) Domain() *Domain { return v.dom }

// Min returns the current lower bound.
func (v *Var) Min() int { return v.dom.Min() }

// Max returns the current upper bound.
func (v *Var) Max() int { return v.dom.Max() }

// Size returns the current domain size.
func (v *Var) Size() int { return v.dom.Size() }

// Assigned reports whether the variable is fixed to a single value.
func (v *Var) Assigned() bool { return v.dom.Size() == 1 }

// Value returns the assigned value; it panics if the variable is not
// assigned, which always indicates a solver bug.
func (v *Var) Value() int {
	val, ok := v.dom.Singleton()
	if !ok {
		panic(fmt.Sprintf("csp: Value() on unassigned %s%v", v.name, v.dom))
	}
	return val
}

// String renders "name{domain}".
func (v *Var) String() string { return v.name + v.dom.String() }

// Propagator is a constraint's filtering algorithm. Propagate prunes the
// domains of the variables it watches and returns ErrInconsistent when
// it detects unsatisfiability. Propagators must be idempotent at a
// fixpoint and must not retain references to domains across calls.
type Propagator interface {
	Propagate(st *Store) error
}

type trailEntry struct {
	v   *Var
	dom *Domain
	at  int
}

// Store owns variables and propagators and provides trailing (Push/Pop)
// and fixpoint propagation. It is the solver state threaded through
// search.
type Store struct {
	vars  []*Var
	props []Propagator

	queue   []int // propagator indices pending execution
	queued  []bool
	trail   []trailEntry
	marks   []int // trail lengths at Push points
	level   int
	failed  bool
	nPropag int64 // statistics: propagator executions
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// NewVar creates a variable with the given initial domain. The domain is
// cloned: callers may reuse the argument.
func (st *Store) NewVar(name string, dom *Domain) *Var {
	if dom == nil || dom.Empty() {
		panic("csp: NewVar with nil or empty domain")
	}
	v := &Var{id: len(st.vars), name: name, dom: dom.Clone(), trailedAt: 0}
	st.vars = append(st.vars, v)
	return v
}

// NewVarRange creates a variable with domain {lo..hi}.
func (st *Store) NewVarRange(name string, lo, hi int) *Var {
	return st.NewVar(name, NewDomainRange(lo, hi))
}

// Vars returns all variables in creation order.
func (st *Store) Vars() []*Var { return st.vars }

// Post registers a propagator and schedules it for an initial run. The
// watched variables wake the propagator whenever their domain changes.
// The returned handle can be passed to Schedule to force a re-run when
// solver state outside the domains (such as a branch-and-bound bound)
// changes.
func (st *Store) Post(p Propagator, watched ...*Var) int {
	idx := len(st.props)
	st.props = append(st.props, p)
	st.queued = append(st.queued, false)
	for _, v := range watched {
		v.watchers = append(v.watchers, idx)
	}
	st.enqueue(idx)
	return idx
}

// Schedule re-enqueues the propagator with the given handle.
func (st *Store) Schedule(handle int) { st.enqueue(handle) }

func (st *Store) enqueue(idx int) {
	if !st.queued[idx] {
		st.queued[idx] = true
		st.queue = append(st.queue, idx)
	}
}

// Stats returns the number of propagator executions so far.
func (st *Store) Stats() int64 { return st.nPropag }

// ensureOwned makes v's domain writable at the current level, trailing
// the previous domain for restoration on Pop.
func (st *Store) ensureOwned(v *Var) {
	if v.trailedAt == st.level {
		return
	}
	st.trail = append(st.trail, trailEntry{v: v, dom: v.dom, at: v.trailedAt})
	v.dom = v.dom.Clone()
	v.trailedAt = st.level
}

func (st *Store) changed(v *Var) error {
	for _, w := range v.watchers {
		st.enqueue(w)
	}
	if v.dom.Empty() {
		st.failed = true
		return ErrInconsistent
	}
	return nil
}

// Remove deletes val from v's domain.
func (st *Store) Remove(v *Var, val int) error {
	if !v.dom.Contains(val) {
		return nil
	}
	st.ensureOwned(v)
	if v.dom.Remove(val) {
		return st.changed(v)
	}
	return nil
}

// SetMin prunes v to values >= lo.
func (st *Store) SetMin(v *Var, lo int) error {
	if v.dom.Empty() || lo <= v.dom.Min() {
		return nil
	}
	st.ensureOwned(v)
	if v.dom.RemoveBelow(lo) {
		return st.changed(v)
	}
	return nil
}

// SetMax prunes v to values <= hi.
func (st *Store) SetMax(v *Var, hi int) error {
	if v.dom.Empty() || hi >= v.dom.Max() {
		return nil
	}
	st.ensureOwned(v)
	if v.dom.RemoveAbove(hi) {
		return st.changed(v)
	}
	return nil
}

// Assign fixes v to val; it fails if val is not in the domain.
func (st *Store) Assign(v *Var, val int) error {
	if !v.dom.Contains(val) {
		st.failed = true
		return ErrInconsistent
	}
	if v.dom.Size() == 1 {
		return nil
	}
	st.ensureOwned(v)
	if v.dom.KeepOnly(val) {
		return st.changed(v)
	}
	return nil
}

// FilterDomain retains only the values of v for which keep returns true.
func (st *Store) FilterDomain(v *Var, keep func(int) bool) error {
	// Probe first so untouched domains stay shared across levels.
	any := false
	v.dom.ForEach(func(val int) bool {
		if !keep(val) {
			any = true
			return false
		}
		return true
	})
	if !any {
		return nil
	}
	st.ensureOwned(v)
	if v.dom.Filter(keep) {
		return st.changed(v)
	}
	return nil
}

// Propagate runs the propagation queue to fixpoint. On failure the queue
// is drained and ErrInconsistent returned; the store remains usable
// after a Pop.
func (st *Store) Propagate() error {
	if st.failed {
		st.queue = st.queue[:0]
		for i := range st.queued {
			st.queued[i] = false
		}
		return ErrInconsistent
	}
	for len(st.queue) > 0 {
		idx := st.queue[0]
		st.queue = st.queue[1:]
		st.queued[idx] = false
		st.nPropag++
		if err := st.props[idx].Propagate(st); err != nil {
			st.failed = true
			st.queue = st.queue[:0]
			for i := range st.queued {
				st.queued[i] = false
			}
			return err
		}
	}
	return nil
}

// Push opens a new trail level. Subsequent domain mutations are undone
// by the matching Pop.
func (st *Store) Push() {
	st.marks = append(st.marks, len(st.trail))
	st.level++
}

// Pop restores all domains to their state at the matching Push and
// clears any pending failure.
func (st *Store) Pop() {
	if len(st.marks) == 0 {
		panic("csp: Pop without Push")
	}
	mark := st.marks[len(st.marks)-1]
	st.marks = st.marks[:len(st.marks)-1]
	for i := len(st.trail) - 1; i >= mark; i-- {
		e := st.trail[i]
		e.v.dom = e.dom
		e.v.trailedAt = e.at
	}
	st.trail = st.trail[:mark]
	st.level--
	st.failed = false
	st.queue = st.queue[:0]
	for i := range st.queued {
		st.queued[i] = false
	}
}

// ScheduleAll re-enqueues every propagator; used when search state
// outside the domains (e.g. a branch-and-bound bound) changes.
func (st *Store) ScheduleAll() {
	for i := range st.props {
		st.enqueue(i)
	}
}
