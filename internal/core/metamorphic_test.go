package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/module"
	"repro/internal/workload"
)

// The metamorphic properties: the sequential placer's objective —
// occupied height and the utilization derived from it — is a function
// of the module *set*, so permuting the module order or the order of
// design alternatives within a module must not change it when the
// search runs to completion (exhaustive proof, no stall or timeout
// stop). Only exhaustive runs carry the guarantee: an anytime stop
// freezes whatever the permuted search happened to reach first.
//
// The instance matrix is deliberately reduced (small regions, few
// modules) so the exhaustive proofs keep `go test ./...` fast.

// metamorphicCase is one cell of the instance matrix.
type metamorphicCase struct {
	name   string
	spec   fabric.Spec
	cfg    workload.Config
	seed   int64
	placer core.Options
}

func metamorphicMatrix() []metamorphicCase {
	exhaustive := core.Options{} // no timeout, no stall: run to optimality proof
	strong := exhaustive
	strong.StrongPropagation = true
	largest := exhaustive
	largest.Strategy = core.StrategyLargestFirst
	return []metamorphicCase{
		{
			name: "homogeneous-tight",
			spec: fabric.Spec{Name: "m1", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 4, CLBMin: 4, CLBMax: 8, NoBRAM: true, Alternatives: 2},
			seed: 1, placer: exhaustive,
		},
		{
			name: "bram-column",
			spec: fabric.Spec{Name: "m2", W: 12, H: 8, BRAMColumns: []int{5}},
			cfg:  workload.Config{NumModules: 3, CLBMin: 4, CLBMax: 7, BRAMMin: 0, BRAMMax: 1, Alternatives: 3},
			seed: 2, placer: exhaustive,
		},
		{
			name: "strong-propagation",
			spec: fabric.Spec{Name: "m3", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 4, CLBMin: 4, CLBMax: 6, NoBRAM: true, Alternatives: 2},
			seed: 3, placer: strong,
		},
		{
			name: "largest-first",
			spec: fabric.Spec{Name: "m4", W: 10, H: 8},
			cfg:  workload.Config{NumModules: 4, CLBMin: 4, CLBMax: 8, NoBRAM: true, Alternatives: 2},
			seed: 4, placer: largest,
		},
		{
			name: "rotations",
			spec: fabric.Spec{Name: "m5", W: 12, H: 10, BRAMColumns: []int{3, 9}},
			cfg:  workload.Config{NumModules: 3, CLBMin: 5, CLBMax: 9, BRAMMin: 1, BRAMMax: 1, Alternatives: 4},
			seed: 5, placer: exhaustive,
		},
	}
}

// solveObjective runs one exhaustive solve and returns its objective.
func solveObjective(t *testing.T, region *fabric.Region, opts core.Options, mods []*module.Module) (height int, util float64) {
	t.Helper()
	res, err := core.New(region, opts).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no placement found")
	}
	if !res.Optimal {
		t.Fatalf("solve not exhaustive (reason %s); the permutation property only holds for proofs", res.Reason)
	}
	if err := res.Validate(region); err != nil {
		t.Fatal(err)
	}
	return res.Height, res.Utilization
}

func permuteModules(mods []*module.Module, rng *rand.Rand) []*module.Module {
	out := append([]*module.Module(nil), mods...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func permuteShapes(t *testing.T, mods []*module.Module, rng *rand.Rand) []*module.Module {
	t.Helper()
	out := make([]*module.Module, len(mods))
	for i, m := range mods {
		pm, err := m.WithShapes(rng.Perm(m.NumShapes())...)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pm
	}
	return out
}

func TestMetamorphicModuleOrderInvariance(t *testing.T) {
	for _, tc := range metamorphicMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			region := tc.spec.MustBuild().FullRegion()
			mods := workload.MustGenerate(tc.cfg, rand.New(rand.NewSource(tc.seed)))
			wantH, wantU := solveObjective(t, region, tc.placer, mods)
			rng := rand.New(rand.NewSource(tc.seed * 101))
			for trial := 0; trial < 3; trial++ {
				perm := permuteModules(mods, rng)
				gotH, gotU := solveObjective(t, region, tc.placer, perm)
				if gotH != wantH || gotU != wantU {
					t.Fatalf("trial %d: module permutation changed objective: height %d util %v, want height %d util %v",
						trial, gotH, gotU, wantH, wantU)
				}
			}
		})
	}
}

func TestMetamorphicShapeOrderInvariance(t *testing.T) {
	for _, tc := range metamorphicMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			region := tc.spec.MustBuild().FullRegion()
			mods := workload.MustGenerate(tc.cfg, rand.New(rand.NewSource(tc.seed)))
			wantH, wantU := solveObjective(t, region, tc.placer, mods)
			rng := rand.New(rand.NewSource(tc.seed * 211))
			for trial := 0; trial < 3; trial++ {
				perm := permuteShapes(t, mods, rng)
				gotH, gotU := solveObjective(t, region, tc.placer, perm)
				if gotH != wantH || gotU != wantU {
					t.Fatalf("trial %d: shape permutation changed objective: height %d util %v, want height %d util %v",
						trial, gotH, gotU, wantH, wantU)
				}
			}
		})
	}
}

// TestMetamorphicCombined permutes modules and shapes together — the
// exact transformation the serving layer's canonicalization relies on.
func TestMetamorphicCombined(t *testing.T) {
	for _, tc := range metamorphicMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			region := tc.spec.MustBuild().FullRegion()
			mods := workload.MustGenerate(tc.cfg, rand.New(rand.NewSource(tc.seed)))
			wantH, wantU := solveObjective(t, region, tc.placer, mods)
			rng := rand.New(rand.NewSource(tc.seed * 307))
			perm := permuteShapes(t, permuteModules(mods, rng), rng)
			gotH, gotU := solveObjective(t, region, tc.placer, perm)
			if gotH != wantH || gotU != wantU {
				t.Fatalf("combined permutation changed objective: height %d util %v, want height %d util %v",
					gotH, gotU, wantH, wantU)
			}
		})
	}
}
