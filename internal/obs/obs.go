// Package obs is the solver observability layer: a structured event
// stream for search traces, a concurrency-safe metric registry
// (counters, gauges, histograms, phase timers), and sinks that render
// either as a JSONL trace, a Prometheus-style text exposition, or a
// human-readable summary table.
//
// The package is deliberately dependency-free (stdlib only) and designed
// around a zero-cost-when-disabled contract: every emission site in the
// solver guards on a nil Recorder / nil Registry, so the uninstrumented
// hot path performs no allocations and no time syscalls. Event is a
// plain value struct — emitting one costs a struct copy and a virtual
// call, nothing more.
package obs

import "time"

// EventKind enumerates the structured solver events.
type EventKind uint8

// Solver event kinds, in rough order of search lifecycle.
const (
	// KindPhase marks entry into a named solver phase (model build,
	// search, proof, ...).
	KindPhase EventKind = iota
	// KindBranch is one branching decision: variable Var tried at Value
	// at search depth Depth.
	KindBranch
	// KindBacktrack is a dead end: the branch at Depth failed
	// propagation and was undone.
	KindBacktrack
	// KindPropagate is one propagator execution (Prop names it).
	KindPropagate
	// KindPrune is a domain reduction: Removed values left Var's domain,
	// attributed to propagator Prop ("" when pruned by branching).
	KindPrune
	// KindSolution is a complete assignment accepted by enumeration.
	KindSolution
	// KindIncumbent is an improving solution during branch-and-bound:
	// Objective is the new best value, Nodes the nodes explored so far.
	KindIncumbent
	// KindSpan is one completed tracing span (see Trace/Span): a named
	// interval of a request-scoped trace, with parent link and typed
	// attributes flattened into Attrs.
	KindSpan
)

// String names the kind as it appears in the JSONL trace.
func (k EventKind) String() string {
	switch k {
	case KindPhase:
		return "phase"
	case KindBranch:
		return "branch"
	case KindBacktrack:
		return "backtrack"
	case KindPropagate:
		return "propagate"
	case KindPrune:
		return "prune"
	case KindSolution:
		return "solution"
	case KindIncumbent:
		return "incumbent"
	case KindSpan:
		return "span"
	}
	return "unknown"
}

// Event is one structured solver event. Fields are populated per kind
// (see EventKind); unused fields stay zero and are omitted from traces.
// Events carry no timestamp — sinks that need wall-clock offsets stamp
// them on receipt, keeping the emission site free of time syscalls.
type Event struct {
	Kind      EventKind
	Phase     string // KindPhase: phase name
	Var       string // KindBranch/KindPrune: variable name
	Value     int    // KindBranch: value tried
	Depth     int    // KindBranch/KindBacktrack: search depth
	Prop      string // KindPropagate/KindPrune: propagator name
	Removed   int    // KindPrune: values removed from Var's domain
	Objective int    // KindIncumbent/KindSolution: objective value
	Nodes     int64  // KindIncumbent: nodes explored when found
	Worker    int    // parallel search: 1-based worker id (0 = sequential)

	// Span fields (KindSpan only). Unlike solver events, spans carry
	// their own timing: a span's start offset and duration are its
	// payload, stamped by the span lifecycle, not sink bookkeeping.
	Trace  string        // KindSpan: 128-bit trace id, hex
	Span   string        // KindSpan: span name
	SpanID int           // KindSpan: span id within the trace (root = 1)
	Parent int           // KindSpan: parent span id (0 = none)
	Offset time.Duration // KindSpan: span start offset from trace start
	Dur    time.Duration // KindSpan: span duration
	Attrs  string        // KindSpan: space-separated "key=value" pairs
}

// Recorder receives solver events. Implementations must be safe for use
// from a single solver goroutine; sinks shared across goroutines (JSONL,
// Stats) synchronise internally.
type Recorder interface {
	Record(Event)
}

// Multi fans every event out to several recorders (e.g. a JSONL trace
// plus a Stats aggregator).
type Multi []Recorder

// Record implements Recorder.
func (m Multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// Combine returns a single Recorder over the non-nil arguments: nil when
// all are nil, the sole recorder when one remains, a Multi otherwise.
func Combine(recs ...Recorder) Recorder {
	var live Multi
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
