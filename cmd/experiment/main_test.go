package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func testCfg() experiments.RunConfig {
	return experiments.RunConfig{
		Runs: 1,
		Seed: 1,
		Workload: workload.Config{
			NumModules: 5, CLBMin: 8, CLBMax: 20, BRAMMax: 2, Alternatives: 2,
		},
		StallNodes: 200,
		Timeout:    10 * time.Second,
	}
}

func TestRunFigures(t *testing.T) {
	for _, exp := range []string{"fig1", "fig4"} {
		var sb strings.Builder
		if err := run(&sb, exp, testCfg()); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunTable1Reduced(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table1", testCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Design alternatives") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "bogus", testCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
