package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestInScope(t *testing.T) {
	cases := []struct {
		analyzer, path string
		want           bool
	}{
		{"clonecomplete", "repro/internal/csp", true},
		{"clonecomplete", "repro/internal/geost", true},
		{"clonecomplete", "repro/internal/workload", false},
		{"nondeterminism", "repro/internal/core", true},
		{"nondeterminism", "repro/internal/obs", true},
		{"nondeterminism", "repro/internal/netlist", false},
		{"nondeterminism", "repro/internal/experiments", false},
		{"obsgate", "repro/internal/csp", true},
		{"obsgate", "repro/internal/obs", true},
		{"obsgate", "repro/internal/service", false},
		{"optvalidate", "repro/internal/csp", true},
		{"optvalidate", "repro/internal/core", false},
		{"nakedpanic", "repro/internal/grid", true},
		{"nakedpanic", "repro/cmd/placer", false},
		{"nakedpanic", "repro/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := inScope(c.analyzer, c.path); got != c.want {
			t.Errorf("inScope(%q, %q) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

// TestScopesCoverAllAnalyzers keeps the scope table in lockstep with
// the suite: an analyzer added without a scope entry would silently
// run nowhere-in-particular (empty scope = everywhere), which should
// be a deliberate choice, not an omission.
func TestScopesCoverAllAnalyzers(t *testing.T) {
	// Import cycle note: the driver's scope table is data, so the
	// check lives here rather than in the library's own tests.
	for name := range scopes {
		found := false
		for _, a := range analyzersUnderTest() {
			if a == name {
				found = true
			}
		}
		if !found {
			t.Errorf("scopes entry %q matches no registered analyzer", name)
		}
	}
	for _, a := range analyzersUnderTest() {
		if _, ok := scopes[a]; !ok {
			t.Errorf("analyzer %q has no scopes entry", a)
		}
	}
}

func analyzersUnderTest() []string {
	return []string{"clonecomplete", "nondeterminism", "obsgate", "optvalidate", "nakedpanic"}
}

// TestRunCleanModule runs the full driver pipeline over a tiny
// synthetic module and expects zero findings and zero errors.
func TestRunCleanModule(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module clean\n\ngo 1.22\n",
		"internal/csp/p.go": `
// Package csp is a miniature stand-in with fully compliant code.
package csp

// Store is the solver state.
type Store struct{}

// Propagator filters domains.
type Propagator interface {
	Propagate(st *Store) error
}

// CloneCtx maps originals to clones.
type CloneCtx struct{}

type eq struct{ c int }

func (p *eq) Propagate(st *Store) error      { return nil }
func (p *eq) CloneFor(ctx *CloneCtx) Propagator { return &eq{c: p.c} }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("run reported %d findings on compliant code", n)
	}
}
