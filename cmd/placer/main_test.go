package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeSpecs(t *testing.T) (regionPath, modulesPath string) {
	t.Helper()
	dir := t.TempDir()
	regionPath = filepath.Join(dir, "region.spec")
	modulesPath = filepath.Join(dir, "modules.spec")
	region := "region t 20 12\nbramcols 4 14\nbus 0\n"
	modules := "module a\ndemand 8 1 0\nalternatives 2\nmodule b\nshape\nrect 0 0 3 2 CLB\nend\n"
	if err := os.WriteFile(regionPath, []byte(region), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modulesPath, []byte(modules), 0o644); err != nil {
		t.Fatal(err)
	}
	return regionPath, modulesPath
}

func TestRunHappyPath(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	dir := t.TempDir()
	svg := filepath.Join(dir, "fp.svg")
	pngPath := filepath.Join(dir, "fp.png")
	outPath := filepath.Join(dir, "placement.spec")
	if err := run(regionPath, modulesPath, 5*time.Second, 200, false, "first-fail", svg, pngPath, outPath, true); err != nil {
		t.Fatal(err)
	}
	placement, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(placement), "place a ") {
		t.Fatalf("placement file: %q", string(placement))
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("svg output malformed")
	}
	pngData, err := os.ReadFile(pngPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pngData) < 8 || pngData[1] != 'P' || pngData[2] != 'N' || pngData[3] != 'G' {
		t.Fatal("png output malformed")
	}
}

func TestRunFirstSolution(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	if err := run(regionPath, modulesPath, 5*time.Second, 0, true, "largest-first", "", "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	if err := run("/nonexistent", modulesPath, time.Second, 0, false, "first-fail", "", "", "", false); err == nil {
		t.Error("missing region file accepted")
	}
	if err := run(regionPath, "/nonexistent", time.Second, 0, false, "first-fail", "", "", "", false); err == nil {
		t.Error("missing modules file accepted")
	}
	if err := run(regionPath, modulesPath, time.Second, 0, false, "wat", "", "", "", false); err == nil {
		t.Error("bad strategy accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []string{"first-fail", "largest-first", "input-order"} {
		if _, err := parseStrategy(s); err != nil {
			t.Errorf("%s rejected: %v", s, err)
		}
	}
	if _, err := parseStrategy("nope"); err == nil {
		t.Error("bad strategy accepted")
	}
}
