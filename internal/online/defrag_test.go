package online

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
)

func fragmentedResidents() []Resident {
	// A deliberately fragmented layout on a 6x10 region: modules spread
	// upward with gaps. Current height = 9.
	return []Resident{
		{ID: 1, Module: clbModule("a", 2, 2), Shape: 0, At: grid.Pt(0, 0)},
		{ID: 2, Module: clbModule("b", 2, 2), Shape: 0, At: grid.Pt(4, 3)},
		{ID: 3, Module: clbModule("c", 2, 2), Shape: 0, At: grid.Pt(1, 5)},
		{ID: 4, Module: clbModule("d", 2, 2), Shape: 0, At: grid.Pt(3, 7)},
	}
}

func TestPlanCompactionLowersHeight(t *testing.T) {
	region := fabric.Homogeneous(6, 10).FullRegion()
	residents := fragmentedResidents()
	moves, target, err := PlanCompaction(region, residents, core.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if target.Height >= 9 {
		t.Fatalf("target height %d not better than 9", target.Height)
	}
	if len(moves) == 0 {
		t.Fatal("no moves planned despite fragmentation")
	}
	// Replaying the moves must be step-by-step valid and reach the
	// target height.
	final, err := ApplyMoves(region, residents, moves)
	if err != nil {
		t.Fatal(err)
	}
	top := 0
	for _, r := range final {
		if h := r.At.Y + r.Module.Shape(r.Shape).H(); h > top {
			top = h
		}
	}
	if top != target.Height {
		t.Fatalf("replayed height %d != target %d", top, target.Height)
	}
}

func TestPlanCompactionAlreadyTight(t *testing.T) {
	region := fabric.Homogeneous(4, 8).FullRegion()
	residents := []Resident{
		{ID: 1, Module: clbModule("a", 2, 2), Shape: 0, At: grid.Pt(0, 0)},
		{ID: 2, Module: clbModule("b", 2, 2), Shape: 0, At: grid.Pt(2, 0)},
	}
	moves, target, err := PlanCompaction(region, residents, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("moves planned for optimal layout: %v", moves)
	}
	if target == nil || target.Height != 2 {
		t.Fatalf("target: %v", target)
	}
}

func TestPlanCompactionErrors(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	if _, _, err := PlanCompaction(region, nil, core.Options{}); err == nil {
		t.Error("empty residency accepted")
	}
	bad := []Resident{{ID: 1, Module: clbModule("a", 1, 1), Shape: 5, At: grid.Pt(0, 0)}}
	if _, _, err := PlanCompaction(region, bad, core.Options{}); err == nil {
		t.Error("invalid shape index accepted")
	}
	dup := []Resident{
		{ID: 1, Module: clbModule("a", 1, 1), Shape: 0, At: grid.Pt(0, 0)},
		{ID: 1, Module: clbModule("b", 1, 1), Shape: 0, At: grid.Pt(2, 2)},
	}
	if _, _, err := PlanCompaction(region, dup, core.Options{}); err == nil {
		t.Error("duplicate resident accepted")
	}
	nilMod := []Resident{{ID: 1, Shape: 0, At: grid.Pt(0, 0)}}
	if _, _, err := PlanCompaction(region, nilMod, core.Options{}); err == nil {
		t.Error("nil module accepted")
	}
}

func TestApplyMovesValidation(t *testing.T) {
	region := fabric.Homogeneous(4, 4).FullRegion()
	residents := []Resident{
		{ID: 1, Module: clbModule("a", 2, 2), Shape: 0, At: grid.Pt(0, 0)},
		{ID: 2, Module: clbModule("b", 2, 2), Shape: 0, At: grid.Pt(2, 0)},
	}
	// Moving a onto b must fail.
	if _, err := ApplyMoves(region, residents, []Move{{ID: 1, Shape: 0, At: grid.Pt(2, 0)}}); err == nil {
		t.Error("overlapping move accepted")
	}
	// Unknown resident.
	if _, err := ApplyMoves(region, residents, []Move{{ID: 9, Shape: 0, At: grid.Pt(0, 2)}}); err == nil {
		t.Error("unknown resident accepted")
	}
	// A valid move.
	out, err := ApplyMoves(region, residents, []Move{{ID: 1, Shape: 0, At: grid.Pt(0, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].At != grid.Pt(0, 2) {
		t.Fatalf("move not applied: %+v", out[0])
	}
	// Originals untouched.
	if residents[0].At != grid.Pt(0, 0) {
		t.Fatal("ApplyMoves mutated input")
	}
}

func TestPlanCompactionDeterministic(t *testing.T) {
	region := fabric.Homogeneous(6, 10).FullRegion()
	a, _, err := PlanCompaction(region, fragmentedResidents(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := PlanCompaction(region, fragmentedResidents(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic plan length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
