package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/workload"
)

// PlaceRequest is the wire form of POST /v1/place. The modules are
// given either explicitly (Modules: shapes as tile lists) or as a
// seeded generator spec (Generate, the paper's workload model) —
// exactly one of the two. Both forms are expanded to the same
// canonical instance, so a generated batch and its explicit spelling
// share one cache entry.
type PlaceRequest struct {
	// Fabric names a catalog device (GET /v1/fabrics lists them).
	Fabric string `json:"fabric"`
	// Region optionally windows the device; omitted means the full
	// fabric.
	Region *RectSpec `json:"region,omitempty"`
	// Modules lists the units to place with explicit design
	// alternatives.
	Modules []ModuleSpec `json:"modules,omitempty"`
	// Generate draws the module batch from the paper's seeded workload
	// model instead of listing shapes explicitly.
	Generate *GenerateSpec `json:"generate,omitempty"`
	// Options tunes the solver; zero fields take the daemon defaults.
	Options OptionsSpec `json:"options"`
}

// RectSpec is a rectangle in region coordinates.
type RectSpec struct {
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`
}

// ModuleSpec is one module: a name plus at least one shape.
type ModuleSpec struct {
	Name   string      `json:"name"`
	Shapes []ShapeSpec `json:"shapes"`
}

// ShapeSpec is one design alternative as a tile list.
type ShapeSpec struct {
	Tiles []TileSpec `json:"tiles"`
}

// TileSpec is one tile: relative coordinates plus the resource kind
// ("CLB", "BRAM", "DSP").
type TileSpec struct {
	X    int    `json:"x"`
	Y    int    `json:"y"`
	Kind string `json:"kind"`
}

// GenerateSpec mirrors workload.Config plus the seed.
type GenerateSpec struct {
	Seed         int64 `json:"seed"`
	NumModules   int   `json:"numModules,omitempty"`
	CLBMin       int   `json:"clbMin,omitempty"`
	CLBMax       int   `json:"clbMax,omitempty"`
	BRAMMin      int   `json:"bramMin,omitempty"`
	BRAMMax      int   `json:"bramMax,omitempty"`
	NoBRAM       bool  `json:"noBram,omitempty"`
	DSPMax       int   `json:"dspMax,omitempty"`
	Alternatives int   `json:"alternatives,omitempty"`
	NoRotation   bool  `json:"noRotation,omitempty"`
}

// OptionsSpec is the wire form of core.RequestOptions.
type OptionsSpec struct {
	TimeoutMs         int64  `json:"timeoutMs,omitempty"`
	StallNodes        int64  `json:"stallNodes,omitempty"`
	Strategy          string `json:"strategy,omitempty"`
	ValueOrder        string `json:"valueOrder,omitempty"`
	FirstSolutionOnly bool   `json:"firstSolutionOnly,omitempty"`
	Workers           int    `json:"workers,omitempty"`
	BusRows           []int  `json:"busRows,omitempty"`
	StrongPropagation bool   `json:"strongPropagation,omitempty"`
	Presolve          string `json:"presolve,omitempty"`
}

// maxRequestBytes bounds the request body; a 30-module batch with four
// alternatives of ~100 tiles each is well under 1 MiB.
const maxRequestBytes = 8 << 20

// DecodeRequest parses a wire request body and expands it to the
// canonical domain form with the daemon defaults of cfg applied
// (cfg's zero fields take the documented Config defaults). All
// failures are client errors (HTTP 400).
func DecodeRequest(body io.Reader, cfg Config) (*canon.Request, error) {
	cfg = cfg.withDefaults()
	dec := json.NewDecoder(io.LimitReader(body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var wire PlaceRequest
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	return wire.toCanon(cfg)
}

// toCanon validates the wire request and expands it into the canonical
// domain form, applying the daemon's solver-option defaults before the
// digest is taken (so an omitted option and its explicit default share
// a cache entry).
func (wire *PlaceRequest) toCanon(cfg Config) (*canon.Request, error) {
	if wire.Fabric == "" {
		return nil, fmt.Errorf("missing fabric")
	}
	if _, err := fabric.ByName(wire.Fabric); err != nil {
		return nil, err
	}
	mods, err := wire.expandModules()
	if err != nil {
		return nil, err
	}
	opts, err := wire.Options.toRequestOptions(cfg)
	if err != nil {
		return nil, err
	}
	req := &canon.Request{Fabric: wire.Fabric, Modules: mods, Options: opts}
	if wire.Region != nil {
		if wire.Region.W <= 0 || wire.Region.H <= 0 {
			return nil, fmt.Errorf("region %dx%d must have positive size", wire.Region.W, wire.Region.H)
		}
		req.Region = grid.RectXYWH(wire.Region.X, wire.Region.Y, wire.Region.W, wire.Region.H)
	}
	return req, nil
}

func (wire *PlaceRequest) expandModules() ([]*module.Module, error) {
	switch {
	case wire.Generate != nil && len(wire.Modules) > 0:
		return nil, fmt.Errorf("modules and generate are mutually exclusive")
	case wire.Generate != nil:
		g := wire.Generate
		mods, err := workload.Generate(workload.Config{
			NumModules: g.NumModules,
			CLBMin:     g.CLBMin, CLBMax: g.CLBMax,
			BRAMMin: g.BRAMMin, BRAMMax: g.BRAMMax,
			NoBRAM:       g.NoBRAM,
			DSPMax:       g.DSPMax,
			Alternatives: g.Alternatives,
			NoRotation:   g.NoRotation,
		}, rand.New(rand.NewSource(g.Seed)))
		if err != nil {
			return nil, err
		}
		return mods, nil
	case len(wire.Modules) > 0:
		mods := make([]*module.Module, len(wire.Modules))
		for i, ms := range wire.Modules {
			m, err := ms.toModule()
			if err != nil {
				return nil, err
			}
			mods[i] = m
		}
		return mods, nil
	default:
		return nil, fmt.Errorf("request needs modules or generate")
	}
}

func (ms *ModuleSpec) toModule() (*module.Module, error) {
	shapes := make([]*module.Shape, len(ms.Shapes))
	for i, ss := range ms.Shapes {
		tiles := make([]module.Tile, len(ss.Tiles))
		for j, ts := range ss.Tiles {
			kind, err := fabric.ParseKind(ts.Kind)
			if err != nil {
				return nil, fmt.Errorf("module %q shape %d: %w", ms.Name, i, err)
			}
			tiles[j] = module.Tile{At: grid.Pt(ts.X, ts.Y), Kind: kind}
		}
		s, err := module.NewShape(tiles)
		if err != nil {
			return nil, fmt.Errorf("module %q shape %d: %w", ms.Name, i, err)
		}
		shapes[i] = s
	}
	return module.NewModule(ms.Name, shapes...)
}

func (o *OptionsSpec) toRequestOptions(cfg Config) (core.RequestOptions, error) {
	out := core.RequestOptions{
		Timeout:           time.Duration(o.TimeoutMs) * time.Millisecond,
		StallNodes:        o.StallNodes,
		FirstSolutionOnly: o.FirstSolutionOnly,
		Workers:           o.Workers,
		BusRows:           o.BusRows,
		StrongPropagation: o.StrongPropagation,
	}
	if o.TimeoutMs < 0 {
		return out, fmt.Errorf("negative timeoutMs %d", o.TimeoutMs)
	}
	// An unbounded or over-long solve would pin a worker for minutes;
	// the daemon substitutes its default and caps at its maximum.
	if out.Timeout == 0 {
		out.Timeout = cfg.DefaultTimeout
	}
	if out.Timeout > cfg.MaxTimeout {
		out.Timeout = cfg.MaxTimeout
	}
	if out.StallNodes == 0 {
		out.StallNodes = cfg.DefaultStallNodes
	}
	if o.Strategy != "" {
		s, err := core.ParseStrategy(o.Strategy)
		if err != nil {
			return out, err
		}
		out.Strategy = s
	}
	if o.ValueOrder != "" {
		v, err := core.ParseValueOrder(o.ValueOrder)
		if err != nil {
			return out, err
		}
		out.ValueOrder = v
	}
	if o.Presolve != "" {
		p, err := core.ParsePresolve(o.Presolve)
		if err != nil {
			return out, err
		}
		out.Presolve = p
	} else {
		out.Presolve = cfg.DefaultPresolve
	}
	if err := out.Validate(); err != nil {
		return out, err
	}
	return out, nil
}
