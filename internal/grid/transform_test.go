package grid

import (
	"testing"
	"testing/quick"
)

func allTransforms() []Transform {
	ts := make([]Transform, 0, int(numTransforms))
	for t := Identity; t < numTransforms; t++ {
		ts = append(ts, t)
	}
	return ts
}

func TestTransformApplyKnown(t *testing.T) {
	p := Pt(2, 1)
	cases := map[Transform]Point{
		Identity:      {2, 1},
		Rot90:         {-1, 2},
		Rot180:        {-2, -1},
		Rot270:        {1, -2},
		MirrorX:       {-2, 1},
		MirrorXRot90:  {1, 2},
		MirrorXRot180: {2, -1},
		MirrorXRot270: {-1, -2},
	}
	for tr, want := range cases {
		if got := tr.Apply(p); got != want {
			t.Errorf("%v.Apply(%v) = %v, want %v", tr, p, got, want)
		}
	}
}

func TestTransformComposeMatchesApplication(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 1}, {-3, 5}, {7, -2}}
	for _, a := range allTransforms() {
		for _, b := range allTransforms() {
			c := a.Compose(b)
			if !c.Valid() {
				t.Fatalf("%v.Compose(%v) invalid: %v", a, b, c)
			}
			for _, p := range pts {
				want := b.Apply(a.Apply(p))
				if got := c.Apply(p); got != want {
					t.Fatalf("compose(%v,%v)=%v: apply(%v) = %v, want %v",
						a, b, c, p, got, want)
				}
			}
		}
	}
}

func TestTransformInverse(t *testing.T) {
	pts := []Point{{1, 2}, {-4, 3}, {0, 0}}
	for _, a := range allTransforms() {
		inv := a.Inverse()
		for _, p := range pts {
			if got := inv.Apply(a.Apply(p)); got != p {
				t.Fatalf("%v inverse %v: round trip %v -> %v", a, inv, p, got)
			}
		}
		if got := a.Compose(inv); got != Identity {
			t.Fatalf("%v.Compose(inverse) = %v, want identity", a, got)
		}
	}
}

func TestTransformRot180Involution(t *testing.T) {
	f := func(x, y int16) bool {
		p := Pt(int(x), int(y))
		return Rot180.Apply(Rot180.Apply(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransformSwapsAxes(t *testing.T) {
	want := map[Transform]bool{
		Identity: false, Rot90: true, Rot180: false, Rot270: true,
		MirrorX: false, MirrorXRot90: true, MirrorXRot180: false, MirrorXRot270: true,
	}
	for tr, w := range want {
		if got := tr.SwapsAxes(); got != w {
			t.Errorf("%v.SwapsAxes = %v, want %v", tr, got, w)
		}
	}
}

func TestTransformApplyAllNormalises(t *testing.T) {
	ps := []Point{{0, 0}, {1, 0}, {1, 1}}
	for _, tr := range allTransforms() {
		out := tr.ApplyAll(ps)
		if len(out) != len(ps) {
			t.Fatalf("%v: ApplyAll changed cardinality", tr)
		}
		b := BoundsOf(out)
		if b.MinX != 0 || b.MinY != 0 {
			t.Errorf("%v: ApplyAll not normalised, bounds %v", tr, b)
		}
		for i := 1; i < len(out); i++ {
			if out[i].Less(out[i-1]) {
				t.Errorf("%v: ApplyAll not sorted: %v", tr, out)
			}
		}
	}
}

// Property: ApplyAll preserves pairwise distances (rigid motion).
func TestTransformApplyAllRigid(t *testing.T) {
	ps := []Point{{0, 0}, {3, 1}, {1, 4}, {2, 2}}
	d2 := func(a, b Point) int {
		dx, dy := a.X-b.X, a.Y-b.Y
		return dx*dx + dy*dy
	}
	base := make(map[int]int)
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			base[d2(ps[i], ps[j])]++
		}
	}
	for _, tr := range allTransforms() {
		out := tr.ApplyAll(ps)
		got := make(map[int]int)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				got[d2(out[i], out[j])]++
			}
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("%v: distance multiset changed", tr)
			}
		}
	}
}

func TestTransformStringValid(t *testing.T) {
	for _, tr := range allTransforms() {
		if tr.String() == "invalid-transform" {
			t.Errorf("transform %d has no name", tr)
		}
	}
	if Transform(250).String() != "invalid-transform" {
		t.Error("out-of-range transform should report invalid")
	}
	if Transform(250).Valid() {
		t.Error("out-of-range transform reported valid")
	}
}
