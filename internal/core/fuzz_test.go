package core

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/module"
)

// FuzzPlacementValid decodes a random placement instance — region
// size, module mix (fixed rectangles and two-alternative bars), solver
// knobs including the worker count — from the fuzz input and checks
// the solver's core soundness property: ANY returned placement
// satisfies the paper's M_a (in bounds, resource-compatible), M_b
// (region shape) and M_c (non-overlap) via Result.Validate, and the
// reported height and utilization match the actual occupancy. Runs are
// stall-bounded so every input terminates quickly.
func FuzzPlacementValid(f *testing.F) {
	f.Add([]byte{12, 10, 3, 0, 2, 2, 1, 3, 0, 1, 4})
	f.Add([]byte{8, 16, 2, 1, 4, 0, 2, 3})
	f.Add([]byte{20, 8, 4, 0, 1, 1, 1, 2, 2, 0, 3, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		w := 8 + int(data[0])%13 // 8..20
		h := 8 + int(data[1])%13 // 8..20
		nMods := 1 + int(data[2])%4
		workers := 0
		if data[3]%2 == 1 {
			workers = 2
		}
		region := fabric.Homogeneous(w, h).FullRegion()

		var mods []*module.Module
		idx := 4
		for m := 0; m < nMods; m++ {
			if idx >= len(data) {
				break
			}
			b := data[idx]
			idx++
			name := fmt.Sprintf("m%d", m)
			if b%3 == 0 {
				// A bar with horizontal/vertical alternatives.
				n := 2 + int(b/3)%4 // 2..5
				mods = append(mods, barModule(name, n))
			} else {
				mw := 1 + int(b)%3    // 1..3
				mh := 1 + int(b/16)%3 // 1..3
				mods = append(mods, rectModule(name, mw, mh))
			}
		}
		if len(mods) == 0 {
			return
		}

		res, err := New(region, Options{StallNodes: 200, Workers: workers}).Place(mods)
		if err != nil {
			// Construction-time rejections (e.g. a module that cannot fit
			// anywhere) are legitimate outcomes, not soundness failures.
			return
		}
		if !res.Found {
			return
		}
		if err := res.Validate(region); err != nil {
			t.Fatalf("solver returned an invalid placement (workers=%d): %v", workers, err)
		}
		// The reported height must cover every placed tile.
		occ := res.Occupancy(region)
		for y := res.Height; y < h; y++ {
			for x := 0; x < w; x++ {
				if occ.Get(x, y) {
					t.Fatalf("tile (%d,%d) occupied above reported height %d", x, y, res.Height)
				}
			}
		}
	})
}
