package grid

// Transform is a rigid transform of the tile grid: one of the eight
// symmetries of the square (four rotations, optionally composed with a
// horizontal mirror). Transforms act on points; shapes are transformed by
// transforming their tiles and renormalising to a non-negative origin.
//
// Only Identity and Rot180 preserve the aspect ratio of rectangular
// dedicated resources such as BRAM columns, which is why the paper's
// module alternatives are restricted to 180-degree rotations plus layout
// changes; the full group is provided for generality and for tests.
type Transform uint8

// The eight grid symmetries. MirrorX flips x (reflection about the y
// axis); the composed forms apply the rotation first, then the mirror.
const (
	Identity Transform = iota
	Rot90
	Rot180
	Rot270
	MirrorX
	MirrorXRot90
	MirrorXRot180
	MirrorXRot270
	numTransforms
)

var transformNames = [numTransforms]string{
	"identity", "rot90", "rot180", "rot270",
	"mirrorx", "mirrorx-rot90", "mirrorx-rot180", "mirrorx-rot270",
}

// String returns a stable lowercase name for t.
func (t Transform) String() string {
	if t < numTransforms {
		return transformNames[t]
	}
	return "invalid-transform"
}

// Valid reports whether t is one of the eight defined symmetries.
func (t Transform) Valid() bool { return t < numTransforms }

// Apply maps p under t (about the origin).
func (t Transform) Apply(p Point) Point {
	switch t {
	case Identity:
		return p
	case Rot90:
		return Point{-p.Y, p.X}
	case Rot180:
		return Point{-p.X, -p.Y}
	case Rot270:
		return Point{p.Y, -p.X}
	case MirrorX:
		return Point{-p.X, p.Y}
	case MirrorXRot90:
		return Point{p.Y, p.X}
	case MirrorXRot180:
		return Point{p.X, -p.Y}
	case MirrorXRot270:
		return Point{-p.Y, -p.X}
	}
	return p
}

// Compose returns the transform equivalent to applying t first and then u.
func (t Transform) Compose(u Transform) Transform {
	tm, tr := t >= MirrorX, int(t)%4
	um, ur := u >= MirrorX, int(u)%4
	// Dihedral-group algebra with elements written M^m ∘ R^r (rotation
	// applied first): R^u ∘ M = M ∘ R^(-u), so a mirror in t flips the
	// direction of u's rotation.
	var rot int
	if tm {
		rot = (tr - ur + 8) % 4
	} else {
		rot = (tr + ur) % 4
	}
	mirror := tm != um
	out := Transform(rot)
	if mirror {
		out += MirrorX
	}
	return out
}

// Inverse returns the transform that undoes t.
func (t Transform) Inverse() Transform {
	switch t {
	case Rot90:
		return Rot270
	case Rot270:
		return Rot90
	default:
		// Identity, Rot180 and all mirrored forms are involutions.
		return t
	}
}

// SwapsAxes reports whether t exchanges width and height.
func (t Transform) SwapsAxes() bool {
	switch t {
	case Rot90, Rot270, MirrorXRot90, MirrorXRot270:
		return true
	}
	return false
}

// ApplyAll maps each point of ps under t and renormalises the result so
// the bounding box origin is (0, 0); the output is in canonical order.
func (t Transform) ApplyAll(ps []Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = t.Apply(p)
	}
	b := BoundsOf(out)
	off := Point{-b.MinX, -b.MinY}
	for i := range out {
		out[i] = out[i].Add(off)
	}
	SortPoints(out)
	return out
}
