package goroleak

// SpawnAcrossFiles launches tickForever, declared in goroleak.go: the
// declaration index is package-wide, so the eternal loop over there
// is found from this file's go statement (the diagnostic lands on the
// loop, in the other file).
func SpawnAcrossFiles() {
	go tickForever()
}

// drainForever is fine: its loop exits when the channel closes.
func drainForever(ch chan int) {
	for {
		if _, ok := <-ch; !ok {
			return
		}
	}
}

// SpawnDrain launches the clean worker.
func SpawnDrain() {
	go drainForever(make(chan int))
}
