package module

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/grid"
)

func TestDemandValidate(t *testing.T) {
	if (Demand{CLB: 1}).Validate() != nil {
		t.Error("valid demand rejected")
	}
	if (Demand{CLB: -1}).Validate() == nil {
		t.Error("negative demand accepted")
	}
	if (Demand{}).Validate() == nil {
		t.Error("empty demand accepted")
	}
	d := Demand{CLB: 3, BRAM: 2, DSP: 1}
	if d.Total() != 6 {
		t.Errorf("Total = %d", d.Total())
	}
	h := d.Histogram()
	if h[fabric.CLB] != 3 || h[fabric.BRAM] != 2 || h[fabric.DSP] != 1 {
		t.Errorf("Histogram = %v", h)
	}
}

func TestSynthesizeMatchesDemand(t *testing.T) {
	f := func(clb, bram, dsp, width uint8) bool {
		d := Demand{CLB: int(clb % 60), BRAM: int(bram % 5), DSP: int(dsp % 3)}
		w := 1 + int(width%8)
		s, err := Synthesize(d, w, DedicatedLeft)
		if err != nil {
			return true // infeasible parameter combos are fine
		}
		h := s.Histogram()
		return h == d.Histogram()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(Demand{}, 3, DedicatedLeft); err == nil {
		t.Error("empty demand accepted")
	}
	if _, err := Synthesize(Demand{CLB: 10}, 0, DedicatedLeft); err == nil {
		t.Error("zero width accepted")
	}
	// Width 2 with BRAM and DSP leaves no CLB column.
	if _, err := Synthesize(Demand{CLB: 5, BRAM: 1, DSP: 1}, 2, DedicatedLeft); err == nil {
		t.Error("no CLB columns accepted")
	}
	if _, err := Synthesize(Demand{CLB: 1}, 1, Side(9)); err == nil {
		t.Error("invalid side accepted")
	}
}

func TestSynthesizeDedicatedSides(t *testing.T) {
	d := Demand{CLB: 6, BRAM: 2}
	left, err := Synthesize(d, 4, DedicatedLeft)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Synthesize(d, 4, DedicatedRight)
	if err != nil {
		t.Fatal(err)
	}
	lb := left.TilesOfKind(fabric.BRAM)
	rb := right.TilesOfKind(fabric.BRAM)
	for _, p := range lb {
		if p.X != 0 {
			t.Errorf("left BRAM at x=%d", p.X)
		}
	}
	for _, p := range rb {
		if p.X != 3 {
			t.Errorf("right BRAM at x=%d", p.X)
		}
	}
	// Same bounding box: internal layout variants only.
	if left.Bounds() != right.Bounds() {
		t.Errorf("bounds differ: %v vs %v", left.Bounds(), right.Bounds())
	}
	if left.Equal(right) {
		t.Error("left/right layouts should differ")
	}
}

func TestSynthesizeColumnStructure(t *testing.T) {
	// 7 CLB over 3 CLB columns: heights 3,2,2. BRAM column height 2.
	s, err := Synthesize(Demand{CLB: 7, BRAM: 2}, 4, DedicatedLeft)
	if err != nil {
		t.Fatal(err)
	}
	colHeights := map[int]int{}
	for _, tl := range s.Tiles() {
		if tl.At.Y+1 > colHeights[tl.At.X] {
			colHeights[tl.At.X] = tl.At.Y + 1
		}
	}
	want := map[int]int{0: 2, 1: 3, 2: 2, 3: 2}
	for x, h := range want {
		if colHeights[x] != h {
			t.Errorf("column %d height = %d, want %d (shape:\n%s)", x, colHeights[x], h, s)
		}
	}
	// BRAM tiles are a contiguous stack from y=0.
	for i, p := range s.TilesOfKind(fabric.BRAM) {
		if p != grid.Pt(0, i) {
			t.Errorf("BRAM tile %d at %v", i, p)
		}
	}
}

func TestSynthesizeDSPColumn(t *testing.T) {
	s, err := Synthesize(Demand{CLB: 4, BRAM: 2, DSP: 3}, 5, DedicatedLeft)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.TilesOfKind(fabric.BRAM) {
		if p.X != 0 {
			t.Errorf("BRAM not outermost-left: %v", p)
		}
	}
	for _, p := range s.TilesOfKind(fabric.DSP) {
		if p.X != 1 {
			t.Errorf("DSP not adjacent to BRAM: %v", p)
		}
	}
	r, err := Synthesize(Demand{CLB: 4, BRAM: 2, DSP: 3}, 5, DedicatedRight)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.TilesOfKind(fabric.BRAM) {
		if p.X != 4 {
			t.Errorf("right-side BRAM not outermost: %v", p)
		}
	}
	for _, p := range r.TilesOfKind(fabric.DSP) {
		if p.X != 3 {
			t.Errorf("right-side DSP position: %v", p)
		}
	}
}

func TestSynthesizeDedicatedOnly(t *testing.T) {
	s, err := Synthesize(Demand{BRAM: 3}, 1, DedicatedLeft)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 || s.W() != 1 || s.H() != 3 {
		t.Fatalf("BRAM-only shape wrong: %dx%d size %d", s.W(), s.H(), s.Size())
	}
}

func TestBalancedWidth(t *testing.T) {
	cases := []struct {
		d    Demand
		want int
	}{
		{Demand{CLB: 16}, 4},
		{Demand{CLB: 16, BRAM: 2}, 5},
		{Demand{CLB: 16, BRAM: 2, DSP: 1}, 6},
		{Demand{CLB: 1}, 1},
		{Demand{BRAM: 4}, 1},
		{Demand{}, 1},
	}
	for _, c := range cases {
		if got := BalancedWidth(c.d); got != c.want {
			t.Errorf("BalancedWidth(%+v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBalancedWidthRoughlySquare(t *testing.T) {
	f := func(clb uint8) bool {
		d := Demand{CLB: 1 + int(clb)}
		w := BalancedWidth(d)
		s, err := Synthesize(d, w, DedicatedLeft)
		if err != nil {
			return false
		}
		// Aspect ratio within a factor of 2.5 of square.
		ar := float64(s.W()) / float64(s.H())
		return ar > 0.4 && ar < 2.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
