// Package lockscope is a fixture: blocking operations and leaked
// locks inside sync.Mutex critical sections.
package lockscope

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// Inc is the good path: lock, mutate, unlock.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Get is the good deferred path.
func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// SlowInc sleeps inside the critical section.
func (c *counter) SlowInc() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation while c\.mu is held: time\.Sleep`
	c.n++
	c.mu.Unlock()
}

// Publish sends on a channel while holding the lock.
func (c *counter) Publish(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want `blocking operation while c\.mu is held: channel send ch`
}

// WaitSignal receives while holding the lock.
func (c *counter) WaitSignal(ch chan struct{}) {
	c.mu.Lock()
	<-ch // want `blocking operation while c\.mu is held: channel receive <-ch`
	c.mu.Unlock()
}

// WaitSelect parks on a bare select while holding the lock.
func (c *counter) WaitSelect(ch, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `blocking operation while c\.mu is held: select with no default case`
	case <-ch:
	case <-done:
	}
}

// Poll is fine: the select has a default, so it never parks.
func (c *counter) Poll(ch chan struct{}) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Leak returns early with the lock still held.
func (c *counter) Leak(flag bool) int {
	c.mu.Lock()
	if flag {
		return c.n // want `return while c\.mu is held`
	}
	c.mu.Unlock()
	return 0
}

// LeakFallThrough never unlocks at all.
func (c *counter) LeakFallThrough() {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on the fall-through path`
	c.n++
}

// Branchy is fine: both branches release before falling through.
func (c *counter) Branchy(flag bool) {
	c.mu.Lock()
	if flag {
		c.n++
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
}

type solver struct{}

func (solver) Solve() int { return 0 }

// SolveUnder waits on a solver entry point inside the critical
// section.
func (c *counter) SolveUnder(s solver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = s.Solve() // want `blocking operation while c\.mu is held: call to solver entry point Solve`
}

// Spawn is fine: the goroutine body runs outside the creator's
// critical section, so its channel send is not under the lock.
func (c *counter) Spawn(ch chan int) {
	c.mu.Lock()
	go func() {
		ch <- 1
	}()
	c.mu.Unlock()
}

// jitterLocked deliberately serializes a tiny delay under the lock;
// the pragma records the decision.
func (c *counter) jitterLocked() {
	c.mu.Lock()
	//solverlint:allow lockscope fixture: deliberate serialization delay under the lock
	time.Sleep(time.Microsecond)
	c.mu.Unlock()
}
