package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// clbModuleJSON renders a WxH all-CLB module spec in wire form.
func clbModuleJSON(name string, w, h int) string {
	var tiles []string
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tiles = append(tiles, fmt.Sprintf(`{"x":%d,"y":%d,"kind":"CLB"}`, x, y))
		}
	}
	return fmt.Sprintf(`{"name":%q,"shapes":[{"tiles":[%s]}]}`, name, strings.Join(tiles, ","))
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(method, path, rd))
	return rr
}

// createSession POSTs /v1/sessions and returns the session id.
func createSession(t *testing.T, h http.Handler, body string) string {
	t.Helper()
	rr := do(t, h, "POST", "/v1/sessions", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("create session: status %d body %s", rr.Code, rr.Body)
	}
	var info SessionInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Session == "" {
		t.Fatalf("empty session id: %s", rr.Body)
	}
	return info.Session
}

func sessionPlace(t *testing.T, h http.Handler, id string, task int64, modJSON string) (SessionPlaceResponse, *httptest.ResponseRecorder) {
	t.Helper()
	body := fmt.Sprintf(`{"task":%d,"module":%s}`, task, modJSON)
	rr := do(t, h, "POST", "/v1/sessions/"+id+"/place", body)
	var resp SessionPlaceResponse
	if rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rr
}

// TestSessionLifecycleAndDefrag is the end-to-end round trip the smoke
// script mirrors: create a session, fragment it, defragment it over
// HTTP — the moves must be priced and the fragmentation metric must
// drop — then place into the compacted space and tear the session down.
func TestSessionLifecycleAndDefrag(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	id := createSession(t, h, `{"fabric":"spartan-like-24x16","region":{"x":0,"y":0,"w":8,"h":12},"replan":{"stallNodes":200}}`)

	// First-fit layout, then free the middle-left block: the free space
	// becomes an L (two 4x4 holes inside the occupied span).
	specs := []struct {
		task int64
		w, h int
	}{{1, 8, 4}, {2, 4, 4}, {3, 4, 4}, {4, 4, 4}}
	for _, sp := range specs {
		resp, rr := sessionPlace(t, h, id, sp.task, clbModuleJSON("m", sp.w, sp.h))
		if rr.Code != http.StatusOK || !resp.Placed || resp.Replanned {
			t.Fatalf("seed %d: status %d %+v body %s", sp.task, rr.Code, resp, rr.Body)
		}
		if resp.W != sp.w || resp.H != sp.h || resp.ReconfigMs <= 0 {
			t.Fatalf("seed %d: implausible placement %+v", sp.task, resp)
		}
		if got := rr.Header().Get("X-Placement-Quality"); got != QualityExact {
			t.Fatalf("seed %d: quality %q", sp.task, got)
		}
	}
	rr := do(t, h, "DELETE", "/v1/sessions/"+id+"/modules/2", "")
	var rel SessionReleaseResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &rel); err != nil {
		t.Fatal(err)
	}
	if rr.Code != http.StatusOK || !rel.Released {
		t.Fatalf("release: status %d %+v", rr.Code, rel)
	}
	// Releasing again is idempotent: 200 with released=false.
	rr = do(t, h, "DELETE", "/v1/sessions/"+id+"/modules/2", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &rel); err != nil {
		t.Fatal(err)
	}
	if rr.Code != http.StatusOK || rel.Released {
		t.Fatalf("double release: status %d %+v", rr.Code, rel)
	}

	rr = do(t, h, "GET", "/v1/sessions/"+id+"/stats", "")
	var before SessionStatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if before.Residents != 3 || before.OccupiedTiles != 64 || len(before.Residency) != 3 {
		t.Fatalf("stats before defrag: %+v", before)
	}
	if before.Fragmentation <= 0 {
		t.Fatalf("L-shaped free space not fragmented: %+v", before)
	}

	rr = do(t, h, "POST", "/v1/sessions/"+id+"/defrag", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("defrag: status %d body %s", rr.Code, rr.Body)
	}
	var df SessionDefragResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &df); err != nil {
		t.Fatal(err)
	}
	if len(df.Moves) == 0 || df.FragAfter >= df.FragBefore || df.ReconfigMs <= 0 {
		t.Fatalf("defrag did not compact: %+v", df)
	}
	for _, mv := range df.Moves {
		if mv.Frames <= 0 || mv.ReconfigMs <= 0 {
			t.Fatalf("unpriced move: %+v", mv)
		}
	}

	// The stats endpoint must report the drop, not just the defrag
	// response.
	rr = do(t, h, "GET", "/v1/sessions/"+id+"/stats", "")
	var after SessionStatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Fragmentation >= before.Fragmentation || after.Defrags != 1 || after.Moves == 0 {
		t.Fatalf("stats after defrag: %+v (before %+v)", after, before)
	}

	// The compacted layout frees an 8x4 strip: greedy placement must
	// take it without a replan.
	resp, rr2 := sessionPlace(t, h, id, 5, clbModuleJSON("top", 8, 4))
	if rr2.Code != http.StatusOK || !resp.Placed || resp.Replanned {
		t.Fatalf("compacted space unusable: status %d %+v", rr2.Code, resp)
	}

	st := s.Stats()
	if st.Sessions != 1 || st.SessionsCreated != 1 || st.SessionDefrags != 1 {
		t.Fatalf("server stats: %+v", st)
	}

	rr = do(t, h, "DELETE", "/v1/sessions/"+id, "")
	if rr.Code != http.StatusOK {
		t.Fatalf("delete session: status %d", rr.Code)
	}
	if rr = do(t, h, "GET", "/v1/sessions/"+id+"/stats", ""); rr.Code != http.StatusNotFound {
		t.Fatalf("stats after delete: status %d", rr.Code)
	}
	if s.Stats().Sessions != 0 {
		t.Fatalf("session count after delete: %+v", s.Stats())
	}
}

// TestSessionReplanOverHTTP drives the blocked-arrival path end to end:
// greedy placement cannot site the wide module, so the response must
// carry replanned=true plus a priced relocation schedule.
func TestSessionReplanOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	id := createSession(t, h, `{"fabric":"spartan-like-24x16","region":{"x":0,"y":0,"w":16,"h":4},"replan":{"stallNodes":200}}`)
	for task := int64(1); task <= 4; task++ {
		if resp, rr := sessionPlace(t, h, id, task, clbModuleJSON("m", 4, 4)); rr.Code != http.StatusOK || !resp.Placed {
			t.Fatalf("seed %d: status %d body %s", task, rr.Code, rr.Body)
		}
	}
	do(t, h, "DELETE", "/v1/sessions/"+id+"/modules/2", "")
	do(t, h, "DELETE", "/v1/sessions/"+id+"/modules/4", "")

	resp, rr := sessionPlace(t, h, id, 5, clbModuleJSON("wide", 8, 4))
	if rr.Code != http.StatusOK || !resp.Placed || !resp.Replanned {
		t.Fatalf("replan place: status %d %+v body %s", rr.Code, resp, rr.Body)
	}
	if len(resp.Moves) == 0 {
		t.Fatalf("replanned without moves: %+v", resp)
	}
	for _, mv := range resp.Moves {
		if mv.Frames <= 0 || mv.ReconfigMs <= 0 {
			t.Fatalf("unpriced move: %+v", mv)
		}
	}
	if s.Stats().SessionReplans != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestSessionValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"unknown fabric", "POST", "/v1/sessions", `{"fabric":"nope"}`, http.StatusBadRequest},
		{"missing fabric", "POST", "/v1/sessions", `{}`, http.StatusBadRequest},
		{"unknown manager", "POST", "/v1/sessions", `{"fabric":"spartan-like-24x16","manager":"nope"}`, http.StatusBadRequest},
		{"zero region", "POST", "/v1/sessions", `{"fabric":"spartan-like-24x16","region":{"x":0,"y":0,"w":0,"h":4}}`, http.StatusBadRequest},
		{"unknown session place", "POST", "/v1/sessions/deadbeef/place", `{"task":1,"module":` + clbModuleJSON("m", 2, 2) + `}`, http.StatusNotFound},
		{"unknown session stats", "GET", "/v1/sessions/deadbeef/stats", "", http.StatusNotFound},
		{"unknown session defrag", "POST", "/v1/sessions/deadbeef/defrag", "", http.StatusNotFound},
		{"unknown session release", "DELETE", "/v1/sessions/deadbeef/modules/1", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		if rr := do(t, h, tc.method, tc.path, tc.body); rr.Code != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rr.Code, tc.status, rr.Body)
		}
	}

	id := createSession(t, h, `{"fabric":"spartan-like-24x16"}`)
	if _, rr := sessionPlace(t, h, id, -1, clbModuleJSON("m", 2, 2)); rr.Code != http.StatusBadRequest {
		t.Fatalf("negative task: status %d", rr.Code)
	}
	if rr := do(t, h, "POST", "/v1/sessions/"+id+"/place", `{"task":1}`); rr.Code != http.StatusBadRequest {
		t.Fatalf("missing module: status %d", rr.Code)
	}
	if _, rr := sessionPlace(t, h, id, 1, clbModuleJSON("m", 2, 2)); rr.Code != http.StatusOK {
		t.Fatalf("place: status %d", rr.Code)
	}
	if _, rr := sessionPlace(t, h, id, 1, clbModuleJSON("m", 2, 2)); rr.Code != http.StatusConflict {
		t.Fatalf("duplicate task: status %d", rr.Code)
	}
	if rr := do(t, h, "DELETE", "/v1/sessions/"+id+"/modules/x", ""); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad task id: status %d", rr.Code)
	}
}

// TestSessionTraceHeaders checks that session endpoints join the same
// tracing machinery as /v1/place: ids are minted per request and a
// well-formed client id is honoured for correlation.
func TestSessionTraceHeaders(t *testing.T) {
	s := newTestServer(t, Config{Tracer: obs.NewTracer(obs.TracerConfig{})})
	h := s.Handler()
	rr := do(t, h, "POST", "/v1/sessions", `{"fabric":"spartan-like-24x16"}`)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Trace-Id") == "" {
		t.Fatalf("create: status %d trace %q", rr.Code, rr.Header().Get("X-Trace-Id"))
	}
	var info SessionInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}

	want := obs.NewTraceID().String()
	req := httptest.NewRequest("POST", "/v1/sessions/"+info.Session+"/place",
		strings.NewReader(`{"task":1,"module":`+clbModuleJSON("m", 2, 2)+`}`))
	req.Header.Set("X-Trace-Id", want)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Trace-Id") != want {
		t.Fatalf("place: status %d trace %q, want %q", rec.Code, rec.Header().Get("X-Trace-Id"), want)
	}
	// Errors carry the header too: a 404 stays correlatable.
	rr = do(t, h, "GET", "/v1/sessions/bogus/stats", "")
	if rr.Code != http.StatusNotFound || rr.Header().Get("X-Trace-Id") == "" {
		t.Fatalf("404 without trace id: status %d", rr.Code)
	}
}

// TestSessionFaultInjection exercises the chaos mapping: an injected
// session error answers 503, an injected defrag timeout 504, and the
// fires show up in /v1/stats.
func TestSessionFaultInjection(t *testing.T) {
	inj, err := faultinject.Parse("session:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Faults: inj})
	if rr := do(t, s.Handler(), "POST", "/v1/sessions", `{"fabric":"spartan-like-24x16"}`); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("injected session error: status %d body %s", rr.Code, rr.Body)
	}
	if s.Stats().Faults["session:error"] != 1 {
		t.Fatalf("fault stats: %+v", s.Stats().Faults)
	}

	inj, err = faultinject.Parse("defrag:timeout:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	s = newTestServer(t, Config{Faults: inj})
	h := s.Handler()
	id := createSession(t, h, `{"fabric":"spartan-like-24x16"}`)
	if rr := do(t, h, "POST", "/v1/sessions/"+id+"/defrag", ""); rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("injected defrag timeout: status %d", rr.Code)
	}
}

// TestSessionSaturationShedsOrDegrades pins the admission policy for
// inline session solves: with every solver slot taken, a place request
// is shed with 429 by default and served greedy-only (tagged
// approximate) when degradation is on.
func TestSessionSaturationShedsOrDegrades(t *testing.T) {
	saturate := func(s *Server) func() {
		for i := 0; i < cap(s.sessionSlots); i++ {
			s.sessionSlots <- struct{}{}
		}
		return func() {
			for i := 0; i < cap(s.sessionSlots); i++ {
				<-s.sessionSlots
			}
		}
	}

	s := newTestServer(t, Config{Workers: 1})
	h := s.Handler()
	id := createSession(t, h, `{"fabric":"spartan-like-24x16"}`)
	release := saturate(s)
	_, rr := sessionPlace(t, h, id, 1, clbModuleJSON("m", 2, 2))
	if rr.Code != http.StatusTooManyRequests || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("saturated place: status %d Retry-After %q", rr.Code, rr.Header().Get("Retry-After"))
	}
	if rr = do(t, h, "POST", "/v1/sessions/"+id+"/defrag", ""); rr.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated defrag: status %d", rr.Code)
	}
	release()

	s = newTestServer(t, Config{Workers: 1, Degrade: true})
	h = s.Handler()
	id = createSession(t, h, `{"fabric":"spartan-like-24x16"}`)
	release = saturate(s)
	resp, rr2 := sessionPlace(t, h, id, 1, clbModuleJSON("m", 2, 2))
	release()
	if rr2.Code != http.StatusOK || !resp.Placed {
		t.Fatalf("degraded place: status %d %+v", rr2.Code, resp)
	}
	if got := rr2.Header().Get("X-Placement-Quality"); got != QualityApproximate {
		t.Fatalf("degraded place quality %q", got)
	}
	if resp.Quality != QualityApproximate {
		t.Fatalf("degraded place body quality %q", resp.Quality)
	}
	if s.Stats().Degraded != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

// TestSessionStoreTTLAndLRU unit-tests the store against a fake clock:
// capacity evicts least-recently-used, idleness expires lazily.
func TestSessionStoreTTLAndLRU(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	st := newSessionStore(2, time.Minute, clock)

	mk := func(id string) *session { return &session{id: id} }
	st.add(mk("a"))
	st.add(mk("b"))
	if sess, _ := st.get("a"); sess == nil { // bump a: b becomes LRU
		t.Fatal("a missing")
	}
	if _, evicted := st.add(mk("c")); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if sess, _ := st.get("b"); sess != nil {
		t.Fatal("LRU victim b still present")
	}
	if sess, _ := st.get("a"); sess == nil {
		t.Fatal("recently used a evicted")
	}

	now = now.Add(61 * time.Second)
	sess, expired := st.get("a")
	if sess != nil || expired != 2 {
		t.Fatalf("after TTL: sess %v expired %d, want nil, 2", sess, expired)
	}
	if st.len() != 0 {
		t.Fatalf("len = %d after expiry", st.len())
	}

	st.add(mk("d")) // the store stays usable after expiry
	if st.len() != 1 {
		t.Fatalf("len = %d", st.len())
	}
	if st.remove("d") != true || st.remove("d") != false {
		t.Fatal("remove not idempotent")
	}
}

// TestSessionEvictionOverHTTP pins the capacity behaviour end to end:
// with MaxSessions 1, creating a second session evicts the first.
func TestSessionEvictionOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 1})
	h := s.Handler()
	first := createSession(t, h, `{"fabric":"spartan-like-24x16"}`)
	_ = createSession(t, h, `{"fabric":"spartan-like-24x16"}`)
	if rr := do(t, h, "GET", "/v1/sessions/"+first+"/stats", ""); rr.Code != http.StatusNotFound {
		t.Fatalf("evicted session answered: status %d", rr.Code)
	}
	st := s.Stats()
	if st.Sessions != 1 || st.SessionsEvicted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
