package geost

import (
	"errors"
	"testing"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/grid"
)

func TestTopLinkBounds(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 4, 6)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(1, 2, 4, 6), rectGeom(1, 4, 4, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	// Shape heights 2 and 4: top ranges over [2, 6].
	if o.Top.Min() != 2 || o.Top.Max() != 6 {
		t.Fatalf("top = [%d,%d], want [2,6]", o.Top.Min(), o.Top.Max())
	}
	// Cap top at 3: only the 2-high shape at y<=1 survives.
	if err := st.SetMax(o.Top, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if o.ShapePresent(1) {
		t.Fatal("4-high shape should be pruned by top<=3")
	}
	o.Place.Domain().ForEach(func(val int) bool {
		if o.topOf(val) > 3 {
			t.Fatalf("placement with top %d survived", o.topOf(val))
		}
		return true
	})
}

func TestTopLinkRaisesMin(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 2, 8)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(1, 3, 2, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// Force y >= 4 by removing low placements.
	if err := st.FilterDomain(o.Place, func(v int) bool {
		_, _, y := o.Decode(v)
		return y >= 4
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if o.Top.Min() != 7 {
		t.Fatalf("top.min = %d, want 7", o.Top.Min())
	}
}

func TestNonOverlapPairForwardChecks(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 5, 4)
	a, err := k.AddObject("a", []ShapeGeom{rectGeom(2, 2, 5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.AddObject("b", []ShapeGeom{rectGeom(2, 2, 5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	k.PostNonOverlap()
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	before := b.CandidateCount() // 4 x-positions × 3 y-positions = 12
	// Fix a at the corner: occupies (0..1, 0..1).
	if err := st.Assign(a.Place, k.encode(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	b.Place.Domain().ForEach(func(val int) bool {
		_, x, y := b.Decode(val)
		if grid.RectXYWH(x, y, 2, 2).Overlaps(grid.RectXYWH(0, 0, 2, 2)) {
			t.Fatalf("overlapping placement (%d,%d) survived", x, y)
		}
		return true
	})
	// Anchors overlapping the corner block: x in {0,1} × y in {0,1} = 4
	// of the original 12.
	if got := b.CandidateCount(); got != before-4 {
		t.Fatalf("b candidates = %d, want %d", got, before-4)
	}
}

func TestNonOverlapExactFailure(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 3, 3)
	a, _ := k.AddObject("a", []ShapeGeom{rectGeom(2, 2, 3, 3)})
	_, _ = k.AddObject("b", []ShapeGeom{rectGeom(2, 2, 3, 3)})
	k.PostNonOverlap()
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	// Any placement of a 2x2 in a 3x3 overlaps the centre; two such
	// objects cannot coexist.
	if err := st.Assign(a.Place, k.encode(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	err := st.Propagate()
	if err == nil {
		// b may still have non-overlapping corners; check honestly by
		// enumerating: a at (0,0) occupies (0..1,0..1); b anchors are
		// (0..1,0..1); (1,1)? overlaps at (1,1). So all overlap → fail.
		t.Fatal("expected inconsistency")
	}
	if !errors.Is(err, csp.ErrInconsistent) {
		t.Fatalf("unexpected error %v", err)
	}
}

// TestNonOverlapEnumerationMatchesBruteForce compares kernel-driven
// enumeration with a brute-force placement count on a small instance.
func TestNonOverlapEnumerationMatchesBruteForce(t *testing.T) {
	const W, H = 4, 3
	st := csp.NewStore()
	k := New(st, W, H)
	a, _ := k.AddObject("a", []ShapeGeom{rectGeom(2, 1, W, H)})
	b, _ := k.AddObject("b", []ShapeGeom{rectGeom(1, 2, W, H)})
	k.PostNonOverlap()

	res, err := csp.Solve(st, k.PlaceVars(), csp.Options{}, func(*csp.Store) bool { return true })
	if err != nil {
		t.Fatal(err)
	}

	// Brute force.
	count := 0
	for ay := 0; ay < H; ay++ {
		for ax := 0; ax <= W-2; ax++ {
			ra := grid.RectXYWH(ax, ay, 2, 1)
			for by := 0; by <= H-2; by++ {
				for bx := 0; bx < W; bx++ {
					if !ra.Overlaps(grid.RectXYWH(bx, by, 1, 2)) {
						count++
					}
				}
			}
		}
	}
	if res.Solutions != count || !res.Complete {
		t.Fatalf("solver found %d placements (complete=%v), brute force %d",
			res.Solutions, res.Complete, count)
	}
	_ = a
	_ = b
}

func TestHeightObjectiveMinimize(t *testing.T) {
	// Three 2x2 blocks in a 4x6 space: optimal height is 4 (two side by
	// side on rows 0-1, one on rows 2-3).
	const W, H = 4, 6
	st := csp.NewStore()
	k := New(st, W, H)
	for i := 0; i < 3; i++ {
		if _, err := k.AddObject(string(rune('a'+i)), []ShapeGeom{rectGeom(2, 2, W, H)}); err != nil {
			t.Fatal(err)
		}
	}
	k.PostNonOverlap()
	height := k.PostHeightObjective(uniformCapPrefix(W, H))

	res, err := csp.Minimize(st, k.PlaceVars(), height, csp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Best != 4 || !res.Optimal {
		t.Fatalf("Minimize: %+v, want best=4 optimal", res)
	}
}

func TestHeightObjectiveWithAlternativesBeatsWithout(t *testing.T) {
	// A 4x4 space, two objects each demanding 4 tiles. Without
	// alternatives both are 1x4 vertical bars -> height 4 stacked... they
	// fit side by side: height 4. Use 4x1 horizontal bars: stacked ->
	// height 2; restricted to vertical 1x4 -> height 4. An object
	// offering both picks the better one.
	const W, H = 4, 4
	vertical := func() ShapeGeom { return rectGeom(1, 4, W, H) }
	horizontal := func() ShapeGeom { return rectGeom(4, 1, W, H) }

	solve := func(shapes func() []ShapeGeom) int {
		st := csp.NewStore()
		k := New(st, W, H)
		for i := 0; i < 2; i++ {
			if _, err := k.AddObject(string(rune('a'+i)), shapes()); err != nil {
				t.Fatal(err)
			}
		}
		k.PostNonOverlap()
		height := k.PostHeightObjective(uniformCapPrefix(W, H))
		res, err := csp.Minimize(st, k.PlaceVars(), height, csp.Options{}, nil)
		if err != nil || !res.Found {
			t.Fatalf("minimize failed: %v %+v", err, res)
		}
		return res.Best
	}

	withAlt := solve(func() []ShapeGeom { return []ShapeGeom{vertical(), horizontal()} })
	without := solve(func() []ShapeGeom { return []ShapeGeom{vertical()} })
	if withAlt != 2 || without != 4 {
		t.Fatalf("alternatives height=%d (want 2), single height=%d (want 4)", withAlt, without)
	}
}

func TestHeightBoundCapacityReasoning(t *testing.T) {
	// Space 2 wide: three 2x1 horizontal bars need at least 3 rows by
	// area alone; the capacity bound must lift height.min to 3 before
	// search.
	const W, H = 2, 5
	st := csp.NewStore()
	k := New(st, W, H)
	for i := 0; i < 3; i++ {
		if _, err := k.AddObject(string(rune('a'+i)), []ShapeGeom{rectGeom(2, 1, W, H)}); err != nil {
			t.Fatal(err)
		}
	}
	k.PostNonOverlap()
	height := k.PostHeightObjective(uniformCapPrefix(W, H))
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if height.Min() < 3 {
		t.Fatalf("height.min = %d, want >= 3 from capacity bound", height.Min())
	}
}

func TestHeightBoundDetectsOvercommit(t *testing.T) {
	// Demand exceeding total capacity must fail during propagation.
	const W, H = 2, 2
	st := csp.NewStore()
	k := New(st, W, H)
	for i := 0; i < 3; i++ {
		if _, err := k.AddObject(string(rune('a'+i)), []ShapeGeom{rectGeom(2, 1, W, H)}); err != nil {
			t.Fatal(err)
		}
	}
	k.PostNonOverlap()
	k.PostHeightObjective(uniformCapPrefix(W, H))
	if err := st.Propagate(); !errors.Is(err, csp.ErrInconsistent) {
		t.Fatalf("err = %v, want inconsistency", err)
	}
}

func TestHeightBoundHeterogeneousCapacity(t *testing.T) {
	// A space whose BRAM capacity only appears above row 2: an object
	// demanding BRAM forces height > 2 even though CLB capacity is ample.
	const W, H = 4, 6
	st := csp.NewStore()
	k := New(st, W, H)

	pts := []grid.Point{{X: 0, Y: 0}}
	var hist fabric.Histogram
	hist[fabric.BRAM] = 1
	valid := grid.NewBitmap(W, H)
	for y := 2; y < H; y++ {
		valid.Set(1, y, true) // BRAM tiles live at column 1, rows 2+
	}
	if _, err := k.AddObject("mem", []ShapeGeom{{Points: pts, W: 1, H: 1, Valid: valid, Hist: hist}}); err != nil {
		t.Fatal(err)
	}

	capPrefix := make([]fabric.Histogram, H+1)
	for h := 1; h <= H; h++ {
		capPrefix[h][fabric.CLB] = W * h
		if h > 2 {
			capPrefix[h][fabric.BRAM] = h - 2
		}
	}
	height := k.PostHeightObjective(capPrefix)
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if height.Min() < 3 {
		t.Fatalf("height.min = %d, want >= 3 (BRAM only above row 2)", height.Min())
	}
}

func TestPostHeightObjectivePanics(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 2, 2)
	for name, f := range map[string]func(){
		"bad prefix": func() { k.PostHeightObjective(make([]fabric.Histogram, 1)) },
		"no objects": func() { k.PostHeightObjective(make([]fabric.Histogram, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
