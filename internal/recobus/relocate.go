package recobus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// A partial bitstream is relocatable between two anchors only when the
// resource pattern under the module's bounding box is identical at both
// (Becker et al. [9]): the frames address the same kinds of tiles in the
// same order. On heterogeneous fabrics this splits a shape's valid
// anchors into relocation classes — one stored bitstream per class.
// Masking dedicated resources (the [9] approach the paper argues
// against) collapses classes at the cost of extra logic area; this file
// quantifies that trade-off.

// RelocationClass is a set of anchors sharing one bitstream.
type RelocationClass struct {
	// Signature is the canonical resource pattern under the bounding
	// box (row-major kinds).
	Signature string
	// Anchors lists the class's anchor positions in canonical order.
	Anchors []grid.Point
}

// RelocationClasses partitions the valid anchors of shape s on region r
// by the resource pattern under the shape's bounding box. Classes are
// returned largest-first (ties by signature) so class 0 is the most
// valuable bitstream to keep.
func RelocationClasses(r *fabric.Region, s *module.Shape) []RelocationClass {
	anchors := core.ValidAnchors(r, s)
	bySig := map[string][]grid.Point{}
	var sig strings.Builder
	for y := 0; y <= r.H()-s.H(); y++ {
		for x := 0; x <= r.W()-s.W(); x++ {
			if !anchors.Get(x, y) {
				continue
			}
			sig.Reset()
			for dy := 0; dy < s.H(); dy++ {
				for dx := 0; dx < s.W(); dx++ {
					sig.WriteByte(r.KindAt(x+dx, y+dy).Rune())
				}
			}
			key := sig.String()
			bySig[key] = append(bySig[key], grid.Pt(x, y))
		}
	}
	out := make([]RelocationClass, 0, len(bySig))
	for k, v := range bySig {
		out = append(out, RelocationClass{Signature: k, Anchors: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Anchors) != len(out[j].Anchors) {
			return len(out[i].Anchors) > len(out[j].Anchors)
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// RelocationSummary condenses the class structure of one shape.
type RelocationSummary struct {
	Anchors int
	Classes int
	// Largest is the anchor count of the biggest class.
	Largest int
}

// Ratio returns the fraction of anchors served by the single best
// bitstream (1.0 = fully relocatable with one bitstream).
func (s RelocationSummary) Ratio() float64 {
	if s.Anchors == 0 {
		return 0
	}
	return float64(s.Largest) / float64(s.Anchors)
}

// String renders "anchors=n classes=k best=m (ratio)".
func (s RelocationSummary) String() string {
	return fmt.Sprintf("anchors=%d classes=%d best=%d (%.0f%% one-bitstream coverage)",
		s.Anchors, s.Classes, s.Largest, s.Ratio()*100)
}

// SummarizeRelocation computes the relocation summary of a shape on a
// region.
func SummarizeRelocation(r *fabric.Region, s *module.Shape) RelocationSummary {
	classes := RelocationClasses(r, s)
	sum := RelocationSummary{Classes: len(classes)}
	for i, c := range classes {
		sum.Anchors += len(c.Anchors)
		if i == 0 {
			sum.Largest = len(c.Anchors)
		}
	}
	return sum
}
