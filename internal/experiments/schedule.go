package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/rtsim"
	"repro/internal/workload"
)

// ScheduleRow aggregates one planning mode over the runs.
type ScheduleRow struct {
	Label string
	// Overhead is the reconfiguration fraction of total time.
	Overhead metrics.Summary
	// SwitchMS is the total switch time per run in milliseconds.
	SwitchMS metrics.Summary
	// Util is the mean per-phase utilization.
	Util metrics.Summary
}

// FormatScheduleRows renders the schedule comparison.
func FormatScheduleRows(title string, rows []ScheduleRow) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-14s %-20s %-20s %s\n",
		"Planning", "Reconfig Overhead", "Switch Time", "Mean Phase Util.")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6.2f%% ± %5.2f      %6.2fms ± %5.2f     %5.1f%% ± %4.1f\n",
			r.Label, r.Overhead.Mean*100, r.Overhead.CI95()*100,
			r.SwitchMS.Mean, r.SwitchMS.CI95(), r.Util.Mean*100, r.Util.CI95()*100)
	}
	return sb.String()
}

// ScheduleComparison plans seeded multi-phase reconfiguration schedules
// in fresh and persistent mode and aggregates reconfiguration overhead:
// the runtime consequence of the offline placements the paper computes
// in advance. Each run draws a pool of modules and four phases that
// each keep roughly half of their predecessor's modules.
func ScheduleComparison(cfg RunConfig) ([]ScheduleRow, error) {
	cfg = cfg.defaults()
	modes := []struct {
		label      string
		persistent bool
	}{
		{"fresh", false},
		{"persistent", true},
	}
	acc := make([]struct{ overhead, switchMS, util []float64 }, len(modes))

	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
		pool, err := workload.Generate(workload.Config{
			NumModules: 12,
			CLBMin:     10, CLBMax: 40,
			BRAMMax:      2,
			Alternatives: 4,
		}, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: schedule run %d: %w", run, err)
		}
		phases := drawPhases(pool, rng)
		for mi, mode := range modes {
			opts := rtsim.Options{
				Placer:     cfg.placerOptions(),
				Persistent: mode.persistent,
			}
			tl, err := rtsim.Plan(cfg.Region, phases, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: schedule run %d (%s): %w", run, mode.label, err)
			}
			acc[mi].overhead = append(acc[mi].overhead, tl.Overhead())
			acc[mi].switchMS = append(acc[mi].switchMS, float64(tl.TotalSwitch)/float64(time.Millisecond))
			for _, p := range tl.Plans {
				acc[mi].util = append(acc[mi].util, p.Result.Utilization)
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "schedule run %d/%d %s: overhead=%.2f%%\n",
					run+1, cfg.Runs, mode.label, tl.Overhead()*100)
			}
		}
	}

	rows := make([]ScheduleRow, len(modes))
	for mi, mode := range modes {
		rows[mi] = ScheduleRow{
			Label:    mode.label,
			Overhead: metrics.Summarize(acc[mi].overhead),
			SwitchMS: metrics.Summarize(acc[mi].switchMS),
			Util:     metrics.Summarize(acc[mi].util),
		}
	}
	return rows, nil
}

// drawPhases builds a 4-phase cyclic schedule over the pool: each phase
// holds 6 modules and shares about half with its predecessor.
func drawPhases(pool []*module.Module, rng *rand.Rand) []rtsim.Phase {
	const phaseSize = 6
	phases := make([]rtsim.Phase, 0, 4)
	cur := append([]*module.Module{}, pool[:phaseSize]...)
	for i := 0; i < 4; i++ {
		mods := append([]*module.Module{}, cur...)
		phases = append(phases, rtsim.Phase{
			Name:    fmt.Sprintf("phase%d", i),
			Modules: mods,
			Dwell:   40 * time.Millisecond,
		})
		// Next phase: keep a random half, refill from the pool.
		rng.Shuffle(len(cur), func(a, b int) { cur[a], cur[b] = cur[b], cur[a] })
		cur = cur[:phaseSize/2]
		for _, m := range pool {
			if len(cur) == phaseSize {
				break
			}
			dup := false
			for _, have := range cur {
				if have.Name() == m.Name() {
					dup = true
					break
				}
			}
			if !dup && rng.Intn(2) == 0 {
				cur = append(cur, m)
			}
		}
		// Deterministic fallback fill if the coin flips left gaps.
		for _, m := range pool {
			if len(cur) == phaseSize {
				break
			}
			dup := false
			for _, have := range cur {
				if have.Name() == m.Name() {
					dup = true
					break
				}
			}
			if !dup {
				cur = append(cur, m)
			}
		}
	}
	return phases
}
