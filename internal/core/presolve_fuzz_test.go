package core

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/module"
)

// FuzzPresolveEquivalence decodes a small random placement instance
// from the fuzz input and checks the presolve layer's contract
// differentially against a presolve-off solve of the same instance:
//
//   - feasibility must agree — dominance elimination must never drop a
//     module's last feasible alternative, and symmetry breaking must
//     keep at least one representative per permutation class;
//   - the proven optimal height must be identical;
//   - both placements must be geometrically valid (Result.Validate).
//
// Instances are kept tiny (region ≤ 13x12, ≤ 3 modules) so both runs
// are exhaustive optimality proofs — the only regime in which the
// equivalence is exact rather than anytime-approximate.
func FuzzPresolveEquivalence(f *testing.F) {
	f.Add([]byte{4, 3, 2, 7, 7})
	f.Add([]byte{1, 5, 3, 3, 3, 3})
	f.Add([]byte{9, 0, 1, 12})
	f.Add([]byte{6, 9, 3, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		w := 6 + int(data[0])%8 // 6..13
		h := 6 + int(data[1])%7 // 6..12
		nMods := 1 + int(data[2])%3
		region := fabric.Homogeneous(w, h).FullRegion()

		var mods []*module.Module
		idx := 3
		for m := 0; m < nMods; m++ {
			if idx >= len(data) {
				break
			}
			b := data[idx]
			idx++
			name := fmt.Sprintf("m%d", m)
			if b%3 == 0 {
				n := 2 + int(b/3)%4 // 2..5
				mods = append(mods, barModule(name, n))
			} else {
				mw := 1 + int(b)%3    // 1..3
				mh := 1 + int(b/16)%3 // 1..3
				mods = append(mods, rectModule(name, mw, mh))
			}
		}
		if len(mods) == 0 {
			return
		}

		// Exhaustive on both sides: no timeout, no stall criterion.
		resOn, errOn := New(region, Options{Presolve: PresolveOn}).Place(mods)
		resOff, errOff := New(region, Options{Presolve: PresolveOff}).Place(mods)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("error mismatch: presolve-on=%v presolve-off=%v", errOn, errOff)
		}
		if errOn != nil {
			return // both rejected the instance identically
		}
		if resOn.Found != resOff.Found {
			t.Fatalf("feasibility mismatch: presolve-on found=%v, presolve-off found=%v (presolve dropped the last feasible placement?)",
				resOn.Found, resOff.Found)
		}
		if !resOn.Found {
			return
		}
		if !resOn.Optimal || !resOff.Optimal {
			t.Fatalf("exhaustive run not proven optimal: on=%v off=%v", resOn.Optimal, resOff.Optimal)
		}
		if resOn.Height != resOff.Height {
			t.Fatalf("optimal height diverged: presolve-on=%d presolve-off=%d", resOn.Height, resOff.Height)
		}
		if err := resOn.Validate(region); err != nil {
			t.Fatalf("presolve-on placement invalid: %v", err)
		}
		if err := resOff.Validate(region); err != nil {
			t.Fatalf("presolve-off placement invalid: %v", err)
		}
	})
}
