package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// freePort reserves an ephemeral port and releases it for the daemon.
// The tiny race window between Close and ListenAndServe is acceptable
// in tests.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches run() on a free port and waits for /v1/healthz.
func startDaemon(t *testing.T, o cliOpts) (base string, done chan error) {
	t.Helper()
	o.addr = freePort(t)
	done = make(chan error, 1)
	go func() { done <- run(o) }()
	base = "http://" + o.addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-done:
			t.Fatalf("daemon exited during startup: %v", err)
		default:
		}
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, done
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sigterm asks the daemon to shut down the way an init system would.
// run's signal handler intercepts the signal, so the test binary
// survives the delivery.
func sigterm(t *testing.T, done chan error) error {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
		return nil
	}
}

// TestDaemonSmoke is the in-repo twin of the CI smoke job: start the
// daemon, check liveness, place the committed smoke request twice
// (miss then hit, byte-identical bodies), read stats, shut down via
// SIGTERM.
func TestDaemonSmoke(t *testing.T) {
	base, done := startDaemon(t, cliOpts{
		workers:        2,
		cacheEntries:   64,
		maxInFlight:    16,
		defaultTimeout: 20 * time.Second,
		maxTimeout:     30 * time.Second,
	})

	req, err := os.ReadFile("testdata/smoke-request.json")
	if err != nil {
		t.Fatal(err)
	}
	body1, cache1 := place(t, base, req)
	if cache1 != "miss" {
		t.Fatalf("first place: X-Cache = %q, want miss", cache1)
	}
	body2, cache2 := place(t, base, req)
	if cache2 != "hit" {
		t.Fatalf("second place: X-Cache = %q, want hit", cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", body1, body2)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"cacheHits":1`, `"solves":1`} {
		if !bytes.Contains(stats, []byte(want)) {
			t.Fatalf("stats missing %s: %s", want, stats)
		}
	}

	if err := sigterm(t, done); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

func place(t *testing.T, base string, req []byte) (body []byte, cache string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d body %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Cache")
}

// TestDaemonTracing drives the full observability round trip: a traced
// request returns X-Trace-Id, shows up in /debug/traces and the access
// log, and its spans land in the -trace JSONL stream.
func TestDaemonTracing(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/spans.jsonl"
	accessPath := dir + "/access.log"
	base, done := startDaemon(t, cliOpts{
		workers:        2,
		cacheEntries:   64,
		maxInFlight:    16,
		defaultTimeout: 20 * time.Second,
		maxTimeout:     30 * time.Second,
		tracePath:      tracePath,
		accessLog:      accessPath,
		sloLatency:     time.Millisecond,
		sloWindow:      time.Minute,
	})

	req, err := os.ReadFile("testdata/smoke-request.json")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32-hex", traceID)
	}

	dbg, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := io.ReadAll(dbg.Body)
	dbg.Body.Close()
	for _, want := range []string{traceID, `"solve"`, `"queue_wait"`, `"nodes"`} {
		if !bytes.Contains(dump, []byte(want)) {
			t.Fatalf("/debug/traces missing %s: %s", want, dump)
		}
	}

	stats, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(stats.Body)
	stats.Body.Close()
	for _, want := range []string{`"slo"`, `"latencyObjectiveMs":1`, `"windows"`} {
		if !bytes.Contains(statsBody, []byte(want)) {
			t.Fatalf("stats missing %s: %s", want, statsBody)
		}
	}

	if err := sigterm(t, done); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}

	access, err := os.ReadFile(accessPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(access, []byte(traceID)) || !bytes.Contains(access, []byte(`"path":"/v1/place"`)) {
		t.Fatalf("access log missing the request: %s", access)
	}

	spans, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"span"`, traceID, `"span":"solve"`} {
		if !bytes.Contains(spans, []byte(want)) {
			t.Fatalf("span stream missing %s", want)
		}
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run(cliOpts{addr: "256.0.0.1:http-nope"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestRunBadMetricsPath: the metrics dump happens at exit; an
// unwritable path must surface as a run() error, not be swallowed.
func TestRunBadMetricsPath(t *testing.T) {
	_, done := startDaemon(t, cliOpts{metricsPath: "/nonexistent-dir/metrics.prom"})
	if err := sigterm(t, done); err == nil {
		t.Fatal("unwritable metrics path not reported at exit")
	}
}

// TestSmokeRequestDecodes keeps the committed smoke request in step
// with the wire format without spinning up a daemon.
func TestSmokeRequestDecodes(t *testing.T) {
	raw, err := os.ReadFile("testdata/smoke-request.json")
	if err != nil {
		t.Fatal(err)
	}
	creq, err := service.DecodeRequest(bytes.NewReader(raw), service.Config{})
	if err != nil {
		t.Fatalf("smoke request no longer decodes: %v", err)
	}
	if creq.Fabric != "virtex4-like-72x60" || len(creq.Modules) != 6 {
		t.Fatalf("smoke request changed shape: fabric %s, %d modules", creq.Fabric, len(creq.Modules))
	}
	if _, err := creq.Digest(); err != nil {
		t.Fatal(err)
	}
}
