package solverlint

import (
	"go/ast"
	"go/types"
)

// Nondeterminism guards the paper-reproduction determinism contract:
// exhaustive runs (Table I, 53% → 65% utilization) must be
// bit-identical across worker counts and across machines. Wall-clock
// reads, pseudo-randomness, and Go's randomized map iteration order
// inside search or propagation code all break that silently. The
// documented deadline/anytime sites (Options.Deadline polling, anytime
// trace timestamps, opt-in propagation timing) carry
// //solverlint:allow nondeterminism comments explaining why each is
// outside the deterministic core.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no time.Now/time.Since/time.Until, math/rand, or map iteration in solver packages outside allowlisted sites",
	Run:  runNondeterminism,
}

// wallClockFuncs are the time package functions that read the wall
// clock. time.Sleep is omitted: sleeping does not branch the search.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNondeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkWallClock(pass, n)
			case *ast.Ident:
				checkRandUse(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags qualified references to time.Now/Since/Until.
func checkWallClock(pass *Pass, sel *ast.SelectorExpr) {
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" || !wallClockFuncs[f.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"time.%s reads the wall clock: search behaviour becomes machine- and load-dependent, breaking parallel-vs-sequential equivalence (use node budgets, or allowlist a documented anytime site)",
		f.Name())
}

// checkRandUse flags any use of math/rand or math/rand/v2.
func checkRandUse(pass *Pass, id *ast.Ident) {
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok || obj.Pkg() == nil {
		return
	}
	if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	// Report the use of package members, not the import ident itself
	// (the import line would double-report every use).
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return
	}
	pass.Reportf(id.Pos(),
		"%s.%s introduces pseudo-randomness into solver code: results stop being reproducible run-to-run (thread an explicit seeded source through the caller instead)",
		obj.Pkg().Path(), obj.Name())
}

// checkMapRange flags range statements over map-typed expressions.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s iterates in randomized order: any pruning or branching derived from it diverges between runs (iterate a sorted key slice, or allowlist with a sort-after justification)",
		types.ExprString(rs.X))
}
