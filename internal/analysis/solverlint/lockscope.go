package solverlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockScope enforces the serving path's critical-section discipline on
// sync.Mutex/sync.RWMutex:
//
//   - no blocking operation while a lock is held: channel send or
//     receive, a select with no default case, time.Sleep, network
//     calls (package net or net/http), and solver entry points
//     (Solve/SolveParallel/Minimize/MinimizeParallel/Place). A
//     multi-second solve or an unbounded channel wait inside a
//     critical section turns every other lock acquirer into a queue —
//     the exact convoy the bounded admission pool exists to prevent.
//   - the unlock must be reachable on every path out of the critical
//     section: a return (explicit or the implicit one at the end of
//     the function body) while a lock is held and no deferred unlock
//     is registered leaks the lock forever.
//
// The analysis is a per-function abstract interpretation of the
// statement tree: a held-set of receiver expressions is threaded
// through the control flow, branches are analyzed independently and
// merged by intersection (a lock counts as held after an if/switch
// only when every falling-through branch still holds it), and
// function literals are analyzed as independent functions (a spawned
// or deferred literal does not run under the creator's critical
// section). The intersection merge trades false negatives for zero
// false positives on release-in-one-branch patterns.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no blocking operation (channel op, bare select, time.Sleep, net or solve call) while a sync.Mutex/RWMutex is held, and every path out of a critical section must unlock",
	Run:  runLockScope,
}

// blockingSolveNames are callee names treated as unboundedly slow:
// the solver entry points a request-path critical section must never
// wait on.
var blockingSolveNames = map[string]bool{
	"Solve": true, "SolveParallel": true,
	"Minimize": true, "MinimizeParallel": true,
	"Place": true,
}

// blockingPkgs are import paths whose calls are assumed to touch the
// network.
var blockingPkgs = map[string]bool{"net": true, "net/http": true}

func runLockScope(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLockBody(pass, fd.Body)
		}
		// Function literals run outside their creator's critical
		// section (goroutines, callbacks, defers), so each body is an
		// independent lock scope.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				walkLockBody(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// lockEnv is the abstract state at one program point: which mutex
// receivers are currently locked (mapped to the position of the
// acquiring call) and which have a deferred unlock registered.
type lockEnv struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockEnv() *lockEnv {
	return &lockEnv{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (e *lockEnv) clone() *lockEnv {
	c := newLockEnv()
	for k, v := range e.held {
		c.held[k] = v
	}
	for k, v := range e.deferred {
		c.deferred[k] = v
	}
	return c
}

// heldReceivers returns the locked receivers in stable order.
// withDeferred includes receivers whose unlock is deferred (still
// locked until the function returns, so blocking under them is just as
// harmful — but returning is fine).
func (e *lockEnv) heldReceivers(withDeferred bool) []string {
	var out []string
	for r := range e.held {
		out = append(out, r)
	}
	if withDeferred {
		for r := range e.deferred {
			if _, ok := e.held[r]; !ok {
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}

func walkLockBody(pass *Pass, body *ast.BlockStmt) {
	env := newLockEnv()
	terminated := walkLockStmts(pass, body.List, env)
	if !terminated {
		for _, r := range env.heldReceivers(false) {
			pass.Reportf(env.held[r],
				"%s.Lock() is not released on the fall-through path out of this function: add an unlock or defer %s.Unlock()", r, r)
		}
	}
}

// walkLockStmts interprets a statement list, mutating env in place.
// It reports whether the list definitely terminates (ends control flow
// via return, branch, or panic-like select/switch whose cases all
// terminate).
func walkLockStmts(pass *Pass, stmts []ast.Stmt, env *lockEnv) bool {
	terminated := false
	for _, s := range stmts {
		if walkLockStmt(pass, s, env) {
			terminated = true
		}
	}
	return terminated
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, env *lockEnv) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, acquire, ok := lockCall(pass, s.X); ok {
			if acquire {
				env.held[recv] = s.Pos()
			} else {
				delete(env.held, recv)
			}
			return false
		}
		checkBlockingExpr(pass, s.X, env)
	case *ast.DeferStmt:
		if recv, acquire, ok := lockCall(pass, s.Call); ok && !acquire {
			env.deferred[recv] = true
			delete(env.held, recv)
			return false
		}
		// defer func() { mu.Unlock() }() registers the unlocks of the
		// literal body; the body itself is analyzed independently.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, acquire, ok := lockCall(pass, call); ok && !acquire {
					env.deferred[recv] = true
					delete(env.held, recv)
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			checkBlockingExpr(pass, res, env)
		}
		for _, r := range env.heldReceivers(false) {
			pass.Reportf(s.Pos(),
				"return while %s is held: this path leaks the lock (unlock before returning, or defer the unlock)", r)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto transfer control within the function;
		// the surrounding loop analysis keeps its entry state, so the
		// branch just ends this path.
		return true
	case *ast.BlockStmt:
		return walkLockStmts(pass, s.List, env)
	case *ast.LabeledStmt:
		return walkLockStmt(pass, s.Stmt, env)
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, env)
		}
		checkBlockingExpr(pass, s.Cond, env)
		thenEnv := env.clone()
		thenTerm := walkLockStmts(pass, s.Body.List, thenEnv)
		elseEnv := env.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = walkLockStmt(pass, s.Else, elseEnv)
		}
		mergeLockBranches(env, []*lockEnv{thenEnv, elseEnv}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, env)
		}
		if s.Cond != nil {
			checkBlockingExpr(pass, s.Cond, env)
		}
		bodyEnv := env.clone()
		walkLockStmts(pass, s.Body.List, bodyEnv)
		// The loop may run zero times: keep the entry state.
	case *ast.RangeStmt:
		// Ranging over a channel blocks until the channel closes.
		if t := pass.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				reportBlocking(pass, s.Pos(), env, "range over channel %s", types.ExprString(s.X))
			}
		}
		bodyEnv := env.clone()
		walkLockStmts(pass, s.Body.List, bodyEnv)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, env)
		}
		if s.Tag != nil {
			checkBlockingExpr(pass, s.Tag, env)
		}
		return walkLockCases(pass, s.Body, env, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, env)
		}
		return walkLockCases(pass, s.Body, env, true)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			reportBlocking(pass, s.Pos(), env, "select with no default case")
		}
		return walkLockCases(pass, s.Body, env, hasDefault)
	case *ast.GoStmt:
		// The goroutine does not hold the creator's locks, and
		// starting it does not block; its literal body is analyzed
		// independently by runLockScope. Arguments are evaluated here.
		for _, a := range s.Call.Args {
			checkBlockingExpr(pass, a, env)
		}
	case *ast.SendStmt:
		reportBlocking(pass, s.Pos(), env, "channel send %s <- ...", types.ExprString(s.Chan))
		checkBlockingExpr(pass, s.Value, env)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkBlockingExpr(pass, e, env)
		}
		for _, e := range s.Lhs {
			checkBlockingExpr(pass, e, env)
		}
	case *ast.DeclStmt:
		checkBlockingNode(pass, s, env)
	case *ast.IncDecStmt:
		checkBlockingExpr(pass, s.X, env)
	}
	return false
}

// walkLockCases analyzes the clauses of a switch/select body as
// parallel branches. exhaustive reports whether falling through
// without entering any clause is possible (switch without default,
// select with default): when it is, the entry env joins the merge.
func walkLockCases(pass *Pass, body *ast.BlockStmt, env *lockEnv, mayFallThrough bool) bool {
	var envs []*lockEnv
	var terms []bool
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				checkBlockingExpr(pass, e, env)
			}
			list = cc.Body
		case *ast.CommClause:
			// The comm operation itself is covered by the
			// select-with-no-default check; with a default present it
			// does not block.
			list = cc.Body
		}
		ce := env.clone()
		terms = append(terms, walkLockStmts(pass, list, ce))
		envs = append(envs, ce)
	}
	if len(envs) == 0 {
		return false
	}
	if mayFallThrough {
		envs = append(envs, env.clone())
		terms = append(terms, false)
	}
	allTerm := true
	for _, t := range terms {
		if !t {
			allTerm = false
		}
	}
	mergeLockBranches(env, envs, terms)
	return allTerm
}

// mergeLockBranches folds branch exit states back into env: a lock is
// held afterwards only if every non-terminating branch still holds it;
// deferred unlocks accumulate (registering one on any path suffices to
// silence the leak check, which keeps the analysis false-positive
// free).
func mergeLockBranches(env *lockEnv, envs []*lockEnv, terms []bool) {
	merged := map[string]token.Pos{}
	first := true
	for i, be := range envs {
		if terms[i] {
			continue
		}
		if first {
			for k, v := range be.held {
				merged[k] = v
			}
			first = false
			continue
		}
		for k := range merged {
			if _, ok := be.held[k]; !ok {
				delete(merged, k)
			}
		}
	}
	if !first { // at least one branch falls through
		env.held = merged
	}
	for _, be := range envs {
		for k := range be.deferred {
			env.deferred[k] = true
		}
	}
}

// lockCall classifies expr as a Lock/RLock (acquire=true) or
// Unlock/RUnlock (acquire=false) call on a sync.Mutex or sync.RWMutex
// receiver, returning the receiver's source text.
func lockCall(pass *Pass, expr ast.Expr) (recv string, acquire, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !isSyncMutexType(t) {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

// isSyncMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex, or a same-named fixture stand-in.
func isSyncMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// checkBlockingExpr scans one expression for blocking operations,
// skipping nested function literals (their bodies do not run here).
func checkBlockingExpr(pass *Pass, expr ast.Expr, env *lockEnv) {
	if expr == nil {
		return
	}
	checkBlockingNode(pass, expr, env)
}

func checkBlockingNode(pass *Pass, node ast.Node, env *lockEnv) {
	if len(env.held) == 0 && len(env.deferred) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportBlocking(pass, n.Pos(), env, "channel receive %s", types.ExprString(n))
			}
		case *ast.CallExpr:
			if why := blockingCall(pass, n); why != "" {
				reportBlocking(pass, n.Pos(), env, "%s", why)
			}
		}
		return true
	})
}

// blockingCall describes why call blocks, or returns "".
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		if blockingSolveNames[sel.Sel.Name] {
			return "call to solver entry point " + sel.Sel.Name
		}
		return ""
	}
	if pkg := fn.Pkg(); pkg != nil {
		if pkg.Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
		if blockingPkgs[pkg.Path()] {
			return "network call " + pkg.Path() + "." + fn.Name()
		}
	}
	if blockingSolveNames[fn.Name()] {
		return "call to solver entry point " + fn.Name()
	}
	return ""
}

func reportBlocking(pass *Pass, pos token.Pos, env *lockEnv, format string, args ...any) {
	held := env.heldReceivers(true)
	if len(held) == 0 {
		return
	}
	msg := "blocking operation while " + held[0] + " is held: "
	pass.Reportf(pos, msg+format+" (move it outside the critical section)", args...)
}
