package fabric

import (
	"fmt"
	"strings"

	"repro/internal/grid"
)

// Device is a W×H tile model of an FPGA. Tile (0, 0) is the bottom-left
// corner; x indexes columns and y indexes rows, matching the geometry
// conventions of package grid.
//
// A Device is mutable only through masking operations (MaskStatic); the
// resource pattern itself is fixed at construction. All placement code
// operates on a Region carved out of a Device.
type Device struct {
	name  string
	w, h  int
	kinds []Kind // row-major: kinds[y*w+x]
}

// NewDevice builds a device whose tile kinds are produced by at(x, y).
// It panics on non-positive dimensions or if at yields an invalid kind,
// since both indicate a programming error in a device family definition.
func NewDevice(name string, w, h int, at func(x, y int) Kind) *Device {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("fabric: invalid device size %dx%d", w, h))
	}
	d := &Device{name: name, w: w, h: h, kinds: make([]Kind, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			k := at(x, y)
			if !k.Valid() {
				panic(fmt.Sprintf("fabric: invalid kind %d at (%d,%d)", k, x, y))
			}
			d.kinds[y*w+x] = k
		}
	}
	return d
}

// Name returns the device family/name string.
func (d *Device) Name() string { return d.name }

// W returns the device width in tiles.
func (d *Device) W() int { return d.w }

// H returns the device height in tiles.
func (d *Device) H() int { return d.h }

// Bounds returns the full device rectangle [0,W)×[0,H).
func (d *Device) Bounds() grid.Rect { return grid.Rect{MinX: 0, MinY: 0, MaxX: d.w, MaxY: d.h} }

// KindAt returns the resource kind of tile (x, y). Out-of-range tiles
// report Static: anything beyond the die is equally unusable.
func (d *Device) KindAt(x, y int) Kind {
	if x < 0 || y < 0 || x >= d.w || y >= d.h {
		return Static
	}
	return d.kinds[y*d.w+x]
}

// MaskStatic marks every tile of r (clipped to the device) as Static.
// This is how the host design's area is withheld from the placer, as in
// Figure 4c of the paper where roughly half of the region is allocated
// to the static system.
func (d *Device) MaskStatic(r grid.Rect) {
	r = r.Intersect(d.Bounds())
	for y := r.MinY; y < r.MaxY; y++ {
		for x := r.MinX; x < r.MaxX; x++ {
			d.kinds[y*d.w+x] = Static
		}
	}
}

// MaskStaticOutside marks every tile outside r as Static, dedicating
// exactly r to reconfigurable modules.
func (d *Device) MaskStaticOutside(r grid.Rect) {
	for y := 0; y < d.h; y++ {
		for x := 0; x < d.w; x++ {
			if !grid.Pt(x, y).In(r) {
				d.kinds[y*d.w+x] = Static
			}
		}
	}
}

// Histogram counts device tiles by kind.
func (d *Device) Histogram() Histogram {
	var h Histogram
	for _, k := range d.kinds {
		h.Add(k)
	}
	return h
}

// Clone returns an independent copy of the device (used before masking
// experiments mutate the resource map).
func (d *Device) Clone() *Device {
	out := &Device{name: d.name, w: d.w, h: d.h, kinds: make([]Kind, len(d.kinds))}
	copy(out.kinds, d.kinds)
	return out
}

// Region returns the partial region covering r, clipped to the device.
func (d *Device) Region(r grid.Rect) *Region {
	return &Region{dev: d, bounds: r.Intersect(d.Bounds())}
}

// FullRegion returns the partial region covering the entire device.
func (d *Device) FullRegion() *Region { return d.Region(d.Bounds()) }

// String renders the device resource map, one glyph per tile, top row
// first. Intended for debugging and golden tests on small devices.
func (d *Device) String() string {
	var sb strings.Builder
	for y := d.h - 1; y >= 0; y-- {
		for x := 0; x < d.w; x++ {
			sb.WriteByte(d.KindAt(x, y).Rune())
		}
		if y > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Region is a rectangular window of a device: the paper's "partial
// region" P, i.e. the part of the fabric handed to the module placer.
// Coordinates on a Region are region-local: (0, 0) is the bottom-left
// tile of the window. The placer never needs device-absolute
// coordinates; keeping regions zero-based keeps anchor arithmetic simple.
type Region struct {
	dev    *Device
	bounds grid.Rect
}

// W returns the region width in tiles.
func (r *Region) W() int { return r.bounds.W() }

// H returns the region height in tiles.
func (r *Region) H() int { return r.bounds.H() }

// Bounds returns the region-local rectangle [0,W)×[0,H).
func (r *Region) Bounds() grid.Rect { return grid.Rect{MinX: 0, MinY: 0, MaxX: r.W(), MaxY: r.H()} }

// DeviceBounds returns the window rectangle in device coordinates.
func (r *Region) DeviceBounds() grid.Rect { return r.bounds }

// Device returns the underlying device.
func (r *Region) Device() *Device { return r.dev }

// KindAt returns the resource kind at region-local (x, y); tiles outside
// the region report Static.
func (r *Region) KindAt(x, y int) Kind {
	if x < 0 || y < 0 || x >= r.W() || y >= r.H() {
		return Static
	}
	return r.dev.KindAt(r.bounds.MinX+x, r.bounds.MinY+y)
}

// PlaceableAt reports whether region-local (x, y) may host module logic.
func (r *Region) PlaceableAt(x, y int) bool { return r.KindAt(x, y).Placeable() }

// Histogram counts region tiles by kind.
func (r *Region) Histogram() Histogram {
	var h Histogram
	for y := 0; y < r.H(); y++ {
		for x := 0; x < r.W(); x++ {
			h.Add(r.KindAt(x, y))
		}
	}
	return h
}

// PlaceableCount returns the number of tiles that can host module logic.
func (r *Region) PlaceableCount() int { return r.Histogram().Placeable() }

// PlaceableInRows returns the number of placeable tiles with y < rows.
// It is the denominator of the average-resource-utilization metric: the
// usable capacity of the spanned extent.
func (r *Region) PlaceableInRows(rows int) int {
	if rows > r.H() {
		rows = r.H()
	}
	n := 0
	for y := 0; y < rows; y++ {
		for x := 0; x < r.W(); x++ {
			if r.PlaceableAt(x, y) {
				n++
			}
		}
	}
	return n
}

// KindBitmap returns a bitmap with a set bit wherever the region tile
// has kind k.
func (r *Region) KindBitmap(k Kind) *grid.Bitmap {
	b := grid.NewBitmap(r.W(), r.H())
	for y := 0; y < r.H(); y++ {
		for x := 0; x < r.W(); x++ {
			if r.KindAt(x, y) == k {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// PlaceableBitmap returns a bitmap of all placeable tiles.
func (r *Region) PlaceableBitmap() *grid.Bitmap {
	b := grid.NewBitmap(r.W(), r.H())
	for y := 0; y < r.H(); y++ {
		for x := 0; x < r.W(); x++ {
			if r.PlaceableAt(x, y) {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// String renders the region resource map, one glyph per tile, top row
// first.
func (r *Region) String() string {
	var sb strings.Builder
	for y := r.H() - 1; y >= 0; y-- {
		for x := 0; x < r.W(); x++ {
			sb.WriteByte(r.KindAt(x, y).Rune())
		}
		if y > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
