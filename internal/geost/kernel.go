// Package geost is a geometrical constraint kernel in the spirit of
// Beldiceanu et al.'s geost: polymorphic objects (an object may take one
// of several shapes), placement variables over a bounded 2D space,
// non-overlap filtering, and an occupied-height objective. Following the
// paper reproduced by this repository, the kernel is extended with a
// resource property: every shape carries a bitmap of anchor positions
// compatible with the heterogeneous resource layout of the space, and a
// per-kind resource histogram used for capacity-based bound reasoning.
//
// The kernel models each object with a single placement variable whose
// values encode (shape id, y, x); the paper's separate x/y/shape-id
// variables are recoverable through Decode. One variable per object
// makes the resource-compatibility constraint (the paper's extension of
// geost boxes with a resource type) a plain domain restriction, and
// makes non-overlap a value filter.
package geost

import (
	"fmt"

	"repro/internal/csp"
	"repro/internal/fabric"
	"repro/internal/grid"
)

// ShapeGeom is the kernel's view of one shape alternative: its occupied
// cells, bounding box, the anchors where it may be placed (already
// restricted to the space's bounds and resource layout — constraints
// M_a ∧ M_b of the paper), and its resource demand.
type ShapeGeom struct {
	Points []grid.Point
	W, H   int
	Valid  *grid.Bitmap
	Hist   fabric.Histogram
}

func (g *ShapeGeom) validate(spaceW, spaceH int) error {
	if len(g.Points) == 0 {
		return fmt.Errorf("geost: shape with no points")
	}
	if g.W <= 0 || g.H <= 0 {
		return fmt.Errorf("geost: shape with empty bounds %dx%d", g.W, g.H)
	}
	if g.Valid == nil {
		return fmt.Errorf("geost: shape without valid-anchor bitmap")
	}
	if g.Valid.W() != spaceW || g.Valid.H() != spaceH {
		return fmt.Errorf("geost: valid-anchor bitmap %dx%d does not match space %dx%d",
			g.Valid.W(), g.Valid.H(), spaceW, spaceH)
	}
	return nil
}

// Object is a placeable entity: a set of shape alternatives plus the
// placement variable. Top is an auxiliary variable equal to the object's
// topmost occupied row + 1 (its contribution to occupied height).
type Object struct {
	Name   string
	Shapes []ShapeGeom
	Place  *csp.Var
	Top    *csp.Var

	k  *Kernel
	id int
}

// Kernel owns the 2D space and the objects placed in it.
type Kernel struct {
	st      *csp.Store
	w, h    int
	objects []*Object

	// scratch is a reusable occupancy bitmap for non-overlap filtering.
	scratch *grid.Bitmap
}

// New creates a kernel over a w×h space backed by st. It panics on
// non-positive dimensions: an empty space is a caller bug.
func New(st *csp.Store, w, h int) *Kernel {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("geost: invalid space %dx%d", w, h))
	}
	return &Kernel{st: st, w: w, h: h, scratch: grid.NewBitmap(w, h)}
}

// W returns the space width.
func (k *Kernel) W() int { return k.w }

// H returns the space height.
func (k *Kernel) H() int { return k.h }

// Store returns the backing constraint store.
func (k *Kernel) Store() *csp.Store { return k.st }

// Objects returns the objects added so far.
func (k *Kernel) Objects() []*Object { return k.objects }

// encode packs (sid, x, y) into a placement value.
func (k *Kernel) encode(sid, x, y int) int { return (sid*k.h+y)*k.w + x }

// Decode unpacks a placement value of this object.
func (o *Object) Decode(val int) (sid, x, y int) {
	x = val % o.k.w
	rest := val / o.k.w
	y = rest % o.k.h
	sid = rest / o.k.h
	return sid, x, y
}

// Encode packs (sid, x, y) into a placement value of this object — the
// inverse of Decode. Values encode identically across objects of one
// kernel, which is what makes placements of interchangeable objects
// directly comparable (symmetry-breaking lex orders rely on this).
func (o *Object) Encode(sid, x, y int) int { return o.k.encode(sid, x, y) }

// topOf returns the top row bound (y + shape height) of a placement
// value.
func (o *Object) topOf(val int) int {
	sid, _, y := o.Decode(val)
	return y + o.Shapes[sid].H
}

// TopOf returns the top row bound (y + shape height) of a placement
// value: the object's contribution to the occupied height were it
// placed there.
func (o *Object) TopOf(val int) int { return o.topOf(val) }

// Assigned reports whether the object's placement is fixed.
func (o *Object) Assigned() bool { return o.Place.Assigned() }

// Placement returns the assigned (sid, x, y); it panics if unassigned.
func (o *Object) Placement() (sid, x, y int) { return o.Decode(o.Place.Value()) }

// CandidateCount returns the number of remaining placements.
func (o *Object) CandidateCount() int { return o.Place.Size() }

// ShapePresent reports whether shape sid still has candidate placements.
func (o *Object) ShapePresent(sid int) bool {
	lo := o.k.encode(sid, 0, 0)
	hi := o.k.encode(sid+1, 0, 0) - 1
	return o.Place.Domain().AnyInRange(lo, hi)
}

// MinDemand returns, per kind, the minimum demand over the shapes still
// present in the placement domain.
func (o *Object) MinDemand() fabric.Histogram {
	var out fabric.Histogram
	first := true
	for sid := range o.Shapes {
		if !o.ShapePresent(sid) {
			continue
		}
		h := o.Shapes[sid].Hist
		if first {
			out = h
			first = false
			continue
		}
		for k := range out {
			if h[k] < out[k] {
				out[k] = h[k]
			}
		}
	}
	return out
}

// AddObject registers an object with the given shape alternatives. The
// placement domain is the union over shapes of their valid anchors; an
// object with no feasible placement at all is rejected here rather than
// discovered during search.
func (k *Kernel) AddObject(name string, shapes []ShapeGeom) (*Object, error) {
	if len(shapes) == 0 {
		return nil, fmt.Errorf("geost: object %s has no shapes", name)
	}
	var vals []int
	minTop := k.h + 1
	maxTop := 0
	for sid := range shapes {
		g := &shapes[sid]
		if err := g.validate(k.w, k.h); err != nil {
			return nil, fmt.Errorf("geost: object %s shape %d: %w", name, sid, err)
		}
		for y := 0; y <= k.h-g.H; y++ {
			for x := 0; x <= k.w-g.W; x++ {
				if g.Valid.Get(x, y) {
					vals = append(vals, k.encode(sid, x, y))
					if t := y + g.H; t < minTop {
						minTop = t
					}
					if t := y + g.H; t > maxTop {
						maxTop = t
					}
				}
			}
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("geost: object %s has no feasible placement", name)
	}
	o := &Object{
		Name:   name,
		Shapes: shapes,
		k:      k,
		id:     len(k.objects),
	}
	o.Place = k.st.NewVar("place("+name+")", csp.NewDomainValues(vals...))
	o.Top = k.st.NewVarRange("top("+name+")", minTop, maxTop)
	k.st.Post(&topLink{o: o}, o.Place, o.Top)
	k.objects = append(k.objects, o)
	return o, nil
}

// PostNonOverlap posts pairwise non-overlap over all objects added so
// far (constraint M_c of the paper). Filtering is forward checking
// against assigned objects with a bounding-box early-out.
func (k *Kernel) PostNonOverlap() {
	for i := 0; i < len(k.objects); i++ {
		for j := i + 1; j < len(k.objects); j++ {
			a, b := k.objects[i], k.objects[j]
			k.st.Post(&nonOverlapPair{k: k, a: a, b: b}, a.Place, b.Place)
		}
	}
}

// PlaceVars returns the placement variables of all objects, in object
// order — the canonical search variables.
func (k *Kernel) PlaceVars() []*csp.Var {
	out := make([]*csp.Var, len(k.objects))
	for i, o := range k.objects {
		out[i] = o.Place
	}
	return out
}
