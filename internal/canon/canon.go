// Package canon canonicalizes placement requests. A placement request —
// a fabric, an optional region window, a set of modules (each a set of
// design-alternative shapes) and request-level solver options — is
// semantically unchanged by reordering the modules or reordering the
// shapes within a module: the paper's formulation is over *sets*
// (M = {S_1 … S_n}), and the serving layer solves the canonical
// instance so equal sets produce equal placements. This package
// computes that canonical form and a collision-resistant digest of it,
// which is the cache key of the placement service: digest equality is
// (up to hash collision) canonical equality, so a cache keyed by the
// digest can never serve a placement for a different instance.
//
// The encoding behind the digest is injective: every field is
// length-prefixed (uvarint framing), so no two distinct canonical
// requests share an encoding. Option fields are all included — timeout,
// stall budget and worker count change what an anytime solver returns,
// so they distinguish cache entries.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/module"
)

// Request is a transport-independent placement request: the instance a
// placement service is asked to solve. Fabric names a device (the
// fabric catalog's vocabulary, though canon treats it as an opaque
// identifier), Region optionally windows it (the zero Rect means the
// full device), Modules are the units to place and Options tune the
// solver.
type Request struct {
	Fabric  string
	Region  grid.Rect
	Modules []*module.Module
	Options core.RequestOptions
}

// Digest is a SHA-256 fingerprint of a canonical request.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Canonical returns the normalised copy of the request: shapes within
// each module sorted by their geometric key, modules sorted by name,
// bus rows sorted and deduplicated. The receiver is not modified. It
// rejects requests with no modules, nil modules, duplicate module
// names, or invalid options, since none of those have a well-defined
// canonical instance.
func (r *Request) Canonical() (*Request, error) {
	if r.Fabric == "" {
		return nil, fmt.Errorf("canon: empty fabric name")
	}
	if len(r.Modules) == 0 {
		return nil, fmt.Errorf("canon: no modules in request")
	}
	if err := r.Options.Validate(); err != nil {
		return nil, fmt.Errorf("canon: %w", err)
	}
	out := &Request{Fabric: r.Fabric, Region: r.Region, Options: r.Options}
	out.Modules = make([]*module.Module, len(r.Modules))
	seen := make(map[string]bool, len(r.Modules))
	for i, m := range r.Modules {
		if m == nil {
			return nil, fmt.Errorf("canon: nil module at index %d", i)
		}
		if seen[m.Name()] {
			return nil, fmt.Errorf("canon: duplicate module name %q", m.Name())
		}
		seen[m.Name()] = true
		cm, err := canonicalModule(m)
		if err != nil {
			return nil, err
		}
		out.Modules[i] = cm
	}
	sort.Slice(out.Modules, func(i, j int) bool {
		return out.Modules[i].Name() < out.Modules[j].Name()
	})
	out.Options.BusRows = sortedUniqueInts(r.Options.BusRows)
	return out, nil
}

// canonicalModule rebuilds m with its design alternatives in key order.
func canonicalModule(m *module.Module) (*module.Module, error) {
	shapes := make([]*module.Shape, len(m.Shapes()))
	copy(shapes, m.Shapes())
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].Key() < shapes[j].Key() })
	cm, err := module.NewModule(m.Name(), shapes...)
	if err != nil {
		return nil, fmt.Errorf("canon: module %s: %w", m.Name(), err)
	}
	return cm, nil
}

// sortedUniqueInts returns a sorted copy of xs with duplicates removed
// (nil in, nil out).
func sortedUniqueInts(xs []int) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	n := 0
	for i, x := range out {
		if i == 0 || x != out[n-1] {
			out[n] = x
			n++
		}
	}
	return out[:n]
}

// CanonicalBytes returns the injective byte encoding of the canonical
// form of the request. Two requests are canonically equal iff their
// CanonicalBytes are equal; Digest hashes exactly these bytes.
func (r *Request) CanonicalBytes() ([]byte, error) {
	c, err := r.Canonical()
	if err != nil {
		return nil, err
	}
	return c.appendEncoding(make([]byte, 0, 256)), nil
}

// Digest canonicalizes the request and returns the SHA-256 of its
// canonical encoding.
func (r *Request) Digest() (Digest, error) {
	b, err := r.CanonicalBytes()
	if err != nil {
		return Digest{}, err
	}
	return sha256.Sum256(b), nil
}

// Equal reports whether a and b are canonically equal. It returns false
// (never an error) if either request has no canonical form.
func Equal(a, b *Request) bool {
	ab, err := a.CanonicalBytes()
	if err != nil {
		return false
	}
	bb, err := b.CanonicalBytes()
	if err != nil {
		return false
	}
	return string(ab) == string(bb)
}

// encVersion tags the encoding layout; bump it whenever the frame
// structure below changes so old digests cannot alias new ones.
// Version 2 added RequestOptions.Presolve to the options tail.
const encVersion = 2

// appendEncoding writes the canonical frame. Every variable-length
// field is length-prefixed, making the overall encoding injective.
func (c *Request) appendEncoding(b []byte) []byte {
	b = append(b, encVersion)
	b = appendString(b, c.Fabric)
	b = binary.AppendVarint(b, int64(c.Region.MinX))
	b = binary.AppendVarint(b, int64(c.Region.MinY))
	b = binary.AppendVarint(b, int64(c.Region.MaxX))
	b = binary.AppendVarint(b, int64(c.Region.MaxY))
	b = binary.AppendUvarint(b, uint64(len(c.Modules)))
	for _, m := range c.Modules {
		b = appendString(b, m.Name())
		b = binary.AppendUvarint(b, uint64(m.NumShapes()))
		for _, s := range m.Shapes() {
			b = appendString(b, s.Key())
		}
	}
	o := c.Options
	b = binary.AppendVarint(b, int64(o.Timeout))
	b = append(b, byte(o.Strategy), byte(o.ValueOrder), boolByte(o.FirstSolutionOnly))
	b = binary.AppendVarint(b, o.StallNodes)
	b = binary.AppendUvarint(b, uint64(len(o.BusRows)))
	for _, r := range o.BusRows {
		b = binary.AppendVarint(b, int64(r))
	}
	b = binary.AppendVarint(b, int64(o.Workers))
	b = append(b, boolByte(o.StrongPropagation), byte(o.Presolve))
	return b
}

// appendString writes a uvarint length prefix followed by the bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
