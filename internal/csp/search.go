package csp

import (
	"time"
)

// VarChooser selects the next unassigned variable to branch on, or nil
// when all given variables are assigned.
type VarChooser func(vars []*Var) *Var

// ValueOrderer returns branching values for v in trial order. It must
// return values from v's current domain.
type ValueOrderer func(v *Var) []int

// FirstUnassigned branches on the variables in the order given.
func FirstUnassigned(vars []*Var) *Var {
	for _, v := range vars {
		if !v.Assigned() {
			return v
		}
	}
	return nil
}

// SmallestDomain implements first-fail: branch on an unassigned variable
// with the fewest remaining values (ties broken by order).
func SmallestDomain(vars []*Var) *Var {
	var best *Var
	for _, v := range vars {
		if v.Assigned() {
			continue
		}
		if best == nil || v.Size() < best.Size() {
			best = v
		}
	}
	return best
}

// AscendingValues tries domain values smallest-first.
func AscendingValues(v *Var) []int { return v.Domain().Values() }

// DescendingValues tries domain values largest-first.
func DescendingValues(v *Var) []int {
	vals := v.Domain().Values()
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	return vals
}

// Options configures search.
type Options struct {
	// ChooseVar selects the branching variable; default SmallestDomain.
	ChooseVar VarChooser
	// OrderValues orders branching values; default AscendingValues.
	OrderValues ValueOrderer
	// Deadline, when non-zero, aborts search afterwards; partial results
	// (solutions found so far) remain valid.
	Deadline time.Time
	// MaxSolutions stops enumeration after this many solutions
	// (0 = unlimited; Minimize ignores it).
	MaxSolutions int
	// StallNodes, when positive, makes Minimize stop after exploring
	// this many nodes without improving the incumbent — a deterministic
	// convergence criterion for anytime optimisation. Solve ignores it.
	StallNodes int64
}

func (o Options) withDefaults() Options {
	if o.ChooseVar == nil {
		o.ChooseVar = SmallestDomain
	}
	if o.OrderValues == nil {
		o.OrderValues = AscendingValues
	}
	return o
}

// Result summarises a search run.
type Result struct {
	// Solutions is the number of solutions delivered.
	Solutions int
	// Complete is true when the search space was exhausted (false when
	// the deadline fired or enumeration was cut short).
	Complete bool
	// Nodes counts branching nodes explored.
	Nodes int64
}

// Solve runs depth-first search over vars, invoking onSolution with the
// store in an all-assigned, propagated state for every solution. If
// onSolution returns false, enumeration stops early. The store is left
// at its entry state.
func Solve(st *Store, vars []*Var, opts Options, onSolution func(*Store) bool) (Result, error) {
	opts = opts.withDefaults()
	var res Result
	if err := st.Propagate(); err != nil {
		if err == ErrInconsistent {
			res.Complete = true
			return res, nil
		}
		return res, err
	}
	stop := searchRec(st, vars, &opts, &res, onSolution)
	res.Complete = !stop
	return res, nil
}

func deadlineHit(opts *Options) bool {
	return !opts.Deadline.IsZero() && time.Now().After(opts.Deadline)
}

// searchRec returns true when enumeration must stop entirely (deadline
// or solution-callback cut).
func searchRec(st *Store, vars []*Var, opts *Options, res *Result, onSolution func(*Store) bool) bool {
	if deadlineHit(opts) {
		return true
	}
	v := opts.ChooseVar(vars)
	if v == nil {
		res.Solutions++
		keepGoing := onSolution(st)
		if !keepGoing {
			return true
		}
		if opts.MaxSolutions > 0 && res.Solutions >= opts.MaxSolutions {
			return true
		}
		return false
	}
	res.Nodes++
	for _, val := range opts.OrderValues(v) {
		st.Push()
		err := st.Assign(v, val)
		if err == nil {
			err = st.Propagate()
		}
		if err == nil {
			if stop := searchRec(st, vars, opts, res, onSolution); stop {
				st.Pop()
				return true
			}
		}
		st.Pop()
	}
	return false
}

// MinimizeResult reports the outcome of a branch-and-bound run.
type MinimizeResult struct {
	// Found is true when at least one solution was seen.
	Found bool
	// Best is the objective value of the best solution.
	Best int
	// Optimal is true when the search proved Best optimal (search space
	// exhausted under the final bound).
	Optimal bool
	// Stalled is true when the run stopped via Options.StallNodes.
	Stalled bool
	// Nodes counts branching nodes explored.
	Nodes int64
}

// Minimize finds an assignment of vars minimising obj using depth-first
// branch-and-bound: after each improving solution the objective is
// bounded below the incumbent and search continues. onImproved (may be
// nil) is called with the store at each improving solution so the caller
// can snapshot the assignment. The store is restored on return.
func Minimize(st *Store, vars []*Var, obj *Var, opts Options, onImproved func(*Store, int)) (MinimizeResult, error) {
	opts = opts.withDefaults()
	var res MinimizeResult

	// bound is exclusive: solutions must achieve obj < bound.
	bound := obj.Max() + 1
	boundProp := FuncProp(func(s *Store) error {
		return s.SetMax(obj, bound-1)
	})
	boundHandle := st.Post(boundProp, obj)

	searchVars := vars
	if !containsVar(vars, obj) {
		searchVars = append(append([]*Var{}, vars...), obj)
	}

	if err := st.Propagate(); err != nil {
		if err == ErrInconsistent {
			res.Optimal = true // infeasible: vacuously closed
			return res, nil
		}
		return res, err
	}

	var lastImproved int64
	stopped := minimizeRec(st, searchVars, obj, &opts, &res, &bound, boundHandle, &lastImproved, onImproved)
	res.Optimal = !stopped
	return res, nil
}

func containsVar(vars []*Var, v *Var) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

func minimizeRec(st *Store, vars []*Var, obj *Var, opts *Options, res *MinimizeResult, bound *int, boundHandle int, lastImproved *int64, onImproved func(*Store, int)) bool {
	if deadlineHit(opts) {
		return true
	}
	if opts.StallNodes > 0 && res.Found && res.Nodes-*lastImproved > opts.StallNodes {
		res.Stalled = true
		return true
	}
	v := opts.ChooseVar(vars)
	if v == nil {
		val := obj.Value()
		if !res.Found || val < res.Best {
			res.Found = true
			res.Best = val
			*bound = val
			*lastImproved = res.Nodes
			if onImproved != nil {
				onImproved(st, val)
			}
		}
		return false
	}
	res.Nodes++
	for _, val := range opts.OrderValues(v) {
		if deadlineHit(opts) {
			return true
		}
		st.Push()
		st.Schedule(boundHandle) // the bound may have tightened since Push
		err := st.Assign(v, val)
		if err == nil {
			err = st.Propagate()
		}
		if err == nil {
			if stop := minimizeRec(st, vars, obj, opts, res, bound, boundHandle, lastImproved, onImproved); stop {
				st.Pop()
				return true
			}
		}
		st.Pop()
	}
	return false
}
