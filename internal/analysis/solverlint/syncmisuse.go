package solverlint

import (
	"go/ast"
	"go/types"
)

// SyncMisuse catches the classic sync-primitive misuse patterns that
// compile fine and usually even pass tests:
//
//   - WaitGroup.Add inside the goroutine it accounts for: the spawn
//     races with Wait, so Wait can return before the goroutine was
//     ever counted. Add belongs on the spawning side, before the go
//     statement.
//   - WaitGroup.Done on a wait group that no code in the package ever
//     Adds to: the counter goes negative and panics at runtime, or the
//     Done is dead ceremony.
//   - sync types (Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool)
//     passed or copied by value: the copy has its own state, so the
//     original's lock no longer guards anything the copy touches.
//     Parameters and results must use pointers; assignments from an
//     existing value (x := s.mu, y := *mup) are flagged, composite
//     literals and fresh declarations are not.
var SyncMisuse = &Analyzer{
	Name: "syncmisuse",
	Doc:  "no WaitGroup.Add inside the spawned goroutine, no Done without a package-visible Add, no sync types copied by value",
	Run:  runSyncMisuse,
}

// syncValueTypes are the sync types whose by-value copy is always a
// bug.
var syncValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

func runSyncMisuse(pass *Pass) error {
	adds := map[*types.Var]bool{}
	var dones []struct {
		v    *types.Var
		call *ast.CallExpr
		name string
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkAddInGoroutine(pass, n)
			case *ast.CallExpr:
				recv, method := waitGroupCall(pass, n)
				if recv == nil {
					return true
				}
				switch method {
				case "Add":
					adds[recv] = true
				case "Done":
					dones = append(dones, struct {
						v    *types.Var
						call *ast.CallExpr
						name string
					}{recv, n, waitGroupRecvName(n)})
				}
			case *ast.FuncDecl:
				checkSyncByValueSignature(pass, n.Type)
			case *ast.FuncLit:
				checkSyncByValueSignature(pass, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkSyncCopyExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkSyncCopyExpr(pass, v)
				}
			}
			return true
		})
	}
	for _, d := range dones {
		if !adds[d.v] {
			pass.Reportf(d.call.Pos(),
				"WaitGroup.Done on %s, but nothing in this package ever calls Add on it: the counter underflows and panics (or the Done is dead)",
				d.name)
		}
	}
	return nil
}

// checkAddInGoroutine flags wg.Add calls inside a go-spawned literal
// when the wait group is declared outside the literal (an inner wait
// group fully owned by the goroutine is fine).
func checkAddInGoroutine(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := waitGroupCall(pass, call)
		if recv == nil || method != "Add" {
			return true
		}
		// Declared inside the literal: the goroutine owns it.
		if recv.Pos() >= lit.Pos() && recv.Pos() <= lit.End() {
			return true
		}
		pass.Reportf(call.Pos(),
			"WaitGroup.Add inside the spawned goroutine races with Wait: a Wait that runs before this goroutine is scheduled returns early (call Add before the go statement)")
		return true
	})
}

// waitGroupCall matches <recv>.Add/Done/Wait(...) on a sync.WaitGroup
// receiver and resolves the receiver variable (the addressed field for
// selector chains, the object for identifiers).
func waitGroupCall(pass *Pass, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	method := sel.Sel.Name
	if method != "Add" && method != "Done" && method != "Wait" {
		return nil, ""
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !isNamedSyncType(t, "WaitGroup") {
		return nil, ""
	}
	return referencedVar(pass, sel.X), method
}

func waitGroupRecvName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return "wait group"
}

// checkSyncByValueSignature flags non-pointer sync-typed parameters
// and results.
func checkSyncByValueSignature(pass *Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if name := syncTypeName(t); name != "" {
				pass.Reportf(f.Type.Pos(),
					"sync.%s %s by value: the callee works on a copy whose state diverges from the original (use *sync.%s)",
					name, what, name)
			}
		}
	}
	check(ft.Params, "passed")
	check(ft.Results, "returned")
}

// checkSyncCopyExpr flags expressions that copy an existing sync value
// (reading a variable, field, element or dereference of sync type).
// Fresh values — composite literals, new(T) — are fine.
func checkSyncCopyExpr(pass *Pass, expr ast.Expr) {
	switch expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(expr)
	if t == nil {
		return
	}
	if name := syncTypeName(t); name != "" {
		pass.Reportf(expr.Pos(),
			"copying a sync.%s by value: the copy's state diverges from the original (keep a *sync.%s instead)",
			name, name)
	}
}

// syncTypeName returns the sync type name when t is a non-pointer
// sync value type (or a same-named fixture stand-in), else "".
func syncTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if !syncValueTypes[name] {
		return ""
	}
	return name
}

// isNamedSyncType reports whether t is (a pointer to) a named type
// with the given sync type name.
func isNamedSyncType(t types.Type, name string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}
