package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONLTrace(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.Record(Event{Kind: KindBranch, Var: "x", Value: 3, Depth: 2})
	j.Record(Event{Kind: KindIncumbent, Objective: 7, Nodes: 41})
	j.Record(Event{Kind: KindPrune, Var: "y", Removed: 5, Prop: "alldiff"})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "branch" || ev["var"] != "x" || ev["value"] != float64(3) {
		t.Fatalf("branch event = %v", ev)
	}
	if _, ok := ev["t_ms"]; !ok {
		t.Fatal("missing t_ms stamp")
	}
	if _, ok := ev["objective"]; ok {
		t.Fatal("zero objective must be omitted from a branch event")
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "incumbent" || ev["objective"] != float64(7) || ev["nodes"] != float64(41) {
		t.Fatalf("incumbent event = %v", ev)
	}
}

func TestStatsAggregation(t *testing.T) {
	r := NewRegistry()
	s := NewStats(r)
	s.Record(Event{Kind: KindBranch, Depth: 3})
	s.Record(Event{Kind: KindBranch, Depth: 9})
	s.Record(Event{Kind: KindBacktrack, Depth: 9})
	s.Record(Event{Kind: KindPropagate, Prop: "geost.non-overlap"})
	s.Record(Event{Kind: KindPropagate, Prop: "geost.non-overlap"})
	s.Record(Event{Kind: KindPrune, Var: "v", Removed: 12, Prop: "geost.non-overlap"})
	s.Record(Event{Kind: KindIncumbent, Objective: 17, Nodes: 100})
	s.Record(Event{Kind: KindIncumbent, Objective: 13, Nodes: 150})

	if got := r.Counter("solver_branches_total").Value(); got != 2 {
		t.Errorf("branches = %d", got)
	}
	if got := r.Counter("solver_backtracks_total").Value(); got != 1 {
		t.Errorf("backtracks = %d", got)
	}
	if got := r.Counter(`solver_propagator_runs_total{propagator="geost.non-overlap"}`).Value(); got != 2 {
		t.Errorf("per-prop runs = %d", got)
	}
	if got := r.Counter("solver_pruned_values_total").Value(); got != 12 {
		t.Errorf("pruned values = %d", got)
	}
	if got := r.Gauge("solver_best_objective").Value(); got != 13 {
		t.Errorf("best objective = %v", got)
	}
	if got := r.Gauge("solver_max_depth").Value(); got != 9 {
		t.Errorf("max depth = %v", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(5)
	r.Gauge("height").Set(12)
	r.Histogram("latency_seconds", 0.1, 1).Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 5",
		"# TYPE height gauge",
		"height 12",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 0`,
		`latency_seconds_bucket{le="1"} 1`,
		`latency_seconds_bucket{le="+Inf"} 1`,
		"latency_seconds_sum 0.5",
		"latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("nodes_total").Add(42)
	h := r.Histogram("solve_seconds", 1, 2, 4)
	h.Observe(1.5)
	h.Observe(3)
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes_total") || !strings.Contains(out, "42") {
		t.Errorf("summary missing counter:\n%s", out)
	}
	if !strings.Contains(out, "solve_seconds") {
		t.Errorf("summary missing histogram:\n%s", out)
	}
}

func TestSessionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		TracePath:   filepath.Join(dir, "trace.jsonl"),
		MetricsPath: filepath.Join(dir, "metrics.prom"),
		MemProfile:  filepath.Join(dir, "mem.pprof"),
	}
	if !cfg.Enabled() {
		t.Fatal("config should report enabled")
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder == nil || s.Registry == nil {
		t.Fatal("session must expose recorder and registry")
	}
	s.Recorder.Record(Event{Kind: KindBranch, Var: "x", Value: 1})
	s.Recorder.Record(Event{Kind: KindIncumbent, Objective: 4})
	s.Registry.Counter("custom_total").Inc()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	tf, err := os.Open(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	sc := bufio.NewScanner(tf)
	n := 0
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("trace has %d events, want 2", n)
	}
	prom, err := os.ReadFile(cfg.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"custom_total 1", "solver_branches_total 1", "solver_best_objective 4"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q:\n%s", want, prom)
		}
	}
	if fi, err := os.Stat(cfg.MemProfile); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}
}

func TestCombine(t *testing.T) {
	if Combine(nil, nil) != nil {
		t.Fatal("Combine of nils must be nil")
	}
	r := NewRegistry()
	s := NewStats(r)
	if got := Combine(nil, s); got != Recorder(s) {
		t.Fatal("Combine with one live recorder must return it directly")
	}
	m := Combine(s, NewJSONL(&strings.Builder{}))
	if _, ok := m.(Multi); !ok {
		t.Fatalf("Combine of two = %T, want Multi", m)
	}
	m.Record(Event{Kind: KindSolution})
	if r.Counter("solver_solutions_total").Value() != 1 {
		t.Fatal("Multi did not fan out")
	}
}
