# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# steps as `make check`.

GO ?= go

# Pinned versions for the external linters installed by `make tools`.
# solverlint itself is built from this repository and needs nothing
# beyond the Go toolchain; staticcheck and govulncheck run only where
# the pinned binaries are installed (CI, or after `make tools` on a
# networked machine) and are skipped gracefully elsewhere.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3
FUZZTIME ?= 30s

.PHONY: all build test race vet fmt-check lint solverlint tools check bench bench-service benchgate fuzz smoke chaos clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race job, mirroring CI: the full suite once, then the parallel-search
# determinism suites repeated -count=3 (scheduling-order bugs rarely
# show on a single run).
race:
	$(GO) test -race ./...
	$(GO) test -race -count=3 -run 'Parallel|Clone|SharedBound|Portfolio' ./internal/csp ./internal/geost ./internal/core
	$(GO) test -race -count=3 -run 'MaximalEmptyRects|Session' ./internal/online ./internal/service

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Project-specific analyzers (see DESIGN.md, "Static analysis"). Exit 1
# on findings; suppressions need an inline
# `//solverlint:allow <analyzer> <reason>` comment.
solverlint:
	$(GO) run ./cmd/solverlint ./...

# Full lint: go vet and solverlint always; staticcheck and govulncheck
# when their pinned binaries are on PATH (install with `make tools`).
lint: vet solverlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) not installed; skipping (make tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "govulncheck $(GOVULNCHECK_VERSION) not installed; skipping (make tools)"; \
	fi

# Install the in-repo tooling plus the pinned external linters (the
# external ones require network access).
tools:
	$(GO) install ./cmd/tracecat
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

check: fmt-check vet lint build race

# The observability acceptance benchmarks: recording disabled must show
# the baseline allocation profile, and the disabled span path must
# report 0 allocs/op.
bench:
	$(GO) test -run xxx -bench BenchmarkSearch -benchmem ./internal/csp
	$(GO) test -run xxx -bench 'BenchmarkSpan' -benchmem ./internal/obs

# Native Go fuzzing beyond the committed corpus. Each target gets
# FUZZTIME of mutation; new crashers land in testdata/fuzz/.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDomain -fuzztime $(FUZZTIME) ./internal/csp
	$(GO) test -run xxx -fuzz FuzzPlacementValid -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzCanonDigest -fuzztime $(FUZZTIME) ./internal/canon
	$(GO) test -run xxx -fuzz FuzzBaselineValid -fuzztime $(FUZZTIME) ./internal/baseline
	$(GO) test -run xxx -fuzz FuzzPresolveEquivalence -fuzztime $(FUZZTIME) ./internal/core

# The serving benchmark pair behind EXPERIMENTS.md: a cached Table-I
# placement versus the same request re-solved from scratch.
bench-service:
	$(GO) test -run xxx -bench BenchmarkServiceCacheHit -benchtime 2s ./internal/service
	$(GO) test -run xxx -bench BenchmarkServiceColdSolve -benchtime 2x ./internal/service

# The solver benchmark-regression gate: re-solve the pinned scenario
# set and fail on effort regressions (nodes/backtracks/height) against
# the committed BENCH_solver.json. Re-baseline after intended changes
# with `go test -run TestBenchGate -benchgate-update .`.
benchgate:
	sh scripts/benchgate.sh

# End-to-end daemon smoke test (requires curl): build cmd/placed, serve
# the committed smoke request, require miss → byte-identical hit.
smoke:
	sh scripts/smoke.sh

# Fault-injected chaos soak (requires curl): placed and loadgen built
# under -race, a mixed fault spec with graceful degradation on, every
# 200 response checked for placement validity. Tune with FAULTS=...,
# REQUESTS=..., SEED=....
chaos:
	sh scripts/chaos.sh

clean:
	$(GO) clean ./...
