package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
)

// startService runs an in-process placement service behind httptest so
// the driver exercises the same handler chain as a live daemon.
func startService(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

func baseOpts(addr string, n int) cliOpts {
	return cliOpts{
		addr:        addr,
		requests:    n,
		concurrency: 4,
		seed:        1,
		modulesMin:  2,
		modulesMax:  4,
		fabric:      "spartan-like-24x16",
		timeout:     30 * time.Second,
	}
}

func TestRunCleanService(t *testing.T) {
	srv := startService(t, service.Config{Workers: 4, MaxInFlight: 64})
	var out bytes.Buffer
	sum, err := run(baseOpts(srv.URL, 12), &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations != 0 {
		t.Fatalf("violations on a clean service: %+v\n%s", sum, out.String())
	}
	if sum.Requests != 12 || sum.Exact+sum.Infeasible != 12 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Approximate != 0 {
		t.Fatalf("approximate placements without fault injection: %+v", sum)
	}
}

// TestRunChaosDegraded is the end-to-end robustness assertion: with
// the solver missing every deadline and degradation on, every
// workload still gets a valid approximate placement.
func TestRunChaosDegraded(t *testing.T) {
	inj, err := faultinject.Parse("solver:timeout:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := startService(t, service.Config{
		Workers:     4,
		MaxInFlight: 64,
		Degrade:     true,
		Faults:      inj,
	})
	var out bytes.Buffer
	sum, err := run(baseOpts(srv.URL, 10), &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations != 0 {
		t.Fatalf("violations under chaos: %+v\n%s", sum, out.String())
	}
	if sum.Exact != 0 {
		t.Fatalf("exact answers despite 100%% solver timeouts: %+v", sum)
	}
	if sum.Approximate+sum.Infeasible != 10 {
		t.Fatalf("summary under chaos: %+v", sum)
	}
}

// TestRunMixedFaults soaks a briefly chaotic service: latency, forced
// cache misses, queue shedding, sporadic solver faults. The contract
// is weaker — some requests legitimately fail — but nothing invalid
// may ever be served.
func TestRunMixedFaults(t *testing.T) {
	spec := "cache:error:0.3;singleflight:error:0.2;queue:error:0.3;solver:timeout:0.3;solver:latency:0.5:5ms"
	inj, err := faultinject.Parse(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	srv := startService(t, service.Config{
		Workers:     4,
		MaxInFlight: 8,
		Degrade:     true,
		Faults:      inj,
	})
	var out bytes.Buffer
	o := baseOpts(srv.URL, 40)
	o.verbose = true
	sum, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations != 0 {
		t.Fatalf("violations under mixed faults: %+v\n%s", sum, out.String())
	}
	if sum.Requests != 40 {
		t.Fatalf("requests = %d, want 40", sum.Requests)
	}
}

func TestRunSoakDuration(t *testing.T) {
	srv := startService(t, service.Config{Workers: 4, MaxInFlight: 64})
	var out bytes.Buffer
	o := baseOpts(srv.URL, 0)
	o.duration = 300 * time.Millisecond
	sum, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 {
		t.Fatal("soak mode issued no requests")
	}
	if sum.Violations != 0 {
		t.Fatalf("violations: %+v\n%s", sum, out.String())
	}
}

func TestRunRejectsUnknownFabric(t *testing.T) {
	o := baseOpts("http://unused", 1)
	o.fabric = "no-such-device"
	if _, err := run(o, &bytes.Buffer{}); err == nil {
		t.Fatal("expected an error for an unknown fabric")
	}
}

func TestWorkloadBodyDeterministicAndBounded(t *testing.T) {
	o := baseOpts("http://unused", 0)
	for i := int64(0); i < 20; i++ {
		a, b := workloadBody(o, i), workloadBody(o, i)
		if a != b {
			t.Fatalf("workload %d not deterministic", i)
		}
		var req struct {
			Generate struct {
				NumModules int `json:"numModules"`
			} `json:"generate"`
		}
		if err := json.Unmarshal([]byte(a), &req); err != nil {
			t.Fatal(err)
		}
		if req.Generate.NumModules < o.modulesMin || req.Generate.NumModules > o.modulesMax {
			t.Fatalf("workload %d has %d modules, want [%d,%d]", i, req.Generate.NumModules, o.modulesMin, o.modulesMax)
		}
	}
}

func TestSummaryJSONOnStdout(t *testing.T) {
	srv := startService(t, service.Config{Workers: 2, MaxInFlight: 16})
	var out bytes.Buffer
	if _, err := run(baseOpts(srv.URL, 3), &out); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var sum summary
	if err := dec.Decode(&sum); err != nil {
		t.Fatalf("stdout is not a JSON summary: %v\n%s", err, out.String())
	}
	if sum.Requests != 3 {
		t.Fatalf("decoded summary: %+v", sum)
	}
}

// TestRunSessionsClean drives the stateful session mode against a
// clean service: every worker's shadow occupancy must stay consistent
// with the server through arrivals, departures and defrag passes.
func TestRunSessionsClean(t *testing.T) {
	srv := startService(t, service.Config{Workers: 4, MaxInFlight: 64})
	var out bytes.Buffer
	o := baseOpts(srv.URL, 60)
	o.mode = "sessions"
	o.verbose = true
	sum, err := runSessions(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations != 0 {
		t.Fatalf("violations on a clean service: %+v\n%s", sum, out.String())
	}
	if sum.Exact == 0 {
		t.Fatalf("no exact placements: %+v", sum)
	}
	if sum.Approximate != 0 {
		t.Fatalf("approximate placements without saturation: %+v", sum)
	}
}

// TestRunSessionsChaos soaks the session path under injected session
// and defrag faults. Faults fire before any session mutation, so the
// client shadow must stay consistent — the run may see 503/504s, but
// never a divergence.
func TestRunSessionsChaos(t *testing.T) {
	spec := "session:error:0.15;session:latency:0.3:2ms;defrag:timeout:0.5"
	inj, err := faultinject.Parse(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	srv := startService(t, service.Config{Workers: 4, MaxInFlight: 64, Degrade: true, Faults: inj})
	var out bytes.Buffer
	o := baseOpts(srv.URL, 60)
	o.mode = "sessions"
	o.verbose = true
	sum, err := runSessions(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations != 0 {
		t.Fatalf("violations under session chaos: %+v\n%s", sum, out.String())
	}
}
