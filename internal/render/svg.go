package render

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fabric"
)

// kindFill maps resource kinds to SVG fill colours (muted backgrounds;
// module overlays are saturated).
var kindFill = map[fabric.Kind]string{
	fabric.CLB:    "#e8e8e8",
	fabric.BRAM:   "#c7d8f0",
	fabric.DSP:    "#d9f0c7",
	fabric.IOB:    "#f0e3c7",
	fabric.Clock:  "#e3c7f0",
	fabric.Static: "#707070",
}

// modulePalette provides overlay colours for placed modules.
var modulePalette = []string{
	"#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
	"#46f0f0", "#f032e6", "#bcf60c", "#fabebe", "#008080",
	"#e6beff", "#9a6324", "#fffac8", "#800000", "#aaffc3",
	"#808000", "#ffd8b1", "#000075", "#808080", "#ffe119",
}

// SVG writes a placement floorplan as a standalone SVG document. cell is
// the pixel size of one tile (8 is readable for Table-I-scale regions).
func SVG(w io.Writer, r *fabric.Region, ps []core.Placement, cell int) error {
	if cell <= 0 {
		cell = 8
	}
	width := r.W() * cell
	height := r.H() * cell
	// y is flipped: tile (0,0) is bottom-left, SVG origin is top-left.
	flip := func(y, h int) int { return (r.H() - y - h) * cell }

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	for y := 0; y < r.H(); y++ {
		for x := 0; x < r.W(); x++ {
			fill := kindFill[r.KindAt(x, y)]
			if fill == "" {
				fill = "#ffffff"
			}
			if _, err := fmt.Fprintf(w,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#ffffff" stroke-width="0.5"/>`+"\n",
				x*cell, flip(y, 1), cell, cell, fill); err != nil {
				return err
			}
		}
	}
	for i, p := range ps {
		colour := modulePalette[i%len(modulePalette)]
		for _, t := range p.Tiles() {
			if _, err := fmt.Fprintf(w,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.8" stroke="#222222" stroke-width="0.5"/>`+"\n",
				t.X*cell, flip(t.Y, 1), cell, cell, colour); err != nil {
				return err
			}
		}
		b := p.Bounds()
		if _, err := fmt.Fprintf(w,
			`<text x="%d" y="%d" font-size="%d" font-family="monospace" fill="#000000">%s</text>`+"\n",
			b.MinX*cell+2, flip(b.MinY, b.H())+cell, cell-1, p.Module.Name()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
