package solverlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every goroutine spawned in a long-lived package to
// have a provable exit: a daemon accumulates leaked goroutines until
// it dies, and the race detector never sees a leak that merely idles.
// Two rules:
//
//   - an unconditional `for { ... }` loop inside the spawned body must
//     contain an exit path: a return, a break out of the loop, a
//     receive on ctx.Done(), or a channel receive some sender can
//     close/complete. A loop with none of those provably never
//     terminates. Conditional and range loops are accepted: a range
//     over a channel ends when the channel closes, and a guarded loop
//     documents its own exit condition.
//   - a spawned body must not call a serve-forever entry point
//     (http.ListenAndServe and friends) without an allow pragma: such
//     a goroutine is process-lifetime by construction, which is
//     sometimes the design — the pragma records that decision.
//
// Named functions launched with `go f()` are resolved within the
// package and their bodies checked; cross-package launches are outside
// the analysis (the callee's own package audits it).
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement in long-lived packages needs a provable exit: no unconditional loops without a return/break/ctx.Done()/channel signal, no undocumented serve-forever calls",
	Run:  runGoroLeak,
}

// serveForeverNames are net/http entry points that only return on
// failure.
var serveForeverNames = map[string]bool{
	"ListenAndServe": true, "ListenAndServeTLS": true,
	"Serve": true, "ServeTLS": true,
}

func runGoroLeak(pass *Pass) error {
	decls := funcDeclsByObject(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g, decls)
			if body == nil {
				return true
			}
			checkGoroutineBody(pass, g, body)
			return true
		})
	}
	return nil
}

// funcDeclsByObject indexes the package's function declarations by
// their types object, so `go f()` and `go recv.m()` resolve to bodies.
func funcDeclsByObject(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// spawnedBody returns the body the go statement runs: a literal's own
// body, or the declaration of a same-package function/method.
func spawnedBody(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.TypesInfo.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.TypesInfo.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

func checkGoroutineBody(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal is its own goroutine question only if
			// spawned, which the outer Inspect over the file catches.
			return false
		case *ast.CallExpr:
			if name, ok := serveForeverCall(pass, n); ok {
				pass.Reportf(g.Pos(),
					"goroutine runs %s, which only returns on failure: it lives for the whole process (wire a shutdown path, or allowlist the process-lifetime design)",
					name)
			}
		case *ast.ForStmt:
			if n.Cond == nil && !hasExitPath(pass, n) {
				pass.Reportf(n.Pos(),
					"unconditional loop in goroutine has no exit path (no return, break, ctx.Done() or channel receive): this goroutine can never terminate")
				return false
			}
		}
		return true
	})
}

// serveForeverCall matches http.ListenAndServe-style calls (package
// function or *http.Server method).
func serveForeverCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !serveForeverNames[fn.Name()] {
		return "", false
	}
	if pkg := fn.Pkg(); pkg == nil || pkg.Path() != "net/http" {
		return "", false
	}
	return "http." + fn.Name(), true
}

// hasExitPath reports whether loop contains, at any depth outside
// nested function literals, a return, a break that exits it (plain
// break not swallowed by an inner loop/switch/select, or any labeled
// break), a ctx.Done()/ctx.Err() reference, or a channel receive.
func hasExitPath(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	// breakDepth counts the break-absorbing constructs between the
	// inspected node and the flagged loop: a plain break inside one of
	// those does not exit the flagged loop.
	breakDepth := 0
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (breakDepth == 0 || n.Label != nil) {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			breakDepth++
			defer func() { breakDepth-- }()
			walkChildren(n, inspect)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Done" || n.Sel.Name == "Err" {
				if t := pass.TypeOf(n.X); t != nil && isContextType(t) {
					found = true
				}
			}
		}
		return !found
	}
	walkChildren(loop, inspect)
	return found
}

// walkChildren applies fn to the children of n (not n itself),
// recursing per fn's return value.
func walkChildren(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n || m == nil {
			return true
		}
		return fn(m)
	})
}
