// Package online simulates online module placement on a reconfigurable
// region: tasks (module instances) arrive and depart at run time and a
// space manager decides, per arrival, where — and whether — the module
// can be placed. It implements the management strategies the paper's
// related-work section classifies: free-space management (first-fit and
// maximal-empty-rectangle best-fit, after Bazargan et al. [4]),
// occupied-space management (adjacency-guided, after Ahmadinia et
// al. [5]), and 1D slot-style placement; all against the same
// heterogeneous fabric model as the offline placer.
//
// The simulator measures service level (fraction of arrivals placed),
// time-weighted utilization and fragmentation, and configuration-port
// cost — the quantities that motivate the paper's offline,
// alternatives-aware approach.
package online

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/module"
	"repro/internal/obs"
)

// TaskID identifies a task within one simulation.
type TaskID int

// Task is one module instance with an arrival time and a residency
// duration, in abstract time units.
type Task struct {
	ID       TaskID
	Module   *module.Module
	Arrive   int64
	Duration int64
}

// Placement is a manager's decision: which design alternative at which
// anchor.
type Placement struct {
	Shape int
	At    grid.Point
}

// Manager is an online placement policy. Reset is called once per
// simulation with the region; TryPlace must return a placement that the
// manager itself considers valid (the simulator independently verifies
// it); Release frees a previously placed task.
type Manager interface {
	Name() string
	Reset(region *fabric.Region)
	TryPlace(t Task) (Placement, bool)
	Release(id TaskID)
}

// Preplacer is the optional Manager extension the session engine needs:
// adopting a placement computed outside the manager (by the CP replanner
// or the defragmenter) instead of choosing one. All built-in managers
// implement it via their shared base.
type Preplacer interface {
	Preplace(id TaskID, m *module.Module, p Placement) bool
}

// Stats aggregates one simulation run.
type Stats struct {
	Offered  int
	Accepted int
	Rejected int
	// ServiceLevel is Accepted/Offered — the paper's "amount of module
	// requests that can be fulfilled".
	ServiceLevel float64
	// MeanUtil is the time-weighted fraction of placeable tiles carrying
	// module logic while at least one task is resident.
	MeanUtil float64
	// PeakUtil is the maximum instantaneous utilization.
	PeakUtil float64
	// MeanFrag is the mean free-space fragmentation sampled at arrivals.
	MeanFrag float64
	// TotalReconfig is the summed configuration-port time of all
	// accepted placements and relocations.
	TotalReconfig time.Duration
	// Moves counts relocations of resident modules (defragmentation).
	Moves int
	// Horizon is the simulated time span.
	Horizon int64
}

// String summarises the stats.
func (s *Stats) String() string {
	return fmt.Sprintf("service=%.1f%% util=%.1f%% peak=%.1f%% frag=%.2f reconfig=%v (%d/%d accepted)",
		s.ServiceLevel*100, s.MeanUtil*100, s.PeakUtil*100, s.MeanFrag,
		s.TotalReconfig, s.Accepted, s.Offered)
}

// departure is a pending release in the event heap.
type departure struct {
	t  int64
	id TaskID
}

type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }

// Less orders by departure time, breaking same-tick ties by task id so
// simultaneous departures release in a deterministic order rather than
// whatever heap-internal order the insertion sequence produced.
func (h departureHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].id < h[j].id
}
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs the task stream through the manager on region. The
// frame model prices accepted placements' reconfiguration; pass the zero
// FrameModel's replacement, fabric.DefaultFrameModel(), for realistic
// numbers. The simulator keeps its own occupancy and rejects the run
// with an error if the manager ever returns an invalid or overlapping
// placement — manager bugs must not masquerade as good service.
func Simulate(region *fabric.Region, mgr Manager, tasks []Task, fm fabric.FrameModel) (*Stats, error) {
	return SimulateObserved(region, mgr, tasks, fm, nil)
}

// SimulateObserved is Simulate with instrumentation: when reg is
// non-nil, each arrival's placement-decision latency is recorded into
// per-outcome histograms (online_place_latency_seconds{outcome=...}),
// and request/accept/reject/move totals plus the final service level and
// mean utilization are published under online_* metric names. A nil reg
// adds no overhead.
func SimulateObserved(region *fabric.Region, mgr Manager, tasks []Task, fm fabric.FrameModel, reg *obs.Registry) (*Stats, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	sorted := make([]Task, len(tasks))
	copy(sorted, tasks)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrive < sorted[j].Arrive })

	mgr.Reset(region)
	occ := grid.NewBitmap(region.W(), region.H())
	resident := map[TaskID][]grid.Point{}
	residentMod := map[TaskID]*module.Module{}
	var deps departureHeap

	stats := &Stats{}
	placeable := region.PlaceableCount()
	var utilIntegral float64 // occupied-tiles × time
	var lastT int64
	occupiedNow := 0
	var fragSamples []float64

	advance := func(t int64) {
		if t > lastT {
			utilIntegral += float64(occupiedNow) * float64(t-lastT)
			lastT = t
		}
	}
	release := func(id TaskID) {
		pts := resident[id]
		delete(resident, id)
		delete(residentMod, id)
		occ.SetPoints(pts, false)
		occupiedNow -= len(pts)
		mgr.Release(id)
	}

	for _, task := range sorted {
		// Process departures up to the arrival instant (inclusive: a
		// task departing at t frees space for an arrival at t).
		for len(deps) > 0 && deps[0].t <= task.Arrive {
			d := heap.Pop(&deps).(departure)
			advance(d.t)
			release(d.id)
		}
		advance(task.Arrive)

		stats.Offered++
		fragSamples = append(fragSamples, metrics.Fragmentation(region, occ))
		var t0 time.Time
		if reg != nil {
			reg.Counter("online_requests_total").Inc()
			//solverlint:allow nondeterminism wall-clock telemetry only: the measured latency feeds a histogram, never a placement decision
			t0 = time.Now()
		}
		p, ok := mgr.TryPlace(task)
		if reg != nil {
			outcome := "rejected"
			if ok {
				outcome = "accepted"
			}
			//solverlint:allow nondeterminism wall-clock telemetry only: the measured latency feeds a histogram, never a placement decision
			reg.Histogram(`online_place_latency_seconds{outcome="` + outcome + `"}`).Observe(time.Since(t0).Seconds())
		}
		// Apply any relocations the manager performed for this arrival —
		// they precede the newcomer's configuration and are priced like
		// any other reconfiguration.
		if mr, isMR := mgr.(MoveReporter); isMR {
			for _, mv := range mr.PendingMoves() {
				rec, live := residentMod[mv.ID]
				if !live {
					return nil, fmt.Errorf("online: manager %s moved unknown task %d", mgr.Name(), mv.ID)
				}
				occ.SetPoints(resident[mv.ID], false)
				occupiedNow -= len(resident[mv.ID])
				pts, err := ValidatePlacement(region, occ, rec, Placement{Shape: mv.Shape, At: mv.At})
				if err != nil {
					return nil, fmt.Errorf("online: manager %s move of %d: %w", mgr.Name(), mv.ID, err)
				}
				occ.SetPoints(pts, true)
				occupiedNow += len(pts)
				resident[mv.ID] = pts
				stats.Moves++
				reg.Counter("online_moves_total").Inc()
				shape := rec.Shape(mv.Shape)
				frames := fm.FrameCount(region, grid.RectXYWH(mv.At.X, mv.At.Y, shape.W(), shape.H()))
				stats.TotalReconfig += fm.ReconfigTime(frames)
			}
		}
		if !ok {
			stats.Rejected++
			continue
		}
		pts, err := ValidatePlacement(region, occ, task.Module, p)
		if err != nil {
			return nil, fmt.Errorf("online: manager %s task %d: %w", mgr.Name(), task.ID, err)
		}
		occ.SetPoints(pts, true)
		occupiedNow += len(pts)
		resident[task.ID] = pts
		residentMod[task.ID] = task.Module
		stats.Accepted++

		shape := task.Module.Shape(p.Shape)
		frames := fm.FrameCount(region, grid.RectXYWH(p.At.X, p.At.Y, shape.W(), shape.H()))
		stats.TotalReconfig += fm.ReconfigTime(frames)
		if u := float64(occupiedNow) / float64(placeable); u > stats.PeakUtil {
			stats.PeakUtil = u
		}
		heap.Push(&deps, departure{t: task.Arrive + task.Duration, id: task.ID})
	}
	// Drain.
	for len(deps) > 0 {
		d := heap.Pop(&deps).(departure)
		advance(d.t)
		release(d.id)
	}

	stats.Horizon = lastT
	if stats.Offered > 0 {
		stats.ServiceLevel = float64(stats.Accepted) / float64(stats.Offered)
	}
	if lastT > 0 && placeable > 0 {
		stats.MeanUtil = utilIntegral / (float64(placeable) * float64(lastT))
	}
	stats.MeanFrag = metrics.Summarize(fragSamples).Mean
	if reg != nil {
		reg.Counter("online_accepted_total").Add(int64(stats.Accepted))
		reg.Counter("online_rejected_total").Add(int64(stats.Rejected))
		reg.Gauge("online_service_level").Set(stats.ServiceLevel)
		reg.Gauge("online_mean_utilization").Set(stats.MeanUtil)
	}
	return stats, nil
}

// ValidatePlacement checks M_a, M_b and M_c for one online placement
// and returns the absolute tiles on success. It is the shared validity
// oracle: the simulator uses it to audit managers, the session engine
// to audit itself, and loadgen's shadow revalidation to audit the
// service from the outside.
func ValidatePlacement(region *fabric.Region, occ *grid.Bitmap, m *module.Module, p Placement) ([]grid.Point, error) {
	if p.Shape < 0 || p.Shape >= m.NumShapes() {
		return nil, fmt.Errorf("shape index %d out of range", p.Shape)
	}
	shape := m.Shape(p.Shape)
	pts := make([]grid.Point, 0, shape.Size())
	for _, t := range shape.Tiles() {
		x, y := p.At.X+t.At.X, p.At.Y+t.At.Y
		if x < 0 || y < 0 || x >= region.W() || y >= region.H() {
			return nil, fmt.Errorf("tile (%d,%d) outside region", x, y)
		}
		if region.KindAt(x, y) != t.Kind {
			return nil, fmt.Errorf("tile (%d,%d) resource mismatch: %s on %s", x, y, t.Kind, region.KindAt(x, y))
		}
		if occ.Get(x, y) {
			return nil, fmt.Errorf("tile (%d,%d) already occupied", x, y)
		}
		pts = append(pts, grid.Pt(x, y))
	}
	return pts, nil
}
