package grid

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := RectXYWH(2, 3, 4, 5)
	if r.W() != 4 || r.H() != 5 || r.Area() != 20 {
		t.Fatalf("W/H/Area = %d/%d/%d, want 4/5/20", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	e := RectXYWH(0, 0, 0, 3)
	if !e.Empty() || e.Area() != 0 || e.W() != 0 {
		t.Fatalf("empty rect misbehaves: %v area=%d", e, e.Area())
	}
	neg := RectXYWH(0, 0, -2, 3)
	if !neg.Empty() || neg.Area() != 0 {
		t.Fatalf("negative rect not empty: %v", neg)
	}
}

func TestRectTranslate(t *testing.T) {
	r := RectXYWH(1, 1, 2, 2).Translate(Pt(3, -1))
	want := RectXYWH(4, 0, 2, 2)
	if r != want {
		t.Fatalf("Translate = %v, want %v", r, want)
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectXYWH(0, 0, 4, 4)
	b := RectXYWH(2, 2, 4, 4)
	got := a.Intersect(b)
	want := RectXYWH(2, 2, 2, 2)
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := RectXYWH(10, 10, 2, 2)
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
}

func TestRectUnion(t *testing.T) {
	a := RectXYWH(0, 0, 2, 2)
	b := RectXYWH(5, 5, 1, 1)
	got := a.Union(b)
	want := Rect{0, 0, 6, 6}
	if got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("empty Union = %v, want %v", got, b)
	}
}

func TestRectOverlapsContains(t *testing.T) {
	a := RectXYWH(0, 0, 4, 4)
	if !a.Overlaps(RectXYWH(3, 3, 4, 4)) {
		t.Error("corner overlap missed")
	}
	if a.Overlaps(RectXYWH(4, 0, 2, 2)) {
		t.Error("touching rects should not overlap (half-open)")
	}
	if !a.Contains(RectXYWH(1, 1, 2, 2)) {
		t.Error("Contains inner failed")
	}
	if a.Contains(RectXYWH(3, 3, 2, 2)) {
		t.Error("Contains overflow accepted")
	}
	if !a.Contains(Rect{}) {
		t.Error("empty rect must be contained everywhere")
	}
}

// Property: intersection is the set of tiles present in both rects.
func TestRectIntersectPointwise(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := RectXYWH(int(ax), int(ay), int(aw)%10, int(ah)%10)
		b := RectXYWH(int(bx), int(by), int(bw)%10, int(bh)%10)
		in := a.Intersect(b)
		for _, p := range a.Points() {
			if p.In(b) != p.In(in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Overlaps agrees with non-emptiness of Intersect.
func TestRectOverlapsAgreesWithIntersect(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := RectXYWH(int(ax), int(ay), int(aw)%12, int(ah)%12)
		b := RectXYWH(int(bx), int(by), int(bw)%12, int(bh)%12)
		return a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectPoints(t *testing.T) {
	r := RectXYWH(1, 1, 2, 2)
	ps := r.Points()
	want := []Point{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	if len(ps) != len(want) {
		t.Fatalf("Points len = %d, want %d", len(ps), len(want))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Points = %v, want %v", ps, want)
		}
	}
	if (Rect{}).Points() != nil {
		t.Error("empty rect Points should be nil")
	}
}
