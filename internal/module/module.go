package module

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
)

// Module is the paper's M = {S_1 … S_n}: a named set of functionally
// equivalent shapes (design alternatives). The placer may realise the
// module with any one of its shapes; at most one shape is instantiated
// at a time and the choice is fixed before run time (the paper rules out
// switching alternatives across preemption because module state could
// not be restored into a different layout).
type Module struct {
	name   string
	shapes []*Shape
}

// NewModule builds a module from at least one shape, dropping duplicate
// layouts (shapes with identical normalised tiles).
func NewModule(name string, shapes ...*Shape) (*Module, error) {
	if name == "" {
		return nil, fmt.Errorf("module: empty module name")
	}
	m := &Module{name: name}
	for _, s := range shapes {
		if s == nil {
			return nil, fmt.Errorf("module %s: nil shape", name)
		}
		m.addShape(s)
	}
	if len(m.shapes) == 0 {
		return nil, fmt.Errorf("module %s: at least one shape required", name)
	}
	return m, nil
}

// MustModule is NewModule panicking on error.
func MustModule(name string, shapes ...*Shape) *Module {
	m, err := NewModule(name, shapes...)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Module) addShape(s *Shape) {
	for _, have := range m.shapes {
		if have.Equal(s) {
			return
		}
	}
	m.shapes = append(m.shapes, s)
}

// Name returns the module name.
func (m *Module) Name() string { return m.name }

// Shapes returns the design alternatives. Callers must not mutate the
// returned slice.
func (m *Module) Shapes() []*Shape { return m.shapes }

// NumShapes returns the number of design alternatives.
func (m *Module) NumShapes() int { return len(m.shapes) }

// Shape returns the i-th design alternative.
func (m *Module) Shape(i int) *Shape { return m.shapes[i] }

// WithShapes returns a new module with the same name restricted to the
// given shape indices. It is how experiments derive the
// "no design alternatives" variant (WithShapes(0)) from a full module.
func (m *Module) WithShapes(indices ...int) (*Module, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("module %s: WithShapes needs at least one index", m.name)
	}
	shapes := make([]*Shape, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(m.shapes) {
			return nil, fmt.Errorf("module %s: shape index %d out of range [0,%d)", m.name, i, len(m.shapes))
		}
		shapes = append(shapes, m.shapes[i])
	}
	return NewModule(m.name, shapes...)
}

// MustWithShapes is WithShapes panicking on error, for statically known
// indices.
func (m *Module) MustWithShapes(indices ...int) *Module {
	out, err := m.WithShapes(indices...)
	if err != nil {
		panic(err)
	}
	return out
}

// FirstShapeOnly returns the module reduced to its first (primary)
// layout, panicking only if the module is malformed.
func (m *Module) FirstShapeOnly() *Module {
	out, err := m.WithShapes(0)
	if err != nil {
		panic(err)
	}
	return out
}

// Envelope returns, per resource kind, the minimum and maximum tile
// demand across the module's alternatives. Alternatives are not required
// to consume identical resources (Section III.A), so the envelope is the
// honest capacity statement for admission checks.
func (m *Module) Envelope() (lo, hi fabric.Histogram) {
	lo = m.shapes[0].Histogram()
	hi = lo
	for _, s := range m.shapes[1:] {
		h := s.Histogram()
		for k := range h {
			if h[k] < lo[k] {
				lo[k] = h[k]
			}
			if h[k] > hi[k] {
				hi[k] = h[k]
			}
		}
	}
	return lo, hi
}

// MinSize returns the smallest tile count over the alternatives.
func (m *Module) MinSize() int {
	n := m.shapes[0].Size()
	for _, s := range m.shapes[1:] {
		if s.Size() < n {
			n = s.Size()
		}
	}
	return n
}

// String summarises the module: name, alternative count and envelope.
func (m *Module) String() string {
	lo, hi := m.Envelope()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s[%d shapes", m.name, len(m.shapes))
	if lo == hi {
		fmt.Fprintf(&sb, ", %s", lo)
	} else {
		fmt.Fprintf(&sb, ", %s .. %s", lo, hi)
	}
	sb.WriteByte(']')
	return sb.String()
}
