package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// Resident describes one currently placed module for compaction
// planning.
type Resident struct {
	ID     TaskID
	Module *module.Module
	Shape  int
	At     grid.Point
}

func (r Resident) tiles() []grid.Point {
	pts := r.Module.Shape(r.Shape).Points()
	for i := range pts {
		pts[i] = pts[i].Add(r.At)
	}
	return pts
}

// Move relocates one resident module to a new shape/anchor. Moves of a
// compaction plan are ordered: each move's target is free given all
// earlier moves applied.
type Move struct {
	ID    TaskID
	Shape int
	At    grid.Point
}

// PlanCompaction computes a defragmentation plan for the residents: the
// CP placer derives a tighter target layout (design alternatives
// included), and the planner orders the relocations so that every move
// lands on tiles that are free at its turn — a module is never without a
// valid location. Modules whose placement is unchanged do not move.
//
// The returned moves achieve the target layout when applied in order; an
// error is returned if no ordering exists (relocation cycles) or the
// target layout cannot be computed. A nil move list with a nil error
// means the residency is already as tight as the placer can make it.
func PlanCompaction(region *fabric.Region, residents []Resident, opts core.Options) ([]Move, *core.Result, error) {
	if len(residents) == 0 {
		return nil, nil, fmt.Errorf("online: no residents to compact")
	}
	seen := map[TaskID]bool{}
	mods := make([]*module.Module, len(residents))
	for i, r := range residents {
		if r.Module == nil {
			return nil, nil, fmt.Errorf("online: resident %d has no module", r.ID)
		}
		if r.Shape < 0 || r.Shape >= r.Module.NumShapes() {
			return nil, nil, fmt.Errorf("online: resident %d has invalid shape %d", r.ID, r.Shape)
		}
		if seen[r.ID] {
			return nil, nil, fmt.Errorf("online: duplicate resident %d", r.ID)
		}
		seen[r.ID] = true
		mods[i] = r.Module
	}

	target, err := core.New(region, opts).Place(mods)
	if err != nil {
		return nil, nil, err
	}
	if !target.Found {
		return nil, nil, fmt.Errorf("online: compaction target infeasible")
	}

	// Current height; bail out early if the target is no better.
	curTop := 0
	for _, r := range residents {
		if t := r.At.Y + r.Module.Shape(r.Shape).H(); t > curTop {
			curTop = t
		}
	}
	if target.Height >= curTop {
		return nil, target, nil
	}

	// Order the moves so each target is free at its turn.
	occ := grid.NewBitmap(region.W(), region.H())
	cur := make(map[TaskID][]grid.Point, len(residents))
	for _, r := range residents {
		pts := r.tiles()
		occ.SetPoints(pts, true)
		cur[r.ID] = pts
	}
	var todo []pendingMove
	for i, r := range residents {
		p := target.Placements[i]
		if p.At == r.At && p.ShapeIndex == r.Shape {
			continue
		}
		todo = append(todo, pendingMove{id: r.ID, shape: p.ShapeIndex, at: p.At, target: p.Tiles()})
	}
	moves, stuck := orderMoves(occ, cur, todo)
	if stuck > 0 {
		return nil, target, fmt.Errorf("online: compaction blocked by a relocation cycle (%d modules)", stuck)
	}
	return moves, target, nil
}

// pendingMove is one relocation awaiting ordering: where a resident
// must end up (shape/anchor plus the absolute target tiles).
type pendingMove struct {
	id     TaskID
	shape  int
	at     grid.Point
	target []grid.Point
}

// orderMoves sequences relocations so every move's target tiles are
// free when its turn comes: repeatedly pick any pending move whose
// target is unoccupied once its own current tiles are vacated (a module
// leaves its old site atomically during reconfiguration), apply it, and
// emit it. occ must hold the occupancy of all residents and cur their
// current absolute tiles; both are advanced in place to the post-move
// state. The second result is the number of moves left unordered —
// non-zero means a relocation cycle that cannot be broken without a
// staging location, and occ/cur then reflect only the ordered prefix.
func orderMoves(occ *grid.Bitmap, cur map[TaskID][]grid.Point, todo []pendingMove) ([]Move, int) {
	var moves []Move
	for len(todo) > 0 {
		progressed := false
		for i := 0; i < len(todo); i++ {
			m := todo[i]
			occ.SetPoints(cur[m.id], false)
			if occ.AnyAt(m.target, grid.Pt(0, 0)) {
				occ.SetPoints(cur[m.id], true)
				continue
			}
			occ.SetPoints(m.target, true)
			cur[m.id] = m.target
			moves = append(moves, Move{ID: m.id, Shape: m.shape, At: m.at})
			todo = append(todo[:i], todo[i+1:]...)
			progressed = true
			i--
		}
		if !progressed {
			return moves, len(todo)
		}
	}
	return moves, 0
}

// ApplyMoves replays a move plan over a residency snapshot, validating
// each step (resource match, bounds, no overlap at the time of the
// move). It returns the final residency. This is the simulation-side
// counterpart of PlanCompaction and is used by tests and callers that
// maintain their own occupancy.
func ApplyMoves(region *fabric.Region, residents []Resident, moves []Move) ([]Resident, error) {
	byID := make(map[TaskID]int, len(residents))
	occ := grid.NewBitmap(region.W(), region.H())
	out := make([]Resident, len(residents))
	copy(out, residents)
	for i, r := range out {
		byID[r.ID] = i
		occ.SetPoints(r.tiles(), true)
	}
	for _, m := range moves {
		i, ok := byID[m.ID]
		if !ok {
			return nil, fmt.Errorf("online: move for unknown resident %d", m.ID)
		}
		r := out[i]
		occ.SetPoints(r.tiles(), false)
		next := Resident{ID: r.ID, Module: r.Module, Shape: m.Shape, At: m.At}
		pts, err := ValidatePlacement(region, occ, next.Module, Placement{Shape: m.Shape, At: m.At})
		if err != nil {
			return nil, fmt.Errorf("online: move of %d invalid: %w", m.ID, err)
		}
		occ.SetPoints(pts, true)
		out[i] = next
	}
	return out, nil
}
