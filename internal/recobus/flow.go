package recobus

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/module"
)

// Flow is the end-to-end design flow of Figure 2: partial-region
// specification plus module specification in, optimally placed modules
// and assembled bitstreams out.
type Flow struct {
	Spec       *RegionSpec
	Region     *fabric.Region
	Modules    []*module.Module
	FrameModel fabric.FrameModel
}

// LoadFlow parses the two specification streams and builds the region.
func LoadFlow(regionSpec, moduleSpec io.Reader) (*Flow, error) {
	spec, err := ParseRegion(regionSpec)
	if err != nil {
		return nil, err
	}
	region, err := spec.Build()
	if err != nil {
		return nil, err
	}
	mods, err := ParseModules(moduleSpec)
	if err != nil {
		return nil, err
	}
	return &Flow{
		Spec:       spec,
		Region:     region,
		Modules:    mods,
		FrameModel: fabric.DefaultFrameModel(),
	}, nil
}

// Place runs the constraint-programming placer on the flow's region and
// modules, applying the spec's bus-attachment constraint.
func (f *Flow) Place(opts core.Options) (*core.Result, error) {
	if len(opts.BusRows) == 0 {
		opts.BusRows = f.Spec.BusRows
	}
	res, err := core.New(f.Region, opts).Place(f.Modules)
	if err != nil {
		return nil, err
	}
	if res.Found {
		if err := res.Validate(f.Region); err != nil {
			return nil, fmt.Errorf("recobus: placer produced invalid result: %w", err)
		}
	}
	return res, nil
}

// Assemble turns a placement into per-module bitstreams under the flow's
// frame model.
func (f *Flow) Assemble(res *core.Result) ([]Bitstream, error) {
	return Assemble(f.Region, res, f.FrameModel)
}
