package repro_test

// End-to-end integration tests across packages: the full Figure-2 design
// flow from textual specifications to validated placements, bitstreams,
// schedules, and online operation on the same fabric.

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
	"repro/internal/netlist"
	"repro/internal/online"
	"repro/internal/recobus"
	"repro/internal/render"
	"repro/internal/rtsim"
	"repro/internal/workload"
)

const itRegionSpec = `
region it 36 24
bramcols 5 17 29
dspcols 16
clockrows 12
bus 0 12
`

const itModulesSpec = `
module alpha
demand 20 2 0
alternatives 4

module beta
demand 14 0 1
alternatives 4

module gamma
shape
rect 0 0 4 3 CLB
end
shape
rect 0 0 3 4 CLB
end
`

func TestIntegrationSpecToBitstreams(t *testing.T) {
	flow, err := recobus.LoadFlow(strings.NewReader(itRegionSpec), strings.NewReader(itModulesSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Place(core.Options{Timeout: 10 * time.Second, StallNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("flow found no placement")
	}
	// Rendering works on the result.
	plan := render.PlacementsWithRuler(flow.Region, res.Placements)
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if !strings.Contains(plan, name) {
			t.Fatalf("rendered plan missing %s:\n%s", name, plan)
		}
	}
	// Bitstream assembly and round trip.
	bs, err := flow.Assemble(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("bitstreams = %d", len(bs))
	}
	for _, b := range bs {
		back, err := recobus.DecodeBitstream(b.Encode())
		if err != nil || back.Module != b.Module || back.Frames != b.Frames {
			t.Fatalf("bitstream round trip: %v / %v", err, back)
		}
	}
}

func TestIntegrationScheduleOnFlow(t *testing.T) {
	flow, err := recobus.LoadFlow(strings.NewReader(itRegionSpec), strings.NewReader(itModulesSpec))
	if err != nil {
		t.Fatal(err)
	}
	sched := `
phase boot 10ms
use alpha gamma
phase run 30ms
use alpha beta
`
	phases, err := rtsim.ParseSchedule(strings.NewReader(sched), rtsim.Library(flow.Modules))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := rtsim.Plan(flow.Region, phases, rtsim.Options{
		Placer:     core.Options{Timeout: 10 * time.Second, StallNodes: 1000, BusRows: flow.Spec.BusRows},
		Persistent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Plans) != 2 {
		t.Fatalf("plans = %d", len(tl.Plans))
	}
	// alpha survives the switch: it must be kept, not reconfigured.
	kept := tl.Plans[1].Kept
	if len(kept) != 1 || kept[0] != "alpha" {
		t.Fatalf("kept = %v", kept)
	}
	// Every phase placement is valid and respects the bus rows.
	for _, p := range tl.Plans {
		if err := p.Result.Validate(flow.Region); err != nil {
			t.Fatalf("phase %s: %v", p.Phase.Name, err)
		}
		for _, pl := range p.Result.Placements {
			b := pl.Bounds()
			onBus := false
			for _, row := range flow.Spec.BusRows {
				if b.MinY <= row && row < b.MaxY {
					onBus = true
				}
			}
			if !onBus {
				t.Fatalf("phase %s: %v off the bus", p.Phase.Name, pl)
			}
		}
	}
}

func TestIntegrationNetlistToPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var mods []*module.Module
	for i, cfg := range []netlist.GenConfig{
		{LUTs: 100, FFs: 80, BRAMs: 1},
		{LUTs: 60, FFs: 60},
		{LUTs: 140, FFs: 90, BRAMs: 2},
	} {
		nl, err := netlist.Generate(string(rune('a'+i)), cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, err := netlist.ToModule(nl, netlist.DefaultPackingTarget(), module.AlternativeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	region := fabric.VirtexLike(48, 24).FullRegion()
	res, err := core.New(region, core.Options{Timeout: 10 * time.Second, StallNodes: 1000}).Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("netlist modules unplaceable")
	}
	if err := res.Validate(region); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrationOnlineThenCompaction(t *testing.T) {
	dev, err := fabric.ByName("virtex2-like-48x32")
	if err != nil {
		t.Fatal(err)
	}
	region := dev.FullRegion()
	stream := online.StreamConfig{Tasks: 40, MeanInterarrival: 3, MeanDuration: 500}
	stream.Library.CLBMin, stream.Library.CLBMax = 6, 20
	stream.Library.NoBRAM = true
	stream.Library.Alternatives = 2
	stream.Library.NumModules = 1
	tasks, err := online.GenerateStream(stream, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	mgr := &online.FirstFit{UseAlternatives: true}
	if _, err := online.Simulate(region, mgr, tasks, fabric.DefaultFrameModel()); err != nil {
		t.Fatal(err)
	}

	// Rebuild a residency snapshot from a fresh fragmented sequence and
	// plan compaction over it.
	var residents []online.Resident
	occupied := 0
	for i, task := range tasks[:12] {
		if i%3 == 0 {
			continue // leave gaps
		}
		residents = append(residents, online.Resident{
			ID: task.ID, Module: task.Module, Shape: 0,
			At: placeForTest(t, region, residents, task.Module),
		})
		occupied++
	}
	if occupied < 4 {
		t.Fatal("test premise: too few residents")
	}
	moves, target, err := online.PlanCompaction(region, residents,
		core.Options{Timeout: 10 * time.Second, StallNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if target == nil {
		t.Fatal("no compaction target")
	}
	if _, err := online.ApplyMoves(region, residents, moves); err != nil {
		t.Fatal(err)
	}
}

// placeForTest finds a bottom-left anchor for m's first shape above the
// other residents, spreading modules upward to create fragmentation.
func placeForTest(t *testing.T, region *fabric.Region, residents []online.Resident, m *module.Module) grid.Point {
	t.Helper()
	s := m.Shape(0)
	va := core.ValidAnchors(region, s)
	minY := 2 * len(residents) // force vertical spread
	for y := minY; y+s.H() <= region.H(); y++ {
		for x := 0; x+s.W() <= region.W(); x++ {
			if !va.Get(x, y) {
				continue
			}
			clash := false
			for _, r := range residents {
				rs := r.Module.Shape(r.Shape)
				if overlapRects(x, y, s.W(), s.H(), r.At.X, r.At.Y, rs.W(), rs.H()) {
					clash = true
					break
				}
			}
			if !clash {
				return grid.Pt(x, y)
			}
		}
	}
	t.Fatal("no anchor for test resident")
	return grid.Point{}
}

func overlapRects(ax, ay, aw, ah, bx, by, bw, bh int) bool {
	return ax < bx+bw && bx < ax+aw && ay < by+bh && by < ay+ah
}

func TestIntegrationTableIWorkloadValidity(t *testing.T) {
	// One reduced Table-I style run, validating every intermediate.
	region := fabric.Homogeneous(40, 30).FullRegion()
	mods := workload.MustGenerate(workload.Config{
		NumModules: 6, CLBMin: 10, CLBMax: 30, NoBRAM: true, Alternatives: 4,
	}, rand.New(rand.NewSource(2)))
	p := core.New(region, core.Options{Timeout: 10 * time.Second, StallNodes: 500})
	with, err := p.Place(mods)
	if err != nil {
		t.Fatal(err)
	}
	without, err := p.Place(workload.FirstShapesOnly(mods))
	if err != nil {
		t.Fatal(err)
	}
	if !with.Found || !without.Found {
		t.Fatal("placements not found")
	}
	if with.Height > without.Height {
		t.Fatalf("alternatives worsened height: %d > %d", with.Height, without.Height)
	}
	if err := with.Validate(region); err != nil {
		t.Fatal(err)
	}
	if err := without.Validate(region); err != nil {
		t.Fatal(err)
	}
}
