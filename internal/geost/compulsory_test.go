package geost

import (
	"testing"

	"repro/internal/csp"
	"repro/internal/grid"
)

func TestCompulsoryRegionExact(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 5, 5)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(3, 3, 5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	// Restrict anchors to (0,0) and (1,1): footprints (0..2)² and
	// (1..3)² intersect in (1..2)².
	if err := st.FilterDomain(o.Place, func(v int) bool {
		_, x, y := o.Decode(v)
		return (x == 0 && y == 0) || (x == 1 && y == 1)
	}); err != nil {
		t.Fatal(err)
	}
	comp := compulsoryRegion(o)
	if comp == nil {
		t.Fatal("no compulsory region")
	}
	if comp.Count() != 4 {
		t.Fatalf("compulsory count = %d, want 4\n%s", comp.Count(), comp)
	}
	for _, p := range []grid.Point{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 2}} {
		if !comp.Get(p.X, p.Y) {
			t.Fatalf("cell %v missing from compulsory region", p)
		}
	}
}

func TestCompulsoryRegionEmptyOrLarge(t *testing.T) {
	st := csp.NewStore()
	k := New(st, 8, 8)
	o, err := k.AddObject("a", []ShapeGeom{rectGeom(2, 2, 8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// 49 candidates > threshold: skipped.
	if comp := compulsoryRegion(o); comp != nil {
		t.Fatal("large domain should skip compulsory computation")
	}
	// Two far-apart candidates: empty intersection.
	if err := st.FilterDomain(o.Place, func(v int) bool {
		_, x, y := o.Decode(v)
		return (x == 0 && y == 0) || (x == 6 && y == 6)
	}); err != nil {
		t.Fatal(err)
	}
	if comp := compulsoryRegion(o); comp != nil {
		t.Fatal("disjoint candidates should have no compulsory region")
	}
}

func TestCompulsoryPairPrunesBeforeAssignment(t *testing.T) {
	// Object a is a 3x3 block restricted to two overlapping anchors;
	// its compulsory 2x2 centre must already prune b's placements even
	// though a is not assigned.
	st := csp.NewStore()
	k := New(st, 5, 5)
	a, err := k.AddObject("a", []ShapeGeom{rectGeom(3, 3, 5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.AddObject("b", []ShapeGeom{rectGeom(2, 2, 5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	k.PostNonOverlap()
	k.PostCompulsoryNonOverlap()
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	before := b.CandidateCount()
	if err := st.FilterDomain(a.Place, func(v int) bool {
		_, x, y := a.Decode(v)
		return (x == 0 && y == 0) || (x == 1 && y == 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Propagate(); err != nil {
		t.Fatal(err)
	}
	if a.Assigned() {
		t.Fatal("test premise broken: a assigned")
	}
	if b.CandidateCount() >= before {
		t.Fatalf("no compulsory pruning: %d >= %d", b.CandidateCount(), before)
	}
	// b anchors overlapping the compulsory square (1..2)² are gone.
	b.Place.Domain().ForEach(func(val int) bool {
		_, x, y := b.Decode(val)
		if grid.RectXYWH(x, y, 2, 2).Overlaps(grid.RectXYWH(1, 1, 2, 2)) {
			t.Fatalf("placement (%d,%d) overlaps compulsory region", x, y)
		}
		return true
	})
}

func TestCompulsorySameOptimaAsPlainNonOverlap(t *testing.T) {
	// Minimised height must be identical with and without the extra
	// pruning: it only removes provably infeasible placements.
	solve := func(compulsory bool) int {
		st := csp.NewStore()
		k := New(st, 4, 6)
		for i := 0; i < 3; i++ {
			if _, err := k.AddObject(string(rune('a'+i)), []ShapeGeom{rectGeom(2, 2, 4, 6)}); err != nil {
				t.Fatal(err)
			}
		}
		k.PostNonOverlap()
		if compulsory {
			k.PostCompulsoryNonOverlap()
		}
		height := k.PostHeightObjective(uniformCapPrefix(4, 6))
		res, err := csp.Minimize(st, k.PlaceVars(), height, csp.Options{}, nil)
		if err != nil || !res.Found || !res.Optimal {
			t.Fatalf("minimize: %v %+v", err, res)
		}
		return res.Best
	}
	if with, without := solve(true), solve(false); with != without {
		t.Fatalf("compulsory pruning changed the optimum: %d vs %d", with, without)
	}
}
