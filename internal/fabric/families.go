package fabric

import (
	"fmt"
	"math/rand"
	"sort"
)

// Spec describes a column-structured device family. Synthetic devices
// are generated from a Spec the way real FPGA floorplans are laid out:
// a base sea of CLB columns with dedicated-resource columns inserted at
// given x positions, optional IOB rings, and clock tiles either as a
// dedicated column or interrupting resource columns at a fixed row
// period (the irregularity the paper highlights in modern devices).
type Spec struct {
	Name string
	W, H int

	// BRAMColumns and DSPColumns list the x positions of embedded
	// memory and multiplier columns.
	BRAMColumns []int
	DSPColumns  []int

	// ClockColumns lists x positions of full-height clock columns
	// (e.g. the centre clock spine of Virtex devices).
	ClockColumns []int

	// ClockRowPeriod, when positive, replaces every tile at rows
	// y ≡ ClockRowPeriod-1 (mod ClockRowPeriod) inside BRAM and DSP
	// columns with a Clock tile, modelling the clock-management tiles
	// that interrupt resource columns on current-generation fabrics.
	ClockRowPeriod int

	// IOBRing, when true, turns the leftmost and rightmost columns
	// into IOB columns.
	IOBRing bool
}

// Validate reports the first inconsistency in the spec, or nil.
func (s *Spec) Validate() error {
	if s.W <= 0 || s.H <= 0 {
		return fmt.Errorf("fabric: spec %q has invalid size %dx%d", s.Name, s.W, s.H)
	}
	check := func(what string, cols []int) error {
		for _, x := range cols {
			if x < 0 || x >= s.W {
				return fmt.Errorf("fabric: spec %q: %s column %d outside [0,%d)", s.Name, what, x, s.W)
			}
		}
		return nil
	}
	if err := check("BRAM", s.BRAMColumns); err != nil {
		return err
	}
	if err := check("DSP", s.DSPColumns); err != nil {
		return err
	}
	if err := check("clock", s.ClockColumns); err != nil {
		return err
	}
	if s.ClockRowPeriod < 0 {
		return fmt.Errorf("fabric: spec %q: negative clock row period", s.Name)
	}
	return nil
}

// Build materialises the spec into a Device. Column kinds are resolved
// in priority order clock > BRAM > DSP > IOB > CLB; clock-row
// interruptions apply to BRAM/DSP columns only.
func (s *Spec) Build() (*Device, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	colKind := make([]Kind, s.W)
	for x := range colKind {
		colKind[x] = CLB
	}
	if s.IOBRing && s.W >= 2 {
		colKind[0] = IOB
		colKind[s.W-1] = IOB
	}
	for _, x := range s.DSPColumns {
		colKind[x] = DSP
	}
	for _, x := range s.BRAMColumns {
		colKind[x] = BRAM
	}
	for _, x := range s.ClockColumns {
		colKind[x] = Clock
	}
	at := func(x, y int) Kind {
		k := colKind[x]
		if s.ClockRowPeriod > 0 && (k == BRAM || k == DSP) &&
			y%s.ClockRowPeriod == s.ClockRowPeriod-1 {
			return Clock
		}
		return k
	}
	return NewDevice(s.Name, s.W, s.H, at), nil
}

// MustBuild is Build panicking on error; for statically known specs.
func (s *Spec) MustBuild() *Device {
	d, err := s.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// Homogeneous returns a device consisting solely of CLB tiles: the
// homogeneous xy-plane model of earlier placement literature, used here
// as the heterogeneity-ablation fabric.
func Homogeneous(w, h int) *Device {
	return NewDevice(fmt.Sprintf("homogeneous-%dx%d", w, h), w, h,
		func(x, y int) Kind { return CLB })
}

// VirtexLike returns a previous-generation style device: dedicated
// resource columns regularly aligned (a BRAM column every 12 columns,
// a DSP column every 24, offset by 6), an IOB ring, and a centre clock
// column. This mirrors the "regularly aligned in columns" layout the
// paper attributes to earlier FPGA generations.
func VirtexLike(w, h int) *Device {
	spec := Spec{
		Name:    fmt.Sprintf("virtexlike-%dx%d", w, h),
		W:       w,
		H:       h,
		IOBRing: true,
	}
	for x := 6; x < w-1; x += 12 {
		spec.BRAMColumns = append(spec.BRAMColumns, x)
	}
	for x := 12; x < w-1; x += 24 {
		spec.DSPColumns = append(spec.DSPColumns, x)
	}
	if w >= 8 {
		spec.ClockColumns = []int{w / 2}
	}
	return spec.MustBuild()
}

// IrregularVirtexLike returns a current-generation style device: the
// same resource mix as VirtexLike but with the dedicated columns spread
// irregularly (seeded), and with clock tiles interrupting the BRAM/DSP
// columns every 16 rows. This is the heterogeneous, irregular fabric the
// paper's placement model is designed for.
func IrregularVirtexLike(w, h int, seed int64) *Device {
	rng := rand.New(rand.NewSource(seed))
	spec := Spec{
		Name:           fmt.Sprintf("irregular-%dx%d-s%d", w, h, seed),
		W:              w,
		H:              h,
		IOBRing:        true,
		ClockRowPeriod: 16,
	}
	if w >= 8 {
		spec.ClockColumns = []int{w / 2}
	}
	// Choose about w/12 BRAM columns and w/24 DSP columns at distinct
	// irregular positions, keeping clear of the IOB ring and the clock
	// spine.
	nBRAM := w / 12
	nDSP := w / 24
	used := map[int]bool{0: true, w - 1: true, w / 2: true}
	pick := func() int {
		for {
			x := 1 + rng.Intn(w-2)
			if !used[x] {
				used[x] = true
				return x
			}
		}
	}
	for i := 0; i < nBRAM; i++ {
		spec.BRAMColumns = append(spec.BRAMColumns, pick())
	}
	for i := 0; i < nDSP; i++ {
		spec.DSPColumns = append(spec.DSPColumns, pick())
	}
	sort.Ints(spec.BRAMColumns)
	sort.Ints(spec.DSPColumns)
	return spec.MustBuild()
}
