// Package goroleak is a fixture: goroutine exit discipline in
// long-lived packages.
package goroleak

import (
	"context"
	"net/http"
)

// Spin spawns a loop with no way out: no return, no break, no
// receive.
func Spin(ch chan<- int) {
	go func() {
		for { // want `unconditional loop in goroutine has no exit path`
			ch <- 1
		}
	}()
}

// Pump is the good shape: cancellation exits the loop.
func Pump(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// spinForever is an eternal named worker; the analysis follows the go
// statement to the same-package body.
func spinForever() {
	for { // want `unconditional loop in goroutine has no exit path`
	}
}

// SpawnNamed launches it.
func SpawnNamed() {
	go spinForever()
}

// tickForever is spawned from crossfile.go only; the loop diagnostic
// still lands here, on the loop itself.
func tickForever() {
	for { // want `unconditional loop in goroutine has no exit path`
	}
}

// ServeMetrics parks a goroutine in a serve-forever entry point
// without recording the decision.
func ServeMetrics() {
	go func() { // want `goroutine runs http\.ListenAndServe`
		http.ListenAndServe("127.0.0.1:0", nil)
	}()
}

// ServeDebug runs the process-lifetime debug listener by design; the
// pragma records it.
func ServeDebug() {
	//solverlint:allow goroleak fixture: process-lifetime debug listener by design
	go func() {
		http.ListenAndServe("127.0.0.1:0", nil)
	}()
}

// Drain is fine: the loop is bounded by its condition.
func Drain(ch chan int, n int) {
	go func() {
		for i := 0; i < n; i++ {
			<-ch
		}
	}()
}

// Until is fine: the closed-channel signal breaks the loop.
func Until(done chan struct{}) {
	go func() {
		for {
			if _, ok := <-done; !ok {
				break
			}
		}
	}()
}
