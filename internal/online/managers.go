package online

import (
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/grid"
	"repro/internal/module"
)

// residentRec tracks one placed task inside a manager.
type residentRec struct {
	module *module.Module
	shape  int
	at     grid.Point
	pts    []grid.Point
}

// base carries the bookkeeping shared by all managers: the region, an
// occupancy mirror, per-shape anchor caches (the fused M_a ∧ M_b
// constraint, cached by shape fingerprint since tasks reuse module
// layouts), and the resident-task table.
type base struct {
	region   *fabric.Region
	occ      *grid.Bitmap
	anchors  map[string]*grid.Bitmap
	resident map[TaskID]residentRec
}

func (b *base) reset(region *fabric.Region) {
	b.region = region
	b.occ = grid.NewBitmap(region.W(), region.H())
	b.anchors = map[string]*grid.Bitmap{}
	b.resident = map[TaskID]residentRec{}
}

func (b *base) anchorsFor(s *module.Shape) *grid.Bitmap {
	if a, ok := b.anchors[s.Key()]; ok {
		return a
	}
	a := core.ValidAnchors(b.region, s)
	b.anchors[s.Key()] = a
	return a
}

// freeAt reports whether shape s can go at (x, y): anchor valid and all
// tiles unoccupied.
func (b *base) freeAt(s *module.Shape, x, y int) bool {
	if !b.anchorsFor(s).Get(x, y) {
		return false
	}
	return !b.occ.AnyAt(s.Points(), grid.Pt(x, y))
}

func (b *base) commit(id TaskID, m *module.Module, si, x, y int) {
	s := m.Shape(si)
	pts := make([]grid.Point, 0, s.Size())
	for _, p := range s.Points() {
		pts = append(pts, p.Add(grid.Pt(x, y)))
	}
	b.occ.SetPoints(pts, true)
	b.resident[id] = residentRec{module: m, shape: si, at: grid.Pt(x, y), pts: pts}
}

// Release implements Manager.
func (b *base) Release(id TaskID) {
	rec, ok := b.resident[id]
	if !ok {
		return
	}
	delete(b.resident, id)
	b.occ.SetPoints(rec.pts, false)
}

// Preplace imposes an externally computed placement on the manager: the
// session engine uses it to re-seed a manager after a CP replan or a
// defragmentation changed the layout behind the greedy policy's back.
// The placement is checked exactly like TryPlace would (valid anchor,
// no overlap); false means the manager did not adopt it.
func (b *base) Preplace(id TaskID, m *module.Module, p Placement) bool {
	if _, ok := b.resident[id]; ok {
		return false
	}
	if p.Shape < 0 || p.Shape >= m.NumShapes() {
		return false
	}
	if !b.freeAt(m.Shape(p.Shape), p.At.X, p.At.Y) {
		return false
	}
	b.commit(id, m, p.Shape, p.At.X, p.At.Y)
	return true
}

// shapeRange returns the shape indices a manager may use.
func shapeRange(m *module.Module, useAlternatives bool) int {
	if useAlternatives {
		return m.NumShapes()
	}
	return 1
}

// FirstFit is free-space management with bottom-left first-fit: the
// classic online policy (the "free space management" pole of the
// paper's classification).
type FirstFit struct {
	base
	// UseAlternatives lets the manager pick among design alternatives.
	UseAlternatives bool
}

// Name implements Manager.
func (m *FirstFit) Name() string {
	if m.UseAlternatives {
		return "first-fit+alternatives"
	}
	return "first-fit"
}

// Reset implements Manager.
func (m *FirstFit) Reset(region *fabric.Region) { m.reset(region) }

// TryPlace implements Manager.
func (m *FirstFit) TryPlace(t Task) (Placement, bool) {
	n := shapeRange(t.Module, m.UseAlternatives)
	for y := 0; y < m.region.H(); y++ {
		for x := 0; x < m.region.W(); x++ {
			for si := 0; si < n; si++ {
				s := t.Module.Shape(si)
				if m.freeAt(s, x, y) {
					m.commit(t.ID, t.Module, si, x, y)
					return Placement{Shape: si, At: grid.Pt(x, y)}, true
				}
			}
		}
	}
	return Placement{}, false
}

// BestFitMER is free-space management with maximal-empty-rectangle
// best-fit, after Bazargan et al. [4]: the free space is decomposed into
// maximal empty rectangles and the module goes into the rectangle whose
// area exceeds the module's bounding box by the least.
type BestFitMER struct {
	base
	UseAlternatives bool
}

// Name implements Manager.
func (m *BestFitMER) Name() string {
	if m.UseAlternatives {
		return "mer-best-fit+alternatives"
	}
	return "mer-best-fit"
}

// Reset implements Manager.
func (m *BestFitMER) Reset(region *fabric.Region) { m.reset(region) }

// TryPlace implements Manager.
func (m *BestFitMER) TryPlace(t Task) (Placement, bool) {
	mers := MaximalEmptyRects(m.region, m.occ)
	n := shapeRange(t.Module, m.UseAlternatives)
	bestWaste := 1 << 60
	var best Placement
	found := false
	for _, r := range mers {
		for si := 0; si < n; si++ {
			s := t.Module.Shape(si)
			if s.W() > r.W() || s.H() > r.H() {
				continue
			}
			waste := r.Area() - s.W()*s.H()
			if found && waste >= bestWaste {
				continue
			}
			// Heterogeneity: the rectangle is geometrically free but the
			// shape's resource pattern may only align at some anchors
			// inside it — scan bottom-left within the rectangle.
			if x, y, ok := m.anchorInRect(s, r); ok {
				bestWaste = waste
				best = Placement{Shape: si, At: grid.Pt(x, y)}
				found = true
			}
		}
	}
	if !found {
		return Placement{}, false
	}
	m.commit(t.ID, t.Module, best.Shape, best.At.X, best.At.Y)
	return best, true
}

func (m *BestFitMER) anchorInRect(s *module.Shape, r grid.Rect) (int, int, bool) {
	va := m.anchorsFor(s)
	for y := r.MinY; y+s.H() <= r.MaxY; y++ {
		for x := r.MinX; x+s.W() <= r.MaxX; x++ {
			// Tiles inside a maximal empty rect are unoccupied by
			// construction; only anchor validity needs checking.
			if va.Get(x, y) {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

// OccupiedSpace is occupied-space management after Ahmadinia et al. [5]:
// candidate positions are derived from the boundaries of the already
// placed modules (and the region border) instead of scanning all free
// space; the bottom-left-most adjacent position wins. This both shrinks
// the candidate set and packs modules against each other.
type OccupiedSpace struct {
	base
	UseAlternatives bool
}

// Name implements Manager.
func (m *OccupiedSpace) Name() string {
	if m.UseAlternatives {
		return "occupied-space+alternatives"
	}
	return "occupied-space"
}

// Reset implements Manager.
func (m *OccupiedSpace) Reset(region *fabric.Region) { m.reset(region) }

// TryPlace implements Manager.
func (m *OccupiedSpace) TryPlace(t Task) (Placement, bool) {
	n := shapeRange(t.Module, m.UseAlternatives)
	for y := 0; y < m.region.H(); y++ {
		for x := 0; x < m.region.W(); x++ {
			for si := 0; si < n; si++ {
				s := t.Module.Shape(si)
				if m.freeAt(s, x, y) && m.touches(s, x, y) {
					m.commit(t.ID, t.Module, si, x, y)
					return Placement{Shape: si, At: grid.Pt(x, y)}, true
				}
			}
		}
	}
	return Placement{}, false
}

// touches reports whether the shape at (x, y) abuts the region border or
// an occupied tile — the "managed" positions of occupied-space policies.
func (m *OccupiedSpace) touches(s *module.Shape, x, y int) bool {
	for _, p := range s.Points() {
		ax, ay := p.X+x, p.Y+y
		if ax == 0 || ay == 0 || ax == m.region.W()-1 || ay == m.region.H()-1 {
			return true
		}
		if m.occ.Get(ax-1, ay) || m.occ.Get(ax+1, ay) ||
			m.occ.Get(ax, ay-1) || m.occ.Get(ax, ay+1) {
			return true
		}
	}
	return false
}

// Slot1D is 1D slot-style placement: the region is pre-partitioned into
// fixed-width, full-height slots and every module exclusively reserves a
// contiguous run of slots — the coarse model of early reconfigurable
// systems the paper's classification contrasts with 2D placement. The
// reserved-but-unused area is internal fragmentation.
type Slot1D struct {
	base
	// SlotWidth is the width of one slot in tiles (default 8).
	SlotWidth       int
	UseAlternatives bool

	slotBusy []bool
	slotOf   map[TaskID][]int
}

// Name implements Manager.
func (m *Slot1D) Name() string { return "1d-slots" }

// Reset implements Manager.
func (m *Slot1D) Reset(region *fabric.Region) {
	m.reset(region)
	if m.SlotWidth <= 0 {
		m.SlotWidth = 8
	}
	m.slotBusy = make([]bool, region.W()/m.SlotWidth)
	m.slotOf = map[TaskID][]int{}
}

// TryPlace implements Manager.
func (m *Slot1D) TryPlace(t Task) (Placement, bool) {
	n := shapeRange(t.Module, m.UseAlternatives)
	for si := 0; si < n; si++ {
		s := t.Module.Shape(si)
		need := (s.W() + m.SlotWidth - 1) / m.SlotWidth
		for first := 0; first+need <= len(m.slotBusy); first++ {
			if !m.slotsFree(first, need) {
				continue
			}
			// The module may sit anywhere inside its reserved slots; the
			// fabric's resource pattern decides which anchors work.
			lo := first * m.SlotWidth
			hi := (first+need)*m.SlotWidth - s.W()
			for y := 0; y+s.H() <= m.region.H(); y++ {
				for x := lo; x <= hi; x++ {
					if m.freeAt(s, x, y) {
						m.commit(t.ID, t.Module, si, x, y)
						for i := first; i < first+need; i++ {
							m.slotBusy[i] = true
						}
						m.slotOf[t.ID] = append(m.slotOf[t.ID], rangeInts(first, need)...)
						return Placement{Shape: si, At: grid.Pt(x, y)}, true
					}
				}
			}
		}
	}
	return Placement{}, false
}

func (m *Slot1D) slotsFree(first, need int) bool {
	for i := first; i < first+need; i++ {
		if m.slotBusy[i] {
			return false
		}
	}
	return true
}

// Preplace implements Preplacer: the imposed placement additionally
// reserves every slot its footprint touches, keeping the exclusive-slot
// invariant that Release depends on.
func (m *Slot1D) Preplace(id TaskID, mod *module.Module, p Placement) bool {
	if p.Shape < 0 || p.Shape >= mod.NumShapes() {
		return false
	}
	s := mod.Shape(p.Shape)
	if p.At.X < 0 || m.SlotWidth <= 0 {
		return false
	}
	first := p.At.X / m.SlotWidth
	last := (p.At.X + s.W() - 1) / m.SlotWidth
	if last >= len(m.slotBusy) || !m.slotsFree(first, last-first+1) {
		return false
	}
	if !m.base.Preplace(id, mod, p) {
		return false
	}
	for i := first; i <= last; i++ {
		m.slotBusy[i] = true
	}
	m.slotOf[id] = append(m.slotOf[id], rangeInts(first, last-first+1)...)
	return true
}

// Release implements Manager.
func (m *Slot1D) Release(id TaskID) {
	m.base.Release(id)
	for _, i := range m.slotOf[id] {
		m.slotBusy[i] = false
	}
	delete(m.slotOf, id)
}

func rangeInts(first, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = first + i
	}
	return out
}

// Managers returns one instance of every policy, with and without design
// alternatives where the policy supports them.
func Managers() []Manager {
	return []Manager{
		&FirstFit{},
		&FirstFit{UseAlternatives: true},
		&BestFitMER{},
		&BestFitMER{UseAlternatives: true},
		&OccupiedSpace{},
		&OccupiedSpace{UseAlternatives: true},
		&Slot1D{},
	}
}
