// Package atomicsafe is a fixture: mixed atomic and plain access to
// the same variable.
package atomicsafe

import "sync/atomic"

type stats struct {
	hits int64
	miss int64
}

// Hit and Hits are the good pair: every access to hits goes through
// sync/atomic.
func (s *stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) Hits() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Miss increments atomically...
func (s *stats) Miss() {
	atomic.AddInt64(&s.miss, 1)
}

// ...but Misses reads the same field plainly: that read races with
// Miss.
func (s *stats) Misses() int64 {
	return s.miss // want `plain access to s\.miss`
}

// Reset writes it plainly: the write tears under concurrent readers.
func (s *stats) Reset() {
	s.miss = 0 // want `plain access to s\.miss`
}

// ops is a good package-level counter: all access is atomic.
var ops int64

func BumpOps() {
	atomic.AddInt64(&ops, 1)
}

func Ops() int64 {
	return atomic.LoadInt64(&ops)
}

// snapshotMiss reads during a documented stop-the-world window; the
// pragma records the justification.
func (s *stats) snapshotMiss() int64 {
	//solverlint:allow atomicsafe fixture: read under stop-the-world guarantee
	return s.miss
}
