package core

import (
	"fmt"
	"time"
)

// RequestOptions is the request-level subset of Options: the solver
// parameters a remote caller may set on one placement request. It
// deliberately excludes the process-local hooks (Recorder, Metrics,
// Bound) that cannot travel over a wire and must be attached by the
// serving side. The zero value selects the solver defaults.
//
// RequestOptions is plain data with a deterministic meaning, which is
// what makes placement requests canonicalizable: two requests with
// equal RequestOptions (and equal fabric and modules) run the same
// search and produce the same result.
type RequestOptions struct {
	// Timeout bounds the optimisation (see Options.Timeout). Zero
	// means no limit.
	Timeout time.Duration
	// Strategy is the branching-variable heuristic.
	Strategy Strategy
	// ValueOrder is the placement-value heuristic.
	ValueOrder ValueOrder
	// FirstSolutionOnly stops at the first complete placement.
	FirstSolutionOnly bool
	// StallNodes is the convergence criterion (see Options.StallNodes).
	StallNodes int64
	// BusRows restricts placements to boxes crossing a bus row (see
	// Options.BusRows).
	BusRows []int
	// Workers enables parallel branch-and-bound (see Options.Workers).
	Workers int
	// StrongPropagation adds compulsory-part pruning (see
	// Options.StrongPropagation).
	StrongPropagation bool
	// Presolve toggles the optimality-preserving presolve pipeline
	// (see Options.Presolve). The zero value runs it.
	Presolve PresolveMode
}

// Options expands the request-level options into full solver Options,
// leaving the process-local hooks unset for the caller to attach.
func (o RequestOptions) Options() Options {
	return Options{
		Timeout:           o.Timeout,
		Strategy:          o.Strategy,
		ValueOrder:        o.ValueOrder,
		FirstSolutionOnly: o.FirstSolutionOnly,
		StallNodes:        o.StallNodes,
		BusRows:           o.BusRows,
		Workers:           o.Workers,
		StrongPropagation: o.StrongPropagation,
		Presolve:          o.Presolve,
	}
}

// OptionError reports an invalid RequestOptions field value: the typed
// rejection the request boundary returns so callers can distinguish a
// misconfigured request from a solver failure.
type OptionError struct {
	// Field is the RequestOptions field name.
	Field string
	// Value is the rejected value.
	Value int64
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("core: invalid RequestOptions.%s: %d", e.Field, e.Value)
}

// Validate reports the first inconsistency in the options as a typed
// *OptionError.
func (o RequestOptions) Validate() error {
	switch {
	case o.Timeout < 0:
		return &OptionError{Field: "Timeout", Value: int64(o.Timeout)}
	case o.StallNodes < 0:
		return &OptionError{Field: "StallNodes", Value: o.StallNodes}
	case o.Workers < 0:
		return &OptionError{Field: "Workers", Value: int64(o.Workers)}
	case o.Strategy.String() == "unknown":
		return &OptionError{Field: "Strategy", Value: int64(o.Strategy)}
	case o.ValueOrder.String() == "unknown":
		return &OptionError{Field: "ValueOrder", Value: int64(o.ValueOrder)}
	case o.Presolve.String() == "unknown":
		return &OptionError{Field: "Presolve", Value: int64(o.Presolve)}
	}
	for _, r := range o.BusRows {
		if r < 0 {
			return &OptionError{Field: "BusRows", Value: int64(r)}
		}
	}
	return nil
}

// Strategies lists the branching strategies in declaration order.
func Strategies() []Strategy {
	return []Strategy{StrategyFirstFail, StrategyLargestFirst, StrategyInputOrder}
}

// ValueOrders lists the value orderings in declaration order.
func ValueOrders() []ValueOrder {
	return []ValueOrder{OrderBottomLeft, OrderLexicographic}
}

// ParseStrategy converts a strategy name (as produced by
// Strategy.String) back to the Strategy.
func ParseStrategy(s string) (Strategy, error) {
	for _, st := range Strategies() {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}

// ParseValueOrder converts a value-order name (as produced by
// ValueOrder.String) back to the ValueOrder.
func ParseValueOrder(s string) (ValueOrder, error) {
	for _, v := range ValueOrders() {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: unknown value order %q", s)
}

// PresolveMode toggles the optimality-preserving presolve pipeline
// (dominance elimination, symmetry breaking, bound strengthening and
// warm start; see internal/presolve). The zero value runs it, so
// presolve is on by default everywhere a RequestOptions travels.
type PresolveMode uint8

// Presolve modes.
const (
	// PresolveOn runs the presolve pipeline before search (default).
	PresolveOn PresolveMode = iota
	// PresolveOff searches the model exactly as built — the escape
	// hatch for debugging and for measuring presolve's effect.
	PresolveOff
)

// String names the mode.
func (p PresolveMode) String() string {
	switch p {
	case PresolveOn:
		return "on"
	case PresolveOff:
		return "off"
	}
	return "unknown"
}

// PresolveModes lists the presolve modes in declaration order.
func PresolveModes() []PresolveMode {
	return []PresolveMode{PresolveOn, PresolveOff}
}

// ParsePresolve converts a mode name (as produced by
// PresolveMode.String) back to the PresolveMode. The empty string
// selects the default (PresolveOn), so callers can pass an unset
// flag or config field through unchanged.
func ParsePresolve(s string) (PresolveMode, error) {
	if s == "" {
		return PresolveOn, nil
	}
	for _, p := range PresolveModes() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown presolve mode %q", s)
}
