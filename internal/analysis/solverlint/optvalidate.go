package solverlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// OptValidate keeps the options surfaces validated exhaustively: every
// numeric options field is a budget, a degree knob, or an enum whose
// out-of-range values are nonsense, and the validator rejects them
// with a typed *OptionError so callers can distinguish
// misconfiguration from solver failure. A new numeric field that skips
// the validator ships an unvalidated knob; this analyzer flags it at
// the field declaration. The check requires both (a) a reference to
// the field inside the validator and (b) an OptionError composite
// literal carrying the field's name, so a field that is read but waved
// through unvalidated is still a finding.
//
// Two (struct, validator) pairs are recognised, matched by receiver
// type so an unrelated Validate method (e.g. on a result type) never
// satisfies the check:
//
//	Options        → withDefaults   (csp's internal normalisation)
//	RequestOptions → Validate       (core's request boundary)
//
// A package whose Options struct has no validator of its own is exempt
// when the same package carries a validated RequestOptions: there the
// public surface is RequestOptions, and Options is the internal
// pre-validated bag its conversion produces (core.Options).
var OptValidate = &Analyzer{
	Name: "optvalidate",
	Doc:  "numeric options fields must be covered by the typed OptionError validation (Options.withDefaults / RequestOptions.Validate)",
	Run:  runOptValidate,
}

// optValidatePair couples an options struct with the method that must
// validate it.
type optValidatePair struct {
	structName    string
	validatorName string
}

var optValidatePairs = []optValidatePair{
	{"Options", "withDefaults"},
	{"RequestOptions", "Validate"},
}

func runOptValidate(pass *Pass) error {
	type check struct {
		pair      optValidatePair
		st        *types.Named
		fields    []*types.Var
		validator *ast.FuncDecl
	}
	var checks []check
	anyValidated := false
	for _, pair := range optValidatePairs {
		st := lookupStruct(pass, pair.structName)
		if st == nil {
			continue
		}
		fields := numericFields(st)
		if len(fields) == 0 {
			continue
		}
		v := findValidator(pass, pair.structName, pair.validatorName)
		if v != nil {
			anyValidated = true
		}
		checks = append(checks, check{pair, st, fields, v})
	}
	for _, c := range checks {
		if c.validator == nil {
			if anyValidated && c.pair.structName == "Options" {
				continue // validation lives on the package's RequestOptions boundary
			}
			pass.Reportf(c.st.Obj().Pos(),
				"%s has numeric fields (%s) but no %s method to validate them with OptionError",
				c.pair.structName, fieldNames(c.fields), c.pair.validatorName)
			continue
		}
		referenced, named := validatorCoverage(pass, c.validator, c.fields)
		for _, f := range c.fields {
			switch {
			case !referenced[f.Name()]:
				pass.Reportf(f.Pos(),
					"%s.%s is never referenced in %s: add an invalid-value check returning *OptionError{Field: %q}",
					c.pair.structName, f.Name(), c.pair.validatorName, f.Name())
			case !named[f.Name()]:
				pass.Reportf(f.Pos(),
					"%s.%s is read in %s but no OptionError names it: invalid values pass validation silently",
					c.pair.structName, f.Name(), c.pair.validatorName)
			}
		}
	}
	return nil
}

// lookupStruct returns the named struct type called name in the
// package scope, or nil.
func lookupStruct(pass *Pass, name string) *types.Named {
	tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// numericFields returns the fields of the struct whose underlying type
// is a (signed or unsigned) integer.
func numericFields(named *types.Named) []*types.Var {
	st := named.Underlying().(*types.Struct)
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			out = append(out, f)
		}
	}
	return out
}

func fieldNames(fields []*types.Var) string {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name()
	}
	return strings.Join(names, ", ")
}

// findValidator returns the method declaration named validatorName
// whose receiver's base type is the struct named structName, or nil.
// Matching the receiver type keeps an unrelated method of the same
// name (Result.Validate, say) from satisfying the check.
func findValidator(pass *Pass, structName, validatorName string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != validatorName || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if receiverTypeName(fd.Recv.List[0].Type) == structName {
				return fd
			}
		}
	}
	return nil
}

// receiverTypeName unwraps a receiver type expression (T, *T, or their
// generic instantiations) to the base type name.
func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// validatorCoverage scans the validator's body and reports, per
// numeric field name, whether it is referenced through a selector and
// whether an OptionError composite literal names it in a string
// literal.
func validatorCoverage(pass *Pass, wd *ast.FuncDecl, fields []*types.Var) (referenced, named map[string]bool) {
	fieldSet := map[types.Object]string{}
	for _, f := range fields {
		fieldSet[f] = f.Name()
	}
	referenced = map[string]bool{}
	named = map[string]bool{}
	ast.Inspect(wd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok {
				if name, ok := fieldSet[sel.Obj()]; ok {
					referenced[name] = true
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil && isOptionErrorType(t) {
				for _, lit := range stringLiterals(n) {
					named[lit] = true
				}
			}
		}
		return true
	})
	return referenced, named
}

func isOptionErrorType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "OptionError"
}

// stringLiterals returns the unquoted string literal values appearing
// directly in lit's elements.
func stringLiterals(lit *ast.CompositeLit) []string {
	var out []string
	for _, elt := range lit.Elts {
		e := elt
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		if bl, ok := e.(*ast.BasicLit); ok && bl.Kind == token.STRING {
			if s, err := strconv.Unquote(bl.Value); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}
