// Command solverlint runs the project's custom static-analysis suite
// (see internal/analysis/solverlint) over the repository: clonecomplete,
// nondeterminism, obsgate, optvalidate, and nakedpanic. Each analyzer
// applies only to the packages whose invariants it enforces — e.g.
// nondeterminism covers the search/propagation packages but not the
// workload generators, which are deliberately random.
//
// Usage:
//
//	solverlint [-list] [packages]
//
// With no package patterns, ./... is checked. Diagnostics print as
// file:line:col: analyzer: message; the exit status is 1 when any
// diagnostic was reported, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/solverlint"
)

// scopes maps each analyzer to the import-path fragments it applies
// to. An empty list means every loaded package.
var scopes = map[string][]string{
	// Clonability is a contract of the constraint kernel and the geost
	// propagators; other packages define no propagators.
	"clonecomplete": {"internal/csp", "internal/geost"},
	// Determinism matters on the search and propagation call paths —
	// kernel, geometric propagators, placer — and in canonicalization,
	// where a wandering digest would silently split or alias cache
	// entries. The span-recording layer in internal/obs sits on those
	// same call paths (per-request traces wrap every solve), so it is
	// held to the same bar; its deliberate uses of wall-clock time and
	// crypto/rand ids carry explicit allow pragmas. The fault injector
	// must replay chaos runs exactly, so its deliberately seeded PRNG
	// sites are pragma'd too. Workload/netlist generators and
	// experiment drivers are deliberately seeded-random.
	"nondeterminism": {"internal/csp", "internal/geost", "internal/core", "internal/canon", "internal/obs", "internal/faultinject"},
	// The zero-alloc-when-disabled contract covers the solver hot
	// paths instrumented in PR 1 and the request-tracing span model:
	// span emission must stay nil-guarded so a tracerless daemon pays
	// nothing. The fault injector makes the same promise: a daemon
	// without -faults must not pay for the injection sites.
	"obsgate": {"internal/csp", "internal/geost", "internal/core", "internal/obs", "internal/faultinject"},
	// Options/OptionError validation lives in the csp kernel.
	"optvalidate": {"internal/csp"},
	// Library packages must not panic undocumented; cmd/ and examples/
	// binaries are user-facing drivers, not libraries.
	"nakedpanic": {"internal/"},
}

func inScope(analyzer, importPath string) bool {
	fragments := scopes[analyzer]
	if len(fragments) == 0 {
		return true
	}
	for _, f := range fragments {
		if strings.Contains(importPath, f) {
			return true
		}
	}
	return false
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and their scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: solverlint [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range solverlint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
			fmt.Printf("%-16s scope: %s\n", "", strings.Join(scopes[a.Name], ", "))
		}
		return
	}
	n, err := run(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "solverlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "solverlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run loads the packages and applies every in-scope analyzer,
// printing diagnostics to stdout. It returns the finding count.
func run(dir string, patterns []string) (int, error) {
	pkgs, err := solverlint.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, a := range solverlint.Analyzers() {
		for _, pkg := range pkgs {
			if !inScope(a.Name, pkg.Path) {
				continue
			}
			diags, err := solverlint.RunAnalyzer(a, pkg)
			if err != nil {
				return count, err
			}
			for _, d := range diags {
				fmt.Println(d)
				count++
			}
		}
	}
	return count, nil
}
