package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func writeSpecs(t *testing.T) (regionPath, modulesPath string) {
	t.Helper()
	dir := t.TempDir()
	regionPath = filepath.Join(dir, "region.spec")
	modulesPath = filepath.Join(dir, "modules.spec")
	region := "region t 20 12\nbramcols 4 14\nbus 0\n"
	modules := "module a\ndemand 8 1 0\nalternatives 2\nmodule b\nshape\nrect 0 0 3 2 CLB\nend\n"
	if err := os.WriteFile(regionPath, []byte(region), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modulesPath, []byte(modules), 0o644); err != nil {
		t.Fatal(err)
	}
	return regionPath, modulesPath
}

func baseOpts(regionPath, modulesPath string) cliOpts {
	return cliOpts{
		regionPath:  regionPath,
		modulesPath: modulesPath,
		timeout:     5 * time.Second,
		strategy:    "first-fail",
	}
}

func TestRunHappyPath(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	dir := t.TempDir()
	o := baseOpts(regionPath, modulesPath)
	o.stall = 200
	o.svgPath = filepath.Join(dir, "fp.svg")
	o.pngPath = filepath.Join(dir, "fp.png")
	o.outPath = filepath.Join(dir, "placement.spec")
	o.bitstreams = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	placement, err := os.ReadFile(o.outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(placement), "place a ") {
		t.Fatalf("placement file: %q", string(placement))
	}
	data, err := os.ReadFile(o.svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("svg output malformed")
	}
	pngData, err := os.ReadFile(o.pngPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pngData) < 8 || pngData[1] != 'P' || pngData[2] != 'N' || pngData[3] != 'G' {
		t.Fatal("png output malformed")
	}
}

func TestRunFirstSolution(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	o := baseOpts(regionPath, modulesPath)
	o.first = true
	o.strategy = "largest-first"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunObservability runs the acceptance scenario: -trace writes a
// JSONL event stream whose final incumbent matches the reported
// placement objective, and -metrics includes phase timings and
// per-propagator invocation counts.
func TestRunObservability(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")
	profPath := filepath.Join(dir, "cpu.prof")
	memPath := filepath.Join(dir, "mem.prof")
	o := baseOpts(regionPath, modulesPath)
	o.stall = 200
	o.obs = obs.Config{
		TracePath:   tracePath,
		MetricsPath: metricsPath,
		CPUProfile:  profPath,
		MemProfile:  memPath,
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	// Trace: valid JSONL, phases present, a final incumbent exists.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lastIncumbent int
	incumbents := 0
	phases := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e struct {
			Kind      string  `json:"kind"`
			Phase     string  `json:"phase"`
			Objective int     `json:"objective"`
			TMs       float64 `json:"t_ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		switch e.Kind {
		case "incumbent":
			incumbents++
			lastIncumbent = e.Objective
		case "phase":
			phases[e.Phase] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if incumbents == 0 {
		t.Fatal("trace has no incumbent events")
	}
	if !phases["model_build"] || !phases["search"] {
		t.Fatalf("trace phases = %v", phases)
	}

	// Metrics: Prometheus format with phase timings and per-propagator
	// invocation counts.
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(prom)
	for _, want := range []string{
		"phase_model_build_seconds_count",
		"phase_search_seconds_count",
		"phase_propagation_seconds_count",
		`solver_propagator_runs_total{propagator="geost.non-overlap"}`,
		"solver_branches_total",
		"solver_best_objective",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The final incumbent in the trace is the reported best objective.
	if !strings.Contains(text, "solver_best_objective "+strconv.Itoa(lastIncumbent)) {
		t.Errorf("metrics best objective != trace final incumbent %d:\n%s", lastIncumbent, text)
	}

	for _, p := range []string{profPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	regionPath, modulesPath := writeSpecs(t)
	o := baseOpts("/nonexistent", modulesPath)
	if err := run(o); err == nil {
		t.Error("missing region file accepted")
	}
	o = baseOpts(regionPath, "/nonexistent")
	if err := run(o); err == nil {
		t.Error("missing modules file accepted")
	}
	o = baseOpts(regionPath, modulesPath)
	o.strategy = "wat"
	if err := run(o); err == nil {
		t.Error("bad strategy accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []string{"first-fail", "largest-first", "input-order"} {
		if _, err := core.ParseStrategy(s); err != nil {
			t.Errorf("%s rejected: %v", s, err)
		}
	}
	if _, err := core.ParseStrategy("nope"); err == nil {
		t.Error("bad strategy accepted")
	}
}
