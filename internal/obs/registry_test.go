package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c1.Add(3)
	if c2 := r.Counter("a_total"); c2.Value() != 3 {
		t.Fatalf("counter not shared: %d", c2.Value())
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
	h := r.Histogram("h", 1, 2)
	h.Observe(1.5)
	if got := r.Histogram("h").Count(); got != 1 {
		t.Fatalf("histogram not shared: %d", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Timer("x").Stop()
	r.ObserveDuration("x", time.Second)
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSummary(nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter = %d", got)
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase_search")
	time.Sleep(2 * time.Millisecond)
	d := tm.Stop()
	if d < 2*time.Millisecond {
		t.Fatalf("span too short: %v", d)
	}
	h := r.Histogram("phase_search_seconds")
	if h.Count() != 1 {
		t.Fatalf("timer sample missing")
	}
	if h.Sum() < 0.002 {
		t.Fatalf("timer recorded %v seconds", h.Sum())
	}
}

// TestRegistryConcurrency exercises the registry from many goroutines so
// `go test -race` covers the concurrent metric paths.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	stats := NewStats(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Set(float64(i))
				r.Histogram("shared_hist", 1, 10, 100).Observe(float64(i % 150))
				stats.Record(Event{Kind: KindPropagate, Prop: "p"})
				stats.Record(Event{Kind: KindBranch, Depth: i % 40})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
	if got := r.Counter("solver_propagations_total").Value(); got != 8000 {
		t.Fatalf("propagations = %d, want 8000", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `solver_propagator_runs_total{propagator="p"} 8000`) {
		t.Fatalf("per-propagator counter missing:\n%s", sb.String())
	}
}
