package service

import (
	"context"
	"sync"

	"repro/internal/canon"
)

// flightGroup collapses concurrent duplicate work: all callers asking
// for the same digest while a computation is in flight share its
// outcome, so N identical requests arriving together trigger exactly
// one solve. Unlike golang.org/x/sync/singleflight (not vendored
// here), the computation runs on its own goroutine detached from any
// caller's context: a waiter that gives up does not cancel the work,
// whose result still lands in the cache for the next request.
type flightGroup struct {
	mu    sync.Mutex
	calls map[canon.Digest]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when body/err are final
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[canon.Digest]*flightCall{}}
}

// Do returns fn's result for key. The first caller for a key becomes
// the leader (leader=true) and starts fn; callers arriving before fn
// finishes share the same result with leader=false. Each caller waits
// under its own ctx: on expiry it gets ctx.Err() while fn keeps
// running to completion for the others.
func (g *flightGroup) Do(ctx context.Context, key canon.Digest, fn func() ([]byte, error)) (body []byte, leader bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.body, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		body, err := fn()
		g.mu.Lock()
		c.body, c.err = body, err
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()

	select {
	case <-c.done:
		return c.body, true, c.err
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}
