package solverlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, resolved relative
// to dir, and returns them ready for analysis. It shells out to
// `go list -export -deps`, which compiles dependencies as needed and
// yields gc export data from the build cache; the matched packages
// themselves are parsed and type-checked from source with go/types.
// The whole pipeline runs offline against the standard toolchain —
// no module downloads, no golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %v: package %s: %s", patterns, lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("solverlint: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("solverlint: package %s uses cgo, which the source loader does not support", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("solverlint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("solverlint: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  t.Name,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
