package csp

import "sort"

// allDifferentBounds enforces pairwise difference with bounds
// consistency via Hall-interval reasoning (Puget's algorithm, O(n²)
// variant): if some interval [lo, hi] is saturated by exactly
// hi−lo+1 variables whose domains lie inside it (a Hall interval), that
// interval is removed from every other variable's bounds. This detects
// pigeonhole infeasibility and prunes long before the forward-checking
// filter does.
type allDifferentBounds struct {
	vars []*Var
}

// AllDifferentBounds posts pairwise-distinct over vars with
// Hall-interval bounds consistency in addition to assigned-value
// forward checking. Prefer it over AllDifferent when domains are
// intervals and the constraint is tight (e.g. permutation problems).
func AllDifferentBounds(st *Store, vars ...*Var) {
	if len(vars) < 2 {
		return
	}
	// Keep value-level forward checking: bounds consistency alone does
	// not remove interior assigned values.
	AllDifferent(st, vars...)
	p := &allDifferentBounds{vars: vars}
	st.Post(p, vars...)
}

// Name implements Named.
func (p *allDifferentBounds) Name() string { return "csp.all-different-bounds" }

// CloneFor implements Clonable.
func (p *allDifferentBounds) CloneFor(ctx *CloneCtx) Propagator {
	return &allDifferentBounds{vars: ctx.Vars(p.vars)}
}

func (p *allDifferentBounds) Propagate(st *Store) error {
	if err := p.tightenMins(st); err != nil {
		return err
	}
	return p.tightenMaxs(st)
}

// tightenMins finds Hall intervals scanning by upper bound and lifts the
// minimum of variables whose range would otherwise intrude.
func (p *allDifferentBounds) tightenMins(st *Store) error {
	n := len(p.vars)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return p.vars[idx[a]].Max() < p.vars[idx[b]].Max()
	})
	// For each candidate interval start lo (a variable minimum), walk
	// variables in max order counting how many fit inside [lo, max].
	for _, startVar := range p.vars {
		lo := startVar.Min()
		count := 0
		for _, j := range idx {
			v := p.vars[j]
			if v.Min() < lo {
				continue
			}
			hi := v.Max()
			count++
			width := hi - lo + 1
			if count > width {
				return ErrInconsistent // pigeonhole
			}
			if count == width {
				// [lo, hi] is a Hall interval: exclude it from every
				// variable not contained in it.
				for _, u := range p.vars {
					if u.Min() >= lo && u.Max() <= hi {
						continue
					}
					if u.Min() >= lo && u.Min() <= hi {
						if err := st.SetMin(u, hi+1); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// tightenMaxs is the mirror image of tightenMins.
func (p *allDifferentBounds) tightenMaxs(st *Store) error {
	n := len(p.vars)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return p.vars[idx[a]].Min() > p.vars[idx[b]].Min()
	})
	for _, startVar := range p.vars {
		hi := startVar.Max()
		count := 0
		for _, j := range idx {
			v := p.vars[j]
			if v.Max() > hi {
				continue
			}
			lo := v.Min()
			count++
			width := hi - lo + 1
			if count > width {
				return ErrInconsistent
			}
			if count == width {
				for _, u := range p.vars {
					if u.Min() >= lo && u.Max() <= hi {
						continue
					}
					if u.Max() >= lo && u.Max() <= hi {
						if err := st.SetMax(u, lo-1); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}
