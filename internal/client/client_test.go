package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep records requested backoff delays without waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetriesShedThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"found":true}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, Options{Sleep: noSleep(&delays)})
	res, err := c.Do(context.Background(), "/v1/place", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Attempts != 3 || res.Retries != 2 {
		t.Fatalf("result: %+v", res)
	}
	if string(res.Body) != `{"found":true}` {
		t.Fatalf("body: %s", res.Body)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestDoesNotRetryFinalStatuses(t *testing.T) {
	for _, status := range []int{
		http.StatusBadRequest,
		http.StatusUnprocessableEntity,
		http.StatusInternalServerError,
		http.StatusGatewayTimeout,
	} {
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.WriteHeader(status)
		}))
		c := New(srv.URL, Options{Sleep: noSleep(new([]time.Duration))})
		res, err := c.Do(context.Background(), "/v1/place", nil)
		srv.Close()
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		if res.Status != status || res.Attempts != 1 || hits.Load() != 1 {
			t.Fatalf("status %d retried: %+v (hits %d)", status, res, hits.Load())
		}
	}
}

func TestExhaustedRetriesReturnLastResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL, Options{MaxAttempts: 3, Sleep: noSleep(new([]time.Duration))})
	res, err := c.Do(context.Background(), "/v1/place", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Attempts != 3 {
		t.Fatalf("result: %+v", res)
	}
}

func TestRetriesTransportError(t *testing.T) {
	// A server that is immediately closed: connection refused, no
	// response ever arrives, so every attempt is retryable.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	c := New(url, Options{MaxAttempts: 2, Sleep: noSleep(new([]time.Duration))})
	_, err := c.Do(context.Background(), "/v1/place", nil)
	if err == nil {
		t.Fatal("expected transport error after exhausted retries")
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := New(srv.URL, Options{
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	})
	_, err := c.Do(ctx, "/v1/place", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackoffGrowsAndHonoursRetryAfter(t *testing.T) {
	c := New("http://unused", Options{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  2 * time.Second,
		Jitter:    -1, // deterministic
	})
	if d := c.backoff(0, 0); d != 100*time.Millisecond {
		t.Fatalf("backoff(0) = %v", d)
	}
	if d := c.backoff(3, 0); d != 800*time.Millisecond {
		t.Fatalf("backoff(3) = %v", d)
	}
	if d := c.backoff(10, 0); d != 2*time.Second {
		t.Fatalf("backoff(10) = %v, want cap", d)
	}
	// Retry-After floors the delay but never exceeds the cap.
	if d := c.backoff(0, 1500*time.Millisecond); d != 1500*time.Millisecond {
		t.Fatalf("backoff with Retry-After = %v", d)
	}
	if d := c.backoff(0, time.Minute); d != 2*time.Second {
		t.Fatalf("backoff with huge Retry-After = %v, want cap", d)
	}
}

func TestJitterIsSeededAndBounded(t *testing.T) {
	mk := func() []time.Duration {
		c := New("http://unused", Options{
			BaseDelay: 100 * time.Millisecond,
			Jitter:    0.5,
			Seed:      7,
		})
		var ds []time.Duration
		for i := 0; i < 16; i++ {
			ds = append(ds, c.backoff(0, 0))
		}
		return ds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		lo, hi := 75*time.Millisecond, 125*time.Millisecond
		if a[i] < lo || a[i] > hi {
			t.Fatalf("jittered delay %v outside [%v,%v]", a[i], lo, hi)
		}
	}
}

func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"10", 10 * time.Second},
		{"-3", 0},
		{"soon", 0},
	}
	for _, tc := range cases {
		res := &Result{Header: http.Header{}}
		if tc.header != "" {
			res.Header.Set("Retry-After", tc.header)
		}
		if got := lastRetryAfter(res); got != tc.want {
			t.Fatalf("Retry-After %q: got %v want %v", tc.header, got, tc.want)
		}
	}
	if got := lastRetryAfter(&Result{}); got != 0 {
		t.Fatalf("nil header: %v", got)
	}
}

// TestRetryAfterHTTPDate covers the HTTP-date form RFC 9110 also
// allows: a future date converts to the delay until then, a past date
// clamps to zero (retry immediately), and a malformed date falls back
// to plain backoff (0).
func TestRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"future date", now.Add(42 * time.Second).Format(http.TimeFormat), 42 * time.Second},
		{"past date clamps to zero", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"rfc850 form", now.Add(5 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 5 * time.Second},
		{"malformed date", "Fri, 99 Nope 2026 12:00:00 GMT", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header, now); got != tc.want {
			t.Fatalf("%s: Retry-After %q: got %v want %v", tc.name, tc.header, got, tc.want)
		}
	}
}

// TestRetryAfterDateFloorsBackoff ends-to-ends the date form: a 429
// carrying a far-future HTTP-date must floor the next backoff sleep at
// (about) that delay instead of the bare exponential.
func TestRetryAfterDateFloorsBackoff(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(90*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	var delays []time.Duration
	c := New(srv.URL, Options{Sleep: noSleep(&delays), Jitter: -1, MaxDelay: 2 * time.Minute})
	res, err := c.Do(context.Background(), "/v1/place", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Attempts != 2 {
		t.Fatalf("result: %+v", res)
	}
	// The date was ~90s out; allow slack for test scheduling, but the
	// floor must clearly beat the 100ms base backoff.
	if len(delays) != 1 || delays[0] < 80*time.Second || delays[0] > 90*time.Second {
		t.Fatalf("delays = %v, want one sleep of ~90s", delays)
	}
}
