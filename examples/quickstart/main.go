// Quickstart: build a small heterogeneous region, describe one module
// with design alternatives, and let the constraint-programming placer
// pick layouts and positions that minimise the occupied height.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/module"
	"repro/internal/render"
)

func main() {
	// A 20x10 region with a BRAM column at x=4 and x=14.
	spec := fabric.Spec{Name: "quickstart", W: 20, H: 10, BRAMColumns: []int{4, 14}}
	region := spec.MustBuild().FullRegion()

	// Three modules; each carries four functionally equivalent layouts
	// (base, 180° rotation, internal and external variants).
	var mods []*module.Module
	for i, d := range []module.Demand{
		{CLB: 12, BRAM: 2},
		{CLB: 16},
		{CLB: 9, BRAM: 1},
	} {
		m, err := module.GenerateAlternatives(fmt.Sprintf("mod%d", i), d, module.AlternativeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		mods = append(mods, m)
		fmt.Println(render.ShapeAlternatives(m))
	}

	res, err := core.New(region, core.Options{}).Place(mods)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("no feasible placement")
	}
	fmt.Println("placement:", res)
	fmt.Println(render.PlacementsWithRuler(region, res.Placements))
}
