// Command experiment regenerates the paper's evaluation artifacts:
// Table I, Figures 1/3/4/5 and the ablation tables. Each experiment is
// selected with -exp; -exp all runs everything at the configured scale.
//
// Examples:
//
//	experiment -exp table1 -runs 50          # the full Table-I protocol
//	experiment -exp table1 -runs 5 -quiet    # a quick look
//	experiment -exp fig3                     # side-by-side placements
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "table1", "experiment: table1, fig1, fig3, fig4, fig5, altcount, heterogeneity, masked, strategy, baselines, online, schedule, relocate, all")
		runs     = flag.Int("runs", 50, "number of seeded runs for table experiments")
		seed     = flag.Int64("seed", 1, "base seed")
		stall    = flag.Int64("stall", 2000, "optimiser convergence: nodes without improvement")
		workers  = flag.Int("workers", 1, "parallel search goroutines per solve (>1 enables parallel branch-and-bound)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-solve safety cap")
		presolve = flag.String("presolve", "on", "presolve pipeline: on, off (A/B escape hatch)")
		modules  = flag.Int("modules", 0, "modules per run (0 = paper default of 30)")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		benchOut = flag.String("bench-out", "BENCH_table1.json", "per-testcase JSON for the table1 experiment (empty disables)")
		obsCfg   obs.Config
	)
	flag.StringVar(&obsCfg.TracePath, "trace", "", "write the solver JSONL event trace to this file (- for stdout)")
	flag.StringVar(&obsCfg.MetricsPath, "metrics", "", "dump metrics at exit: - for a summary table, a path for Prometheus text format")
	flag.StringVar(&obsCfg.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&obsCfg.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&obsCfg.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	pre, err := core.ParsePresolve(*presolve)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
	cfg := experiments.RunConfig{
		Runs:       *runs,
		Seed:       *seed,
		StallNodes: *stall,
		Timeout:    *timeout,
		Workers:    *workers,
		Presolve:   pre,
		Workload:   workload.Config{NumModules: *modules},
		BenchPath:  *benchOut,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	session, err := obs.Start(obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
	cfg.Recorder = session.Recorder
	cfg.Metrics = session.Registry

	runErr := run(os.Stdout, *exp, cfg)
	if cerr := session.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiment:", runErr)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, cfg experiments.RunConfig) error {
	switch exp {
	case "table1":
		res, err := experiments.RunTableI(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Format())
		if cfg.BenchPath != "" {
			f, err := os.Create(cfg.BenchPath)
			if err != nil {
				return err
			}
			if err := experiments.WriteBenchJSON(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(w, "wrote", cfg.BenchPath)
		}
	case "fig1":
		fmt.Fprintln(w, experiments.Fig1())
	case "fig3":
		out, err := experiments.Fig3()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	case "fig4":
		out, err := experiments.Fig4()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	case "fig5":
		out, err := experiments.Fig5()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	case "altcount":
		rows, err := experiments.AlternativeCountSweep(cfg, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRows("ABLATION: NUMBER OF DESIGN ALTERNATIVES", rows))
	case "heterogeneity":
		rows, err := experiments.HeterogeneitySweep(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRows("ABLATION: FABRIC HETEROGENEITY (CLB-only workload)", rows))
	case "masked":
		rows, err := experiments.MaskedResourcesComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRows("ABLATION: MASKING DEDICATED RESOURCES ([9]-style)", rows))
	case "strategy":
		rows, err := experiments.StrategySweep(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRows("ABLATION: SEARCH STRATEGY", rows))
	case "baselines":
		rows, err := experiments.BaselineComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRows("BASELINE PLACERS VS CONSTRAINT PROGRAMMING", rows))
	case "online":
		rows, err := experiments.OnlineComparison(cfg, online.StreamConfig{})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatOnlineRows("ONLINE SPACE MANAGEMENT (related-work axes)", rows))
	case "schedule":
		rows, err := experiments.ScheduleComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatScheduleRows("RUNTIME RECONFIGURATION: FRESH VS PERSISTENT PLANNING", rows))
	case "relocate":
		rows, err := experiments.RelocationComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatRelocationRows("BITSTREAM RELOCATION CLASSES ([9] trade-off)", rows))
	case "all":
		for _, e := range []string{"table1", "fig1", "fig3", "fig4", "fig5", "altcount", "heterogeneity", "masked", "strategy", "baselines", "online", "schedule", "relocate"} {
			fmt.Fprintf(w, "==== %s ====\n", e)
			if err := run(w, e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
