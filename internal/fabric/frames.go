package fabric

import (
	"fmt"
	"time"

	"repro/internal/grid"
)

// FrameModel describes the configuration-memory geometry of a device
// family, used to estimate partial-reconfiguration cost. Xilinx-style
// devices are configured column-wise in frames: rewriting any tile of a
// column touches every frame of that column within the affected clock
// region rows.
//
// The model is deliberately simple — frames per column by kind, bytes
// per frame, and configuration-port bandwidth — which is all the
// bitstream-assembly substrate needs to reproduce the paper's
// reconfiguration-overhead framing.
type FrameModel struct {
	// FramesPerColumn maps a resource kind to the number of
	// configuration frames a column of that kind occupies per row of
	// tiles.
	FramesPerColumn map[Kind]int
	// FrameBytes is the size of one configuration frame.
	FrameBytes int
	// PortBytesPerSecond is the configuration port bandwidth (e.g.
	// ICAP at 32 bit × 100 MHz = 400e6 bytes/s).
	PortBytesPerSecond int
}

// DefaultFrameModel returns frame geometry loosely modelled on
// Virtex-4-class devices: logic columns are cheap, BRAM content frames
// are heavy, and the ICAP moves 400 MB/s.
func DefaultFrameModel() FrameModel {
	return FrameModel{
		FramesPerColumn: map[Kind]int{
			CLB:   22,
			DSP:   21,
			BRAM:  64,
			IOB:   30,
			Clock: 4,
		},
		FrameBytes:         164,
		PortBytesPerSecond: 400_000_000,
	}
}

// FrameCount returns the number of configuration frames needed to
// reconfigure the given rectangle of the region: for every column the
// rectangle touches, the per-kind frame count of that column, scaled by
// the fraction of rows covered (rounded up to whole frames).
func (m FrameModel) FrameCount(r *Region, area grid.Rect) int {
	area = area.Intersect(r.Bounds())
	if area.Empty() {
		return 0
	}
	frames := 0
	for x := area.MinX; x < area.MaxX; x++ {
		// A column may hold mixed kinds (clock-interrupted columns);
		// charge the most expensive kind present in the covered rows.
		perRow := 0
		for y := area.MinY; y < area.MaxY; y++ {
			if c := m.FramesPerColumn[r.KindAt(x, y)]; c > perRow {
				perRow = c
			}
		}
		frames += perRow * area.H()
	}
	return frames
}

// ReconfigTime converts a frame count into configuration-port time.
func (m FrameModel) ReconfigTime(frames int) time.Duration {
	if m.PortBytesPerSecond <= 0 {
		return 0
	}
	bytes := frames * m.FrameBytes
	return time.Duration(float64(bytes) / float64(m.PortBytesPerSecond) * float64(time.Second))
}

// Validate reports the first inconsistency in the model, or nil.
func (m FrameModel) Validate() error {
	if m.FrameBytes <= 0 {
		return fmt.Errorf("fabric: frame model has non-positive frame size %d", m.FrameBytes)
	}
	if m.PortBytesPerSecond <= 0 {
		return fmt.Errorf("fabric: frame model has non-positive bandwidth %d", m.PortBytesPerSecond)
	}
	for k, c := range m.FramesPerColumn {
		if c < 0 {
			return fmt.Errorf("fabric: negative frame count for %s", k)
		}
	}
	return nil
}
